#include "snn/convert.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/fixed.hpp"

namespace neuro::snn {

float percentile(std::vector<float> values, float p) {
    if (values.empty()) throw std::invalid_argument("percentile: empty sample");
    if (p <= 0.0f || p > 1.0f) throw std::invalid_argument("percentile: p out of range");
    std::sort(values.begin(), values.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<float>(values.size()))) - 1;
    return values[std::min(rank, values.size() - 1)];
}

namespace {

/// Quantizes a normalized weight bank; returns the threshold S (see header).
std::int32_t quantize_bank(const std::vector<float>& w_norm,
                           std::vector<std::int32_t>& out, int weight_bits) {
    float wmax = 0.0f;
    for (float v : w_norm) wmax = std::max(wmax, std::abs(v));
    if (wmax <= 0.0f) throw std::invalid_argument("quantize_bank: all-zero weights");
    const float hi = static_cast<float>((std::int64_t{1} << (weight_bits - 1)) - 1);
    const float scale = hi / wmax;
    out.resize(w_norm.size());
    for (std::size_t i = 0; i < w_norm.size(); ++i)
        out[i] = common::saturate_signed(
            static_cast<std::int64_t>(std::lround(w_norm[i] * scale)), weight_bits);
    return std::max<std::int32_t>(1, static_cast<std::int32_t>(std::lround(scale)));
}

}  // namespace

ConvertedStack convert_conv_stack(const ann::Model& model,
                                  const ann::PaperTopology& topo,
                                  const data::Dataset& calibration,
                                  float activation_percentile, int weight_bits) {
    const auto& layers = model.layers();
    if (layers.size() < 4)
        throw std::invalid_argument("convert_conv_stack: not a paper-topology model");
    const auto* conv1 = dynamic_cast<const ann::Conv2d*>(layers[0].get());
    const auto* conv2 = dynamic_cast<const ann::Conv2d*>(layers[2].get());
    if (conv1 == nullptr || conv2 == nullptr)
        throw std::invalid_argument("convert_conv_stack: layers 0/2 are not Conv2d");

    // ---- collect pre-ReLU activation samples -------------------------------
    std::vector<float> act1;
    std::vector<float> act2;
    for (const auto& s : calibration.samples) {
        const auto y1 =
            ann::conv2d_forward(s.image, conv1->weights(), conv1->bias(),
                                conv1->stride());
        for (float v : y1)
            if (v > 0.0f) act1.push_back(v);
        const auto y2 = ann::conv2d_forward(ann::relu_forward(y1), conv2->weights(),
                                            conv2->bias(), conv2->stride());
        for (float v : y2)
            if (v > 0.0f) act2.push_back(v);
    }
    // A layer that never activates on calibration data cannot be balanced.
    const float lambda1 = act1.empty() ? 1.0f : percentile(act1, activation_percentile);
    const float lambda2 = act2.empty() ? 1.0f : percentile(act2, activation_percentile);

    // ---- normalize ----------------------------------------------------------
    // Inputs are already in [0,1], so lambda_0 = 1.
    auto normalize = [](const common::Tensor& w, const common::Tensor& b,
                        float lambda_prev, float lambda, std::vector<float>& w_out,
                        std::vector<float>& b_out) {
        w_out.resize(w.size());
        for (std::size_t i = 0; i < w.size(); ++i)
            w_out[i] = w[i] * lambda_prev / lambda;
        b_out.resize(b.size());
        for (std::size_t i = 0; i < b.size(); ++i) b_out[i] = b[i] / lambda;
    };

    std::vector<float> w1n, b1n, w2n, b2n;
    normalize(conv1->weights(), conv1->bias(), 1.0f, lambda1, w1n, b1n);
    normalize(conv2->weights(), conv2->bias(), lambda1, lambda2, w2n, b2n);

    // ---- quantize -----------------------------------------------------------
    ConvertedStack out;
    out.conv1.spec = {topo.in_c, topo.in_h, topo.in_w,
                      topo.conv1_c, topo.conv1_k, topo.conv1_s};
    out.conv2.spec = {topo.conv1_c, topo.conv1_h(), topo.conv1_w(),
                      topo.conv2_c, topo.conv2_k, topo.conv2_s};
    out.conv1.lambda = lambda1;
    out.conv2.lambda = lambda2;

    out.conv1.vth = quantize_bank(w1n, out.conv1.weights, weight_bits);
    out.conv2.vth = quantize_bank(w2n, out.conv2.weights, weight_bits);

    auto expand_bias = [](const std::vector<float>& b_norm, const ConvSpec& spec,
                          std::int32_t vth) {
        std::vector<std::int32_t> bias(spec.out_size(), 0);
        const std::size_t per_channel = spec.out_h() * spec.out_w();
        for (std::size_t oc = 0; oc < spec.out_c; ++oc) {
            const auto b = static_cast<std::int32_t>(
                std::lround(b_norm[oc] * static_cast<float>(vth)));
            for (std::size_t i = 0; i < per_channel; ++i)
                bias[oc * per_channel + i] = b;
        }
        return bias;
    };
    out.conv1.bias = expand_bias(b1n, out.conv1.spec, out.conv1.vth);
    out.conv2.bias = expand_bias(b2n, out.conv2.spec, out.conv2.vth);
    return out;
}

}  // namespace neuro::snn
