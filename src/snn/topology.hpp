#pragma once
// Adjacency generation for dense and convolutional layers (paper Sec. III-C:
// "we first generate the adjacency matrices for the connectivity between
// adjacent layers (convolution and dense)").
//
// Loihi has no weight sharing: a convolution is laid down as an explicit
// synapse list, one entry per (output neuron, kernel tap), each carrying its
// own integer weight copied from the kernel. Neuron indexing is CHW-major,
// matching the flattening used by common::Tensor images.

#include <cstdint>
#include <functional>
#include <vector>

#include "loihi/chip.hpp"

namespace neuro::snn {

/// Geometry of one valid convolution layer (floor semantics, as ann::ops).
struct ConvSpec {
    std::size_t in_c = 1, in_h = 0, in_w = 0;
    std::size_t out_c = 1, kernel = 1, stride = 1;

    std::size_t out_h() const;
    std::size_t out_w() const;
    std::size_t in_size() const { return in_c * in_h * in_w; }
    std::size_t out_size() const { return out_c * out_h() * out_w(); }
    /// Fan-in of every output neuron (= synapses per neuron).
    std::size_t fan_in() const { return in_c * kernel * kernel; }
};

/// Visits every connection of the convolution: src and dst are CHW-flat
/// neuron indices, widx is the flat index into the {out_c, in_c, k, k}
/// kernel bank.
void for_each_conv_connection(
    const ConvSpec& spec,
    const std::function<void(std::size_t src, std::size_t dst, std::size_t widx)>& fn);

/// Expands the convolution into chip synapses using per-tap integer weights
/// (length out_c * in_c * k * k, kernel-bank order).
std::vector<loihi::Synapse> conv_synapses(const ConvSpec& spec,
                                          const std::vector<std::int32_t>& weights);

/// All-to-all synapses for a dense layer from a row-major {out, in} integer
/// weight matrix.
std::vector<loihi::Synapse> dense_synapses(std::size_t in, std::size_t out,
                                           const std::vector<std::int32_t>& weights);

/// One-to-one synapses (idx -> idx) with a constant weight; used to wire a
/// forward neuron to the aux compartment of its error twin (the h' gate).
std::vector<loihi::Synapse> identity_synapses(std::size_t n, std::int32_t weight);

}  // namespace neuro::snn
