#pragma once
// ANN -> SNN conversion of the pretrained convolutional feature stack
// (paper Sec. IV-A: "the convolutional layers are pretrained offline with
// their respective datasets before mapping on to Loihi").
//
// Method: data-based weight/threshold balancing (Diehl et al., IJCNN 2015).
// 1. Run calibration images through the float model; record a high
//    percentile of each conv layer's pre-ReLU activations (lambda_l).
// 2. Normalize: w_l' = w_l * lambda_{l-1} / lambda_l, b_l' = b_l / lambda_l,
//    so normalized activations lie in [0,1] and IF spike counts over T steps
//    approximate a * T.
// 3. Quantize to the chip: S_l = (2^{bits-1}-1) / max|w_l'|, weights
//    round(w' * S_l) as signed ints, threshold theta_l = round(S_l), and
//    per-neuron bias round(b' * S_l) (integrated every step, contributing
//    b' * T spikes over the window).

#include <cstdint>
#include <vector>

#include "ann/model.hpp"
#include "data/dataset.hpp"
#include "snn/topology.hpp"

namespace neuro::snn {

/// A conv layer ready to be laid onto the chip.
struct QuantizedConvLayer {
    ConvSpec spec;
    /// Kernel-bank-ordered integer weights {out_c, in_c, k, k} flattened.
    std::vector<std::int32_t> weights;
    /// Per-output-neuron bias (the channel bias replicated per position).
    std::vector<std::int32_t> bias;
    std::int32_t vth = 1;
    float lambda = 1.0f;  ///< activation scale this layer was normalized to
};

struct ConvertedStack {
    QuantizedConvLayer conv1;
    QuantizedConvLayer conv2;
};

/// Converts the first two conv layers of a paper-topology model. The model
/// must have the build_paper_model layout (conv, relu, conv, relu, ...).
/// `activation_percentile` in (0, 1]; 0.999 is the usual robust-max choice.
ConvertedStack convert_conv_stack(const ann::Model& model,
                                  const ann::PaperTopology& topo,
                                  const data::Dataset& calibration,
                                  float activation_percentile, int weight_bits);

/// Percentile of a sample vector (nearest-rank); exposed for tests.
float percentile(std::vector<float> values, float p);

}  // namespace neuro::snn
