#include "snn/deploy.hpp"

#include <cmath>
#include <stdexcept>

#include "ann/ops.hpp"
#include "common/fixed.hpp"
#include "data/encode.hpp"
#include "snn/topology.hpp"

namespace neuro::snn {

namespace {

/// Quantizes a normalized weight bank onto the signed grid; returns the
/// scale S (= IF threshold) that maps 1.0 to the top of the grid. Mirrors
/// convert.cpp's conv quantization so every layer shares the convention.
std::int32_t quantize_bank(const std::vector<float>& w_norm,
                           std::vector<std::int32_t>& out, int weight_bits) {
    float wmax = 0.0f;
    for (float v : w_norm) wmax = std::max(wmax, std::abs(v));
    if (wmax <= 0.0f) throw std::invalid_argument("quantize_bank: all-zero weights");
    const float hi = static_cast<float>((std::int64_t{1} << (weight_bits - 1)) - 1);
    const float scale = hi / wmax;
    out.resize(w_norm.size());
    for (std::size_t i = 0; i < w_norm.size(); ++i)
        out[i] = common::saturate_signed(
            static_cast<std::int64_t>(std::lround(w_norm[i] * scale)), weight_bits);
    return std::max<std::int32_t>(1, static_cast<std::int32_t>(std::lround(scale)));
}

QuantizedDenseLayer quantize_dense(const common::Tensor& w, const common::Tensor& b,
                                   float lambda_prev, float lambda,
                                   int weight_bits) {
    QuantizedDenseLayer q;
    q.out = w.dim(0);
    q.in = w.dim(1);
    q.lambda = lambda;
    std::vector<float> w_norm(w.size());
    for (std::size_t i = 0; i < w.size(); ++i)
        w_norm[i] = w[i] * lambda_prev / lambda;
    q.vth = quantize_bank(w_norm, q.weights, weight_bits);
    q.bias.resize(q.out);
    for (std::size_t o = 0; o < q.out; ++o)
        q.bias[o] = static_cast<std::int32_t>(
            std::lround(b[o] / lambda * static_cast<float>(q.vth)));
    return q;
}

}  // namespace

ConvertedModel convert_full_model(const ann::Model& model,
                                  const ann::PaperTopology& topo,
                                  const data::Dataset& calibration,
                                  float activation_percentile, int weight_bits) {
    const auto& layers = model.layers();
    if (layers.size() < 7)
        throw std::invalid_argument("convert_full_model: not a paper-topology model");
    const auto* fc1 = dynamic_cast<const ann::Dense*>(layers[4].get());
    const auto* fc2 = dynamic_cast<const ann::Dense*>(layers[6].get());
    if (fc1 == nullptr || fc2 == nullptr)
        throw std::invalid_argument("convert_full_model: layers 4/6 are not Dense");

    ConvertedModel out;
    out.stack = convert_conv_stack(model, topo, calibration,
                                   activation_percentile, weight_bits);

    // Continue the lambda chain through the dense head: collect pre-ReLU
    // fc1 activations and positive fc2 logits on the calibration set.
    const auto* conv1 = dynamic_cast<const ann::Conv2d*>(layers[0].get());
    const auto* conv2 = dynamic_cast<const ann::Conv2d*>(layers[2].get());
    std::vector<float> act3;
    std::vector<float> act4;
    for (const auto& s : calibration.samples) {
        auto a = ann::relu_forward(ann::conv2d_forward(
            s.image, conv1->weights(), conv1->bias(), conv1->stride()));
        a = ann::relu_forward(ann::conv2d_forward(a, conv2->weights(),
                                                  conv2->bias(), conv2->stride()));
        const auto z3 = ann::dense_forward(a, fc1->weights(), fc1->bias());
        for (float v : z3)
            if (v > 0.0f) act3.push_back(v);
        const auto z4 =
            ann::dense_forward(ann::relu_forward(z3), fc2->weights(), fc2->bias());
        for (float v : z4)
            if (v > 0.0f) act4.push_back(v);
    }
    const float lambda3 =
        act3.empty() ? 1.0f : percentile(act3, activation_percentile);
    const float lambda4 =
        act4.empty() ? 1.0f : percentile(act4, activation_percentile);

    out.fc1 = quantize_dense(fc1->weights(), fc1->bias(), out.stack.conv2.lambda,
                             lambda3, weight_bits);
    out.fc2 = quantize_dense(fc2->weights(), fc2->bias(), lambda3, lambda4,
                             weight_bits);
    return out;
}

ConvertedNetwork::ConvertedNetwork(const ConvertedModel& model,
                                   const ann::PaperTopology& topo,
                                   std::int32_t phase_length,
                                   loihi::ChipLimits limits)
    : chip_(limits),
      phase_length_(phase_length),
      input_size_(topo.in_c * topo.in_h * topo.in_w) {
    if (model.fc1.in != topo.feature_size() || model.fc2.in != model.fc1.out)
        throw std::invalid_argument("ConvertedNetwork: model/topology mismatch");
    if (phase_length_ < 1)
        throw std::invalid_argument("ConvertedNetwork: phase_length < 1");

    // All populations use the paper IF configuration: perfect integrator
    // with instant current decay, soft reset, floored at zero (ReLU).
    auto if_cfg = [](std::int32_t vth) {
        loihi::CompartmentConfig c;
        c.decay_u = 4096;
        c.decay_v = 0;
        c.vth = vth;
        c.soft_reset = true;
        c.floor_at_zero = true;
        return c;
    };

    loihi::PopulationConfig pc;
    pc.name = "input";
    pc.size = input_size_;
    pc.compartment = if_cfg(phase_length_);
    input_ = chip_.add_population(pc);

    pc.name = "conv1";
    pc.size = model.stack.conv1.spec.out_size();
    pc.compartment = if_cfg(model.stack.conv1.vth);
    conv1_ = chip_.add_population(pc);

    pc.name = "conv2";
    pc.size = model.stack.conv2.spec.out_size();
    pc.compartment = if_cfg(model.stack.conv2.vth);
    conv2_ = chip_.add_population(pc);

    pc.name = "fc1";
    pc.size = model.fc1.out;
    pc.compartment = if_cfg(model.fc1.vth);
    fc1_ = chip_.add_population(pc);

    pc.name = "fc2";
    pc.size = model.fc2.out;
    pc.compartment = if_cfg(model.fc2.vth);
    fc2_ = chip_.add_population(pc);

    auto connect = [&](loihi::PopulationId src, loihi::PopulationId dst,
                       std::vector<loihi::Synapse> syns, const char* name) {
        loihi::ProjectionConfig cfg;
        cfg.name = name;
        cfg.src = src;
        cfg.dst = dst;
        chip_.add_projection(cfg, std::move(syns));
    };
    connect(input_, conv1_,
            conv_synapses(model.stack.conv1.spec, model.stack.conv1.weights),
            "conv1");
    connect(conv1_, conv2_,
            conv_synapses(model.stack.conv2.spec, model.stack.conv2.weights),
            "conv2");
    connect(conv2_, fc1_,
            dense_synapses(model.fc1.in, model.fc1.out, model.fc1.weights), "fc1");
    connect(fc1_, fc2_,
            dense_synapses(model.fc2.in, model.fc2.out, model.fc2.weights), "fc2");

    chip_.set_bias(conv1_, model.stack.conv1.bias);
    chip_.set_bias(conv2_, model.stack.conv2.bias);
    chip_.set_bias(fc1_, model.fc1.bias);
    chip_.set_bias(fc2_, model.fc2.bias);

    chip_.finalize();
    chip_.reset_activity();
}

std::vector<std::int32_t> ConvertedNetwork::output_counts(
    const common::Tensor& image) {
    if (image.size() != input_size_)
        throw std::invalid_argument("ConvertedNetwork: image size mismatch");
    // Per-sample reset clears membranes and counters; the programmed layer
    // biases are not dynamic state and persist.
    chip_.reset_dynamic_state();
    chip_.set_bias(input_, data::quantize_to_bias(image, phase_length_));
    chip_.run(static_cast<std::size_t>(phase_length_));
    return chip_.spike_counts(fc2_, loihi::Phase::One);
}

std::size_t ConvertedNetwork::predict(const common::Tensor& image) {
    const auto counts = output_counts(image);
    std::size_t best = 0;
    std::int64_t best_v = chip_.membrane(fc2_, 0);
    for (std::size_t j = 1; j < counts.size(); ++j) {
        const std::int64_t vj = chip_.membrane(fc2_, j);
        if (counts[j] > counts[best] || (counts[j] == counts[best] && vj > best_v)) {
            best = j;
            best_v = vj;
        }
    }
    return best;
}

}  // namespace neuro::snn
