#pragma once
// Full ANN -> SNN conversion and inference-only chip deployment — the
// baseline family the paper's introduction contrasts in-hardware learning
// against: "A common approach is to train an ANN and convert it into SNN
// [4], [5], however, this requires the training to be performed offline."
//
// convert_full_model() extends the Diehl-style weight/threshold balancing of
// snn/convert.hpp through the dense head (conv1 -> conv2 -> fc1 -> fc2), and
// ConvertedNetwork lays the result onto the simulated chip as a pure
// feed-forward IF network: no error path, no plasticity, input by bias
// programming. The conversion baseline is strong at matched precision — its
// weakness, demonstrated in bench/baseline_ann_conversion, is that it cannot
// adapt after deployment: any device variation or data drift is permanent.

#include <cstdint>
#include <vector>

#include "common/tensor.hpp"
#include "loihi/chip.hpp"
#include "snn/convert.hpp"

namespace neuro::snn {

/// A dense layer balanced and quantized for the chip.
struct QuantizedDenseLayer {
    std::size_t in = 0;
    std::size_t out = 0;
    /// Row-major {out, in} integer weights.
    std::vector<std::int32_t> weights;
    /// Per-output-neuron integrated bias.
    std::vector<std::int32_t> bias;
    std::int32_t vth = 1;
    float lambda = 1.0f;  ///< activation scale this layer was normalized to
};

/// The whole paper-topology model, ready for inference-only deployment.
struct ConvertedModel {
    ConvertedStack stack;
    QuantizedDenseLayer fc1;
    QuantizedDenseLayer fc2;
};

/// Balances and quantizes all four parameter layers of a paper-topology
/// model (see convert_conv_stack for the method; the dense layers continue
/// the same lambda chain, the logit layer is normalized by the percentile of
/// its positive pre-activations).
ConvertedModel convert_full_model(const ann::Model& model,
                                  const ann::PaperTopology& topo,
                                  const data::Dataset& calibration,
                                  float activation_percentile, int weight_bits);

/// Inference-only deployment of a converted model on the simulated chip.
class ConvertedNetwork {
public:
    /// `phase_length` is the rate-code window T; larger T = finer rates.
    ConvertedNetwork(const ConvertedModel& model, const ann::PaperTopology& topo,
                     std::int32_t phase_length,
                     loihi::ChipLimits limits = {});

    /// Argmax class over output spike counts (membranes break ties).
    std::size_t predict(const common::Tensor& image);

    /// Output spike counts for one image (phase-1-style single window).
    std::vector<std::int32_t> output_counts(const common::Tensor& image);

    loihi::Chip& chip() { return chip_; }
    const loihi::Chip& chip() const { return chip_; }
    std::int32_t phase_length() const { return phase_length_; }

    /// The dense-head populations {fc1, fc2} — the populations the EMSTDP
    /// network trains; exposed so fault-injection comparisons can degrade
    /// both deployments identically.
    std::vector<loihi::PopulationId> head_populations() const {
        return {fc1_, fc2_};
    }
    /// All forward populations in order {input, conv1, conv2, fc1, fc2}.
    std::vector<loihi::PopulationId> layer_populations() const {
        return {input_, conv1_, conv2_, fc1_, fc2_};
    }

private:
    loihi::Chip chip_;
    std::int32_t phase_length_;
    std::size_t input_size_;
    loihi::PopulationId input_ = 0, conv1_ = 0, conv2_ = 0, fc1_ = 0, fc2_ = 0;
};

}  // namespace neuro::snn
