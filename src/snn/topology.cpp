#include "snn/topology.hpp"

#include <stdexcept>

#include "ann/ops.hpp"

namespace neuro::snn {

std::size_t ConvSpec::out_h() const { return ann::conv_out_dim(in_h, kernel, stride); }
std::size_t ConvSpec::out_w() const { return ann::conv_out_dim(in_w, kernel, stride); }

void for_each_conv_connection(
    const ConvSpec& spec,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
    const std::size_t oh = spec.out_h();
    const std::size_t ow = spec.out_w();
    for (std::size_t oc = 0; oc < spec.out_c; ++oc) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
            for (std::size_t ox = 0; ox < ow; ++ox) {
                const std::size_t dst = (oc * oh + oy) * ow + ox;
                for (std::size_t ic = 0; ic < spec.in_c; ++ic) {
                    for (std::size_t ky = 0; ky < spec.kernel; ++ky) {
                        const std::size_t iy = oy * spec.stride + ky;
                        for (std::size_t kx = 0; kx < spec.kernel; ++kx) {
                            const std::size_t ix = ox * spec.stride + kx;
                            const std::size_t src = (ic * spec.in_h + iy) * spec.in_w + ix;
                            const std::size_t widx =
                                ((oc * spec.in_c + ic) * spec.kernel + ky) * spec.kernel +
                                kx;
                            fn(src, dst, widx);
                        }
                    }
                }
            }
        }
    }
}

std::vector<loihi::Synapse> conv_synapses(const ConvSpec& spec,
                                          const std::vector<std::int32_t>& weights) {
    const std::size_t bank = spec.out_c * spec.in_c * spec.kernel * spec.kernel;
    if (weights.size() != bank)
        throw std::invalid_argument("conv_synapses: weight bank size mismatch");
    std::vector<loihi::Synapse> syns;
    syns.reserve(spec.out_size() * spec.fan_in());
    for_each_conv_connection(spec, [&](std::size_t src, std::size_t dst,
                                       std::size_t widx) {
        loihi::Synapse s;
        s.src = static_cast<std::uint32_t>(src);
        s.dst = static_cast<std::uint32_t>(dst);
        s.weight = weights[widx];
        syns.push_back(s);
    });
    return syns;
}

std::vector<loihi::Synapse> dense_synapses(std::size_t in, std::size_t out,
                                           const std::vector<std::int32_t>& weights) {
    if (weights.size() != in * out)
        throw std::invalid_argument("dense_synapses: weight matrix size mismatch");
    std::vector<loihi::Synapse> syns;
    syns.reserve(in * out);
    for (std::size_t o = 0; o < out; ++o) {
        for (std::size_t i = 0; i < in; ++i) {
            loihi::Synapse s;
            s.src = static_cast<std::uint32_t>(i);
            s.dst = static_cast<std::uint32_t>(o);
            s.weight = weights[o * in + i];
            syns.push_back(s);
        }
    }
    return syns;
}

std::vector<loihi::Synapse> identity_synapses(std::size_t n, std::int32_t weight) {
    std::vector<loihi::Synapse> syns;
    syns.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        loihi::Synapse s;
        s.src = static_cast<std::uint32_t>(i);
        s.dst = static_cast<std::uint32_t>(i);
        s.weight = weight;
        syns.push_back(s);
    }
    return syns;
}

}  // namespace neuro::snn
