#pragma once
// neuro::netd wire protocol — the compact length-prefixed binary framing
// between a client and the neurod daemon (docs/ARCHITECTURE.md §11).
//
// This layer is PURE: encode() produces bytes, Decoder consumes bytes fed
// in arbitrary chunks (partial reads, coalesced reads, byte-at-a-time) and
// yields whole frames or a typed decode error — no sockets, no clocks, no
// allocation surprises. tests/netd_protocol_test.cpp pins framing, field
// fidelity and malformed-input rejection deterministically against this
// surface alone; the daemon and every client (bench, example, tests) share
// it, so both directions of the wire are one implementation.
//
// All integers are little-endian. A frame is a u32 body length followed by
// the body; the decoder enforces a configurable body-size ceiling so a
// hostile length prefix can never drive allocation.
//
// Three body versions coexist on the same stream, negotiated PER FRAME by
// the leading version byte (docs/ARCHITECTURE.md §12, §14). v2 adds exactly
// one field to each direction — the model name addressing a fleet entry;
// v3 adds a flags byte to the request and a trace-span block to the
// response (per-request tracing, docs/ARCHITECTURE.md §14):
//
//   request body (v1 | v2 | v3)         response body (v1 | v2 | v3)
//   ---------------------------         ----------------------------
//   u8  version (1, 2 or 3)             u8  version (echoes the request's)
//   u8  kind (Predict|Counts|Feedback)  u8  status (Ok|Rejected|Error)
//   u8  priority (serve::Priority)      u8  reject_reason (serve::RejectReason)
//   u8  reserved (= 0)                  u8  priority
//   u64 request_id (echoed verbatim)    u64 request_id
//   u64 deadline_us (relative; 0=none)  [v2] u8 model_len, u8 model[model_len]
//   u32 label (Feedback only)           u32 label
//   [v2] u8 model_len,                  u64 latency_us
//        u8 model[model_len]            u64 sojourn_us
//   [v3] u8 flags (bit0 = want trace;   u32 batch_size
//        other bits reserved, = 0)      u32 ncounts, i32 counts[ncounts]
//   u8  rank (1..kMaxRank)              u32 error_len, u8 error[error_len]
//   u32 dims[rank]                      [v3] u8 nspans,
//   f32 data[prod(dims)]                     (u8 span_id, u64 value)[nspans]
//
// The v3 trace block is empty (nspans = 0) unless the request set the
// trace flag; span ids are obs::SpanId values (1..7), each at most once.
//
// Negotiation table (server side):
//   frame version | model field | routed to
//   ------------- | ----------- | -------------------------------------
//   1             | absent      | default model; v1 response (byte-
//                 |             | identical to the pre-router daemon)
//   2             | empty       | default model; v2 response echoes ""
//   2             | "name"      | fleet entry "name"; v2 response echoes
//                 |             | it (unknown names reject with
//                 |             | serve::RejectReason::UnknownModel)
//   3             | as v2       | as v2; flags bit0 additionally requests
//                 |             | a span echo in the v3 response
//   other         | —           | DecodeError::BadVersion, socket closed
//
// A declared model_len that overruns the body (or exceeds kMaxModelName)
// poisons the decoder exactly like an oversized tensor shape: framing is
// untrustworthy, so the daemon closes the connection.
//
// The admission metadata (priority class + relative deadline) travels in
// the request header end-to-end into serve::AdmissionQueue; the response
// echoes the request id (responses may arrive out of order — the daemon
// writes each back the moment its completion callback fires) plus the
// server-side disposition: status, reject reason, measured latency and
// queue sojourn, and the micro-batch size it dispatched in.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace neuro::netd {

/// v1: the original single-model framing. Still fully supported — a v1
/// client against a router-backed daemon behaves byte-identically.
inline constexpr std::uint8_t kProtocolVersion = 1;
/// v2: adds the model-name field (multi-model routing).
inline constexpr std::uint8_t kProtocolVersionV2 = 2;
/// v3: adds the request flags byte and the response trace-span block.
inline constexpr std::uint8_t kProtocolVersionV3 = 3;
/// RequestFrame::flags bit asking the daemon to trace this request and
/// echo its span breakdown in the response (obs::TraceContext).
inline constexpr std::uint8_t kFlagTrace = 0x01;
/// Default ceiling on a frame body; a 1 MiB body fits a ~256k-element
/// tensor, far beyond any model this system serves.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 1u << 20;
inline constexpr std::size_t kMaxRank = 4;
/// Ceiling on the v2 model-name field (matches the router's name rules).
inline constexpr std::size_t kMaxModelName = 64;

/// What a request frame asks for. Predict/Counts mirror Server::submit /
/// submit_counts; Feedback carries a labeled sample for the online learner
/// (Server::submit_feedback) and is answered with Ok (accepted) or
/// Rejected{QueueFull} (feedback is best-effort by contract).
enum class MsgKind : std::uint8_t { Predict = 0, Counts = 1, Feedback = 2 };

/// Response disposition; numerically aligned with serve::Status.
enum class WireStatus : std::uint8_t { Ok = 0, Rejected = 1, Error = 2 };

/// Why a Decoder rejected input. Any decode error is fatal for the
/// connection: framing is lost, so the daemon closes the socket.
enum class DecodeError : std::uint8_t {
    None = 0,
    BadVersion,   ///< version byte is not a known protocol version
    BadKind,      ///< unknown MsgKind / WireStatus
    BadPriority,  ///< priority byte outside serve::Priority
    BadShape,     ///< rank/dims inconsistent with the body length
    Oversized,    ///< length prefix above the decoder's ceiling
    Malformed,    ///< body too short / trailing garbage / reserved != 0
    BadModel,     ///< v2 model_len overruns the body or kMaxModelName
};

const char* to_string(DecodeError e);

struct RequestFrame {
    std::uint8_t version = kProtocolVersion;
    MsgKind kind = MsgKind::Predict;
    std::uint8_t priority = 0;      ///< serve::Priority numeric value
    std::uint64_t request_id = 0;   ///< client-chosen, echoed in the response
    std::uint64_t deadline_us = 0;  ///< SLO relative to acceptance; 0 = none
    std::uint32_t label = 0;        ///< Feedback frames only
    /// v2: fleet entry to serve this request ("" = default model). Encoding
    /// a non-empty name requires version >= 2 (encode() throws otherwise).
    std::string model;
    /// v3: request flags (kFlagTrace). Nonzero flags require version >= 3
    /// (encode() throws otherwise); undefined bits are rejected on decode.
    std::uint8_t flags = 0;
    std::vector<std::uint32_t> shape;  ///< tensor dims, rank 1..kMaxRank
    std::vector<float> data;           ///< row-major payload, size = prod(shape)
};

/// One (span id, value) pair of a v3 response's trace block. The id is an
/// obs::SpanId (1..7); values are microseconds except the kernel spans,
/// which are nanoseconds.
struct WireSpan {
    std::uint8_t id = 0;
    std::uint64_t value = 0;
};

struct ResponseFrame {
    std::uint8_t version = kProtocolVersion;
    WireStatus status = WireStatus::Rejected;
    std::uint8_t reject_reason = 0;  ///< serve::RejectReason numeric value
    std::uint8_t priority = 0;
    std::uint64_t request_id = 0;
    /// v2: echoes the request's model field so one connection can demux
    /// responses across models without tracking ids itself.
    std::string model;
    std::uint32_t label = 0;
    std::uint64_t latency_us = 0;
    std::uint64_t sojourn_us = 0;
    std::uint32_t batch_size = 0;
    std::vector<std::int32_t> counts;  ///< filled for Counts requests
    std::string error;                 ///< exception text when status == Error
    /// v3: span breakdown, nonempty only when the request asked to trace.
    /// Encoding a nonempty block requires version >= 3 (encode() throws).
    std::vector<WireSpan> trace;
};

/// Serializes a frame, length prefix included. Throws std::invalid_argument
/// when the frame is self-inconsistent (shape/data mismatch, rank out of
/// range) — an encoder must never emit bytes its own decoder rejects.
std::vector<std::uint8_t> encode(const RequestFrame& f);
std::vector<std::uint8_t> encode(const ResponseFrame& f);

/// Incremental frame extractor. feed() any byte chunks as they arrive;
/// next_request()/next_response() then yields:
///   Result::Frame    — `out` holds one whole decoded frame,
///   Result::NeedMore — nothing complete buffered yet,
///   Result::Error    — the stream is invalid; error() says why and the
///                      decoder is poisoned (every further call errors) —
///                      framing cannot be recovered, close the connection.
/// One Decoder decodes one direction of one stream (requests on the server
/// side, responses on the client side).
class Decoder {
public:
    enum class Result { Frame, NeedMore, Error };

    explicit Decoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
        : max_frame_(max_frame_bytes) {}

    void feed(const std::uint8_t* data, std::size_t n);

    Result next_request(RequestFrame& out);
    Result next_response(ResponseFrame& out);

    DecodeError error() const { return error_; }
    /// Bytes buffered but not yet consumed by a decoded frame.
    std::size_t buffered() const { return buf_.size() - pos_; }

private:
    /// Locates the next whole frame body; returns NeedMore/Error or Frame
    /// with [*begin, *begin + *len) valid until the next feed().
    Result next_body(const std::uint8_t** begin, std::size_t* len);
    void consume(std::size_t frame_total);
    Result fail(DecodeError e) {
        error_ = e;
        return Result::Error;
    }

    std::size_t max_frame_;
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;  ///< consumed prefix of buf_
    DecodeError error_ = DecodeError::None;
};

}  // namespace neuro::netd
