#include "netd/daemon.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/json.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "serve/request.hpp"

namespace neuro::netd {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error("netd: " + what + ": " + std::strerror(errno));
}

std::uint64_t us_u64(double us) {
    return us <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(us));
}

/// InferenceResult → wire response. The echoed version / model / request
/// id / priority come from the request frame; everything else is the
/// server's disposition. A v1 request gets a v1 response (no model field —
/// byte-identical to the pre-router daemon); a v2 request's response
/// echoes its model so one connection can demux across the fleet; a v3
/// request that asked to trace gets its span breakdown back.
ResponseFrame to_response(std::uint8_t version, const std::string& model,
                          std::uint64_t request_id,
                          const serve::InferenceResult& r) {
    ResponseFrame out;
    out.version = version;
    if (version >= kProtocolVersionV2) out.model = model;
    if (version >= kProtocolVersionV3 && r.trace.enabled) {
        const obs::TraceContext& t = r.trace;
        out.trace = {
            {static_cast<std::uint8_t>(obs::SpanId::QueueUs), t.queue_us()},
            {static_cast<std::uint8_t>(obs::SpanId::BatchUs), t.batch_us()},
            {static_cast<std::uint8_t>(obs::SpanId::ComputeUs),
             t.compute_us()},
            {static_cast<std::uint8_t>(obs::SpanId::ResolveUs),
             t.resolve_us()},
            {static_cast<std::uint8_t>(obs::SpanId::KernelSweepNs),
             t.kernel_sweep_ns},
            {static_cast<std::uint8_t>(obs::SpanId::KernelAccumNs),
             t.kernel_accum_ns},
            {static_cast<std::uint8_t>(obs::SpanId::TotalUs), t.total_us()},
        };
    }
    switch (r.status) {
        case serve::Status::Ok: out.status = WireStatus::Ok; break;
        case serve::Status::Rejected: out.status = WireStatus::Rejected; break;
        case serve::Status::Error: out.status = WireStatus::Error; break;
    }
    out.reject_reason = static_cast<std::uint8_t>(r.reject);
    out.priority = static_cast<std::uint8_t>(r.priority);
    out.request_id = request_id;
    out.label = static_cast<std::uint32_t>(r.label);
    out.latency_us = us_u64(r.latency_us);
    out.sojourn_us = us_u64(r.sojourn_us);
    out.batch_size = static_cast<std::uint32_t>(r.batch_size);
    out.counts = r.counts;
    out.error = r.error;
    return out;
}

/// One fleet entry as the control plane's JSON (the `models` array and the
/// per-model `stats <name>` reply share this schema).
std::string entry_json(const serve::ModelEntryStats& s) {
    return common::JsonObject()
        .add("name", s.name)
        .add("resident", s.resident)
        .add("pinned", s.pinned)
        .add("base_version", s.base_version)
        .add("canary_version", s.canary_version)
        .add("canary_pct", static_cast<std::uint64_t>(s.canary_pct))
        .add("base_dispatched", s.base_dispatched)
        .add("base_ok", s.base_ok)
        .add("base_errors", s.base_errors)
        .add("canary_dispatched", s.canary_dispatched)
        .add("canary_ok", s.canary_ok)
        .add("canary_errors", s.canary_errors)
        .add("loads", s.loads)
        .add("evictions", s.evictions)
        .add("weight_bytes", static_cast<std::uint64_t>(s.weight_bytes))
        .add("last_used", s.last_used)
        .add("inflight", s.inflight)
        .add("codel_dropped", s.codel_dropped)
        .add("deadline_dropped", s.deadline_dropped)
        .add("latency_count", s.latency_count)
        .add("p50_us", s.p50_us)
        .add("p95_us", s.p95_us)
        .add("p99_us", s.p99_us)
        .add("mean_us", s.mean_us)
        .add("max_us", s.max_us)
        .str();
}

/// True when `tok` belongs to the legacy default-model grammar (`load
/// <version>|latest`): model names must start with a letter and "latest"
/// is reserved, so the two command forms never collide.
bool is_version_token(const std::string& tok) {
    if (tok == "latest") return true;
    if (tok.empty()) return false;
    for (const char c : tok)
        if (c < '0' || c > '9') return false;
    return true;
}

}  // namespace

Daemon::Daemon(std::shared_ptr<serve::ModelRouter> router,
               DaemonOptions options,
               std::shared_ptr<online::ModelRegistry> registry)
    : router_(std::move(router)),
      options_(std::move(options)),
      registry_(std::move(registry)) {
    if (!router_) throw std::invalid_argument("netd: null router");
    model_ = router_->default_model();
    validate_config();
    if (options_.metrics)
        options_.metrics->add_collector(
            [this](std::string& out) { collect_metrics(out); });
}

Daemon::Daemon(std::shared_ptr<serve::Server> server,
               std::shared_ptr<const runtime::CompiledModel> model,
               DaemonOptions options,
               std::shared_ptr<online::ModelRegistry> registry)
    : router_(server ? server->router() : nullptr),
      model_(std::move(model)),
      options_(std::move(options)),
      registry_(std::move(registry)) {
    if (!router_) throw std::invalid_argument("netd: null server");
    if (!model_) throw std::invalid_argument("netd: null model");
    validate_config();
    if (options_.metrics)
        options_.metrics->add_collector(
            [this](std::string& out) { collect_metrics(out); });
}

void Daemon::validate_config() const {
    if (router_->options().backpressure != serve::Backpressure::Shed)
        throw std::invalid_argument(
            "netd: the daemon requires Backpressure::Shed — Block would "
            "park the event loop on a full queue");
    if (options_.data_path.empty() && options_.tcp_port == 0)
        throw std::invalid_argument("netd: no data listener configured");
}

Daemon::~Daemon() {
    // Worker completion callbacks hold ConnPtrs plus `this` (dirty list,
    // eventfd). The serving engine guarantees every accepted request
    // resolves, so this wait is bounded by the server's own drain.
    while (inflight_.load() != 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    for (const auto& [fd, conn] : conns_) {
        std::lock_guard<std::mutex> lk(conn->m);
        conn->closed = true;
        ::close(fd);
    }
    for (const auto& [fd, control] : listeners_) ::close(fd);
    if (!options_.data_path.empty()) ::unlink(options_.data_path.c_str());
    if (!options_.control_path.empty())
        ::unlink(options_.control_path.c_str());
}

// ---- listeners -------------------------------------------------------------

int Daemon::listen_unix(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw std::invalid_argument("netd: socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd =
        ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket(unix)");
    ::unlink(path.c_str());  // replace a stale socket file from a prior run
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        ::close(fd);
        throw_errno("bind " + path);
    }
    if (::listen(fd, 128) != 0) {
        ::close(fd);
        throw_errno("listen " + path);
    }
    return fd;
}

int Daemon::listen_tcp(std::uint16_t port) {
    const int fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket(tcp)");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        ::close(fd);
        throw_errno("bind 127.0.0.1:" + std::to_string(port));
    }
    if (::listen(fd, 128) != 0) {
        ::close(fd);
        throw_errno("listen tcp");
    }
    return fd;
}

void Daemon::setup_listeners() {
    if (!options_.data_path.empty())
        listeners_.emplace_back(listen_unix(options_.data_path), false);
    if (options_.tcp_port != 0)
        listeners_.emplace_back(listen_tcp(options_.tcp_port), false);
    if (!options_.control_path.empty())
        listeners_.emplace_back(listen_unix(options_.control_path), true);
    for (const auto& [fd, control] : listeners_) {
        const bool is_control = control;
        const int lfd = fd;
        loop_.add(lfd, EPOLLIN,
                  [this, lfd, is_control](std::uint32_t) {
                      on_accept(lfd, is_control);
                  });
    }
}

void Daemon::on_accept(int listen_fd, bool control) {
    for (;;) {
        const int fd =
            ::accept4(listen_fd, nullptr, nullptr,
                      SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR || errno == ECONNABORTED) continue;
            return;  // EMFILE and friends: drop this readiness round
        }
        auto conn = std::make_shared<Connection>(options_.max_frame_bytes);
        conn->fd = fd;
        conn->control = control;
        conns_[fd] = conn;
        totals_.connections_accepted.fetch_add(1);
        totals_.connections_open.fetch_add(1);
        loop_.add(fd, EPOLLIN, [this, conn](std::uint32_t events) {
            on_conn_event(conn, events);
        });
    }
}

// ---- connection event plumbing ---------------------------------------------

void Daemon::on_conn_event(const ConnPtr& conn, std::uint32_t events) {
    if (events & (EPOLLHUP | EPOLLERR)) {
        close_connection(conn);
        return;
    }
    if (events & EPOLLIN) on_readable(conn);
    if ((events & EPOLLOUT) && conn->fd >= 0) on_writable(conn);
}

void Daemon::on_readable(const ConnPtr& conn) {
    std::uint8_t buf[64 * 1024];
    // Level-triggered: read a bounded amount per round and let epoll call
    // us again, so one firehose client cannot starve the other fds.
    for (int round = 0; round < 4; ++round) {
        const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
        if (n == 0) {  // peer closed; in-flight responses are discarded
            close_connection(conn);
            return;
        }
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            close_connection(conn);
            return;
        }
        conn->counters.bytes_in += static_cast<std::uint64_t>(n);
        totals_.bytes_in.fetch_add(static_cast<std::uint64_t>(n));

        if (conn->control) {
            conn->line_buf.append(reinterpret_cast<const char*>(buf),
                                  static_cast<std::size_t>(n));
            // An unterminated flood has no frame ceiling to bound it — cap
            // the line buffer like a frame.
            if (conn->line_buf.size() > options_.max_frame_bytes) {
                totals_.malformed_closed.fetch_add(1);
                record_conn_error(conn->fd, "control-flood");
                close_connection(conn);
                return;
            }
            std::size_t nl;
            while ((nl = conn->line_buf.find('\n')) != std::string::npos) {
                std::string line = conn->line_buf.substr(0, nl);
                conn->line_buf.erase(0, nl + 1);
                if (!line.empty() && line.back() == '\r') line.pop_back();
                handle_control_line(conn, line);
                if (conn->fd < 0) return;  // command closed the connection
            }
        } else {
            conn->decoder.feed(buf, static_cast<std::size_t>(n));
            RequestFrame f;
            for (;;) {
                const Decoder::Result r = conn->decoder.next_request(f);
                if (r == Decoder::Result::NeedMore) break;
                if (r == Decoder::Result::Error) {
                    // Framing is lost; no reply is possible on a stream we
                    // can no longer delimit. Count it and sever.
                    totals_.malformed_closed.fetch_add(1);
                    record_conn_error(conn->fd,
                                      to_string(conn->decoder.error()));
                    close_connection(conn);
                    return;
                }
                conn->counters.frames_in++;
                totals_.frames_in.fetch_add(1);
                handle_request(conn, std::move(f));
                if (conn->fd < 0) return;
            }
        }
        if (static_cast<std::size_t>(n) < sizeof(buf)) break;
    }
    update_read_interest(conn);
}

void Daemon::on_writable(const ConnPtr& conn) {
    flush_conn(conn);
    if (conn->fd >= 0) update_read_interest(conn);
}

void Daemon::on_wake() {
    std::vector<ConnPtr> dirty;
    {
        std::lock_guard<std::mutex> lk(dirty_m_);
        dirty.swap(dirty_);
    }
    for (const ConnPtr& conn : dirty) {
        if (conn->fd < 0) continue;
        flush_conn(conn);
        if (conn->fd >= 0) update_read_interest(conn);
    }
    on_tick();  // a wake is also the drain-progress signal
}

void Daemon::on_tick() {
    if ((drain_requested_.load() || shutdown_requested_.load()) && !draining_)
        begin_drain();
    if (draining_) check_drain_progress();
}

// ---- write path ------------------------------------------------------------

void Daemon::deliver(const ConnPtr& conn, std::vector<std::uint8_t> bytes) {
    // Worker-thread side of the writeback: queue the encoded response and
    // wake the loop. A closed connection still reaches here (mid-flight
    // disconnect) — the bytes are dropped but the in-flight accounting and
    // the wakeup still happen, so a drain never stalls on a dead client.
    {
        std::lock_guard<std::mutex> lk(conn->m);
        if (!conn->closed) {
            conn->pending_bytes += bytes.size();
            conn->pending.push_back(std::move(bytes));
        }
    }
    conn->inflight.fetch_sub(1);
    inflight_.fetch_sub(1);
    {
        std::lock_guard<std::mutex> lk(dirty_m_);
        dirty_.push_back(conn);
    }
    loop_.wakeup();
}

void Daemon::append_out(const ConnPtr& conn, const std::uint8_t* data,
                        std::size_t n) {
    conn->outbuf.insert(conn->outbuf.end(), data, data + n);
    flush_conn(conn);
}

void Daemon::flush_conn(const ConnPtr& conn) {
    // Pull worker-delivered responses into the loop-owned buffer first.
    {
        std::lock_guard<std::mutex> lk(conn->m);
        while (!conn->pending.empty()) {
            auto& b = conn->pending.front();
            conn->outbuf.insert(conn->outbuf.end(), b.begin(), b.end());
            conn->counters.responses_out++;
            totals_.responses_out.fetch_add(1);
            conn->pending.pop_front();
        }
        conn->pending_bytes = 0;
    }
    while (conn->out_off < conn->outbuf.size()) {
        const ssize_t n =
            ::send(conn->fd, conn->outbuf.data() + conn->out_off,
                   conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            close_connection(conn);  // EPIPE/ECONNRESET: peer is gone
            return;
        }
        conn->out_off += static_cast<std::size_t>(n);
        conn->counters.bytes_out += static_cast<std::uint64_t>(n);
        totals_.bytes_out.fetch_add(static_cast<std::uint64_t>(n));
    }
    const bool blocked = conn->out_off < conn->outbuf.size();
    if (!blocked) {
        conn->outbuf.clear();
        conn->out_off = 0;
    } else if (conn->out_off > (1u << 16)) {
        conn->outbuf.erase(
            conn->outbuf.begin(),
            conn->outbuf.begin() + static_cast<std::ptrdiff_t>(conn->out_off));
        conn->out_off = 0;
    }
    if (blocked != conn->want_write) {
        conn->want_write = blocked;
        update_read_interest(conn);
    }
}

std::size_t Daemon::unflushed_bytes(const ConnPtr& conn) {
    std::size_t pending;
    {
        std::lock_guard<std::mutex> lk(conn->m);
        pending = conn->pending_bytes;
    }
    return pending + (conn->outbuf.size() - conn->out_off);
}

void Daemon::update_read_interest(const ConnPtr& conn) {
    if (conn->fd < 0) return;
    bool pause = draining_ && !conn->control;
    if (!pause) {
        const std::size_t backlog = unflushed_bytes(conn);
        const std::size_t inflight = conn->inflight.load();
        if (conn->paused)
            // Hysteresis: resume only once both pressures halve, so a
            // client at the edge does not flap the interest mask.
            pause = backlog > options_.write_buffer_limit / 2 ||
                    inflight > options_.max_inflight_per_conn / 2;
        else
            pause = backlog > options_.write_buffer_limit ||
                    inflight >= options_.max_inflight_per_conn;
    }
    if (pause && !conn->paused) totals_.backpressure_pauses.fetch_add(1);
    conn->paused = pause;
    const std::uint32_t events = (pause ? 0u : static_cast<std::uint32_t>(
                                                   EPOLLIN)) |
                                 (conn->want_write ? EPOLLOUT : 0u);
    loop_.modify(conn->fd, events);
}

void Daemon::close_connection(ConnPtr conn) {  // NOLINT: by-value keeps it alive
    if (conn->fd < 0) return;
    {
        std::lock_guard<std::mutex> lk(conn->m);
        conn->closed = true;
        conn->pending.clear();
        conn->pending_bytes = 0;
    }
    loop_.remove(conn->fd);
    ::close(conn->fd);
    conns_.erase(conn->fd);
    conn->fd = -1;
    totals_.connections_open.fetch_sub(1);
}

// ---- request handling ------------------------------------------------------

void Daemon::handle_request(const ConnPtr& conn, RequestFrame&& f) {
    common::Tensor image(std::vector<std::size_t>(f.shape.begin(),
                                                  f.shape.end()));
    std::memcpy(image.data(), f.data.data(), f.data.size() * sizeof(float));

    if (f.kind == MsgKind::Feedback) {
        // Feedback is fire-and-forget into the learner's queue; the reply
        // is immediate and local — it never touches a worker.
        conn->counters.feedback_frames++;
        totals_.feedback_frames.fetch_add(1);
        serve::SubmitOptions fopt;
        fopt.model = f.model;
        const bool ok = router_->submit_feedback(image, f.label, fopt);
        ResponseFrame resp;
        resp.version = f.version;
        if (f.version >= kProtocolVersionV2) resp.model = f.model;
        resp.status = ok ? WireStatus::Ok : WireStatus::Rejected;
        resp.reject_reason = static_cast<std::uint8_t>(
            ok ? serve::RejectReason::None : serve::RejectReason::QueueFull);
        resp.priority = static_cast<std::uint8_t>(serve::Priority::Feedback);
        resp.request_id = f.request_id;
        resp.label = f.label;
        const auto bytes = encode(resp);
        append_out(conn, bytes.data(), bytes.size());
        return;
    }

    serve::SubmitOptions opt;
    opt.priority = static_cast<serve::Priority>(f.priority);
    opt.deadline_us = f.deadline_us;
    opt.model = f.model;  // v1 frames decode with model == "" (the default)
    opt.request_id = f.request_id;
    opt.trace = (f.flags & kFlagTrace) != 0;  // v1/v2 decode with flags == 0
    const std::uint64_t request_id = f.request_id;
    const std::uint8_t version = f.version;

    conn->inflight.fetch_add(1);
    inflight_.fetch_add(1);
    // The callback runs on a worker thread (or inline right here for an
    // intake shed or an unknown model) — either way deliver() owns the
    // thread-safety.
    opt.on_complete = [this, conn, version, model = std::move(f.model),
                       request_id](serve::InferenceResult&& r) {
        deliver(conn, encode(to_response(version, model, request_id, r)));
    };
    if (f.kind == MsgKind::Predict)
        router_->submit_async(image, std::move(opt));
    else
        router_->submit_counts_async(image, std::move(opt));
}

// ---- control socket --------------------------------------------------------

void Daemon::handle_control_line(const ConnPtr& conn,
                                 const std::string& line) {
    if (line.empty()) return;
    totals_.control_commands.fetch_add(1);
    const std::string reply = run_control_command(line) + "\n";
    append_out(conn, reinterpret_cast<const std::uint8_t*>(reply.data()),
               reply.size());
}

std::string Daemon::run_control_command(const std::string& line) {
    std::istringstream in(line);
    std::string cmd, arg, arg2, arg3;
    in >> cmd >> arg >> arg2 >> arg3;

    try {
        if (cmd == "ping") return "ok pong";
        if (cmd == "stats") {
            // `stats <name>` narrows to one fleet entry's counters.
            if (!arg.empty())
                return "ok " + entry_json(router_->model_stats(arg));
            return "ok " + stats_json();
        }
        if (cmd == "version")
            return "ok " + std::to_string(model_->published_version());
        if (cmd == "models") return "ok " + models_json();
        if (cmd == "metrics") {
            // The one multi-line control reply: Prometheus text whose last
            // line is the "# EOF" terminator clients read up to (the
            // trailing newline comes from handle_control_line).
            if (!options_.metrics) return "err no metrics registry";
            std::string text = options_.metrics->expose();
            while (!text.empty() && text.back() == '\n') text.pop_back();
            return text;
        }
        if (cmd == "events") {
            const obs::FlightRecorder* rec = router_->options().recorder;
            if (!rec) return "err no recorder";
            std::size_t n = 0;  // 0 = everything the ring holds
            if (!arg.empty()) {
                try {
                    n = std::stoul(arg);
                } catch (const std::exception&) {
                    return "err bad event count: " + arg;
                }
            }
            return "ok " + obs::events_to_json(rec->snapshot(n));
        }
        if (cmd == "canary") {
            if (arg.empty() || arg2.empty() || arg3.empty())
                return "err usage: canary <name> <version> <pct>";
            std::uint64_t version = 0;
            std::uint32_t pct = 0;
            try {
                version = std::stoull(arg2);
                pct = static_cast<std::uint32_t>(std::stoul(arg3));
            } catch (const std::exception&) {
                return "err bad canary arguments: " + arg2 + " " + arg3;
            }
            router_->set_canary(arg, version, pct);
            return "ok canary " + arg + " version " + std::to_string(version) +
                   " pct " + std::to_string(pct);
        }
        if (cmd == "drain") {
            drain_requested_.store(true);
            return "ok draining";
        }
        if (cmd == "shutdown") {
            shutdown_requested_.store(true);
            drain_requested_.store(true);
            return "ok shutting-down";
        }
        if (cmd == "unload") {
            if (!arg.empty()) {
                // Fleet form: drop the entry's residency, pin, and canary.
                router_->unload(arg);
                return "ok unloaded " + arg;
            }
            // Legacy form: back to the compiled-in initial weights;
            // sessions pick the image up at their next refresh().
            model_->publish_weights(model_->initial_weights());
            pinned_version_ = 0;
            return "ok unloaded";
        }
        if (cmd == "versions") {
            if (!registry_) return "err no registry";
            registry_->reload();
            std::string out = "[";
            for (const auto& e : registry_->entries()) {
                if (out.size() > 1) out += ",";
                out += common::JsonObject()
                           .add("version", static_cast<std::uint64_t>(e.version))
                           .add("accuracy", e.accuracy)
                           .str();
            }
            return "ok " + out + "]";
        }
        if (cmd == "load" || cmd == "pin") {
            // Fleet forms: `load <name>` makes an entry resident; `pin
            // <name> <version>` publishes + pins one. A version token
            // (digits or "latest") always means the legacy default-model
            // form — names cannot start with a digit.
            if (cmd == "load" && !arg.empty() && !is_version_token(arg)) {
                const std::uint64_t v = router_->load(arg);
                return "ok loaded " + arg + " version " + std::to_string(v);
            }
            if (cmd == "pin" && !arg.empty() && !is_version_token(arg)) {
                std::uint64_t version = 0;
                if (arg2.empty()) return "err usage: pin <name> <version>";
                try {
                    version = std::stoull(arg2);
                } catch (const std::exception&) {
                    return "err bad version: " + arg2;
                }
                const std::uint64_t v = router_->pin(arg, version);
                return "ok pinned " + arg + " " + std::to_string(v);
            }
            if (!registry_) return "err no registry";
            if (arg.empty()) return "err usage: " + cmd + " <version>|latest";
            registry_->reload();
            std::uint64_t version = 0;
            if (arg == "latest") {
                const auto last = registry_->last_good();
                if (!last) return "err registry is empty";
                version = last->version;
            } else {
                try {
                    version = std::stoull(arg);
                } catch (const std::exception&) {
                    return "err bad version: " + arg;
                }
            }
            if (!registry_->has(version))
                return "err unknown version: " + std::to_string(version);
            model_->publish_weights(registry_->load(version));
            pinned_version_ = version;
            return "ok pinned " + std::to_string(version) + " published " +
                   std::to_string(model_->published_version());
        }
        if (cmd == "rollback") {
            if (!registry_) return "err no registry";
            registry_->reload();
            const auto& entries = registry_->entries();
            // Step back one accepted version from the current pin (or from
            // the newest entry when nothing was explicitly pinned).
            std::size_t idx = entries.size();
            for (std::size_t i = 0; i < entries.size(); ++i)
                if (entries[i].version == pinned_version_) idx = i;
            if (idx == entries.size() && entries.size() >= 2)
                idx = entries.size() - 1;
            if (idx == 0 || idx == entries.size())
                return "err nothing to roll back to";
            const std::uint64_t version = entries[idx - 1].version;
            model_->publish_weights(registry_->load(version));
            pinned_version_ = version;
            return "ok pinned " + std::to_string(version) + " published " +
                   std::to_string(model_->published_version());
        }
    } catch (const std::exception& e) {
        return std::string("err ") + e.what();
    }
    return "err unknown command: " + cmd;
}

std::string Daemon::stats_json() const {
    const DaemonStats d = stats();
    std::string conns = "[";
    for (const auto& [fd, conn] : conns_) {
        if (conns.size() > 1) conns += ",";
        conns += common::JsonObject()
                     .add("fd", static_cast<std::int64_t>(fd))
                     .add("control", conn->control)
                     .add("frames_in", conn->counters.frames_in)
                     .add("responses_out", conn->counters.responses_out)
                     .add("bytes_in", conn->counters.bytes_in)
                     .add("bytes_out", conn->counters.bytes_out)
                     .add("feedback_frames", conn->counters.feedback_frames)
                     .add("inflight",
                          static_cast<std::uint64_t>(conn->inflight.load()))
                     .add("paused", conn->paused)
                     .str();
    }
    conns += "]";
    const std::string daemon =
        common::JsonObject()
            .add("connections_accepted", d.connections_accepted)
            .add("connections_open", d.connections_open)
            .add("frames_in", d.frames_in)
            .add("responses_out", d.responses_out)
            .add("bytes_in", d.bytes_in)
            .add("bytes_out", d.bytes_out)
            .add("malformed_closed", d.malformed_closed)
            .add("feedback_frames", d.feedback_frames)
            .add("control_commands", d.control_commands)
            .add("backpressure_pauses", d.backpressure_pauses)
            .add("inflight", d.inflight)
            .add("draining", d.draining)
            .add("published_version", model_->published_version())
            .add("pinned_version", pinned_version_)
            .add("resident_bytes",
                 static_cast<std::uint64_t>(router_->resident_bytes()))
            .str();
    return common::JsonObject()
        .add_raw("server", serve::stats_to_json(router_->stats()))
        .add_raw("daemon", daemon)
        .add_raw("models", models_json())
        .add_raw("connections", conns)
        .str();
}

std::string Daemon::models_json() const {
    std::string out = "[";
    for (const auto& s : router_->model_stats()) {
        if (out.size() > 1) out += ",";
        out += entry_json(s);
    }
    return out + "]";
}

void Daemon::record_conn_error(int fd, const char* what) {
    obs::FlightRecorder* rec = router_->options().recorder;
    if (!rec) return;
    rec->record(obs::EventKind::ConnError, router_->clock()->now_us(), what,
                static_cast<std::uint64_t>(fd));
}

namespace {

const char* class_label(std::size_t c) {
    switch (c) {
        case 0: return "{class=\"interactive\"}";
        case 1: return "{class=\"batch\"}";
        case 2: return "{class=\"feedback\"}";
    }
    return "{class=\"?\"}";
}

std::string model_label(const std::string& name) {
    // Router names are [A-Za-z][A-Za-z0-9._-]* (the default entry is ""),
    // so no escaping is needed inside the label value.
    return "{model=\"" + name + "\"}";
}

}  // namespace

void Daemon::collect_metrics(std::string& out) const {
    using obs::append_help_type;
    using obs::append_sample;

    // ---- serving engine (ServerStats schema, §10/§12) ----
    const serve::ServerStats s = router_->stats();
    const struct {
        const char* name;
        const char* help;
        std::uint64_t v;
    } server_counters[] = {
        {"neuro_server_accepted", "requests accepted into the queue",
         s.accepted},
        {"neuro_server_rejected", "requests refused at intake", s.rejected},
        {"neuro_server_completed", "requests resolved Ok", s.completed},
        {"neuro_server_errors", "requests resolved Error", s.errors},
        {"neuro_server_batches", "micro-batches dispatched", s.batches},
        {"neuro_server_codel_dropped", "CoDel head drops", s.codel_dropped},
        {"neuro_server_deadline_dropped", "deadline-expired head drops",
         s.deadline_dropped},
        {"neuro_server_drop_state_entries",
         "times CoDel entered the drop state", s.drop_state_entries},
        {"neuro_server_weight_refreshes",
         "published weight images adopted at batch boundaries",
         s.weight_refreshes},
        {"neuro_server_feedback_dropped",
         "feedback samples shed at the intake", s.feedback_dropped},
    };
    for (const auto& c : server_counters) {
        append_help_type(out, std::string(c.name) + "_total", "counter",
                         c.help);
        append_sample(out, std::string(c.name) + "_total", "", c.v);
    }
    append_help_type(out, "neuro_server_class_accepted_total", "counter",
                     "admission accepts per priority class");
    for (std::size_t c = 0; c < serve::kPriorityClasses; ++c)
        append_sample(out, "neuro_server_class_accepted_total",
                      class_label(c), s.class_accepted[c]);
    append_help_type(out, "neuro_server_class_codel_dropped_total", "counter",
                     "CoDel head drops per priority class");
    for (std::size_t c = 0; c < serve::kPriorityClasses; ++c)
        append_sample(out, "neuro_server_class_codel_dropped_total",
                      class_label(c), s.class_codel_dropped[c]);
    append_help_type(out, "neuro_server_class_deadline_dropped_total",
                     "counter", "deadline drops per priority class");
    for (std::size_t c = 0; c < serve::kPriorityClasses; ++c)
        append_sample(out, "neuro_server_class_deadline_dropped_total",
                      class_label(c), s.class_deadline_dropped[c]);

    append_help_type(out, "neuro_server_latency_us", "gauge",
                     "dispatch latency percentiles (microseconds)");
    append_sample(out, "neuro_server_latency_us", "{quantile=\"0.5\"}",
                  s.p50_us);
    append_sample(out, "neuro_server_latency_us", "{quantile=\"0.95\"}",
                  s.p95_us);
    append_sample(out, "neuro_server_latency_us", "{quantile=\"0.99\"}",
                  s.p99_us);
    append_help_type(out, "neuro_server_sojourn_us", "gauge",
                     "queue sojourn percentiles (microseconds)");
    append_sample(out, "neuro_server_sojourn_us", "{quantile=\"0.5\"}",
                  s.sojourn_p50_us);
    append_sample(out, "neuro_server_sojourn_us", "{quantile=\"0.95\"}",
                  s.sojourn_p95_us);
    append_sample(out, "neuro_server_sojourn_us", "{quantile=\"0.99\"}",
                  s.sojourn_p99_us);
    append_help_type(out, "neuro_server_throughput_rps", "gauge",
                     "completed requests per second since start");
    append_sample(out, "neuro_server_throughput_rps", "", s.throughput_rps);

    // ---- wire layer (DaemonStats) ----
    const DaemonStats d = stats();
    const struct {
        const char* name;
        const char* help;
        std::uint64_t v;
    } daemon_counters[] = {
        {"neuro_daemon_connections_accepted", "connections accepted",
         d.connections_accepted},
        {"neuro_daemon_frames_in", "request frames decoded", d.frames_in},
        {"neuro_daemon_responses_out", "response frames flushed",
         d.responses_out},
        {"neuro_daemon_bytes_in", "bytes read from data sockets",
         d.bytes_in},
        {"neuro_daemon_bytes_out", "bytes written to data sockets",
         d.bytes_out},
        {"neuro_daemon_malformed_closed",
         "connections closed on framing errors", d.malformed_closed},
        {"neuro_daemon_feedback_frames", "feedback frames received",
         d.feedback_frames},
        {"neuro_daemon_control_commands", "control-socket commands run",
         d.control_commands},
        {"neuro_daemon_backpressure_pauses",
         "times a connection's reads were paused", d.backpressure_pauses},
    };
    for (const auto& c : daemon_counters) {
        append_help_type(out, std::string(c.name) + "_total", "counter",
                         c.help);
        append_sample(out, std::string(c.name) + "_total", "", c.v);
    }
    append_help_type(out, "neuro_daemon_connections_open", "gauge",
                     "currently open connections");
    append_sample(out, "neuro_daemon_connections_open", "",
                  d.connections_open);
    append_help_type(out, "neuro_daemon_inflight", "gauge",
                     "requests submitted but not yet resolved");
    append_sample(out, "neuro_daemon_inflight", "", d.inflight);
    append_help_type(out, "neuro_daemon_resident_bytes", "gauge",
                     "resident plastic-weight bytes across the fleet");
    append_sample(out, "neuro_daemon_resident_bytes", "",
                  static_cast<std::uint64_t>(router_->resident_bytes()));

    // ---- per-model (ModelEntryStats) ----
    const auto models = router_->model_stats();
    append_help_type(out, "neuro_model_dispatched_total", "counter",
                     "requests dispatched per model and arm");
    for (const auto& m : models) {
        append_sample(out, "neuro_model_dispatched_total",
                      "{model=\"" + m.name + "\",arm=\"base\"}",
                      m.base_dispatched);
        if (m.canary_dispatched > 0 || m.canary_version != 0)
            append_sample(out, "neuro_model_dispatched_total",
                          "{model=\"" + m.name + "\",arm=\"canary\"}",
                          m.canary_dispatched);
    }
    append_help_type(out, "neuro_model_errors_total", "counter",
                     "requests resolved Error per model (both arms)");
    for (const auto& m : models)
        append_sample(out, "neuro_model_errors_total", model_label(m.name),
                      m.base_errors + m.canary_errors);
    append_help_type(out, "neuro_model_codel_dropped_total", "counter",
                     "CoDel head drops attributed per model");
    for (const auto& m : models)
        append_sample(out, "neuro_model_codel_dropped_total",
                      model_label(m.name), m.codel_dropped);
    append_help_type(out, "neuro_model_deadline_dropped_total", "counter",
                     "deadline head drops attributed per model");
    for (const auto& m : models)
        append_sample(out, "neuro_model_deadline_dropped_total",
                      model_label(m.name), m.deadline_dropped);
    append_help_type(out, "neuro_model_resident", "gauge",
                     "1 when the model's sessions are loaded");
    for (const auto& m : models)
        append_sample(out, "neuro_model_resident", model_label(m.name),
                      static_cast<std::uint64_t>(m.resident ? 1 : 0));
    append_help_type(out, "neuro_model_weight_bytes", "gauge",
                     "resident weight bytes per model (both arms)");
    for (const auto& m : models)
        append_sample(out, "neuro_model_weight_bytes", model_label(m.name),
                      static_cast<std::uint64_t>(m.weight_bytes));
    append_help_type(out, "neuro_model_latency_us", "gauge",
                     "per-model dispatch latency percentiles (microseconds)");
    for (const auto& m : models) {
        if (m.latency_count == 0) continue;
        append_sample(out, "neuro_model_latency_us",
                      "{model=\"" + m.name + "\",quantile=\"0.5\"}", m.p50_us);
        append_sample(out, "neuro_model_latency_us",
                      "{model=\"" + m.name + "\",quantile=\"0.95\"}",
                      m.p95_us);
        append_sample(out, "neuro_model_latency_us",
                      "{model=\"" + m.name + "\",quantile=\"0.99\"}",
                      m.p99_us);
    }
}

// ---- lifecycle -------------------------------------------------------------

void Daemon::run() {
    setup_listeners();
    loop_.set_on_wake([this] { on_wake(); });
    loop_.set_on_tick([this] { on_tick(); });
    // A bounded wait keeps drain timeouts honest even with no fd traffic.
    loop_.run(/*tick_ms=*/50);

    // Past this point no handler can run; release whatever is left.
    std::vector<ConnPtr> leftover;
    leftover.reserve(conns_.size());
    for (const auto& [fd, conn] : conns_) leftover.push_back(conn);
    for (const ConnPtr& conn : leftover) close_connection(conn);
    for (const auto& [fd, control] : listeners_) {
        loop_.remove(fd);
        ::close(fd);
    }
    listeners_.clear();
    if (!options_.data_path.empty()) ::unlink(options_.data_path.c_str());
    if (!options_.control_path.empty())
        ::unlink(options_.control_path.c_str());
    finished_.store(true);
}

void Daemon::request_drain() {
    drain_requested_.store(true);
    loop_.wakeup();
}

void Daemon::request_shutdown() {
    // Async-signal-safe: two lock-free stores and one eventfd write.
    shutdown_requested_.store(true);
    drain_requested_.store(true);
    loop_.wakeup();
}

void Daemon::begin_drain() {
    draining_ = true;
    drain_started_ = std::chrono::steady_clock::now();
    // New connections: refused (data listeners gone). On a pure drain the
    // control listener stays so an operator can watch stats / escalate to
    // shutdown; shutdown closes it too.
    auto keep = listeners_.end();
    for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
        const bool keep_control = it->second && !shutdown_requested_.load();
        if (keep_control) {
            keep = it;
            continue;
        }
        loop_.remove(it->first);
        ::close(it->first);
    }
    if (keep != listeners_.end()) {
        listeners_ = {*keep};
    } else {
        listeners_.clear();
        if (!options_.control_path.empty())
            ::unlink(options_.control_path.c_str());
    }
    if (!options_.data_path.empty()) ::unlink(options_.data_path.c_str());
    // Existing requests: already submitted, will resolve. Unread requests:
    // never read — EPOLLIN interest drops for every data connection.
    for (const auto& [fd, conn] : conns_)
        if (!conn->control) update_read_interest(conn);
}

void Daemon::check_drain_progress() {
    const bool timed_out =
        std::chrono::steady_clock::now() - drain_started_ >=
        std::chrono::milliseconds(options_.drain_timeout_ms);

    std::vector<ConnPtr> closable;
    bool data_left = false;
    for (const auto& [fd, conn] : conns_) {
        if (conn->control) continue;
        // Accepted-implies-responded: a data connection is severed only
        // once its in-flight requests resolved AND their responses hit the
        // socket — unless the drain timeout says the client is dead.
        if (timed_out ||
            (conn->inflight.load() == 0 && unflushed_bytes(conn) == 0))
            closable.push_back(conn);
        else
            data_left = true;
    }
    for (const ConnPtr& conn : closable) close_connection(conn);

    if (!shutdown_requested_.load()) return;  // pure drain: loop stays up
    if (data_left && !timed_out) return;
    if (inflight_.load() != 0 && !timed_out) return;

    // Flush control replies (the `shutdown` ack) before exiting; a blocked
    // control peer is abandoned rather than allowed to wedge the exit.
    for (const auto& [fd, conn] : conns_)
        if (conn->control && conn->fd >= 0) flush_conn(conn);
    loop_.stop();
}

DaemonStats Daemon::stats() const {
    DaemonStats s;
    s.connections_accepted = totals_.connections_accepted.load();
    s.connections_open = totals_.connections_open.load();
    s.frames_in = totals_.frames_in.load();
    s.responses_out = totals_.responses_out.load();
    s.bytes_in = totals_.bytes_in.load();
    s.bytes_out = totals_.bytes_out.load();
    s.malformed_closed = totals_.malformed_closed.load();
    s.feedback_frames = totals_.feedback_frames.load();
    s.control_commands = totals_.control_commands.load();
    s.backpressure_pauses = totals_.backpressure_pauses.load();
    s.inflight = inflight_.load();
    s.draining = drain_requested_.load() || shutdown_requested_.load();
    return s;
}

}  // namespace neuro::netd
