#pragma once
// neuro::netd::Daemon — the network front-end over serve::ModelRouter
// (docs/ARCHITECTURE.md §11–12). A single-threaded epoll readiness loop
// accepts TCP / Unix-domain connections speaking the binary wire protocol
// (netd/protocol.hpp), decodes requests, and hands them to the serving
// engine via the future-less submit_async path; completion callbacks —
// fired on the serving workers — encode the response and append it to the
// connection's write queue, then wake the loop to flush it non-blocking.
//
//   clients ──► epoll loop ──decode──► ModelRouter::submit_async ──► workers
//      ▲                                                                │
//      └── write queues ◄── wakeup ◄── completion callbacks ◄───────────┘
//
// Multi-model: a v2 request frame's model field becomes
// SubmitOptions::model, so one connection addresses any fleet entry the
// router can lazily load; the response echoes the request's version and
// model (protocol.hpp negotiation table). v1 frames route to the default
// entry and answer byte-identically to the pre-router daemon.
//
// Threading: the loop thread owns all connection read state (decoder,
// epoll registration, the in-flight write buffer); worker callbacks touch
// only each connection's mutex-guarded pending-response list and the
// eventfd. The server's own admission/batching machinery is unchanged —
// the wire carries priority class + relative deadline end-to-end into the
// AdmissionQueue, so a deadline miss resolves as a protocol-level
// Rejected frame exactly like it resolves a future in-process.
//
// Backpressure is layered:
//   * Server intake: the daemon requires the Shed policy (Block would
//     park the event loop); a full queue resolves QueueFull inline.
//   * Connection: a client that stops reading, or floods requests, has
//     its EPOLLIN interest dropped once its pending bytes or in-flight
//     count pass the configured ceilings, and restored at half of them —
//     per-connection flow control, no global stall.
//
// Lifecycle (SIGTERM → drain → exit): request_shutdown() is thread- and
// async-signal-safe. The loop then closes the listeners, stops reading
// (no new requests are accepted), lets every in-flight request resolve,
// flushes every write queue — accepted-implies-responded — and returns
// from run(). A drain that a dead client blocks past drain_timeout_ms is
// force-closed.
//
// The admin control socket (dinit idiom: line commands over a Unix
// socket) shares the same loop: `stats` (ServerStats + per-connection
// counters as JSON), default-model weight load/unload and pin/rollback
// through online::ModelRegistry, `drain`, `shutdown` — plus the fleet
// commands `models`, `stats <name>`, `load <name>`, `unload <name>`,
// `pin <name> <version>` and `canary <name> <version> <pct>`. The two
// grammars share verbs without ambiguity: model names must start with a
// letter, so a numeric (or "latest") first argument always means the
// legacy default-model form. See the control command table in
// docs/ARCHITECTURE.md §11–12.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "netd/event_loop.hpp"
#include "netd/protocol.hpp"
#include "obs/registry.hpp"
#include "online/registry.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"

namespace neuro::netd {

struct DaemonOptions {
    /// Unix-domain data socket path ("" = no unix data listener). An
    /// existing socket file at the path is replaced.
    std::string data_path;
    /// Admin control socket path ("" = no control listener).
    std::string control_path;
    /// TCP data listener on 127.0.0.1:<port>; 0 = none.
    std::uint16_t tcp_port = 0;
    /// Decoder ceiling per frame body (see netd/protocol.hpp).
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Pause reading a connection above this many unflushed response
    /// bytes; resume below half.
    std::size_t write_buffer_limit = 4u << 20;
    /// Pause reading a connection above this many in-flight requests.
    std::size_t max_inflight_per_conn = 256;
    /// Force-close connections still undrained this long after a
    /// drain/shutdown request.
    std::uint64_t drain_timeout_ms = 10'000;
    /// Metrics registry behind the control-socket `metrics` command (null
    /// answers `err no metrics registry`). The daemon adds a scrape-time
    /// collector rendering ServerStats / DaemonStats / ModelEntryStats, so
    /// the registry must not be scraped after the daemon is destroyed.
    /// Non-owning; neurod wires obs::default_registry().
    obs::Registry* metrics = nullptr;
};

/// Loop-thread-owned per-connection counters (snapshot via Daemon::stats).
struct ConnCounters {
    std::uint64_t frames_in = 0;
    std::uint64_t responses_out = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t feedback_frames = 0;
};

/// Daemon-level counters; complements serve::ServerStats (which covers the
/// admission/dispatch layer) with the wire layer.
struct DaemonStats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_open = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t responses_out = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t malformed_closed = 0;   ///< connections closed on bad frames
    std::uint64_t feedback_frames = 0;
    std::uint64_t control_commands = 0;
    std::uint64_t backpressure_pauses = 0;
    std::uint64_t inflight = 0;           ///< requests submitted, not yet resolved
    bool draining = false;
};

class Daemon {
public:
    /// Router-native form: `router` is the serving fleet the wire drives.
    /// It must use Backpressure::Shed (throws otherwise — Block would park
    /// the event loop on a full queue). `registry` is the DEFAULT model's
    /// registry for the legacy load/pin/rollback commands; optional —
    /// without it those commands answer `err no registry` (fleet entries
    /// carry their own registries via RouterOptions::fleet_dir). The
    /// daemon does not start() or shutdown() the router: the owner
    /// controls the serving lifecycle (tests exploit this to pin deadline
    /// behaviour on a ManualClock before workers run).
    Daemon(std::shared_ptr<serve::ModelRouter> router, DaemonOptions options,
           std::shared_ptr<online::ModelRegistry> registry = nullptr);

    /// Legacy single-model form: drives `server`'s underlying router (a
    /// fleet of one). `model` is the served CompiledModel (weight
    /// publication target for the legacy control commands).
    Daemon(std::shared_ptr<serve::Server> server,
           std::shared_ptr<const runtime::CompiledModel> model,
           DaemonOptions options,
           std::shared_ptr<online::ModelRegistry> registry = nullptr);
    ~Daemon();

    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /// Binds the configured listeners and dispatches until a shutdown
    /// request completes its drain. Call from the thread that owns the
    /// daemon (neurod's main thread; a dedicated thread in tests).
    void run();

    /// Stops accepting connections and reading requests; in-flight work
    /// still resolves and flushes. The loop keeps running (control socket
    /// stays up) — thread-safe.
    void request_drain();

    /// request_drain() + exit run() once drained. Thread- AND
    /// async-signal-safe: a SIGTERM handler may call this directly.
    void request_shutdown();

    /// True once run() has returned.
    bool finished() const { return finished_.load(); }

    DaemonStats stats() const;

    const DaemonOptions& options() const { return options_; }

private:
    struct Connection {
        int fd = -1;
        bool control = false;
        Decoder decoder;
        std::string line_buf;  ///< control-protocol input
        ConnCounters counters;
        /// Loop-owned flush buffer (pending moves here before write()).
        std::vector<std::uint8_t> outbuf;
        std::size_t out_off = 0;
        bool want_write = false;
        bool paused = false;
        std::atomic<std::uint32_t> inflight{0};

        // ---- shared with worker callbacks (guarded by m) ----
        std::mutex m;
        std::deque<std::vector<std::uint8_t>> pending;
        std::size_t pending_bytes = 0;
        bool closed = false;  ///< fd is gone; discard late responses

        explicit Connection(std::size_t max_frame) : decoder(max_frame) {}
    };
    using ConnPtr = std::shared_ptr<Connection>;

    // ---- loop-thread handlers ----
    void on_accept(int listen_fd, bool control);
    void on_conn_event(const ConnPtr& conn, std::uint32_t events);
    void on_readable(const ConnPtr& conn);
    void on_writable(const ConnPtr& conn);
    void on_wake();
    void on_tick();

    void handle_request(const ConnPtr& conn, RequestFrame&& f);
    void handle_control_line(const ConnPtr& conn, const std::string& line);
    std::string run_control_command(const std::string& line);
    std::string stats_json() const;
    std::string models_json() const;
    /// Scrape-time bridge (DaemonOptions::metrics): appends the serving /
    /// daemon / per-model counters as Prometheus families. Reads only
    /// thread-safe surfaces (router stats, totals_ atomics) — it runs on
    /// whatever thread scrapes the registry.
    void collect_metrics(std::string& out) const;
    /// Records a ConnError flight event when the router has a recorder.
    void record_conn_error(int fd, const char* what);

    // ---- cross-thread delivery (worker callbacks) ----
    void deliver(const ConnPtr& conn, std::vector<std::uint8_t> bytes);

    // ---- plumbing ----
    void setup_listeners();
    int listen_unix(const std::string& path);
    int listen_tcp(std::uint16_t port);
    void append_out(const ConnPtr& conn, const std::uint8_t* data,
                    std::size_t n);
    void flush_conn(const ConnPtr& conn);
    void update_read_interest(const ConnPtr& conn);
    /// By value on purpose: callers often hold the connection only through
    /// a container this function mutates; the copy keeps it alive.
    void close_connection(ConnPtr conn);
    void begin_drain();
    void check_drain_progress();
    std::size_t unflushed_bytes(const ConnPtr& conn);

    /// Shared construction tail: option/backpressure validation.
    void validate_config() const;

    std::shared_ptr<serve::ModelRouter> router_;
    std::shared_ptr<const runtime::CompiledModel> model_;
    DaemonOptions options_;
    std::shared_ptr<online::ModelRegistry> registry_;

    EventLoop loop_;
    std::vector<std::pair<int, bool>> listeners_;  ///< fd, is_control
    std::unordered_map<int, ConnPtr> conns_;

    // Worker → loop handoff: connections with freshly delivered responses.
    std::mutex dirty_m_;
    std::vector<ConnPtr> dirty_;

    std::atomic<bool> drain_requested_{false};
    std::atomic<bool> shutdown_requested_{false};
    std::atomic<bool> finished_{false};
    bool draining_ = false;  ///< loop-thread view
    std::chrono::steady_clock::time_point drain_started_{};

    std::atomic<std::uint64_t> inflight_{0};
    /// Registry version most recently published via the control socket
    /// (0 = none); the anchor `rollback` steps back from. Loop-thread-owned.
    std::uint64_t pinned_version_ = 0;

    // Loop-thread-owned aggregates, mirrored into atomics for stats().
    struct Totals {
        std::atomic<std::uint64_t> connections_accepted{0};
        std::atomic<std::uint64_t> connections_open{0};
        std::atomic<std::uint64_t> frames_in{0};
        std::atomic<std::uint64_t> responses_out{0};
        std::atomic<std::uint64_t> bytes_in{0};
        std::atomic<std::uint64_t> bytes_out{0};
        std::atomic<std::uint64_t> malformed_closed{0};
        std::atomic<std::uint64_t> feedback_frames{0};
        std::atomic<std::uint64_t> control_commands{0};
        std::atomic<std::uint64_t> backpressure_pauses{0};
    } totals_;
};

}  // namespace neuro::netd
