#pragma once
// neuro::netd::Client — a minimal blocking client for the neurod wire
// protocol, shared by the loopback tests, the socket-mode load bench and
// examples/neurod_client. Deliberately synchronous and single-threaded:
// the daemon is the part of the system that must never block; a client
// may simply read until its response arrives.
//
// Responses can arrive out of order when requests are pipelined (the
// daemon writes each back as its completion fires), so recv_response()
// returns frames in arrival order and callers match on request_id.

#include <cstdint>
#include <string>

#include "netd/protocol.hpp"

namespace neuro::netd {

class Client {
public:
    Client() = default;
    /// Closes the connection.
    ~Client();

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;
    Client(Client&& other) noexcept;
    Client& operator=(Client&& other) noexcept;

    /// Connects to a Unix-domain socket path; throws std::runtime_error on
    /// failure (daemon not up, path wrong).
    static Client connect_unix(const std::string& path);
    /// Connects to 127.0.0.1:port (the daemon's optional TCP listener).
    static Client connect_tcp(std::uint16_t port);

    bool connected() const { return fd_ >= 0; }
    void close();

    /// Writes one encoded request frame (blocking until fully written).
    void send(const RequestFrame& f);
    /// Writes raw bytes — lets tests drip a frame onto the wire in
    /// arbitrary splits.
    void send_raw(const void* data, std::size_t n);

    /// Blocking raw read: bytes received, 0 on EOF. Throws on socket error.
    std::size_t recv_raw(void* buf, std::size_t n);

    /// Blocks until one whole response frame arrives. Returns false on EOF
    /// (daemon closed the connection); throws on a protocol violation.
    bool recv_response(ResponseFrame& out);

    /// send() + recv_response() matched on request_id — the simple
    /// one-at-a-time call pattern.
    ResponseFrame call(const RequestFrame& f);

private:
    explicit Client(int fd) : fd_(fd) {}

    int fd_ = -1;
    Decoder decoder_;
};

/// One-shot admin command against the daemon's control socket: connects,
/// sends `command` + '\n', returns the single reply line (without the
/// newline). Throws on connect/IO failure or EOF before a full line.
std::string control_request(const std::string& control_path,
                            const std::string& command);

/// Multi-line variant for the `metrics` scrape: reads until a line that is
/// exactly "# EOF" and returns everything up to and including it (each
/// line newline-terminated). A daemon that answers a single `err ...` line
/// instead returns just that line — no EOF terminator to wait for. Throws
/// on connect/IO failure or EOF-of-stream before the terminator.
std::string control_request_multiline(const std::string& control_path,
                                      const std::string& command);

}  // namespace neuro::netd
