#pragma once
// neuro::netd::EventLoop — a thin single-threaded epoll readiness loop
// (the llarp/ev idiom: register fd → callback, run until stopped). The
// loop thread owns every handler; the ONLY thread-safe entry points are
// wakeup() and stop(), which are also async-signal-safe (one eventfd
// write, no locks) — that is what lets a SIGTERM handler request a
// graceful drain without touching daemon state from signal context.

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>

namespace neuro::netd {

class EventLoop {
public:
    /// `events` is the epoll readiness mask (EPOLLIN/EPOLLOUT/EPOLLHUP...).
    using Handler = std::function<void(std::uint32_t events)>;

    /// Throws std::runtime_error when epoll/eventfd creation fails.
    EventLoop();
    ~EventLoop();

    EventLoop(const EventLoop&) = delete;
    EventLoop& operator=(const EventLoop&) = delete;

    /// Registers `fd` for `events`; `h` runs on the loop thread whenever
    /// the fd is ready. Level-triggered (no EPOLLET): a handler that does
    /// not finish its work is simply called again.
    void add(int fd, std::uint32_t events, Handler h);
    /// Changes the interest mask of a registered fd.
    void modify(int fd, std::uint32_t events);
    /// Deregisters `fd`. Safe to call from inside any handler, including
    /// the fd's own (the loop dispatches on a copy of the handler, so the
    /// executing closure survives its map entry) — pending readiness for a
    /// removed fd in the current batch is skipped. Does NOT close the fd.
    void remove(int fd);

    /// Dispatches until stop(). `tick_ms` < 0 blocks indefinitely between
    /// events; >= 0 bounds each wait so the caller's on_tick can poll
    /// (drain timeouts). on_wake runs after wakeup() was called (possibly
    /// coalesced); on_tick runs after every dispatch round.
    void run(int tick_ms = -1);

    /// Ends run() after the current dispatch round. Thread- and
    /// async-signal-safe.
    void stop();

    /// Wakes the loop thread. Thread- and async-signal-safe.
    void wakeup();

    void set_on_wake(std::function<void()> f) { on_wake_ = std::move(f); }
    void set_on_tick(std::function<void()> f) { on_tick_ = std::move(f); }

private:
    int epoll_fd_ = -1;
    int wake_fd_ = -1;  ///< eventfd; also how stop() interrupts epoll_wait
    // Lock-free (and async-signal-safe to write): stop() stores false and
    // the eventfd write forces the loop out of epoll_wait to observe it.
    std::atomic<bool> running_{false};
    std::unordered_map<int, Handler> handlers_;
    std::function<void()> on_wake_;
    std::function<void()> on_tick_;
};

}  // namespace neuro::netd
