#include "netd/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string_view>
#include <utility>

namespace neuro::netd {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error("netd::Client: " + what + ": " +
                             std::strerror(errno));
}

void write_all(int fd, const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    while (n > 0) {
        const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR) continue;
            throw_errno("send");
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      decoder_(std::move(other.decoder_)) {}

Client& Client::operator=(Client&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        decoder_ = std::move(other.decoder_);
    }
    return *this;
}

Client Client::connect_unix(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("netd::Client: socket path too long: " +
                                 path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket(unix)");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("connect " + path);
    }
    return Client(fd);
}

Client Client::connect_tcp(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket(tcp)");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("connect 127.0.0.1:" + std::to_string(port));
    }
    return Client(fd);
}

void Client::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void Client::send(const RequestFrame& f) {
    const auto bytes = encode(f);
    send_raw(bytes.data(), bytes.size());
}

void Client::send_raw(const void* data, std::size_t n) {
    if (fd_ < 0) throw std::runtime_error("netd::Client: not connected");
    write_all(fd_, data, n);
}

std::size_t Client::recv_raw(void* buf, std::size_t n) {
    if (fd_ < 0) throw std::runtime_error("netd::Client: not connected");
    for (;;) {
        const ssize_t r = ::recv(fd_, buf, n, 0);
        if (r >= 0) return static_cast<std::size_t>(r);
        if (errno == EINTR) continue;
        throw_errno("recv");
    }
}

bool Client::recv_response(ResponseFrame& out) {
    if (fd_ < 0) throw std::runtime_error("netd::Client: not connected");
    for (;;) {
        switch (decoder_.next_response(out)) {
            case Decoder::Result::Frame: return true;
            case Decoder::Result::Error:
                throw std::runtime_error(
                    std::string("netd::Client: protocol error: ") +
                    to_string(decoder_.error()));
            case Decoder::Result::NeedMore: break;
        }
        std::uint8_t buf[16 * 1024];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n == 0) return false;  // daemon closed the connection
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("recv");
        }
        decoder_.feed(buf, static_cast<std::size_t>(n));
    }
}

ResponseFrame Client::call(const RequestFrame& f) {
    send(f);
    ResponseFrame resp;
    while (recv_response(resp)) {
        if (resp.request_id == f.request_id) return resp;
        // A pipelined response from an earlier request; callers using
        // call() one-at-a-time never hit this, drop it and keep reading.
    }
    throw std::runtime_error(
        "netd::Client: connection closed before the response arrived");
}

std::string control_request_multiline(const std::string& control_path,
                                      const std::string& command) {
    Client c = Client::connect_unix(control_path);
    const std::string line = command + "\n";
    c.send_raw(line.data(), line.size());

    std::string reply;
    std::size_t scanned = 0;  ///< reply[0..scanned) holds whole lines only
    char buf[4096];
    for (;;) {
        std::size_t nl;
        while ((nl = reply.find('\n', scanned)) != std::string::npos) {
            std::string_view ln(reply.data() + scanned, nl - scanned);
            if (!ln.empty() && ln.back() == '\r') ln.remove_suffix(1);
            if (ln == "# EOF") {
                reply.resize(nl + 1);
                return reply;
            }
            // An error disposition is a single line with no terminator.
            if (scanned == 0 && ln.substr(0, 3) == "err") {
                reply.resize(nl);
                if (!reply.empty() && reply.back() == '\r') reply.pop_back();
                return reply;
            }
            scanned = nl + 1;
        }
        const std::size_t n = c.recv_raw(buf, sizeof(buf));
        if (n == 0)
            throw std::runtime_error(
                "netd: control connection closed before the \"# EOF\" "
                "terminator");
        reply.append(buf, n);
    }
}

std::string control_request(const std::string& control_path,
                            const std::string& command) {
    Client c = Client::connect_unix(control_path);
    const std::string line = command + "\n";
    c.send_raw(line.data(), line.size());

    std::string reply;
    char buf[4096];
    for (;;) {
        const std::size_t nl = reply.find('\n');
        if (nl != std::string::npos) {
            reply.resize(nl);
            if (!reply.empty() && reply.back() == '\r') reply.pop_back();
            return reply;
        }
        const std::size_t n = c.recv_raw(buf, sizeof(buf));
        if (n == 0)
            throw std::runtime_error(
                "netd: control connection closed before a reply line");
        reply.append(buf, n);
    }
}

}  // namespace neuro::netd
