#include "netd/protocol.hpp"

#include <cstring>
#include <limits>
#include <stdexcept>

namespace neuro::netd {

namespace {

// ---- little-endian primitives ----------------------------------------------
// Byte-by-byte shifts, not memcpy-of-host-int: the wire format is LE by
// definition, independent of the host (and free of alignment traps).

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
    out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    put_u32(out, static_cast<std::uint32_t>(v));
    put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
    static_assert(sizeof(float) == 4);
    std::uint32_t bits;
    std::memcpy(&bits, &v, 4);
    put_u32(out, bits);
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
    put_u32(out, static_cast<std::uint32_t>(v));
}

/// Bounds-checked sequential reader over one frame body.
struct Cursor {
    const std::uint8_t* p;
    std::size_t left;

    bool u8(std::uint8_t& v) {
        if (left < 1) return false;
        v = *p++;
        --left;
        return true;
    }
    bool u32(std::uint32_t& v) {
        if (left < 4) return false;
        v = static_cast<std::uint32_t>(p[0]) |
            static_cast<std::uint32_t>(p[1]) << 8 |
            static_cast<std::uint32_t>(p[2]) << 16 |
            static_cast<std::uint32_t>(p[3]) << 24;
        p += 4;
        left -= 4;
        return true;
    }
    bool u64(std::uint64_t& v) {
        std::uint32_t lo, hi;
        if (!u32(lo) || !u32(hi)) return false;
        v = static_cast<std::uint64_t>(lo) |
            static_cast<std::uint64_t>(hi) << 32;
        return true;
    }
    bool f32(float& v) {
        std::uint32_t bits;
        if (!u32(bits)) return false;
        std::memcpy(&v, &bits, 4);
        return true;
    }
    bool i32(std::int32_t& v) {
        std::uint32_t bits;
        if (!u32(bits)) return false;
        v = static_cast<std::int32_t>(bits);
        return true;
    }
};

}  // namespace

const char* to_string(DecodeError e) {
    switch (e) {
        case DecodeError::None: return "none";
        case DecodeError::BadVersion: return "bad-version";
        case DecodeError::BadKind: return "bad-kind";
        case DecodeError::BadPriority: return "bad-priority";
        case DecodeError::BadShape: return "bad-shape";
        case DecodeError::Oversized: return "oversized";
        case DecodeError::Malformed: return "malformed";
        case DecodeError::BadModel: return "bad-model";
    }
    return "?";
}

namespace {

// An encoder must never emit bytes its own decoder rejects: a model name
// only exists on the wire from v2 on, so asking for one in a v1 frame is a
// caller bug, not something to silently truncate.
void check_versioned_model(std::uint8_t version, const std::string& model) {
    if (version != kProtocolVersion && version != kProtocolVersionV2 &&
        version != kProtocolVersionV3)
        throw std::invalid_argument("netd::encode: unknown protocol version");
    if (version < kProtocolVersionV2 && !model.empty())
        throw std::invalid_argument(
            "netd::encode: model field requires protocol v2");
    if (model.size() > kMaxModelName)
        throw std::invalid_argument("netd::encode: model name longer than " +
                                    std::to_string(kMaxModelName));
}

bool known_version(std::uint8_t v) {
    return v == kProtocolVersion || v == kProtocolVersionV2 ||
           v == kProtocolVersionV3;
}

void put_model(std::vector<std::uint8_t>& out, const std::string& model) {
    put_u8(out, static_cast<std::uint8_t>(model.size()));
    out.insert(out.end(), model.begin(), model.end());
}

}  // namespace

std::vector<std::uint8_t> encode(const RequestFrame& f) {
    check_versioned_model(f.version, f.model);
    if (f.flags != 0) {
        if (f.version < kProtocolVersionV3)
            throw std::invalid_argument(
                "netd::encode: request flags require protocol v3");
        if (f.flags & ~kFlagTrace)
            throw std::invalid_argument(
                "netd::encode: undefined request flag bits");
    }
    if (f.shape.empty() || f.shape.size() > kMaxRank)
        throw std::invalid_argument("netd::encode: rank must be 1.." +
                                    std::to_string(kMaxRank));
    std::uint64_t elems = 1;
    for (const std::uint32_t d : f.shape) {
        if (d == 0)
            throw std::invalid_argument("netd::encode: zero dimension");
        elems *= d;
    }
    if (elems != f.data.size())
        throw std::invalid_argument(
            "netd::encode: payload size does not match shape");

    std::vector<std::uint8_t> out;
    out.reserve(4 + 30 + f.model.size() + 4 * f.shape.size() +
                4 * f.data.size());
    put_u32(out, 0);  // length back-patched below
    put_u8(out, f.version);
    put_u8(out, static_cast<std::uint8_t>(f.kind));
    put_u8(out, f.priority);
    put_u8(out, 0);  // reserved
    put_u64(out, f.request_id);
    put_u64(out, f.deadline_us);
    put_u32(out, f.label);
    if (f.version >= kProtocolVersionV2) put_model(out, f.model);
    if (f.version >= kProtocolVersionV3) put_u8(out, f.flags);
    put_u8(out, static_cast<std::uint8_t>(f.shape.size()));
    for (const std::uint32_t d : f.shape) put_u32(out, d);
    for (const float v : f.data) put_f32(out, v);

    const std::uint32_t body = static_cast<std::uint32_t>(out.size() - 4);
    out[0] = static_cast<std::uint8_t>(body);
    out[1] = static_cast<std::uint8_t>(body >> 8);
    out[2] = static_cast<std::uint8_t>(body >> 16);
    out[3] = static_cast<std::uint8_t>(body >> 24);
    return out;
}

std::vector<std::uint8_t> encode(const ResponseFrame& f) {
    check_versioned_model(f.version, f.model);
    if (f.error.size() > std::numeric_limits<std::uint32_t>::max())
        throw std::invalid_argument("netd::encode: error text too long");
    if (!f.trace.empty() && f.version < kProtocolVersionV3)
        throw std::invalid_argument(
            "netd::encode: trace block requires protocol v3");
    if (f.trace.size() > 7)
        throw std::invalid_argument("netd::encode: more than 7 trace spans");
    std::vector<std::uint8_t> out;
    out.reserve(4 + 46 + f.model.size() + 4 * f.counts.size() +
                f.error.size() + 9 * f.trace.size());
    put_u32(out, 0);  // length back-patched below
    put_u8(out, f.version);
    put_u8(out, static_cast<std::uint8_t>(f.status));
    put_u8(out, f.reject_reason);
    put_u8(out, f.priority);
    put_u64(out, f.request_id);
    if (f.version >= kProtocolVersionV2) put_model(out, f.model);
    put_u32(out, f.label);
    put_u64(out, f.latency_us);
    put_u64(out, f.sojourn_us);
    put_u32(out, f.batch_size);
    put_u32(out, static_cast<std::uint32_t>(f.counts.size()));
    for (const std::int32_t c : f.counts) put_i32(out, c);
    put_u32(out, static_cast<std::uint32_t>(f.error.size()));
    out.insert(out.end(), f.error.begin(), f.error.end());
    if (f.version >= kProtocolVersionV3) {
        put_u8(out, static_cast<std::uint8_t>(f.trace.size()));
        for (const WireSpan& s : f.trace) {
            if (s.id < 1 || s.id > 7)
                throw std::invalid_argument(
                    "netd::encode: trace span id out of range");
            put_u8(out, s.id);
            put_u64(out, s.value);
        }
    }

    const std::uint32_t body = static_cast<std::uint32_t>(out.size() - 4);
    out[0] = static_cast<std::uint8_t>(body);
    out[1] = static_cast<std::uint8_t>(body >> 8);
    out[2] = static_cast<std::uint8_t>(body >> 16);
    out[3] = static_cast<std::uint8_t>(body >> 24);
    return out;
}

void Decoder::feed(const std::uint8_t* data, std::size_t n) {
    // Compact once the consumed prefix dominates, so a long-lived
    // connection never grows the buffer beyond ~2 frames.
    if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 4096)) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + n);
}

Decoder::Result Decoder::next_body(const std::uint8_t** begin,
                                   std::size_t* len) {
    if (error_ != DecodeError::None) return Result::Error;
    const std::size_t avail = buf_.size() - pos_;
    if (avail < 4) return Result::NeedMore;
    const std::uint8_t* h = buf_.data() + pos_;
    const std::uint32_t body = static_cast<std::uint32_t>(h[0]) |
                               static_cast<std::uint32_t>(h[1]) << 8 |
                               static_cast<std::uint32_t>(h[2]) << 16 |
                               static_cast<std::uint32_t>(h[3]) << 24;
    // The ceiling is checked BEFORE waiting for the body: a hostile length
    // prefix is rejected from 4 bytes of input, it never sizes a buffer.
    if (body > max_frame_) return fail(DecodeError::Oversized);
    if (body < 1) return fail(DecodeError::Malformed);
    if (avail < 4 + static_cast<std::size_t>(body)) return Result::NeedMore;
    *begin = h + 4;
    *len = body;
    return Result::Frame;
}

void Decoder::consume(std::size_t frame_total) { pos_ += frame_total; }

Decoder::Result Decoder::next_request(RequestFrame& out) {
    const std::uint8_t* body = nullptr;
    std::size_t len = 0;
    const Result r = next_body(&body, &len);
    if (r != Result::Frame) return r;

    Cursor c{body, len};
    RequestFrame f;
    std::uint8_t kind = 0, reserved = 0, rank = 0;
    if (!c.u8(f.version) || !c.u8(kind) || !c.u8(f.priority) ||
        !c.u8(reserved) || !c.u64(f.request_id) || !c.u64(f.deadline_us) ||
        !c.u32(f.label))
        return fail(DecodeError::Malformed);
    if (!known_version(f.version)) return fail(DecodeError::BadVersion);
    if (kind > static_cast<std::uint8_t>(MsgKind::Feedback))
        return fail(DecodeError::BadKind);
    if (f.priority > 2) return fail(DecodeError::BadPriority);
    if (reserved != 0) return fail(DecodeError::Malformed);
    if (f.version >= kProtocolVersionV2) {
        // The declared name length is validated against what the body
        // actually holds BEFORE any read — a lying model_len is the same
        // hostile framing as an oversized tensor and poisons the decoder.
        std::uint8_t model_len = 0;
        if (!c.u8(model_len)) return fail(DecodeError::Malformed);
        if (model_len > kMaxModelName || c.left < model_len)
            return fail(DecodeError::BadModel);
        f.model.assign(reinterpret_cast<const char*>(c.p), model_len);
        c.p += model_len;
        c.left -= model_len;
    }
    if (f.version >= kProtocolVersionV3) {
        // Undefined flag bits are rejected, not ignored: a client setting
        // them speaks a protocol this decoder does not, and silently
        // dropping its intent would be worse than closing the stream.
        if (!c.u8(f.flags)) return fail(DecodeError::Malformed);
        if (f.flags & ~kFlagTrace) return fail(DecodeError::Malformed);
    }
    if (!c.u8(rank)) return fail(DecodeError::Malformed);
    if (rank < 1 || rank > kMaxRank) return fail(DecodeError::BadShape);
    f.kind = static_cast<MsgKind>(kind);

    std::uint64_t elems = 1;
    f.shape.resize(rank);
    for (std::uint8_t i = 0; i < rank; ++i) {
        if (!c.u32(f.shape[i])) return fail(DecodeError::Malformed);
        if (f.shape[i] == 0) return fail(DecodeError::BadShape);
        elems *= f.shape[i];
        // Even with in-range dims, the product must fit the body we
        // already have — anything larger is inconsistent framing.
        if (elems > len / 4 + 1) return fail(DecodeError::BadShape);
    }
    if (c.left != elems * 4) return fail(DecodeError::BadShape);
    f.data.resize(static_cast<std::size_t>(elems));
    for (float& v : f.data)
        if (!c.f32(v)) return fail(DecodeError::Malformed);
    if (c.left != 0) return fail(DecodeError::Malformed);

    out = std::move(f);
    consume(4 + len);
    return Result::Frame;
}

Decoder::Result Decoder::next_response(ResponseFrame& out) {
    const std::uint8_t* body = nullptr;
    std::size_t len = 0;
    const Result r = next_body(&body, &len);
    if (r != Result::Frame) return r;

    Cursor c{body, len};
    ResponseFrame f;
    std::uint8_t status = 0;
    std::uint32_t ncounts = 0, errlen = 0;
    if (!c.u8(f.version) || !c.u8(status) || !c.u8(f.reject_reason) ||
        !c.u8(f.priority) || !c.u64(f.request_id))
        return fail(DecodeError::Malformed);
    if (!known_version(f.version)) return fail(DecodeError::BadVersion);
    if (f.version >= kProtocolVersionV2) {
        std::uint8_t model_len = 0;
        if (!c.u8(model_len)) return fail(DecodeError::Malformed);
        if (model_len > kMaxModelName || c.left < model_len)
            return fail(DecodeError::BadModel);
        f.model.assign(reinterpret_cast<const char*>(c.p), model_len);
        c.p += model_len;
        c.left -= model_len;
    }
    if (!c.u32(f.label) || !c.u64(f.latency_us) || !c.u64(f.sojourn_us) ||
        !c.u32(f.batch_size) || !c.u32(ncounts))
        return fail(DecodeError::Malformed);
    if (status > static_cast<std::uint8_t>(WireStatus::Error))
        return fail(DecodeError::BadKind);
    if (f.priority > 2) return fail(DecodeError::BadPriority);
    f.status = static_cast<WireStatus>(status);
    if (static_cast<std::size_t>(ncounts) * 4 > c.left)
        return fail(DecodeError::Malformed);
    f.counts.resize(ncounts);
    for (std::int32_t& v : f.counts)
        if (!c.i32(v)) return fail(DecodeError::Malformed);
    if (!c.u32(errlen)) return fail(DecodeError::Malformed);
    if (errlen > c.left) return fail(DecodeError::Malformed);
    f.error.assign(reinterpret_cast<const char*>(c.p), errlen);
    c.p += errlen;
    c.left -= errlen;
    if (f.version >= kProtocolVersionV3) {
        std::uint8_t nspans = 0;
        if (!c.u8(nspans)) return fail(DecodeError::Malformed);
        if (nspans > 7) return fail(DecodeError::Malformed);
        f.trace.resize(nspans);
        for (WireSpan& s : f.trace) {
            if (!c.u8(s.id) || !c.u64(s.value))
                return fail(DecodeError::Malformed);
            if (s.id < 1 || s.id > 7) return fail(DecodeError::Malformed);
        }
    }
    if (c.left != 0) return fail(DecodeError::Malformed);

    out = std::move(f);
    consume(4 + len);
    return Result::Frame;
}

}  // namespace neuro::netd
