#include "netd/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace neuro::netd {

namespace {

[[noreturn]] void throw_errno(const char* what) {
    throw std::runtime_error(std::string("EventLoop: ") + what + ": " +
                             std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw_errno("epoll_create1");
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) {
        ::close(epoll_fd_);
        throw_errno("eventfd");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
        ::close(wake_fd_);
        ::close(epoll_fd_);
        throw_errno("epoll_ctl(wake)");
    }
}

EventLoop::~EventLoop() {
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add(int fd, std::uint32_t events, Handler h) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
        throw_errno("epoll_ctl(add)");
    handlers_[fd] = std::move(h);
}

void EventLoop::modify(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0)
        throw_errno("epoll_ctl(mod)");
}

void EventLoop::remove(int fd) {
    // The fd may already be gone (closed elsewhere); deregistration is
    // best-effort, the handler map is what dispatch consults.
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    handlers_.erase(fd);
}

void EventLoop::run(int tick_ms) {
    running_.store(true);
    std::vector<epoll_event> events(64);
    while (running_.load()) {
        const int n = ::epoll_wait(epoll_fd_, events.data(),
                                   static_cast<int>(events.size()), tick_ms);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("epoll_wait");
        }
        bool woken = false;
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == wake_fd_) {
                std::uint64_t drain = 0;
                // Coalesced counter; one read clears it.
                while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
                }
                woken = true;
                continue;
            }
            // A handler earlier in this batch may have removed this fd —
            // dispatch only to still-registered handlers.
            const auto it = handlers_.find(fd);
            if (it == handlers_.end()) continue;
            // Invoke a COPY: a handler that remove()s its own fd (closing
            // a connection) would otherwise destroy the closure it is
            // executing, freeing its captured state mid-call.
            const Handler h = it->second;
            h(events[i].events);
        }
        if (woken && on_wake_) on_wake_();
        if (on_tick_) on_tick_();
    }
}

void EventLoop::stop() {
    running_.store(false);
    wakeup();
}

void EventLoop::wakeup() {
    const std::uint64_t one = 1;
    // EAGAIN (counter saturated) still wakes the loop; nothing to handle.
    [[maybe_unused]] const ssize_t n =
        ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace neuro::netd
