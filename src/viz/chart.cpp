#include "viz/chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace neuro::viz {

namespace {

constexpr const char* kMarkers = "*o+x#@";

std::string format_tick(double v) {
    char buf[32];
    if (std::abs(v) >= 1000.0 || (std::abs(v) < 0.01 && v != 0.0))
        std::snprintf(buf, sizeof buf, "%9.2e", v);
    else
        std::snprintf(buf, sizeof buf, "%9.3f", v);
    return buf;
}

}  // namespace

std::string line_chart(const std::vector<double>& x,
                       const std::vector<Series>& series,
                       const ChartOptions& opt) {
    if (x.size() < 2) throw std::invalid_argument("line_chart: need >= 2 x values");
    if (series.empty()) throw std::invalid_argument("line_chart: no series");
    for (const auto& s : series)
        if (s.y.size() != x.size())
            throw std::invalid_argument("line_chart: series '" + s.name +
                                        "' length != x length");
    if (opt.width < 8 || opt.height < 4)
        throw std::invalid_argument("line_chart: chart too small");

    // ---- ranges -------------------------------------------------------------
    const double x_lo = *std::min_element(x.begin(), x.end());
    const double x_hi = *std::max_element(x.begin(), x.end());
    double y_lo = opt.y_lo, y_hi = opt.y_hi;
    if (y_lo >= y_hi) {
        y_lo = 1e300;
        y_hi = -1e300;
        for (const auto& s : series)
            for (const double v : s.y)
                if (std::isfinite(v)) {
                    y_lo = std::min(y_lo, v);
                    y_hi = std::max(y_hi, v);
                }
        if (y_lo > y_hi) throw std::invalid_argument("line_chart: no finite data");
        const double margin = (y_hi - y_lo) * 0.05;
        y_lo -= margin;
        y_hi += margin;
        if (y_lo == y_hi) {  // flat series: open a unit window around it
            y_lo -= 0.5;
            y_hi += 0.5;
        }
    }

    // ---- canvas ---------------------------------------------------------------
    std::vector<std::string> canvas(opt.height, std::string(opt.width, ' '));
    const auto col_of = [&](double xv) {
        const double f = (xv - x_lo) / (x_hi - x_lo);
        return static_cast<std::size_t>(
            std::lround(f * static_cast<double>(opt.width - 1)));
    };
    const auto row_of = [&](double yv) {
        const double f = (yv - y_lo) / (y_hi - y_lo);
        const double clamped = std::clamp(f, 0.0, 1.0);
        return opt.height - 1 -
               static_cast<std::size_t>(
                   std::lround(clamped * static_cast<double>(opt.height - 1)));
    };

    for (std::size_t si = 0; si < series.size(); ++si) {
        const char mark = kMarkers[si % 6];
        // Connect consecutive finite points with linear interpolation so the
        // curve reads as a line, then stamp the sample markers on top.
        for (std::size_t i = 0; i + 1 < x.size(); ++i) {
            const double y0 = series[si].y[i];
            const double y1 = series[si].y[i + 1];
            if (!std::isfinite(y0) || !std::isfinite(y1)) continue;
            const std::size_t c0 = col_of(x[i]);
            const std::size_t c1 = col_of(x[i + 1]);
            for (std::size_t c = c0; c <= c1; ++c) {
                const double t =
                    c1 == c0 ? 0.0
                             : static_cast<double>(c - c0) /
                                   static_cast<double>(c1 - c0);
                canvas[row_of(y0 + t * (y1 - y0))][c] = mark;
            }
        }
        for (std::size_t i = 0; i < x.size(); ++i)
            if (std::isfinite(series[si].y[i]))
                canvas[row_of(series[si].y[i])][col_of(x[i])] = mark;
    }

    // ---- assemble -------------------------------------------------------------
    std::string out;
    if (!opt.y_label.empty()) out += opt.y_label + "\n";
    for (std::size_t r = 0; r < opt.height; ++r) {
        const double row_v =
            y_hi - (y_hi - y_lo) * static_cast<double>(r) /
                       static_cast<double>(opt.height - 1);
        const bool labelled = r == 0 || r == opt.height - 1 || r == opt.height / 2;
        out += labelled ? format_tick(row_v) : std::string(9, ' ');
        out += " |";
        out += canvas[r];
        out += "\n";
    }
    out += std::string(9, ' ') + " +" + std::string(opt.width, '-') + "\n";
    out += std::string(11, ' ') + format_tick(x_lo) +
           std::string(opt.width > 26 ? opt.width - 26 : 1, ' ') +
           format_tick(x_hi) + "\n";
    if (!opt.x_label.empty())
        out += std::string(11 + opt.width / 2 - opt.x_label.size() / 2, ' ') +
               opt.x_label + "\n";
    out += "legend:";
    for (std::size_t si = 0; si < series.size(); ++si) {
        out += "  ";
        out += kMarkers[si % 6];
        out += " " + series[si].name;
    }
    out += "\n";
    return out;
}

std::string spike_raster(
    const std::vector<std::pair<std::uint64_t, std::uint32_t>>& events,
    std::uint64_t steps, std::uint32_t neurons, std::size_t width,
    std::size_t height) {
    if (steps == 0 || neurons == 0)
        throw std::invalid_argument("spike_raster: empty extent");
    width = std::min(width, static_cast<std::size_t>(steps));
    height = std::min(height, static_cast<std::size_t>(neurons));

    std::vector<std::size_t> counts(width * height, 0);
    std::size_t peak = 0;
    for (const auto& [t, n] : events) {
        if (t >= steps || n >= neurons)
            throw std::out_of_range("spike_raster: event outside extent");
        const std::size_t c = static_cast<std::size_t>(t * width / steps);
        const std::size_t r = static_cast<std::size_t>(
            static_cast<std::uint64_t>(n) * height / neurons);
        peak = std::max(peak, ++counts[r * width + c]);
    }

    std::string out = "neuron\n";
    for (std::size_t r = 0; r < height; ++r) {
        char buf[16];
        std::snprintf(buf, sizeof buf, "%5zu |",
                      r * static_cast<std::size_t>(neurons) / height);
        out += buf;
        for (std::size_t c = 0; c < width; ++c) {
            const std::size_t v = counts[r * width + c];
            out += v == 0          ? '.'
                   : v * 3 <= peak ? '|'
                   : v * 3 <= 2 * peak ? '+'
                                       : '#';
        }
        out += "\n";
    }
    out += std::string(6, ' ') + "+" + std::string(width, '-') + "\n";
    out += std::string(7, ' ') + "t=0" +
           std::string(width > 14 ? width - 14 : 1, ' ') + "t=" +
           std::to_string(steps) + "\n";
    return out;
}

}  // namespace neuro::viz
