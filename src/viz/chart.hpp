#pragma once
// Terminal plotting for the bench harness: the paper's figures are *curves*
// (Fig. 3's U-shaped energy trade-off, Fig. 4's forget/recover sawtooth),
// and a table of numbers hides exactly the shape the reproduction is
// supposed to show. These renderers draw multi-series ASCII line charts and
// spike rasters so every figure bench prints the series it reproduces.
//
// Rendering is deterministic: same input, same characters — chart output is
// asserted in tests like any other value.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace neuro::viz {

/// One named curve. Use NaN for missing points (they are skipped).
struct Series {
    std::string name;
    std::vector<double> y;
};

struct ChartOptions {
    std::size_t width = 64;   ///< plot columns (excluding the axis gutter)
    std::size_t height = 16;  ///< plot rows
    std::string x_label;
    std::string y_label;
    /// Optional y-range override; when lo >= hi the range is auto-fitted
    /// with a small margin.
    double y_lo = 0.0;
    double y_hi = 0.0;
};

/// Renders series sampled at shared x positions. Each series gets a marker
/// from "*o+x#@" in order; overlapping points show the later series' marker.
/// Returns a multi-line string ending in a legend row.
std::string line_chart(const std::vector<double>& x,
                       const std::vector<Series>& series,
                       const ChartOptions& opt = {});

/// Renders spike events (step, neuron) as a raster: one text row per neuron
/// bucket, one column per time bucket, '.' for silence and '|' scaled to
/// '#' for busy buckets.
std::string spike_raster(
    const std::vector<std::pair<std::uint64_t, std::uint32_t>>& events,
    std::uint64_t steps, std::uint32_t neurons, std::size_t width = 64,
    std::size_t height = 16);

}  // namespace neuro::viz
