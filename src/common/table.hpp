#pragma once
// Aligned ASCII table printer. Every bench binary renders its paper table /
// figure series through this so the output format is uniform and diffable.

#include <string>
#include <vector>

namespace neuro::common {

/// Builds a fixed-column table, left-aligning text and right-aligning
/// numeric-looking cells, then renders it with a header rule:
///
///   Dataset        Loihi   Python (FP)
///   -----------------------------------
///   MNIST-like     94.5%         98.9%
class Table {
public:
    explicit Table(std::vector<std::string> header);

    /// Appends a row; it may have fewer cells than the header (padded empty).
    void add_row(std::vector<std::string> row);

    /// Convenience for mixed string/double rows.
    static std::string fmt(double v, int precision = 2);
    static std::string pct(double fraction, int precision = 1);

    /// Renders the table to a string (trailing newline included).
    std::string str() const;

    /// Prints to stdout.
    void print() const;

    std::size_t rows() const { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace neuro::common
