#pragma once
// Tiny --key=value / --flag argv parser used by examples and benches.
// Every binary runs with sensible defaults when given no arguments; the
// parser exists so experiments can be re-run at paper scale.

#include <cstdint>
#include <map>
#include <string>

namespace neuro::common {

/// Parses "--key=value" and bare "--flag" arguments. Unknown positional
/// arguments are rejected with a short usage message on stderr.
class Cli {
public:
    Cli(int argc, const char* const* argv);

    bool has(const std::string& key) const;
    std::string get(const std::string& key, const std::string& fallback) const;
    std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
    double get_double(const std::string& key, double fallback) const;
    bool get_bool(const std::string& key, bool fallback) const;

    /// True if parsing failed (malformed argument).
    bool error() const { return error_; }

private:
    std::map<std::string, std::string> kv_;
    bool error_ = false;
};

}  // namespace neuro::common
