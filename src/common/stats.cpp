#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace neuro::common {

std::size_t LatencyHistogram::bucket_of(double us) {
    if (!(us >= 1.0)) return 0;  // sub-microsecond (and NaN) bucket
    int exp = 0;
    const double frac = std::frexp(us, &exp);  // frac in [0.5, 1), us = frac * 2^exp
    // Octave o covers [2^o, 2^(o+1)); frac*2 in [1, 2) picks the sub-bucket.
    const auto octave = std::min<std::size_t>(static_cast<std::size_t>(exp - 1),
                                              kOctaves - 1);
    const auto sub = std::min<std::size_t>(
        static_cast<std::size_t>((frac * 2.0 - 1.0) * kSubBuckets),
        kSubBuckets - 1);
    return 1 + octave * kSubBuckets + sub;
}

double LatencyHistogram::upper_edge(std::size_t bucket) {
    if (bucket == 0) return 1.0;
    const std::size_t b = bucket - 1;
    const std::size_t octave = b / kSubBuckets;
    const std::size_t sub = b % kSubBuckets;
    return std::ldexp(1.0 + static_cast<double>(sub + 1) /
                                static_cast<double>(kSubBuckets),
                      static_cast<int>(octave));
}

void LatencyHistogram::record(double us) {
    ++buckets_[bucket_of(us)];
    ++count_;
    sum_ += us;
    max_ = std::max(max_, us);
}

double LatencyHistogram::percentile(double q) const {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::uint64_t>(
        std::max(1.0, std::ceil(q * static_cast<double>(count_))));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        seen += buckets_[b];
        if (seen >= rank) return std::min(upper_edge(b), max_);
    }
    return max_;
}

double mean(const std::vector<double>& v) {
    if (v.empty()) return 0.0;
    return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) {
    if (v.size() < 2) return 0.0;
    const double m = mean(v);
    double acc = 0.0;
    for (double x : v) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

std::size_t argmax(const std::vector<double>& v) {
    if (v.empty()) return 0;
    return static_cast<std::size_t>(
        std::distance(v.begin(), std::max_element(v.begin(), v.end())));
}

std::size_t argmax(const std::vector<int>& v) {
    if (v.empty()) return 0;
    return static_cast<std::size_t>(
        std::distance(v.begin(), std::max_element(v.begin(), v.end())));
}

Confusion::Confusion(std::size_t num_classes)
    : n_(num_classes), cells_(num_classes * num_classes, 0) {}

void Confusion::add(std::size_t truth, std::size_t predicted) {
    if (truth >= n_ || predicted >= n_)
        throw std::out_of_range("Confusion::add: class index out of range");
    ++cells_[truth * n_ + predicted];
    ++total_;
    if (truth == predicted) ++correct_;
}

double Confusion::accuracy() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(correct_) / static_cast<double>(total_);
}

double Confusion::recall(std::size_t cls) const {
    std::size_t row = 0;
    for (std::size_t p = 0; p < n_; ++p) row += cells_[cls * n_ + p];
    return row == 0 ? 0.0
                    : static_cast<double>(cells_[cls * n_ + cls]) /
                          static_cast<double>(row);
}

double Confusion::accuracy_over(const std::vector<std::size_t>& classes) const {
    std::size_t seen = 0;
    std::size_t hit = 0;
    for (std::size_t cls : classes) {
        for (std::size_t p = 0; p < n_; ++p) seen += cells_[cls * n_ + p];
        hit += cells_[cls * n_ + cls];
    }
    return seen == 0 ? 0.0 : static_cast<double>(hit) / static_cast<double>(seen);
}

std::size_t Confusion::count(std::size_t truth, std::size_t predicted) const {
    return cells_.at(truth * n_ + predicted);
}

std::string Confusion::str() const {
    std::ostringstream os;
    for (std::size_t t = 0; t < n_; ++t) {
        for (std::size_t p = 0; p < n_; ++p) os << cells_[t * n_ + p] << '\t';
        os << '\n';
    }
    return os.str();
}

}  // namespace neuro::common
