#include "common/threadpool.hpp"

namespace neuro::common {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0) threads = 1;
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::run(std::size_t jobs, const std::function<void(std::size_t)>& fn) {
    if (jobs == 0) return;
    std::unique_lock<std::mutex> lock(m_);
    fn_ = &fn;
    jobs_ = jobs;
    next_ = 0;
    first_error_ = nullptr;
    cv_work_.notify_all();
    cv_done_.wait(lock, [this] { return next_ >= jobs_ && in_flight_ == 0; });
    fn_ = nullptr;
    jobs_ = 0;
    if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop() {
    std::unique_lock<std::mutex> lock(m_);
    for (;;) {
        cv_work_.wait(lock, [this] { return stop_ || next_ < jobs_; });
        if (stop_) return;
        const std::size_t job = next_++;
        ++in_flight_;
        lock.unlock();
        std::exception_ptr err;
        try {
            (*fn_)(job);
        } catch (...) {
            err = std::current_exception();
        }
        lock.lock();
        if (err && !first_error_) first_error_ = err;
        --in_flight_;
        if (next_ >= jobs_ && in_flight_ == 0) cv_done_.notify_all();
    }
}

}  // namespace neuro::common
