#include "common/tensor.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace neuro::common {

namespace {
std::size_t element_count(const std::vector<std::size_t>& shape) {
    std::size_t n = 1;
    for (std::size_t d : shape) n *= d;
    return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(element_count(shape_), 0.0f) {}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::reshape(std::vector<std::size_t> shape) {
    if (element_count(shape) != data_.size())
        throw std::invalid_argument("Tensor::reshape: element count mismatch");
    shape_ = std::move(shape);
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
    if (rhs.size() != size())
        throw std::invalid_argument("Tensor::operator+=: size mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
    return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
    if (rhs.size() != size())
        throw std::invalid_argument("Tensor::operator-=: size mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
    return *this;
}

Tensor& Tensor::operator*=(float s) {
    for (float& v : data_) v *= s;
    return *this;
}

float Tensor::min() const {
    return data_.empty() ? 0.0f : *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
    return data_.empty() ? 0.0f : *std::max_element(data_.begin(), data_.end());
}

float Tensor::sum() const {
    return std::accumulate(data_.begin(), data_.end(), 0.0f);
}

float Tensor::mean() const {
    return data_.empty() ? 0.0f : sum() / static_cast<float>(data_.size());
}

std::size_t Tensor::argmax() const {
    if (data_.empty()) return 0;
    return static_cast<std::size_t>(
        std::distance(data_.begin(), std::max_element(data_.begin(), data_.end())));
}

std::string Tensor::describe() const {
    std::string s = "Tensor[";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
        if (i) s += 'x';
        s += std::to_string(shape_[i]);
    }
    s += ']';
    return s;
}

}  // namespace neuro::common
