#pragma once
// CSV artifact writer. Bench binaries dump their raw series here so that the
// paper plots (Fig. 3, Fig. 4) can be regenerated outside the binary.

#include <string>
#include <vector>

namespace neuro::common {

/// Accumulates rows and writes them to `<dir>/<name>.csv`, creating the
/// directory if needed. Cells are escaped minimally (quotes around cells
/// containing commas/quotes). Returns the written path.
class CsvWriter {
public:
    CsvWriter(std::string dir, std::string name, std::vector<std::string> header);

    void add_row(std::vector<std::string> row);

    /// Flushes to disk; returns the file path. Safe to call once at the end.
    std::string write() const;

private:
    std::string dir_;
    std::string name_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace neuro::common
