#pragma once
// A bounded MPMC blocking queue — the hand-off primitive between request
// producers and the serving workers (src/serve). Sits next to ThreadPool as
// the second concurrency primitive in common/: where ThreadPool is a strict
// fork/join for data-parallel batches, BoundedQueue is a flow-controlled
// stream for open-ended request traffic.
//
// Design notes:
//   * Fixed-capacity ring over a pre-sized std::vector<T> — no allocation
//     after construction, slots are reused by move-assignment (T must be
//     default-constructible and movable). The layout is deliberately
//     lock-free-friendly (head/count indices over a power-of-two-free ring),
//     but the implementation uses one mutex + two condvars: every consumer
//     needs timed blocking waits for micro-batch coalescing, which a CAS
//     loop cannot provide without a parked-thread list anyway.
//   * Backpressure is the point: push() blocks when full (credit-based
//     flow control), try_push() refuses when full (load shedding). The
//     caller picks the policy per call, not per queue.
//   * close() is the shutdown protocol: producers are refused from then on,
//     consumers drain what was accepted and then see pop() == false. Items
//     already accepted are never dropped by the queue itself.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace neuro::common {

template <typename T>
class BoundedQueue {
public:
    enum class Push { Ok, Full, Closed };

    explicit BoundedQueue(std::size_t capacity)
        : slots_(capacity == 0 ? throw std::invalid_argument(
                                     "BoundedQueue: zero capacity")
                               : capacity) {}

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

    std::size_t capacity() const { return slots_.size(); }

    std::size_t size() const {
        std::lock_guard<std::mutex> lock(m_);
        return count_;
    }

    bool closed() const {
        std::lock_guard<std::mutex> lock(m_);
        return closed_;
    }

    /// Blocks while the queue is full; returns false iff the queue is (or
    /// becomes) closed. Like try_push, the value is moved out of `v` only
    /// on success, so a refused caller can still complete/reuse it.
    bool push(T& v) {
        std::unique_lock<std::mutex> lock(m_);
        cv_space_.wait(lock, [&] { return closed_ || count_ < slots_.size(); });
        if (closed_) return false;
        place(std::move(v));
        lock.unlock();
        cv_items_.notify_one();
        return true;
    }

    /// Non-blocking push. On Full/Closed the value stays in `v` so a
    /// shedding caller can complete it with a rejection.
    Push try_push(T& v) {
        std::unique_lock<std::mutex> lock(m_);
        if (closed_) return Push::Closed;
        if (count_ == slots_.size()) return Push::Full;
        place(std::move(v));
        lock.unlock();
        cv_items_.notify_one();
        return Push::Ok;
    }

    /// Blocks while the queue is empty; returns false only when the queue
    /// is closed AND fully drained (accepted items are always delivered).
    bool pop(T& out) {
        std::unique_lock<std::mutex> lock(m_);
        cv_items_.wait(lock, [&] { return closed_ || count_ > 0; });
        if (count_ == 0) return false;  // closed and drained
        take(out);
        lock.unlock();
        cv_space_.notify_one();
        return true;
    }

    /// pop() with a deadline: returns false on timeout as well as on
    /// closed-and-drained. The micro-batch coalescing wait in
    /// serve::collect_batch is the intended caller.
    bool pop_until(T& out, std::chrono::steady_clock::time_point deadline) {
        std::unique_lock<std::mutex> lock(m_);
        if (!cv_items_.wait_until(lock, deadline,
                                  [&] { return closed_ || count_ > 0; }))
            return false;  // timeout
        if (count_ == 0) return false;  // closed and drained
        take(out);
        lock.unlock();
        cv_space_.notify_one();
        return true;
    }

    /// Refuses all future pushes and wakes every blocked producer and
    /// consumer. Idempotent. Items already accepted remain poppable.
    void close() {
        {
            std::lock_guard<std::mutex> lock(m_);
            closed_ = true;
        }
        cv_items_.notify_all();
        cv_space_.notify_all();
    }

private:
    void place(T&& v) {
        slots_[(head_ + count_) % slots_.size()] = std::move(v);
        ++count_;
    }

    void take(T& out) {
        out = std::move(slots_[head_]);
        head_ = (head_ + 1) % slots_.size();
        --count_;
    }

    mutable std::mutex m_;
    std::condition_variable cv_items_;  // signaled on push/close
    std::condition_variable cv_space_;  // signaled on pop/close
    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    bool closed_ = false;
};

}  // namespace neuro::common
