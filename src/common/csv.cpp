#include "common/csv.hpp"

#include <filesystem>
#include <fstream>

namespace neuro::common {

CsvWriter::CsvWriter(std::string dir, std::string name, std::vector<std::string> header)
    : dir_(std::move(dir)), name_(std::move(name)), header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

namespace {
std::string escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}
}  // namespace

std::string CsvWriter::write() const {
    std::filesystem::create_directories(dir_);
    const std::string path = dir_ + "/" + name_ + ".csv";
    std::ofstream f(path);
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i) f << ',';
            f << escape(row[i]);
        }
        f << '\n';
    };
    emit(header_);
    for (const auto& row : rows_) emit(row);
    return path;
}

}  // namespace neuro::common
