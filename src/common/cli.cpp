#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace neuro::common {

Cli::Cli(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string_view arg(argv[i]);
        if (arg.rfind("--", 0) != 0) {
            std::fprintf(stderr, "unrecognized argument '%s' (expected --key=value)\n",
                         argv[i]);
            error_ = true;
            continue;
        }
        arg.remove_prefix(2);
        const auto eq = arg.find('=');
        if (eq == std::string_view::npos) {
            kv_[std::string(arg)] = "true";
        } else {
            kv_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
        }
    }
}

bool Cli::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace neuro::common
