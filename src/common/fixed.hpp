#pragma once
// Saturating fixed-point helpers shared by the Loihi simulator.
//
// Loihi's datapath is integer throughout: 8-bit signed synaptic weights
// (optionally scaled by a power-of-two exponent), 12-bit decay constants
// applied as  state <- state * (4096 - delta) / 4096,  and 7-bit saturating
// trace counters. These helpers capture those operations once so every
// simulator component quantizes identically.

#include <algorithm>
#include <cstdint>

namespace neuro::common {

/// Clamp to a signed two's-complement range of `bits` bits.
constexpr std::int32_t saturate_signed(std::int64_t v, int bits) {
    const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
    const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
    return static_cast<std::int32_t>(std::clamp(v, lo, hi));
}

/// Clamp to an unsigned range of `bits` bits.
constexpr std::int32_t saturate_unsigned(std::int64_t v, int bits) {
    const std::int64_t hi = (std::int64_t{1} << bits) - 1;
    return static_cast<std::int32_t>(std::clamp(v, std::int64_t{0}, hi));
}

/// Loihi-style 12-bit exponential decay: returns state * (4096 - delta)/4096
/// rounded toward zero, exactly as repeated integer multiplication on chip.
/// delta = 0 keeps the state forever (pure integrator); delta = 4096 clears
/// it in one step (the "current decays immediately" IF configuration).
constexpr std::int64_t decay12(std::int64_t state, std::int32_t delta) {
    return (state * (4096 - static_cast<std::int64_t>(delta))) / 4096;
}

/// Quantize a float to a signed integer grid of `bits` bits where `scale`
/// maps to the full positive range. Used when loading pretrained weights
/// onto the chip (paper: "quantize and scale them to 8 bit integers").
std::int32_t quantize_signed(float v, float scale, int bits);

/// Inverse of quantize_signed for probing / reference comparisons.
float dequantize_signed(std::int32_t q, float scale, int bits);

}  // namespace neuro::common
