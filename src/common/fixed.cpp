#include "common/fixed.hpp"

#include <cmath>

namespace neuro::common {

std::int32_t quantize_signed(float v, float scale, int bits) {
    if (scale <= 0.0f) return 0;
    const float hi = static_cast<float>((std::int64_t{1} << (bits - 1)) - 1);
    const float q = std::round(v / scale * hi);
    return saturate_signed(static_cast<std::int64_t>(q), bits);
}

float dequantize_signed(std::int32_t q, float scale, int bits) {
    const float hi = static_cast<float>((std::int64_t{1} << (bits - 1)) - 1);
    return static_cast<float>(q) * scale / hi;
}

}  // namespace neuro::common
