#pragma once
// Deterministic random number generation for the whole project.
//
// Everything stochastic (dataset synthesis, weight initialization, feedback
// alignment matrices) draws from one of these generators so that a fixed
// seed reproduces every accuracy and energy number bit-for-bit.
//
// We deliberately do not use <random>'s engines/distributions because their
// outputs are implementation-defined across standard libraries; xoshiro256++
// with explicit distribution code gives identical streams everywhere.

#include <array>
#include <cstdint>
#include <vector>

namespace neuro::common {

/// SplitMix64 — used only to expand a 64-bit seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ PRNG (Blackman & Vigna). Fast, 256-bit state, suitable for
/// everything in this project (we never need cryptographic randomness).
class Rng {
public:
    /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /// Next raw 64-bit value.
    std::uint64_t next_u64();

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Standard normal via Box-Muller (deterministic two-draw form).
    double normal();

    /// Normal with the given mean and standard deviation.
    double normal(double mean, double stddev);

    /// Bernoulli trial with probability p of returning true.
    bool bernoulli(double p);

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        if (v.empty()) return;
        for (std::size_t i = v.size() - 1; i > 0; --i) {
            const auto j =
                static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i)));
            std::swap(v[i], v[j]);
        }
    }

    /// Derives an independent child generator; used to give each dataset /
    /// layer / experiment its own stream while staying reproducible.
    Rng split();

private:
    std::array<std::uint64_t, 4> s_{};
    bool have_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

}  // namespace neuro::common
