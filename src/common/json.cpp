#include "common/json.hpp"

#include <cmath>
#include <cstdio>

namespace neuro::common {

std::string json_quote(const std::string& s) {
    std::string q = "\"";
    for (const char c : s) {
        switch (c) {
            case '"': q += "\\\""; break;
            case '\\': q += "\\\\"; break;
            case '\n': q += "\\n"; break;
            case '\t': q += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    q += buf;
                } else {
                    q += c;
                }
        }
    }
    return q + "\"";
}

bool is_json_number(const std::string& s) {
    std::size_t i = 0;
    const auto digit = [&](std::size_t k) {
        return k < s.size() && s[k] >= '0' && s[k] <= '9';
    };
    const auto digits = [&]() {
        std::size_t n = 0;
        while (digit(i)) ++i, ++n;
        return n;
    };
    if (i < s.size() && s[i] == '-') ++i;
    if (i < s.size() && s[i] == '0')
        ++i;  // a leading zero must stand alone
    else if (digits() == 0)
        return false;
    if (i < s.size() && s[i] == '.') {
        ++i;
        if (digits() == 0) return false;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
        ++i;
        if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
        if (digits() == 0) return false;
    }
    return i == s.size();
}

std::string json_cell(const std::string& s) {
    return !s.empty() && is_json_number(s) ? s : json_quote(s);
}

std::string json_double(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    std::string out(buf);
    // %g can print "1e+05" style exponents, which are valid JSON, but it
    // never prints a bare trailing '.' — so the grammar check only fails
    // on pathological locales; fall back to quoting rather than emitting
    // invalid JSON.
    return is_json_number(out) ? out : json_quote(out);
}

}  // namespace neuro::common
