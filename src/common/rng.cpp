#include "common/rng.hpp"

#include <cmath>

namespace neuro::common {

std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() {
    // 53 top bits -> double in [0,1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Rejection-free modulo is fine here: span is tiny relative to 2^64, the
    // bias is < 2^-50 and irrelevant for synthetic data generation.
    return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
    if (have_cached_normal_) {
        have_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller; u1 is kept away from 0 so log() is finite.
    double u1 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    have_cached_normal_ = true;
    return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace neuro::common
