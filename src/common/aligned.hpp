#pragma once
// 64-byte-aligned allocator for the SIMD state lanes (loihi::CompartmentBank).
//
// Cache-line alignment guarantees every lane starts on a vector-register
// boundary, so the autovectorized sweep loops need no scalar peel prologue
// and never split a cache line between two iterations of the hot loop.

#include <cstddef>
#include <new>

namespace neuro::common {

template <typename T, std::size_t Align = 64>
struct AlignedAlloc {
    static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                  "alignment must be a power of two covering alignof(T)");
    using value_type = T;

    AlignedAlloc() = default;
    template <typename U>
    AlignedAlloc(const AlignedAlloc<U, Align>&) noexcept {}

    template <typename U>
    struct rebind {
        using other = AlignedAlloc<U, Align>;
    };

    T* allocate(std::size_t n) {
        return static_cast<T*>(
            ::operator new(n * sizeof(T), std::align_val_t{Align}));
    }
    void deallocate(T* p, std::size_t) noexcept {
        ::operator delete(p, std::align_val_t{Align});
    }

    friend bool operator==(const AlignedAlloc&, const AlignedAlloc&) noexcept {
        return true;
    }
    friend bool operator!=(const AlignedAlloc&, const AlignedAlloc&) noexcept {
        return false;
    }
};

}  // namespace neuro::common
