#pragma once
// Small statistics helpers: accuracy bookkeeping, confusion matrices,
// running means and the log-bucketed latency histogram, shared by trainers,
// serving subsystems (serve, online), tests and benches.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace neuro::common {

double mean(const std::vector<double>& v);
double stddev(const std::vector<double>& v);

/// Index of the largest element (first on ties); 0 for an empty vector.
std::size_t argmax(const std::vector<double>& v);
std::size_t argmax(const std::vector<int>& v);

/// Square class-confusion matrix with accuracy / per-class recall readouts.
class Confusion {
public:
    explicit Confusion(std::size_t num_classes);

    void add(std::size_t truth, std::size_t predicted);

    std::size_t total() const { return total_; }
    std::size_t correct() const { return correct_; }
    /// Overall accuracy in [0,1]; 0 when empty.
    double accuracy() const;
    /// Recall of one class; 0 when the class was never seen.
    double recall(std::size_t cls) const;
    /// Accuracy restricted to a subset of true classes (used by the
    /// incremental-online-learning experiment to score "old" vs "new").
    double accuracy_over(const std::vector<std::size_t>& classes) const;

    std::size_t num_classes() const { return n_; }
    std::size_t count(std::size_t truth, std::size_t predicted) const;

    /// Multi-line printable rendering.
    std::string str() const;

private:
    std::size_t n_;
    std::vector<std::size_t> cells_;  // n_ x n_, row = truth
    std::size_t total_ = 0;
    std::size_t correct_ = 0;
};

/// Fixed-footprint latency histogram: 64 octaves x 16 sub-buckets per
/// octave (~6% relative resolution), plus a sub-microsecond bucket. No
/// allocation on record(), so hot loops can log every event. Not
/// thread-safe — callers own the synchronization (serve::ServerMetrics
/// records under its mutex). Extracted from neuro::serve so the online
/// engine and future subsystems can reuse it without depending on serve.
class LatencyHistogram {
public:
    static constexpr std::size_t kOctaves = 64;
    static constexpr std::size_t kSubBuckets = 16;

    void record(double us);

    std::uint64_t count() const { return count_; }
    double max_us() const { return max_; }
    double mean_us() const {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    /// Value at quantile q in [0, 1] — the upper edge of the bucket holding
    /// the rank-ceil(q*count) sample, so the estimate errs high by at most
    /// one sub-bucket (~6%). Returns 0 when empty.
    double percentile(double q) const;

private:
    static std::size_t bucket_of(double us);
    static double upper_edge(std::size_t bucket);

    std::array<std::uint64_t, 1 + kOctaves * kSubBuckets> buckets_{};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double max_ = 0.0;
};

}  // namespace neuro::common
