#pragma once
// Small statistics helpers: accuracy bookkeeping, confusion matrices and
// running means, shared by trainers, tests and benches.

#include <cstddef>
#include <string>
#include <vector>

namespace neuro::common {

double mean(const std::vector<double>& v);
double stddev(const std::vector<double>& v);

/// Index of the largest element (first on ties); 0 for an empty vector.
std::size_t argmax(const std::vector<double>& v);
std::size_t argmax(const std::vector<int>& v);

/// Square class-confusion matrix with accuracy / per-class recall readouts.
class Confusion {
public:
    explicit Confusion(std::size_t num_classes);

    void add(std::size_t truth, std::size_t predicted);

    std::size_t total() const { return total_; }
    std::size_t correct() const { return correct_; }
    /// Overall accuracy in [0,1]; 0 when empty.
    double accuracy() const;
    /// Recall of one class; 0 when the class was never seen.
    double recall(std::size_t cls) const;
    /// Accuracy restricted to a subset of true classes (used by the
    /// incremental-online-learning experiment to score "old" vs "new").
    double accuracy_over(const std::vector<std::size_t>& classes) const;

    std::size_t num_classes() const { return n_; }
    std::size_t count(std::size_t truth, std::size_t predicted) const;

    /// Multi-line printable rendering.
    std::string str() const;

private:
    std::size_t n_;
    std::vector<std::size_t> cells_;  // n_ x n_, row = truth
    std::size_t total_ = 0;
    std::size_t correct_ = 0;
};

}  // namespace neuro::common
