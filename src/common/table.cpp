#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace neuro::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
    row.resize(header_.size());
    rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

std::string Table::pct(double fraction, int precision) {
    return fmt(fraction * 100.0, precision) + "%";
}

namespace {
bool looks_numeric(const std::string& s) {
    if (s.empty()) return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
            c != '+' && c != '%' && c != 'e' && c != 'E' && c != 'x')
            return false;
    }
    return std::any_of(s.begin(), s.end(),
                       [](char c) { return std::isdigit(static_cast<unsigned char>(c)); });
}
}  // namespace

std::string Table::str() const {
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row, bool align_right) {
        for (std::size_t c = 0; c < header_.size(); ++c) {
            const std::string& cell = c < row.size() ? row[c] : std::string{};
            const bool right = align_right && looks_numeric(cell);
            if (c) os << "  ";
            if (right)
                os << std::string(width[c] - cell.size(), ' ') << cell;
            else
                os << cell << std::string(width[c] - cell.size(), ' ');
        }
        os << '\n';
    };

    emit_row(header_, false);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit_row(row, true);
    return os.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace neuro::common
