#pragma once
// A small fixed-size worker pool for data-parallel fan-out (used by
// core::ParallelTrainer to drive one network replica per worker).
//
// Deliberately minimal: one blocking `run(jobs, fn)` primitive that executes
// fn(0) .. fn(jobs-1) across the workers and returns when all are done. No
// futures, no task graph — the trainer's batch loop is a strict fork/join,
// and keeping the primitive strict keeps the determinism argument simple
// (all cross-thread data hand-off happens at the join barrier).

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace neuro::common {

class ThreadPool {
public:
    /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
    /// (at least 1).
    explicit ThreadPool(std::size_t threads = 0);
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;
    ~ThreadPool();

    std::size_t size() const { return workers_.size(); }

    /// Runs fn(job) for every job in [0, jobs), distributing jobs across the
    /// workers, and blocks until all have finished. Jobs are claimed from a
    /// shared counter, so callers that need determinism must make fn's
    /// result independent of which worker runs which job (ParallelTrainer
    /// writes into per-job slots for exactly this reason). If any job
    /// throws, the first exception is rethrown here after the join.
    void run(std::size_t jobs, const std::function<void(std::size_t)>& fn);

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::mutex m_;
    std::condition_variable cv_work_;
    std::condition_variable cv_done_;
    const std::function<void(std::size_t)>* fn_ = nullptr;
    std::size_t jobs_ = 0;
    std::size_t next_ = 0;
    std::size_t in_flight_ = 0;
    std::exception_ptr first_error_;
    bool stop_ = false;
};

}  // namespace neuro::common
