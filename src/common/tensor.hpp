#pragma once
// Minimal dense float tensor used by the dataset generators, the offline ANN
// trainer and the full-precision EMSTDP reference. The Loihi simulator does
// NOT use this type — on-chip state is integer by construction.

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace neuro::common {

/// Row-major N-dimensional float tensor. Intentionally small: shape + flat
/// storage + the handful of element-wise helpers the project needs.
class Tensor {
public:
    Tensor() = default;

    /// Zero-initialized tensor of the given shape.
    explicit Tensor(std::vector<std::size_t> shape);

    Tensor(std::initializer_list<std::size_t> shape)
        : Tensor(std::vector<std::size_t>(shape)) {}

    /// Total number of elements.
    std::size_t size() const { return data_.size(); }
    const std::vector<std::size_t>& shape() const { return shape_; }
    std::size_t rank() const { return shape_.size(); }
    std::size_t dim(std::size_t i) const { return shape_.at(i); }

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }

    float& operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /// 2-d indexed access (row, col); bounds are the caller's responsibility
    /// except in debug builds.
    float& at2(std::size_t r, std::size_t c) { return data_[r * shape_[1] + c]; }
    float at2(std::size_t r, std::size_t c) const { return data_[r * shape_[1] + c]; }

    /// 3-d indexed access (channel, row, col) for CHW images.
    float& at3(std::size_t ch, std::size_t r, std::size_t c) {
        return data_[(ch * shape_[1] + r) * shape_[2] + c];
    }
    float at3(std::size_t ch, std::size_t r, std::size_t c) const {
        return data_[(ch * shape_[1] + r) * shape_[2] + c];
    }

    /// 4-d indexed access (n, channel, row, col) for weight banks.
    float& at4(std::size_t n, std::size_t ch, std::size_t r, std::size_t c) {
        return data_[((n * shape_[1] + ch) * shape_[2] + r) * shape_[3] + c];
    }
    float at4(std::size_t n, std::size_t ch, std::size_t r, std::size_t c) const {
        return data_[((n * shape_[1] + ch) * shape_[2] + r) * shape_[3] + c];
    }

    void fill(float v);
    /// Reshape in place; total element count must be preserved.
    void reshape(std::vector<std::size_t> shape);

    Tensor& operator+=(const Tensor& rhs);
    Tensor& operator-=(const Tensor& rhs);
    Tensor& operator*=(float s);

    float min() const;
    float max() const;
    float sum() const;
    float mean() const;
    /// Index of the largest element (first on ties).
    std::size_t argmax() const;

    /// "Tensor[2x3x4]" — used in error messages and probes.
    std::string describe() const;

    auto begin() { return data_.begin(); }
    auto end() { return data_.end(); }
    auto begin() const { return data_.begin(); }
    auto end() const { return data_.end(); }

private:
    std::vector<std::size_t> shape_;
    std::vector<float> data_;
};

}  // namespace neuro::common
