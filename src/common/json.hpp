#pragma once
// Minimal JSON emission helpers shared by everything in the project that
// writes JSON by hand: bench_util::JsonWriter (bench result arrays),
// serve::stats_to_json (the ServerStats blob behind the neurod control
// socket's `stats` command), and the netd daemon's connection dumps. One
// escaping implementation, one number grammar — so a cell that round-trips
// through any of them is always valid JSON.
//
// This is an *emitter* only. Nothing in the project parses JSON; the
// consumers are CI tooling (tools/check_bench_regression.py) and humans.

#include <cstdint>
#include <string>

namespace neuro::common {

/// `s` as a double-quoted JSON string literal: quotes/backslashes escaped,
/// control characters emitted as \uXXXX (plus the \n and \t shorthands).
std::string json_quote(const std::string& s);

/// Strict JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
/// — deliberately narrower than strtod (no hex, no leading '.', no '+',
/// no inf/nan), so a pass-through cell is always valid JSON.
bool is_json_number(const std::string& s);

/// Numbers pass through raw (JSON numbers); everything else becomes an
/// escaped string literal.
std::string json_cell(const std::string& s);

/// A finite double as a JSON number (shortest round-trip-safe form);
/// non-finite values — which JSON cannot represent — become null.
std::string json_double(double v);

/// Incremental "{...}" builder for flat or hand-nested objects. add() keys
/// are escaped; values are typed. add_raw() splices pre-built JSON (a
/// nested object or array) verbatim.
class JsonObject {
public:
    JsonObject() : out_("{") {}

    JsonObject& add(const std::string& key, const std::string& v) {
        return add_raw(key, json_quote(v));
    }
    JsonObject& add(const std::string& key, const char* v) {
        return add_raw(key, json_quote(v));
    }
    JsonObject& add(const std::string& key, double v) {
        return add_raw(key, json_double(v));
    }
    JsonObject& add(const std::string& key, std::uint64_t v) {
        return add_raw(key, std::to_string(v));
    }
    JsonObject& add(const std::string& key, std::int64_t v) {
        return add_raw(key, std::to_string(v));
    }
    JsonObject& add(const std::string& key, bool v) {
        return add_raw(key, v ? "true" : "false");
    }
    JsonObject& add_raw(const std::string& key, const std::string& raw_json) {
        if (out_.size() > 1) out_ += ",";
        out_ += json_quote(key);
        out_ += ":";
        out_ += raw_json;
        return *this;
    }

    /// The finished object. The builder may keep add()ing afterwards; str()
    /// is a pure snapshot.
    std::string str() const { return out_ + "}"; }

private:
    std::string out_;
};

}  // namespace neuro::common
