// CIFAR-10 substitute: 32x32 RGB scenes with a class-specific object
// archetype over a cluttered background. This is the hardest of the four
// generators — classes share shapes (cat/dog/deer/horse are all
// quadruped-ish blobs) and hue is jittered heavily — mirroring CIFAR-10's
// position as the hardest paper benchmark (Table I: 61.6% on Loihi).

#include <cmath>

#include "data/dataset.hpp"
#include "data/raster.hpp"

namespace neuro::data {

namespace {

struct Rgb {
    float r, g, b;
};

/// Base hue per class; per-sample jitter is added on top.
Rgb class_hue(std::size_t label) {
    switch (label) {
        case 0: return {0.75f, 0.78f, 0.85f};  // airplane: silver on sky
        case 1: return {0.80f, 0.15f, 0.15f};  // automobile: red body
        case 2: return {0.55f, 0.45f, 0.30f};  // bird: brown
        case 3: return {0.55f, 0.50f, 0.45f};  // cat: grey-brown
        case 4: return {0.50f, 0.35f, 0.20f};  // deer: tan
        case 5: return {0.40f, 0.30f, 0.25f};  // dog: dark brown
        case 6: return {0.25f, 0.65f, 0.25f};  // frog: green
        case 7: return {0.45f, 0.30f, 0.20f};  // horse: chestnut
        case 8: return {0.55f, 0.55f, 0.60f};  // ship: grey hull
        case 9: return {0.75f, 0.60f, 0.20f};  // truck: yellow cab
        default: return {0.5f, 0.5f, 0.5f};
    }
}

/// Background palette: sky-ish for flying/water classes, ground-ish others.
Rgb background_hue(std::size_t label, common::Rng& rng) {
    const bool sky = label == 0 || label == 2;
    const bool water = label == 8;
    Rgb base;
    if (sky)
        base = {0.45f, 0.62f, 0.85f};
    else if (water)
        base = {0.25f, 0.40f, 0.60f};
    else
        base = {0.35f, 0.48f, 0.30f};
    const float j = static_cast<float>(rng.normal(0.0, 0.06));
    return {base.r + j, base.g + j, base.b + j};
}

/// Object silhouette on a single-channel mask canvas.
void draw_object_mask(Canvas& m, std::size_t label, common::Rng& rng) {
    const auto H = static_cast<float>(m.height());
    const auto W = static_cast<float>(m.width());
    auto X = [&](float u) { return u * W; };
    auto Y = [&](float v) { return v * H; };
    const float wob = static_cast<float>(rng.normal(0.0, 0.02));
    switch (label) {
        case 0:  // airplane: fuselage + swept wings
            m.fill_ellipse(X(0.5f), Y(0.5f + wob), W * 0.32f, H * 0.07f, 0.05f, 1.0f);
            m.fill_triangle(X(0.42f), Y(0.5f), X(0.3f), Y(0.72f), X(0.56f), Y(0.5f), 1.0f);
            m.fill_triangle(X(0.42f), Y(0.5f), X(0.3f), Y(0.3f), X(0.56f), Y(0.5f), 1.0f);
            m.fill_triangle(X(0.78f), Y(0.5f), X(0.72f), Y(0.36f), X(0.84f), Y(0.5f), 1.0f);
            break;
        case 1:  // automobile: body + cabin + wheels
            m.fill_rect(X(0.5f), Y(0.6f), W * 0.3f, H * 0.1f, 0.0f, 1.0f);
            m.fill_rect(X(0.5f), Y(0.46f), W * 0.17f, H * 0.08f, 0.0f, 1.0f);
            m.fill_ellipse(X(0.32f), Y(0.72f), W * 0.06f, H * 0.06f, 0.0f, 1.0f);
            m.fill_ellipse(X(0.68f), Y(0.72f), W * 0.06f, H * 0.06f, 0.0f, 1.0f);
            break;
        case 2:  // bird: small body + wing + beak
            m.fill_ellipse(X(0.5f), Y(0.52f), W * 0.16f, H * 0.1f, 0.1f, 1.0f);
            m.fill_triangle(X(0.45f), Y(0.5f), X(0.3f), Y(0.3f), X(0.6f), Y(0.45f), 1.0f);
            m.fill_ellipse(X(0.66f), Y(0.45f), W * 0.06f, H * 0.05f, 0.0f, 1.0f);
            break;
        case 3:  // cat: body + round head + pointed ears
            m.fill_ellipse(X(0.48f), Y(0.6f), W * 0.2f, H * 0.14f, 0.0f, 1.0f);
            m.fill_ellipse(X(0.66f), Y(0.4f), W * 0.1f, H * 0.1f, 0.0f, 1.0f);
            m.fill_triangle(X(0.6f), Y(0.33f), X(0.62f), Y(0.2f), X(0.68f), Y(0.32f), 1.0f);
            m.fill_triangle(X(0.7f), Y(0.32f), X(0.74f), Y(0.2f), X(0.76f), Y(0.33f), 1.0f);
            break;
        case 4:  // deer: slim body, long legs, antler strokes
            m.fill_ellipse(X(0.5f), Y(0.5f), W * 0.18f, H * 0.1f, 0.0f, 1.0f);
            m.stroke(X(0.38f), Y(0.58f), X(0.36f), Y(0.82f), 1.6f, 1.0f);
            m.stroke(X(0.62f), Y(0.58f), X(0.64f), Y(0.82f), 1.6f, 1.0f);
            m.fill_ellipse(X(0.66f), Y(0.34f), W * 0.06f, H * 0.06f, 0.0f, 1.0f);
            m.stroke(X(0.68f), Y(0.28f), X(0.74f), Y(0.16f), 1.2f, 1.0f);
            m.stroke(X(0.64f), Y(0.28f), X(0.6f), Y(0.16f), 1.2f, 1.0f);
            break;
        case 5:  // dog: body + head + floppy ears
            m.fill_ellipse(X(0.46f), Y(0.58f), W * 0.2f, H * 0.13f, 0.0f, 1.0f);
            m.fill_ellipse(X(0.66f), Y(0.42f), W * 0.11f, H * 0.1f, 0.0f, 1.0f);
            m.fill_ellipse(X(0.6f), Y(0.46f), W * 0.04f, H * 0.08f, 0.3f, 1.0f);
            m.stroke(X(0.4f), Y(0.68f), X(0.38f), Y(0.82f), 2.0f, 1.0f);
            m.stroke(X(0.56f), Y(0.68f), X(0.58f), Y(0.82f), 2.0f, 1.0f);
            break;
        case 6:  // frog: wide flat body + eye bumps
            m.fill_ellipse(X(0.5f), Y(0.62f), W * 0.26f, H * 0.12f, 0.0f, 1.0f);
            m.fill_ellipse(X(0.4f), Y(0.48f), W * 0.05f, H * 0.05f, 0.0f, 1.0f);
            m.fill_ellipse(X(0.6f), Y(0.48f), W * 0.05f, H * 0.05f, 0.0f, 1.0f);
            break;
        case 7:  // horse: large body + neck + legs
            m.fill_ellipse(X(0.46f), Y(0.52f), W * 0.22f, H * 0.12f, 0.0f, 1.0f);
            m.fill_rect(X(0.66f), Y(0.38f), W * 0.05f, H * 0.12f, -0.35f, 1.0f);
            m.fill_ellipse(X(0.74f), Y(0.28f), W * 0.07f, H * 0.05f, 0.2f, 1.0f);
            m.stroke(X(0.34f), Y(0.6f), X(0.32f), Y(0.84f), 1.8f, 1.0f);
            m.stroke(X(0.58f), Y(0.6f), X(0.6f), Y(0.84f), 1.8f, 1.0f);
            break;
        case 8:  // ship: hull trapezoid + superstructure + mast
            m.fill_triangle(X(0.2f), Y(0.6f), X(0.8f), Y(0.6f), X(0.68f), Y(0.74f), 1.0f);
            m.fill_triangle(X(0.2f), Y(0.6f), X(0.32f), Y(0.74f), X(0.68f), Y(0.74f), 1.0f);
            m.fill_rect(X(0.5f), Y(0.5f), W * 0.14f, H * 0.07f, 0.0f, 1.0f);
            m.stroke(X(0.5f), Y(0.43f), X(0.5f), Y(0.26f), 1.4f, 1.0f);
            break;
        case 9:  // truck: long cargo box + cab + wheels
            m.fill_rect(X(0.42f), Y(0.52f), W * 0.24f, H * 0.14f, 0.0f, 1.0f);
            m.fill_rect(X(0.74f), Y(0.58f), W * 0.09f, H * 0.09f, 0.0f, 1.0f);
            m.fill_ellipse(X(0.3f), Y(0.72f), W * 0.055f, H * 0.055f, 0.0f, 1.0f);
            m.fill_ellipse(X(0.56f), Y(0.72f), W * 0.055f, H * 0.055f, 0.0f, 1.0f);
            m.fill_ellipse(X(0.76f), Y(0.72f), W * 0.055f, H * 0.055f, 0.0f, 1.0f);
            break;
        default:
            break;
    }
}

}  // namespace

Dataset make_cifar(const GenOptions& opt) {
    const std::size_t h = opt.height ? opt.height : 32;
    const std::size_t w = opt.width ? opt.width : 32;
    Dataset d;
    d.name = "cifar";
    d.channels = 3;
    d.height = h;
    d.width = w;
    d.num_classes = 10;
    d.samples.reserve(opt.count);

    common::Rng rng(opt.seed ^ 0xC1FA9ULL);
    for (std::size_t i = 0; i < opt.count; ++i) {
        const auto label = static_cast<std::size_t>(i % 10);

        Canvas mask(h, w);
        draw_object_mask(mask, label, rng);
        const float angle = static_cast<float>(rng.normal(0.0, 0.12));
        const float scale = static_cast<float>(rng.uniform(0.8, 1.15));
        const float tx = static_cast<float>(rng.uniform(-2.5, 2.5));
        const float ty = static_cast<float>(rng.uniform(-2.0, 2.0));
        Canvas warped = mask.jitter(angle, scale, tx, ty);
        warped.blur(1);

        const Rgb obj0 = class_hue(label);
        const float hue_j = static_cast<float>(rng.normal(0.0, 0.16));
        const Rgb obj = {obj0.r + hue_j, obj0.g + hue_j, obj0.b + hue_j};
        const Rgb bg = background_hue(label, rng);

        Sample s;
        s.label = label;
        s.image = common::Tensor({3, h, w});
        for (std::size_t y = 0; y < h; ++y) {
            // Vertical background gradient plus clutter noise.
            const float grad =
                0.85f + 0.3f * (static_cast<float>(y) / static_cast<float>(h) - 0.5f);
            for (std::size_t x = 0; x < w; ++x) {
                const float a = warped.at(y, x);
                const float clutter = static_cast<float>(rng.normal(0.0, 0.24));
                auto mix = [&](float o, float b) {
                    float v = a * o + (1.0f - a) * b * grad + clutter;
                    return std::min(1.0f, std::max(0.0f, v));
                };
                s.image.at3(0, y, x) = mix(obj.r, bg.r);
                s.image.at3(1, y, x) = mix(obj.g, bg.g);
                s.image.at3(2, y, x) = mix(obj.b, bg.b);
            }
        }
        d.samples.push_back(std::move(s));
    }
    return d;
}

}  // namespace neuro::data
