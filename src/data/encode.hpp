#pragma once
// Input encoding for the chip (paper Sec. III-D, "Operation Flow 1").
//
// Instead of streaming rate-coded spikes from the host (one host<->chip
// transaction per spike), the paper quantizes each real-valued input to the
// phase length T and programs it as the *bias* of the corresponding input
// neuron. The neuron integrates the bias every step, producing an on-chip
// spike train whose rate floor(i*T/theta) is linearly proportional to the
// input — one transaction per sample instead of O(pixels * T).

#include <cstdint>
#include <vector>

#include "common/tensor.hpp"

namespace neuro::data {

/// Quantizes pixels in [0,1] to integer bias values in [0, T]. A pixel of
/// value p produces bias round(p*T); driving an IF neuron with threshold
/// theta = T yields a spike rate of ~p per step (paper: "Quantize x to T
/// bins").
std::vector<std::int32_t> quantize_to_bias(const common::Tensor& image,
                                           std::int32_t phase_length);

/// Host-side rate coding used by the ablation of adaptation technique 4:
/// produces, for each pixel, the explicit spike raster of length T that the
/// host would have to insert (spike at step t when the accumulated value
/// crosses the threshold). Returns pixel-major rasters.
std::vector<std::vector<bool>> rate_code_spikes(const common::Tensor& image,
                                                std::int32_t phase_length);

/// Number of host->chip transactions each encoding needs for one sample:
/// bias programming needs one write per pixel; spike insertion needs one
/// write per spike. Used by bench/ablation_input_encoding.
struct IoCost {
    std::size_t bias_writes = 0;
    std::size_t spike_inserts = 0;
};
IoCost io_cost(const common::Tensor& image, std::int32_t phase_length);

}  // namespace neuro::data
