#include "data/raster.hpp"

#include <algorithm>
#include <cmath>

namespace neuro::data {

Canvas::Canvas(std::size_t height, std::size_t width)
    : h_(height), w_(width), px_(height * width, 0.0f) {}

namespace {
/// Signed coverage falloff: full intensity inside the shape, linear
/// anti-aliasing ramp over one pixel at the boundary.
inline float coverage(float signed_distance) {
    if (signed_distance <= 0.0f) return 1.0f;
    if (signed_distance >= 1.0f) return 0.0f;
    return 1.0f - signed_distance;
}
}  // namespace

void Canvas::stroke(float x0, float y0, float x1, float y1, float thickness,
                    float intensity) {
    const float half = thickness * 0.5f;
    const float pad = half + 1.5f;
    const int ymin = std::max(0, static_cast<int>(std::floor(std::min(y0, y1) - pad)));
    const int ymax = std::min(static_cast<int>(h_) - 1,
                              static_cast<int>(std::ceil(std::max(y0, y1) + pad)));
    const int xmin = std::max(0, static_cast<int>(std::floor(std::min(x0, x1) - pad)));
    const int xmax = std::min(static_cast<int>(w_) - 1,
                              static_cast<int>(std::ceil(std::max(x0, x1) + pad)));
    const float dx = x1 - x0;
    const float dy = y1 - y0;
    const float len2 = dx * dx + dy * dy;
    for (int y = ymin; y <= ymax; ++y) {
        for (int x = xmin; x <= xmax; ++x) {
            const float px = static_cast<float>(x) - x0;
            const float py = static_cast<float>(y) - y0;
            float t = len2 > 0.0f ? (px * dx + py * dy) / len2 : 0.0f;
            t = std::clamp(t, 0.0f, 1.0f);
            const float ex = px - t * dx;
            const float ey = py - t * dy;
            const float d = std::sqrt(ex * ex + ey * ey) - half;
            const float c = coverage(d);
            if (c > 0.0f)
                splat(static_cast<std::size_t>(y), static_cast<std::size_t>(x),
                      intensity * c);
        }
    }
}

void Canvas::ellipse(float cx, float cy, float rx, float ry, float thickness,
                     float intensity, float angle) {
    // Sample the outline densely and draw it as short strokes; robust for the
    // small canvases the generators use.
    const int steps =
        std::max(24, static_cast<int>(2.0f * M_PI * std::max(rx, ry) * 2.0f));
    const float ca = std::cos(angle);
    const float sa = std::sin(angle);
    float prev_x = 0.0f;
    float prev_y = 0.0f;
    for (int i = 0; i <= steps; ++i) {
        const float t = static_cast<float>(i) / static_cast<float>(steps) * 2.0f *
                        static_cast<float>(M_PI);
        const float ex = rx * std::cos(t);
        const float ey = ry * std::sin(t);
        const float x = cx + ca * ex - sa * ey;
        const float y = cy + sa * ex + ca * ey;
        if (i > 0) stroke(prev_x, prev_y, x, y, thickness, intensity);
        prev_x = x;
        prev_y = y;
    }
}

void Canvas::fill_rect(float cx, float cy, float half_w, float half_h, float angle,
                       float intensity) {
    const float ca = std::cos(-angle);
    const float sa = std::sin(-angle);
    const float pad = std::max(half_w, half_h) + 2.0f;
    const int ymin = std::max(0, static_cast<int>(std::floor(cy - pad)));
    const int ymax =
        std::min(static_cast<int>(h_) - 1, static_cast<int>(std::ceil(cy + pad)));
    const int xmin = std::max(0, static_cast<int>(std::floor(cx - pad)));
    const int xmax =
        std::min(static_cast<int>(w_) - 1, static_cast<int>(std::ceil(cx + pad)));
    for (int y = ymin; y <= ymax; ++y) {
        for (int x = xmin; x <= xmax; ++x) {
            // Rotate the pixel into the rectangle's frame.
            const float px = static_cast<float>(x) - cx;
            const float py = static_cast<float>(y) - cy;
            const float lx = ca * px - sa * py;
            const float ly = sa * px + ca * py;
            const float d =
                std::max(std::abs(lx) - half_w, std::abs(ly) - half_h);
            const float c = coverage(d);
            if (c > 0.0f)
                splat(static_cast<std::size_t>(y), static_cast<std::size_t>(x),
                      intensity * c);
        }
    }
}

void Canvas::fill_ellipse(float cx, float cy, float rx, float ry, float angle,
                          float intensity) {
    const float ca = std::cos(-angle);
    const float sa = std::sin(-angle);
    const float pad = std::max(rx, ry) + 2.0f;
    const int ymin = std::max(0, static_cast<int>(std::floor(cy - pad)));
    const int ymax =
        std::min(static_cast<int>(h_) - 1, static_cast<int>(std::ceil(cy + pad)));
    const int xmin = std::max(0, static_cast<int>(std::floor(cx - pad)));
    const int xmax =
        std::min(static_cast<int>(w_) - 1, static_cast<int>(std::ceil(cx + pad)));
    for (int y = ymin; y <= ymax; ++y) {
        for (int x = xmin; x <= xmax; ++x) {
            const float px = static_cast<float>(x) - cx;
            const float py = static_cast<float>(y) - cy;
            const float lx = (ca * px - sa * py) / std::max(rx, 1e-3f);
            const float ly = (sa * px + ca * py) / std::max(ry, 1e-3f);
            const float r = std::sqrt(lx * lx + ly * ly);
            // Approximate signed distance in pixel units.
            const float d = (r - 1.0f) * std::min(rx, ry);
            const float c = coverage(d);
            if (c > 0.0f)
                splat(static_cast<std::size_t>(y), static_cast<std::size_t>(x),
                      intensity * c);
        }
    }
}

void Canvas::fill_triangle(float x0, float y0, float x1, float y1, float x2, float y2,
                           float intensity) {
    const int ymin = std::max(
        0, static_cast<int>(std::floor(std::min({y0, y1, y2}) - 1.0f)));
    const int ymax = std::min(
        static_cast<int>(h_) - 1,
        static_cast<int>(std::ceil(std::max({y0, y1, y2}) + 1.0f)));
    const int xmin = std::max(
        0, static_cast<int>(std::floor(std::min({x0, x1, x2}) - 1.0f)));
    const int xmax = std::min(
        static_cast<int>(w_) - 1,
        static_cast<int>(std::ceil(std::max({x0, x1, x2}) + 1.0f)));
    auto edge = [](float ax, float ay, float bx, float by, float px, float py) {
        return (bx - ax) * (py - ay) - (by - ay) * (px - ax);
    };
    const float area = edge(x0, y0, x1, y1, x2, y2);
    if (std::abs(area) < 1e-6f) return;
    for (int y = ymin; y <= ymax; ++y) {
        for (int x = xmin; x <= xmax; ++x) {
            const auto px = static_cast<float>(x);
            const auto py = static_cast<float>(y);
            const float w0 = edge(x1, y1, x2, y2, px, py) / area;
            const float w1 = edge(x2, y2, x0, y0, px, py) / area;
            const float w2 = edge(x0, y0, x1, y1, px, py) / area;
            if (w0 >= 0.0f && w1 >= 0.0f && w2 >= 0.0f)
                splat(static_cast<std::size_t>(y), static_cast<std::size_t>(x),
                      intensity);
        }
    }
}

void Canvas::blur(int passes) {
    std::vector<float> tmp(px_.size());
    for (int p = 0; p < passes; ++p) {
        for (std::size_t y = 0; y < h_; ++y) {
            for (std::size_t x = 0; x < w_; ++x) {
                float acc = 0.0f;
                float wsum = 0.0f;
                for (int dy = -1; dy <= 1; ++dy) {
                    for (int dx = -1; dx <= 1; ++dx) {
                        const auto yy = static_cast<std::ptrdiff_t>(y) + dy;
                        const auto xx = static_cast<std::ptrdiff_t>(x) + dx;
                        if (yy < 0 || xx < 0 || yy >= static_cast<std::ptrdiff_t>(h_) ||
                            xx >= static_cast<std::ptrdiff_t>(w_))
                            continue;
                        // Binomial 3x3 kernel: 1-2-1 outer product.
                        const float wk = (dy == 0 ? 2.0f : 1.0f) * (dx == 0 ? 2.0f : 1.0f);
                        acc += wk * px_[static_cast<std::size_t>(yy) * w_ +
                                        static_cast<std::size_t>(xx)];
                        wsum += wk;
                    }
                }
                tmp[y * w_ + x] = acc / wsum;
            }
        }
        px_.swap(tmp);
    }
}

void Canvas::add_gaussian_noise(common::Rng& rng, float sigma) {
    for (float& p : px_) p += static_cast<float>(rng.normal(0.0, sigma));
    clamp();
}

void Canvas::apply_speckle(common::Rng& rng, float strength) {
    for (float& p : px_) {
        // Exponential(1) multiplicative speckle, blended by `strength`.
        const float u = std::max(1e-7f, static_cast<float>(rng.uniform()));
        const float speckle = -std::log(u);
        p *= (1.0f - strength) + strength * speckle;
    }
    clamp();
}

void Canvas::clamp() {
    for (float& p : px_) p = std::clamp(p, 0.0f, 1.0f);
}

Canvas Canvas::warp_affine(float a00, float a01, float a10, float a11, float tx,
                           float ty) const {
    Canvas out(h_, w_);
    const float cx = static_cast<float>(w_) * 0.5f;
    const float cy = static_cast<float>(h_) * 0.5f;
    for (std::size_t y = 0; y < h_; ++y) {
        for (std::size_t x = 0; x < w_; ++x) {
            const float dx = static_cast<float>(x) - cx;
            const float dy = static_cast<float>(y) - cy;
            const float sx = a00 * dx + a01 * dy + cx + tx;
            const float sy = a10 * dx + a11 * dy + cy + ty;
            const int x0 = static_cast<int>(std::floor(sx));
            const int y0 = static_cast<int>(std::floor(sy));
            const float fx = sx - static_cast<float>(x0);
            const float fy = sy - static_cast<float>(y0);
            float acc = 0.0f;
            for (int oy = 0; oy <= 1; ++oy) {
                for (int ox = 0; ox <= 1; ++ox) {
                    const int xx = x0 + ox;
                    const int yy = y0 + oy;
                    if (xx < 0 || yy < 0 || xx >= static_cast<int>(w_) ||
                        yy >= static_cast<int>(h_))
                        continue;
                    const float wgt = (ox ? fx : 1.0f - fx) * (oy ? fy : 1.0f - fy);
                    acc += wgt * px_[static_cast<std::size_t>(yy) * w_ +
                                     static_cast<std::size_t>(xx)];
                }
            }
            out.px_[y * w_ + x] = acc;
        }
    }
    return out;
}

Canvas Canvas::jitter(float angle, float scale, float tx, float ty) const {
    // Inverse map: rotate by -angle, scale by 1/scale.
    const float inv = 1.0f / scale;
    const float ca = std::cos(-angle) * inv;
    const float sa = std::sin(-angle) * inv;
    return warp_affine(ca, -sa, sa, ca, tx, ty);
}

}  // namespace neuro::data
