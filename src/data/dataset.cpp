#include "data/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace neuro::data {

Dataset Dataset::filter_classes(const std::vector<std::size_t>& classes) const {
    Dataset out;
    out.name = name;
    out.channels = channels;
    out.height = height;
    out.width = width;
    out.num_classes = num_classes;
    for (const auto& s : samples) {
        if (std::find(classes.begin(), classes.end(), s.label) != classes.end())
            out.samples.push_back(s);
    }
    return out;
}

void Dataset::shuffle(common::Rng& rng) { rng.shuffle(samples); }

std::pair<Dataset, Dataset> split(const Dataset& d, std::size_t train_count) {
    if (train_count > d.size())
        throw std::invalid_argument("split: train_count exceeds dataset size");
    Dataset train = d;
    Dataset test = d;
    train.samples.assign(d.samples.begin(),
                         d.samples.begin() + static_cast<std::ptrdiff_t>(train_count));
    test.samples.assign(d.samples.begin() + static_cast<std::ptrdiff_t>(train_count),
                        d.samples.end());
    return {std::move(train), std::move(test)};
}

Dataset make_by_name(const std::string& name, const GenOptions& opt) {
    if (name == "digits") return make_digits(opt);
    if (name == "fashion") return make_fashion(opt);
    if (name == "cifar") return make_cifar(opt);
    if (name == "sar") return make_sar(opt);
    throw std::invalid_argument("make_by_name: unknown dataset '" + name + "'");
}

}  // namespace neuro::data
