#include "data/idx_loader.hpp"

#include <cstdint>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace neuro::data {

namespace {

std::uint32_t read_be32(std::istream& in) {
    unsigned char b[4];
    in.read(reinterpret_cast<char*>(b), 4);
    if (!in) throw std::runtime_error("idx: truncated header");
    return (std::uint32_t{b[0]} << 24) | (std::uint32_t{b[1]} << 16) |
           (std::uint32_t{b[2]} << 8) | std::uint32_t{b[3]};
}

}  // namespace

std::optional<Dataset> load_idx(const std::string& images_path,
                                const std::string& labels_path,
                                const std::string& name, std::size_t max_count) {
    std::ifstream img(images_path, std::ios::binary);
    std::ifstream lab(labels_path, std::ios::binary);
    if (!img || !lab) return std::nullopt;

    const std::uint32_t img_magic = read_be32(img);
    if (img_magic != 0x00000803)
        throw std::runtime_error("idx: bad image magic in " + images_path);
    const std::uint32_t n_img = read_be32(img);
    const std::uint32_t rows = read_be32(img);
    const std::uint32_t cols = read_be32(img);

    const std::uint32_t lab_magic = read_be32(lab);
    if (lab_magic != 0x00000801)
        throw std::runtime_error("idx: bad label magic in " + labels_path);
    const std::uint32_t n_lab = read_be32(lab);
    if (n_img != n_lab)
        throw std::runtime_error("idx: image/label count mismatch");

    std::size_t count = n_img;
    if (max_count != 0 && max_count < count) count = max_count;

    Dataset d;
    d.name = name;
    d.channels = 1;
    d.height = rows;
    d.width = cols;
    d.num_classes = 10;
    d.samples.reserve(count);

    std::vector<unsigned char> buf(static_cast<std::size_t>(rows) * cols);
    for (std::size_t i = 0; i < count; ++i) {
        img.read(reinterpret_cast<char*>(buf.data()),
                 static_cast<std::streamsize>(buf.size()));
        char lbl = 0;
        lab.read(&lbl, 1);
        if (!img || !lab) throw std::runtime_error("idx: truncated data");
        Sample s;
        s.label = static_cast<std::size_t>(static_cast<unsigned char>(lbl));
        if (s.label > 9) throw std::runtime_error("idx: label out of range");
        s.image = common::Tensor({1, rows, cols});
        for (std::size_t p = 0; p < buf.size(); ++p)
            s.image[p] = static_cast<float>(buf[p]) / 255.0f;
        d.samples.push_back(std::move(s));
    }
    return d;
}

namespace {

void write_be32(std::ostream& out, std::uint32_t v) {
    const unsigned char b[4] = {static_cast<unsigned char>(v >> 24),
                                static_cast<unsigned char>(v >> 16),
                                static_cast<unsigned char>(v >> 8),
                                static_cast<unsigned char>(v)};
    out.write(reinterpret_cast<const char*>(b), 4);
}

}  // namespace

void save_idx(const Dataset& dataset, const std::string& images_path,
              const std::string& labels_path) {
    if (dataset.channels != 1)
        throw std::invalid_argument("save_idx: IDX ubyte images are single-channel");
    std::ofstream img(images_path, std::ios::binary);
    std::ofstream lab(labels_path, std::ios::binary);
    if (!img || !lab) throw std::runtime_error("save_idx: cannot open output files");

    write_be32(img, 0x00000803);
    write_be32(img, static_cast<std::uint32_t>(dataset.size()));
    write_be32(img, static_cast<std::uint32_t>(dataset.height));
    write_be32(img, static_cast<std::uint32_t>(dataset.width));
    write_be32(lab, 0x00000801);
    write_be32(lab, static_cast<std::uint32_t>(dataset.size()));

    std::vector<unsigned char> buf(dataset.height * dataset.width);
    for (const auto& s : dataset.samples) {
        for (std::size_t p = 0; p < buf.size(); ++p) {
            float v = s.image[p];
            if (v < 0.0f) v = 0.0f;
            if (v > 1.0f) v = 1.0f;
            buf[p] = static_cast<unsigned char>(v * 255.0f + 0.5f);
        }
        img.write(reinterpret_cast<const char*>(buf.data()),
                  static_cast<std::streamsize>(buf.size()));
        const char lbl = static_cast<char>(s.label);
        lab.write(&lbl, 1);
    }
    if (!img || !lab) throw std::runtime_error("save_idx: write failed");
}

std::optional<Dataset> load_mnist_dir(const std::string& dir, const std::string& split,
                                      std::size_t max_count) {
    return load_idx(dir + "/" + split + "-images-idx3-ubyte",
                    dir + "/" + split + "-labels-idx1-ubyte", "mnist-" + split,
                    max_count);
}

}  // namespace neuro::data
