// Fashion-MNIST substitute: procedurally drawn garment silhouettes (the ten
// Fashion-MNIST categories) with fill-intensity texture, affine jitter and
// noise. Deliberately harder than the digit generator: several classes share
// silhouettes (t-shirt / pullover / coat / shirt differ only in sleeve length
// and texture), mirroring Fashion-MNIST's position in Table I (84.3%).

#include <cmath>

#include "data/dataset.hpp"
#include "data/raster.hpp"

namespace neuro::data {

namespace {

/// Draws one garment class on the unit-box-mapped canvas.
/// Classes follow the Fashion-MNIST label order:
/// 0 t-shirt, 1 trouser, 2 pullover, 3 dress, 4 coat,
/// 5 sandal, 6 shirt, 7 sneaker, 8 bag, 9 ankle boot.
void draw_garment(Canvas& c, std::size_t label, common::Rng& rng) {
    const auto H = static_cast<float>(c.height());
    const auto W = static_cast<float>(c.width());
    auto X = [&](float u) { return u * W; };
    auto Y = [&](float v) { return v * H; };
    const float body = static_cast<float>(rng.uniform(0.82, 1.0));
    const float lite = body * 0.6f;
    switch (label) {
        case 0:  // t-shirt: torso + short horizontal sleeves
            c.fill_rect(X(0.5f), Y(0.55f), W * 0.16f, H * 0.28f, 0.0f, body);
            c.fill_rect(X(0.26f), Y(0.38f), W * 0.10f, H * 0.07f, 0.25f, body);
            c.fill_rect(X(0.74f), Y(0.38f), W * 0.10f, H * 0.07f, -0.25f, body);
            break;
        case 1:  // trouser: two legs joined by a waistband
            c.fill_rect(X(0.5f), Y(0.24f), W * 0.17f, H * 0.07f, 0.0f, body);
            c.fill_rect(X(0.41f), Y(0.6f), W * 0.07f, H * 0.32f, 0.04f, body);
            c.fill_rect(X(0.59f), Y(0.6f), W * 0.07f, H * 0.32f, -0.04f, body);
            break;
        case 2:  // pullover: torso + long sleeves angled down
            c.fill_rect(X(0.5f), Y(0.55f), W * 0.16f, H * 0.28f, 0.0f, body);
            c.fill_rect(X(0.24f), Y(0.55f), W * 0.07f, H * 0.24f, 0.18f, body);
            c.fill_rect(X(0.76f), Y(0.55f), W * 0.07f, H * 0.24f, -0.18f, body);
            break;
        case 3:  // dress: narrow bodice flaring to a wide hem
            c.fill_triangle(X(0.5f), Y(0.18f), X(0.22f), Y(0.9f), X(0.78f), Y(0.9f),
                            body);
            c.fill_rect(X(0.5f), Y(0.22f), W * 0.10f, H * 0.10f, 0.0f, body);
            break;
        case 4:  // coat: long torso, long sleeves, collar notch
            c.fill_rect(X(0.5f), Y(0.58f), W * 0.17f, H * 0.33f, 0.0f, body);
            c.fill_rect(X(0.25f), Y(0.56f), W * 0.07f, H * 0.28f, 0.12f, body);
            c.fill_rect(X(0.75f), Y(0.56f), W * 0.07f, H * 0.28f, -0.12f, body);
            c.stroke(X(0.5f), Y(0.25f), X(0.5f), Y(0.85f), 1.2f, lite);
            break;
        case 5:  // sandal: sole bar + straps
            c.fill_rect(X(0.5f), Y(0.72f), W * 0.3f, H * 0.05f, -0.06f, body);
            c.stroke(X(0.3f), Y(0.68f), X(0.52f), Y(0.42f), 1.6f, body);
            c.stroke(X(0.52f), Y(0.42f), X(0.72f), Y(0.62f), 1.6f, body);
            break;
        case 6:  // shirt: torso + medium sleeves + button placket
            c.fill_rect(X(0.5f), Y(0.55f), W * 0.16f, H * 0.28f, 0.0f, lite);
            c.fill_rect(X(0.25f), Y(0.45f), W * 0.08f, H * 0.14f, 0.2f, lite);
            c.fill_rect(X(0.75f), Y(0.45f), W * 0.08f, H * 0.14f, -0.2f, lite);
            c.stroke(X(0.5f), Y(0.3f), X(0.5f), Y(0.82f), 1.0f, 1.0f);
            break;
        case 7:  // sneaker: low wedge profile
            c.fill_ellipse(X(0.5f), Y(0.68f), W * 0.3f, H * 0.12f, -0.05f, body);
            c.fill_rect(X(0.62f), Y(0.56f), W * 0.14f, H * 0.08f, -0.15f, body);
            c.fill_rect(X(0.5f), Y(0.78f), W * 0.3f, H * 0.03f, -0.05f, 1.0f);
            break;
        case 8:  // bag: box + handle arc
            c.fill_rect(X(0.5f), Y(0.62f), W * 0.26f, H * 0.2f, 0.0f, body);
            c.ellipse(X(0.5f), Y(0.38f), W * 0.14f, H * 0.12f, 1.6f, body);
            break;
        case 9:  // ankle boot: sole + heel + vertical shaft
            c.fill_rect(X(0.52f), Y(0.74f), W * 0.27f, H * 0.07f, 0.0f, body);
            c.fill_rect(X(0.67f), Y(0.5f), W * 0.1f, H * 0.2f, 0.0f, body);
            c.fill_rect(X(0.35f), Y(0.66f), W * 0.12f, H * 0.1f, 0.1f, body);
            break;
        default:
            break;
    }
}

}  // namespace

Dataset make_fashion(const GenOptions& opt) {
    const std::size_t h = opt.height ? opt.height : 28;
    const std::size_t w = opt.width ? opt.width : 28;
    Dataset d;
    d.name = "fashion";
    d.channels = 1;
    d.height = h;
    d.width = w;
    d.num_classes = 10;
    d.samples.reserve(opt.count);

    common::Rng rng(opt.seed ^ 0xFA5410ULL);
    for (std::size_t i = 0; i < opt.count; ++i) {
        const auto label = static_cast<std::size_t>(i % 10);
        Canvas c(h, w);
        draw_garment(c, label, rng);
        const float angle = static_cast<float>(rng.normal(0.0, 0.08));
        const float scale = static_cast<float>(rng.uniform(0.82, 1.1));
        const float tx = static_cast<float>(rng.uniform(-1.6, 1.6));
        const float ty = static_cast<float>(rng.uniform(-1.6, 1.6));
        Canvas jittered = c.jitter(angle, scale, tx, ty);
        jittered.blur(1);
        // Fabric-texture noise: stronger than the digit generator.
        jittered.add_gaussian_noise(rng, 0.12f);

        Sample s;
        s.label = label;
        s.image = common::Tensor({1, h, w});
        for (std::size_t y = 0; y < h; ++y)
            for (std::size_t x = 0; x < w; ++x) s.image.at3(0, y, x) = jittered.at(y, x);
        d.samples.push_back(std::move(s));
    }
    return d;
}

}  // namespace neuro::data
