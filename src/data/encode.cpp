#include "data/encode.hpp"

#include <cmath>

namespace neuro::data {

std::vector<std::int32_t> quantize_to_bias(const common::Tensor& image,
                                           std::int32_t phase_length) {
    std::vector<std::int32_t> bias(image.size());
    for (std::size_t i = 0; i < image.size(); ++i) {
        float p = image[i];
        if (p < 0.0f) p = 0.0f;
        if (p > 1.0f) p = 1.0f;
        bias[i] = static_cast<std::int32_t>(
            std::lround(p * static_cast<float>(phase_length)));
    }
    return bias;
}

std::vector<std::vector<bool>> rate_code_spikes(const common::Tensor& image,
                                                std::int32_t phase_length) {
    const auto bias = quantize_to_bias(image, phase_length);
    std::vector<std::vector<bool>> rasters(image.size());
    // Emulates the on-chip integration: v += bias each step, spike & reset at
    // threshold T. This reproduces exactly the spike train the bias encoding
    // generates, so the two encodings are numerically interchangeable.
    const std::int32_t theta = phase_length;
    for (std::size_t i = 0; i < bias.size(); ++i) {
        rasters[i].assign(static_cast<std::size_t>(phase_length), false);
        std::int32_t v = 0;
        for (std::int32_t t = 0; t < phase_length; ++t) {
            v += bias[i];
            if (v >= theta) {
                v -= theta;
                rasters[i][static_cast<std::size_t>(t)] = true;
            }
        }
    }
    return rasters;
}

IoCost io_cost(const common::Tensor& image, std::int32_t phase_length) {
    IoCost cost;
    cost.bias_writes = image.size();
    const auto rasters = rate_code_spikes(image, phase_length);
    for (const auto& r : rasters)
        for (bool s : r)
            if (s) ++cost.spike_inserts;
    return cost;
}

}  // namespace neuro::data
