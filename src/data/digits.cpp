// MNIST substitute: handwritten-looking digits rendered from stroke and arc
// skeletons with per-sample affine jitter, stroke-thickness variation, blur
// and sensor noise. Classes are the digits 0-9.
//
// Difficulty calibration: this is the easiest of the four generators (clean
// strokes, moderate jitter) mirroring MNIST's position as the easiest paper
// benchmark (Table I: 94.5% on Loihi).

#include <cmath>
#include <vector>

#include "data/dataset.hpp"
#include "data/raster.hpp"

namespace neuro::data {

namespace {

struct Seg {
    float x0, y0, x1, y1;
};

/// Elliptical arc from angle a0 to a1 (radians, CCW) on centre (cx,cy).
struct Arc {
    float cx, cy, rx, ry, a0, a1;
};

struct Glyph {
    std::vector<Seg> segs;
    std::vector<Arc> arcs;
};

/// Digit skeletons on a normalized [0,1]x[0,1] box (x right, y down).
Glyph glyph_for(std::size_t digit) {
    Glyph g;
    auto seg = [&](float x0, float y0, float x1, float y1) {
        g.segs.push_back({x0, y0, x1, y1});
    };
    auto arc = [&](float cx, float cy, float rx, float ry, float a0, float a1) {
        g.arcs.push_back({cx, cy, rx, ry, a0, a1});
    };
    const float pi = static_cast<float>(M_PI);
    switch (digit) {
        case 0:
            arc(0.5f, 0.5f, 0.32f, 0.45f, 0.0f, 2.0f * pi);
            break;
        case 1:
            seg(0.55f, 0.08f, 0.55f, 0.92f);
            seg(0.55f, 0.08f, 0.38f, 0.28f);
            break;
        case 2:
            arc(0.5f, 0.28f, 0.3f, 0.22f, -pi, 0.1f);
            seg(0.78f, 0.33f, 0.22f, 0.9f);
            seg(0.22f, 0.9f, 0.8f, 0.9f);
            break;
        case 3:
            arc(0.45f, 0.28f, 0.3f, 0.2f, -pi, 0.5f * pi);
            arc(0.45f, 0.7f, 0.32f, 0.22f, -0.5f * pi, pi);
            break;
        case 4:
            seg(0.68f, 0.08f, 0.68f, 0.92f);
            seg(0.68f, 0.08f, 0.22f, 0.62f);
            seg(0.22f, 0.62f, 0.85f, 0.62f);
            break;
        case 5:
            seg(0.75f, 0.1f, 0.3f, 0.1f);
            seg(0.3f, 0.1f, 0.28f, 0.48f);
            arc(0.48f, 0.68f, 0.28f, 0.24f, -0.6f * pi, 0.9f * pi);
            break;
        case 6:
            arc(0.52f, 0.68f, 0.26f, 0.24f, 0.0f, 2.0f * pi);
            arc(0.62f, 0.45f, 0.42f, 0.38f, -pi, -0.45f * pi);
            break;
        case 7:
            seg(0.2f, 0.1f, 0.8f, 0.1f);
            seg(0.8f, 0.1f, 0.42f, 0.92f);
            break;
        case 8:
            arc(0.5f, 0.3f, 0.24f, 0.2f, 0.0f, 2.0f * pi);
            arc(0.5f, 0.72f, 0.28f, 0.22f, 0.0f, 2.0f * pi);
            break;
        case 9:
            arc(0.48f, 0.32f, 0.26f, 0.24f, 0.0f, 2.0f * pi);
            arc(0.38f, 0.55f, 0.42f, 0.38f, -0.05f * pi, 0.55f * pi);
            break;
        default:
            break;
    }
    return g;
}

void draw_glyph(Canvas& c, const Glyph& g, float thickness, common::Rng& rng) {
    const auto h = static_cast<float>(c.height());
    const auto w = static_cast<float>(c.width());
    // Map the unit box to the central ~72% of the canvas.
    const float sx = w * 0.72f;
    const float sy = h * 0.72f;
    const float ox = w * 0.14f;
    const float oy = h * 0.14f;
    // Small per-stroke endpoint wobble imitates handwriting.
    auto wob = [&]() { return static_cast<float>(rng.normal(0.0, 0.012)); };
    for (const auto& s : g.segs) {
        c.stroke(ox + (s.x0 + wob()) * sx, oy + (s.y0 + wob()) * sy,
                 ox + (s.x1 + wob()) * sx, oy + (s.y1 + wob()) * sy, thickness);
    }
    for (const auto& a : g.arcs) {
        const int steps = 40;
        float px = 0.0f;
        float py = 0.0f;
        const float jx = wob();
        const float jy = wob();
        for (int i = 0; i <= steps; ++i) {
            const float t =
                a.a0 + (a.a1 - a.a0) * static_cast<float>(i) / static_cast<float>(steps);
            const float x = ox + (a.cx + jx + a.rx * std::cos(t)) * sx;
            const float y = oy + (a.cy + jy + a.ry * std::sin(t)) * sy;
            if (i > 0) c.stroke(px, py, x, y, thickness);
            px = x;
            py = y;
        }
    }
}

}  // namespace

Dataset make_digits(const GenOptions& opt) {
    const std::size_t h = opt.height ? opt.height : 28;
    const std::size_t w = opt.width ? opt.width : 28;
    Dataset d;
    d.name = "digits";
    d.channels = 1;
    d.height = h;
    d.width = w;
    d.num_classes = 10;
    d.samples.reserve(opt.count);

    common::Rng rng(opt.seed ^ 0xD161757ULL);
    for (std::size_t i = 0; i < opt.count; ++i) {
        const auto label = static_cast<std::size_t>(i % 10);
        Canvas c(h, w);
        const float thickness =
            static_cast<float>(rng.uniform(1.5, 2.6)) * static_cast<float>(w) / 28.0f;
        draw_glyph(c, glyph_for(label), thickness, rng);
        const float angle = static_cast<float>(rng.normal(0.0, 0.10));
        const float scale = static_cast<float>(rng.uniform(0.85, 1.12));
        const float tx = static_cast<float>(rng.uniform(-1.5, 1.5));
        const float ty = static_cast<float>(rng.uniform(-1.5, 1.5));
        Canvas jittered = c.jitter(angle, scale, tx, ty);
        jittered.blur(1);
        jittered.add_gaussian_noise(rng, 0.04f);

        Sample s;
        s.label = label;
        s.image = common::Tensor({1, h, w});
        for (std::size_t y = 0; y < h; ++y)
            for (std::size_t x = 0; x < w; ++x) s.image.at3(0, y, x) = jittered.at(y, x);
        d.samples.push_back(std::move(s));
    }
    return d;
}

}  // namespace neuro::data
