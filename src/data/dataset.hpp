#pragma once
// In-memory labelled image dataset.
//
// The paper evaluates on MNIST, Fashion-MNIST, CIFAR-10 and MSTAR. None of
// those ship with this repository, so src/data provides deterministic
// procedural generators with the same geometry and class count (see
// DESIGN.md section 2 for the substitution rationale). Real MNIST IDX files
// are used instead when present (idx_loader.hpp).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/tensor.hpp"

namespace neuro::data {

/// One labelled image. Pixels are CHW floats in [0, 1].
struct Sample {
    common::Tensor image;
    std::size_t label = 0;
};

/// A materialized dataset plus its metadata.
struct Dataset {
    std::string name;
    std::size_t channels = 1;
    std::size_t height = 0;
    std::size_t width = 0;
    std::size_t num_classes = 0;
    std::vector<Sample> samples;

    std::size_t size() const { return samples.size(); }
    std::size_t pixels() const { return channels * height * width; }

    /// Keeps only samples whose label passes the filter (used by the
    /// incremental-online-learning experiment to carve out class subsets).
    Dataset filter_classes(const std::vector<std::size_t>& classes) const;

    /// Deterministically shuffles sample order in place.
    void shuffle(common::Rng& rng);
};

/// Splits into (train, test) by taking the first `train_count` samples for
/// training. Caller shuffles first if random splits are wanted.
std::pair<Dataset, Dataset> split(const Dataset& d, std::size_t train_count);

/// Shared options for all four generators.
struct GenOptions {
    std::size_t count = 1000;          ///< total samples to synthesize
    std::uint64_t seed = 1;            ///< deterministic stream seed
    std::size_t height = 0;            ///< 0 = generator's native size
    std::size_t width = 0;             ///< 0 = generator's native size
};

/// MNIST substitute: stroke-rendered digits 0-9, 28x28x1 native.
Dataset make_digits(const GenOptions& opt);

/// Fashion-MNIST substitute: garment silhouettes, 10 classes, 28x28x1 native.
Dataset make_fashion(const GenOptions& opt);

/// CIFAR-10 substitute: textured colour shapes, 10 classes, 32x32x3 native.
Dataset make_cifar(const GenOptions& opt);

/// MSTAR substitute: speckled SAR target chips, 10 vehicle classes,
/// 32x32x1 native (the paper center-crops 128x128 chips to 64x64 and resizes
/// to 32x32; we synthesize at 32x32 directly).
Dataset make_sar(const GenOptions& opt);

/// Dispatch by name ("digits", "fashion", "cifar", "sar").
Dataset make_by_name(const std::string& name, const GenOptions& opt);

}  // namespace neuro::data
