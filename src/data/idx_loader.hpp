#pragma once
// Loader for the IDX file format used by MNIST / Fashion-MNIST. When the
// real dataset files are available on disk the benches use them instead of
// the synthetic generators (see DESIGN.md section 2).

#include <optional>
#include <string>

#include "data/dataset.hpp"

namespace neuro::data {

/// Loads an images+labels IDX pair (e.g. "train-images-idx3-ubyte" /
/// "train-labels-idx1-ubyte"). Pixels are scaled to [0,1]. Returns
/// std::nullopt if either file is missing; throws on malformed content.
std::optional<Dataset> load_idx(const std::string& images_path,
                                const std::string& labels_path,
                                const std::string& name,
                                std::size_t max_count = 0);

/// Convenience: looks for MNIST under `dir` with the canonical file names
/// for the given split ("train" or "t10k").
std::optional<Dataset> load_mnist_dir(const std::string& dir, const std::string& split,
                                      std::size_t max_count = 0);

/// Writes a single-channel dataset as an IDX images+labels pair (the MNIST
/// container format), so the synthetic substitutes can be consumed by
/// external frameworks. Pixels are scaled to 0..255. Throws on multi-channel
/// datasets or I/O failure.
void save_idx(const Dataset& dataset, const std::string& images_path,
              const std::string& labels_path);

}  // namespace neuro::data
