// MSTAR substitute: synthetic-aperture-radar target chips. Each sample is a
// centered vehicle signature — a rotated bright hull with class-specific
// geometry and a handful of strong point scatterers — over low-reflectivity
// clutter, with multiplicative exponential speckle applied to everything
// (the defining SAR noise process). The paper uses the MSTAR/IU Mixed
// Targets subset: 10 vehicle classes, chips center-cropped and resized to
// 32x32; we synthesize 32x32 chips directly.
//
// Difficulty calibration: speckle makes per-pixel values unreliable, so
// classifiers must rely on gross target geometry — the generator lands
// between Fashion and CIFAR, mirroring MSTAR's Table I position (78.4%).

#include <cmath>

#include "data/dataset.hpp"
#include "data/raster.hpp"

namespace neuro::data {

namespace {

/// Per-class vehicle geometry (sizes as fractions of chip width).
struct VehicleSpec {
    float length;        ///< hull length
    float width;         ///< hull width
    float turret_r;      ///< turret radius (0 = none)
    float turret_off;    ///< turret offset along the hull axis
    int scatterers;      ///< number of bright point scatterers
    bool barrel;         ///< protruding gun barrel
};

VehicleSpec spec_for(std::size_t label) {
    switch (label) {
        case 0: return {0.46f, 0.20f, 0.075f, 0.05f, 3, true};    // MBT, long barrel
        case 1: return {0.40f, 0.22f, 0.065f, -0.04f, 4, true};   // MBT, rear turret
        case 2: return {0.44f, 0.16f, 0.0f, 0.0f, 5, false};      // APC, slim
        case 3: return {0.34f, 0.24f, 0.0f, 0.0f, 3, false};      // truck, boxy
        case 4: return {0.50f, 0.14f, 0.05f, 0.12f, 2, true};     // SPG, front turret
        case 5: return {0.36f, 0.18f, 0.06f, 0.0f, 6, false};     // IFV, many returns
        case 6: return {0.30f, 0.16f, 0.0f, 0.0f, 2, false};      // jeep, small
        case 7: return {0.48f, 0.26f, 0.0f, 0.0f, 4, false};      // transporter, wide
        case 8: return {0.38f, 0.20f, 0.08f, 0.06f, 3, false};    // AAA, big turret
        case 9: return {0.42f, 0.18f, 0.045f, -0.08f, 5, true};   // tank destroyer
        default: return {0.4f, 0.2f, 0.0f, 0.0f, 3, false};
    }
}

}  // namespace

Dataset make_sar(const GenOptions& opt) {
    const std::size_t h = opt.height ? opt.height : 32;
    const std::size_t w = opt.width ? opt.width : 32;
    Dataset d;
    d.name = "sar";
    d.channels = 1;
    d.height = h;
    d.width = w;
    d.num_classes = 10;
    d.samples.reserve(opt.count);

    common::Rng rng(opt.seed ^ 0x5A7A6ULL);
    const auto W = static_cast<float>(w);
    const auto H = static_cast<float>(h);

    for (std::size_t i = 0; i < opt.count; ++i) {
        const auto label = static_cast<std::size_t>(i % 10);
        const VehicleSpec v = spec_for(label);

        Canvas c(h, w);
        // Low-reflectivity clutter floor.
        for (std::size_t y = 0; y < h; ++y)
            for (std::size_t x = 0; x < w; ++x)
                c.at(y, x) = 0.10f + static_cast<float>(rng.uniform(0.0, 0.06));

        // Target chips are centred but imaged at an arbitrary aspect angle.
        const float aspect = static_cast<float>(rng.uniform(0.0, 2.0 * M_PI));
        const float cx = W * 0.5f + static_cast<float>(rng.normal(0.0, 0.6));
        const float cy = H * 0.5f + static_cast<float>(rng.normal(0.0, 0.6));
        const float hull = 0.68f + static_cast<float>(rng.uniform(0.0, 0.25));

        c.fill_rect(cx, cy, v.length * W * 0.5f, v.width * W * 0.5f, aspect, hull);
        if (v.turret_r > 0.0f) {
            const float tx = cx + v.turret_off * W * std::cos(aspect);
            const float ty = cy + v.turret_off * W * std::sin(aspect);
            c.fill_ellipse(tx, ty, v.turret_r * W, v.turret_r * W, 0.0f, hull + 0.15f);
        }
        if (v.barrel) {
            const float bx = cx + (v.length * 0.5f + 0.18f) * W * std::cos(aspect);
            const float by = cy + (v.length * 0.5f + 0.18f) * W * std::sin(aspect);
            c.stroke(cx, cy, bx, by, 1.3f, hull + 0.1f);
        }
        // Strong point scatterers along the hull (corner reflectors).
        for (int sc = 0; sc < v.scatterers; ++sc) {
            const float along = static_cast<float>(
                rng.uniform(-v.length * 0.45, v.length * 0.45));
            const float across = static_cast<float>(
                rng.uniform(-v.width * 0.4, v.width * 0.4));
            const float sx =
                cx + W * (along * std::cos(aspect) - across * std::sin(aspect));
            const float sy =
                cy + W * (along * std::sin(aspect) + across * std::cos(aspect));
            c.fill_ellipse(sx, sy, 1.1f, 1.1f, 0.0f, 1.0f);
        }

        // Multiplicative exponential speckle over the whole chip — applied
        // last so it corrupts target and clutter alike, as in real SAR.
        c.apply_speckle(rng, 0.28f);
        c.blur(1);

        Sample s;
        s.label = label;
        s.image = common::Tensor({1, h, w});
        for (std::size_t y = 0; y < h; ++y)
            for (std::size_t x = 0; x < w; ++x) s.image.at3(0, y, x) = c.at(y, x);
        d.samples.push_back(std::move(s));
    }
    return d;
}

}  // namespace neuro::data
