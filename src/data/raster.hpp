#pragma once
// Software rasterizer for the synthetic dataset generators: anti-aliased
// strokes, filled shapes, affine warps, blur and noise on single-channel
// float canvases in [0,1].

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace neuro::data {

/// Single-channel float canvas. (0,0) is the top-left pixel centre; x grows
/// right, y grows down, both in pixel units.
class Canvas {
public:
    Canvas(std::size_t height, std::size_t width);

    std::size_t height() const { return h_; }
    std::size_t width() const { return w_; }

    float& at(std::size_t y, std::size_t x) { return px_[y * w_ + x]; }
    float at(std::size_t y, std::size_t x) const { return px_[y * w_ + x]; }

    const std::vector<float>& pixels() const { return px_; }

    /// Anti-aliased thick line segment; intensity is max-combined so strokes
    /// overlap cleanly.
    void stroke(float x0, float y0, float x1, float y1, float thickness,
                float intensity = 1.0f);

    /// Anti-aliased ellipse outline (axis-aligned, then rotated by `angle`
    /// radians about its centre).
    void ellipse(float cx, float cy, float rx, float ry, float thickness,
                 float intensity = 1.0f, float angle = 0.0f);

    /// Filled axis-aligned-then-rotated rectangle.
    void fill_rect(float cx, float cy, float half_w, float half_h, float angle,
                   float intensity = 1.0f);

    /// Filled ellipse.
    void fill_ellipse(float cx, float cy, float rx, float ry, float angle,
                      float intensity = 1.0f);

    /// Filled triangle (max-combined like the other primitives).
    void fill_triangle(float x0, float y0, float x1, float y1, float x2, float y2,
                       float intensity = 1.0f);

    /// 3x3 binomial blur, applied `passes` times.
    void blur(int passes = 1);

    /// Adds N(0, sigma) per pixel, then clamps to [0,1].
    void add_gaussian_noise(common::Rng& rng, float sigma);

    /// Multiplies each pixel by an exponential(1) draw — SAR speckle.
    void apply_speckle(common::Rng& rng, float strength);

    /// Clamp all pixels to [0,1].
    void clamp();

    /// Resamples this canvas through the inverse affine map
    ///   src = A * (dst - centre) + centre + t
    /// with bilinear interpolation; returns the warped canvas. Used for the
    /// per-sample rotation/scale/translation jitter.
    Canvas warp_affine(float a00, float a01, float a10, float a11, float tx,
                       float ty) const;

    /// Convenience jitter: rotation (radians), isotropic scale, translation.
    Canvas jitter(float angle, float scale, float tx, float ty) const;

private:
    std::size_t h_;
    std::size_t w_;
    std::vector<float> px_;

    void splat(std::size_t y, std::size_t x, float v) {
        float& p = px_[y * w_ + x];
        if (v > p) p = v;
    }
};

}  // namespace neuro::data
