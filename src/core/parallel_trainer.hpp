#pragma once
// Data-parallel batched training engine (see docs/ARCHITECTURE.md §4).
//
// The paper's Operation Flow 1 is strictly online: one sample occupies the
// whole chip for 2T timesteps, so training throughput is capped at
// 1 / (2T * step_time) samples per second no matter how large the host is.
// ParallelTrainer lifts that cap the same way Loihi itself would — by
// replicating the network: N independent runtime::Session workers (one per
// thread, all over one shared CompiledModel snapshot of the master) each
// train a disjoint shard of every mini-batch, and the integer
// plastic-weight deltas are merged at the batch boundary.
//
// This is *inter-model* parallelism (N one-chip replicas). Its complement,
// *intra-model* parallelism for networks bigger than one chip, is the
// multi-chip sharded execution of core/sharded_network.hpp (ARCHITECTURE
// §6); the two compose conceptually but this trainer's master/replica
// weight-sync path assumes single-chip models.
//
// Determinism contract:
//   * batch == 1 reproduces the serial core::train_epoch bit-for-bit
//     (same shuffle, same RNG streams, same weights after every sample).
//   * batch > 1: every sample trains against the *batch-start* weights
//     with a stochastic-rounding stream that is a pure function of
//     (seed, epoch, position in the shuffled stream). A sample's delta
//     therefore never depends on which worker ran it or on how many
//     workers exist, and the merged result is bit-identical for every
//     `threads` value — replicas only buy wall-clock time.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "core/network.hpp"
#include "core/options.hpp"
#include "data/dataset.hpp"
#include "runtime/compiled_model.hpp"

namespace neuro::core {

class ParallelTrainer {
public:
    /// Compiles `master`'s current state into an immutable
    /// runtime::CompiledModel and opens one runtime::Session per worker
    /// thread over it (device faults and class masks are captured as of
    /// this call; use the forwarding setters below for later changes).
    /// Sessions share the compiled chip structure — no per-worker chip
    /// deep-copy happens. `master` is borrowed, not owned — it always holds
    /// the authoritative weights, and the caller keeps using it for
    /// inference, checkpointing and probing.
    ParallelTrainer(EmstdpNetwork& master, ParallelOptions opt);
    ~ParallelTrainer();

    ParallelTrainer(const ParallelTrainer&) = delete;
    ParallelTrainer& operator=(const ParallelTrainer&) = delete;

    /// One pass over the (shuffled) stream in mini-batches of `opt.batch`.
    /// Returns the prequential accuracy (fraction of samples predicted
    /// correctly *before* their weight update — against the batch-start
    /// weights in the batched path) when `measure_prequential` is set,
    /// otherwise 0. The shuffle consumes `rng` exactly like the serial
    /// core::train_epoch, so seeded comparisons line up.
    double train_epoch(const data::Dataset& stream, common::Rng& rng,
                       bool measure_prequential = false);

    /// Top-1 accuracy over `test`, evaluated data-parallel across the
    /// replicas (bit-identical to the serial core::evaluate).
    double evaluate(const data::Dataset& test);

    /// Forward EmstdpNetwork::set_class_mask to the master and every replica.
    void set_class_mask(const std::vector<bool>& mask);
    /// Forward EmstdpNetwork::set_learning_shift_offset likewise.
    void set_learning_shift_offset(int offset);

    /// The master network (authoritative weights).
    EmstdpNetwork& network() { return master_; }
    const EmstdpNetwork& network() const { return master_; }

    /// The compiled model the worker sessions were opened from (the
    /// master's state at construction time).
    const runtime::CompiledModel& model() const { return *model_; }

    /// Number of worker threads == number of replicas actually built.
    std::size_t threads() const;

    const ParallelOptions& options() const { return opt_; }

private:
    /// Learning-noise seed of the sample at shuffled-stream position `pos`
    /// of the current epoch — a pure function of (base seed, epoch, pos).
    std::uint64_t sample_seed(std::uint64_t pos) const;

    void train_batch(const data::Dataset& stream,
                     const std::vector<std::size_t>& order, std::size_t begin,
                     std::size_t end, bool measure_prequential);

    /// Extra learning-shift applied to replicas (the compensate_rate knob);
    /// 0 when disabled or not applicable.
    int rate_shift() const;

    EmstdpNetwork& master_;
    ParallelOptions opt_;
    std::uint64_t seed_base_;
    std::uint64_t epoch_ = 0;

    std::unique_ptr<common::ThreadPool> pool_;
    /// Immutable snapshot of the master at construction; all worker
    /// sessions read its shared structure and copy-on-write weight image.
    std::shared_ptr<const runtime::CompiledModel> model_;
    /// Training sessions: one per worker when batch > 1 (the master never
    /// trains in the batched path, so its learning rule stays untouched by
    /// rate compensation); only workers >= 1 when batch == 1 (evaluate-only,
    /// worker 0 reuses the master).
    std::vector<std::unique_ptr<runtime::Session>> replicas_;

    /// Per-worker delta accumulators: deltas_[w][layer][synapse], int64 so a
    /// whole batch can never overflow before the merge clips once.
    std::vector<std::vector<std::vector<std::int64_t>>> deltas_;
    /// Per-worker prequential hit counts for the current epoch.
    std::vector<std::size_t> hits_;
};

}  // namespace neuro::core
