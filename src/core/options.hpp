#pragma once
// Configuration of the on-chip EMSTDP implementation (the paper's primary
// contribution, Sec. III). Every adaptation technique of the paper is a
// switch here so the ablation benches can toggle them individually.

#include <cstdint>
#include <cstddef>

#include "loihi/types.hpp"

namespace neuro::core {

/// Error-feedback topology (paper Sec. III-A, Fig. 1a).
enum class FeedbackMode {
    FA,   ///< mirrored error network chained through every trainable layer
    DFA,  ///< output error broadcast directly to the hidden layers
};

/// Input encoding (paper Sec. III-D; adaptation technique 4).
enum class InputMode {
    BiasProgramming,  ///< one host write per input neuron per sample
    SpikeInsertion,   ///< one host write per input spike (the costly path)
};

struct EmstdpOptions {
    /// Phase length T; a sample occupies 2T steps when training.
    std::int32_t phase_length = 64;

    FeedbackMode feedback = FeedbackMode::DFA;

    /// Learning rate. Realized on chip as the power-of-two shift of the
    /// sum-of-products rule: shift = round(log2(T^2 / (eta * theta_dense))),
    /// so that the integer update equals eta * (h_hat - h)/T * h_pre/T in
    /// normalized units. The default matches the paper's eta = 2^-3.
    float eta = 0.125f;

    /// Threshold of the trainable dense layers. Also the scale that maps
    /// float weights onto the 8-bit grid (w_int = w_float * theta_dense), so
    /// it fixes the weight resolution: higher threshold = finer grid but
    /// narrower float range (127 / theta_dense).
    std::int32_t theta_dense = 256;

    /// Threshold of the error-path neurons. One unit of accumulated rate
    /// difference produces one error spike.
    std::int32_t theta_err = 64;

    /// Firing rate of the label neuron for the true class, as a fraction of
    /// the phase length.
    float target_rate = 0.75f;

    /// Scale of the fixed random feedback matrices (B), relative to the
    /// 1/sqrt(fan) normalization.
    float feedback_gain = 1.0f;

    /// Synaptic weight precision (chip limit). 8 on Loihi; swept by the
    /// quantization ablation.
    int weight_bits = 8;

    /// Logical neurons packed per core for the trainable dense layers and
    /// the error populations — the Fig. 3 sweep variable. Input, conv and
    /// label populations are capacity-packed.
    std::size_t neurons_per_core = 10;

    /// Build without label/error populations (the paper's testing
    /// configuration: "During the inference mode, backward paths are not
    /// implemented").
    bool inference_only = false;

    InputMode input_mode = InputMode::BiasProgramming;

    /// Window of the presynaptic trace used by the update. Phase1Only is
    /// the exact eq. (7) counter (NxSDK epoch structuring); Both is the raw
    /// hardware counter (ablation D).
    loihi::TraceWindow pre_window = loihi::TraceWindow::Phase1Only;

    /// Replace the phase-gated postsynaptic counter with a decaying trace
    /// (impulse 2, 12-bit decay 128) — the fully hardware-faithful
    /// approximation of h_hat (ablation D).
    bool hw_trace_approx = false;

    /// Gate the error path by forward phase-1 activity (h' of the shifted
    /// ReLU, adaptation technique 1). Disabling is an ablation.
    bool derivative_gating = true;

    /// Stochastic rounding in the learning engine: keeps the expectation of
    /// sub-LSB updates exact. Essential when eta * spike-count products drop
    /// below one weight LSB (small learning rates / sparse activity).
    bool stochastic_rounding = true;

    std::uint64_t seed = 7;

    /// Derived learning shift (see `eta`).
    int learning_shift() const;
};

/// How ParallelTrainer folds the per-sample integer weight deltas of a
/// mini-batch back into the master network.
enum class MergeMode {
    /// Sum every shard's delta, then clip once at `weight_bits`
    /// (w' = clip(w0 + sum dw_i)). On its own this scales the effective
    /// learning rate by the batch size — EMSTDP destabilizes beyond small
    /// batches that way — so by default ParallelOptions::compensate_rate
    /// lowers each replica's on-chip rate by the same factor.
    SumClip,
    /// Average the deltas (truncating division toward zero), then clip
    /// (w' = clip(w0 + sum dw_i / batch)). Keeps the per-batch step size
    /// independent of the batch size.
    MeanClip,
};

/// Configuration of core::ParallelTrainer (the data-parallel batched
/// training engine; see docs/ARCHITECTURE.md for the design and its
/// determinism contract).
struct ParallelOptions {
    /// Worker threads — and therefore network replicas. 0 means
    /// std::thread::hardware_concurrency(). The trained weights are
    /// bit-identical for every value of `threads`; only wall-clock changes.
    std::size_t threads = 0;

    /// Mini-batch size. 1 reproduces the paper's strictly-online Operation
    /// Flow 1 bit-for-bit (every sample trains on the master network in
    /// stream order). Values > 1 switch to synchronous data-parallel
    /// semantics: each sample of the batch trains against the batch-start
    /// weights on a replica, and the integer deltas are merged at the batch
    /// boundary according to `merge`.
    std::size_t batch = 1;

    /// Delta merge rule applied at each batch boundary (batch > 1 only).
    MergeMode merge = MergeMode::SumClip;

    /// Keep the effective learning rate of SumClip equal to the serial
    /// trainer's by adding round(log2(batch)) to the learning shift of
    /// every replica — i.e. each sample updates with eta/batch, realized
    /// the way the silicon would (reprogramming the rule's power-of-two
    /// shift), and the batch sum restores eta. Stochastic rounding keeps
    /// the now sub-LSB per-sample updates unbiased. Ignored for batch == 1
    /// and for MergeMode::MeanClip (the mean already normalizes).
    bool compensate_rate = true;

    /// Base seed for the per-sample learning-noise streams of the batched
    /// path. 0 derives it from the network's EmstdpOptions::seed. Each
    /// sample's stochastic-rounding stream is a pure function of
    /// (seed, epoch, position in stream), never of the worker that ran it —
    /// this is what makes the result independent of `threads`.
    std::uint64_t seed = 0;
};

}  // namespace neuro::core
