#pragma once
// Configuration of the on-chip EMSTDP implementation (the paper's primary
// contribution, Sec. III). Every adaptation technique of the paper is a
// switch here so the ablation benches can toggle them individually.

#include <cstdint>
#include <cstddef>

#include "loihi/types.hpp"

namespace neuro::core {

/// Error-feedback topology (paper Sec. III-A, Fig. 1a).
enum class FeedbackMode {
    FA,   ///< mirrored error network chained through every trainable layer
    DFA,  ///< output error broadcast directly to the hidden layers
};

/// Input encoding (paper Sec. III-D; adaptation technique 4).
enum class InputMode {
    BiasProgramming,  ///< one host write per input neuron per sample
    SpikeInsertion,   ///< one host write per input spike (the costly path)
};

struct EmstdpOptions {
    /// Phase length T; a sample occupies 2T steps when training.
    std::int32_t phase_length = 64;

    FeedbackMode feedback = FeedbackMode::DFA;

    /// Learning rate. Realized on chip as the power-of-two shift of the
    /// sum-of-products rule: shift = round(log2(T^2 / (eta * theta_dense))),
    /// so that the integer update equals eta * (h_hat - h)/T * h_pre/T in
    /// normalized units. The default matches the paper's eta = 2^-3.
    float eta = 0.125f;

    /// Threshold of the trainable dense layers. Also the scale that maps
    /// float weights onto the 8-bit grid (w_int = w_float * theta_dense), so
    /// it fixes the weight resolution: higher threshold = finer grid but
    /// narrower float range (127 / theta_dense).
    std::int32_t theta_dense = 256;

    /// Threshold of the error-path neurons. One unit of accumulated rate
    /// difference produces one error spike.
    std::int32_t theta_err = 64;

    /// Firing rate of the label neuron for the true class, as a fraction of
    /// the phase length.
    float target_rate = 0.75f;

    /// Scale of the fixed random feedback matrices (B), relative to the
    /// 1/sqrt(fan) normalization.
    float feedback_gain = 1.0f;

    /// Synaptic weight precision (chip limit). 8 on Loihi; swept by the
    /// quantization ablation.
    int weight_bits = 8;

    /// Logical neurons packed per core for the trainable dense layers and
    /// the error populations — the Fig. 3 sweep variable. Input, conv and
    /// label populations are capacity-packed.
    std::size_t neurons_per_core = 10;

    /// Build without label/error populations (the paper's testing
    /// configuration: "During the inference mode, backward paths are not
    /// implemented").
    bool inference_only = false;

    InputMode input_mode = InputMode::BiasProgramming;

    /// Window of the presynaptic trace used by the update. Phase1Only is
    /// the exact eq. (7) counter (NxSDK epoch structuring); Both is the raw
    /// hardware counter (ablation D).
    loihi::TraceWindow pre_window = loihi::TraceWindow::Phase1Only;

    /// Replace the phase-gated postsynaptic counter with a decaying trace
    /// (impulse 2, 12-bit decay 128) — the fully hardware-faithful
    /// approximation of h_hat (ablation D).
    bool hw_trace_approx = false;

    /// Gate the error path by forward phase-1 activity (h' of the shifted
    /// ReLU, adaptation technique 1). Disabling is an ablation.
    bool derivative_gating = true;

    /// Stochastic rounding in the learning engine: keeps the expectation of
    /// sub-LSB updates exact. Essential when eta * spike-count products drop
    /// below one weight LSB (small learning rates / sparse activity).
    bool stochastic_rounding = true;

    std::uint64_t seed = 7;

    /// Derived learning shift (see `eta`).
    int learning_shift() const;
};

}  // namespace neuro::core
