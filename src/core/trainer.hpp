#pragma once
// Dataset-level training/evaluation loops for the on-chip network, plus the
// energy bookkeeping used by Table II and Fig. 3. Training is strictly
// online: batch size 1, one pass over the stream per epoch, updates applied
// at the end of every sample's 2T window (paper Sec. IV-A: "the training
// data is received as a stream, and training must be carried out in
// real-time ... Techniques such as batch learning, data augmentation are
// not feasible").
//
// For throughput-oriented (non-real-time) training across replicated chips,
// see core/parallel_trainer.hpp — its batch == 1 configuration reproduces
// these loops bit-for-bit.

#include <cstdint>

#include "common/rng.hpp"
#include "core/network.hpp"
#include "data/dataset.hpp"
#include "loihi/energy.hpp"
#include "runtime/session.hpp"

namespace neuro::core {

/// One shuffled online pass; returns the training-stream accuracy measured
/// *before* each update (prequential accuracy, the online-learning metric).
double train_epoch(EmstdpNetwork& net, const data::Dataset& stream,
                   common::Rng& rng, bool measure_prequential = false);

/// Top-1 accuracy over a dataset (phase-1 inference only).
double evaluate(EmstdpNetwork& net, const data::Dataset& test);

/// Runs `samples` training (or evaluation) samples while capturing activity,
/// then derives the Table-II operating point from the energy model.
loihi::EnergyReport measure_energy(EmstdpNetwork& net, const data::Dataset& ds,
                                   std::size_t samples, bool training,
                                   const loihi::EnergyModelParams& params);

// ---- runtime-session equivalents -----------------------------------------
// Backend-agnostic versions of the loops above for code on the runtime API
// (spec -> CompiledModel -> Session). On a LoihiSim session they consume
// `rng` and drive the chip exactly like the EmstdpNetwork overloads, so
// seeded comparisons line up bit-for-bit.

double train_epoch(runtime::Session& session, const data::Dataset& stream,
                   common::Rng& rng, bool measure_prequential = false);

double evaluate(runtime::Session& session, const data::Dataset& test);

/// One prequential step for open-ended streams (the learning-while-serving
/// engine's inner loop): predicts *before* updating and returns whether the
/// pre-update prediction was correct, then trains on the sample. The
/// running hit rate is the prequential accuracy train_epoch reports, but
/// usable sample-by-sample where there is no epoch.
bool train_prequential(runtime::Session& session, const common::Tensor& image,
                       std::size_t label);

/// Session version of measure_energy. Sharded (multi-chip) sessions report
/// the package operating point: barrier-synchronised step time of the
/// slowest shard, power and cores summed across chips. Throws
/// std::invalid_argument when the session's backend has no activity/energy
/// model (e.g. Reference).
loihi::EnergyReport measure_energy(runtime::Session& session,
                                   const data::Dataset& ds, std::size_t samples,
                                   bool training,
                                   const loihi::EnergyModelParams& params);

}  // namespace neuro::core
