#pragma once
// End-to-end experiment pipeline shared by the Table-I/II benches, the
// examples and the integration tests:
//
//   1. synthesize a dataset (or load real MNIST when present),
//   2. pretrain the paper-topology CNN offline (src/ann),
//   3. convert + quantize the conv stack (src/snn),
//   4. build the on-chip EMSTDP network with frozen convs,
//   5. extract normalized conv features for the full-precision reference.
//
// Paper Sec. IV-A: "the convolutional layers are pretrained offline with
// their respective datasets before mapping on to Loihi whereas the dense
// layers are trained from scratch in the Loihi."

#include <memory>
#include <string>
#include <vector>

#include "ann/model.hpp"
#include "ann/trainer.hpp"
#include "core/network.hpp"
#include "data/dataset.hpp"
#include "reference/emstdp_ref.hpp"
#include "runtime/compiled_model.hpp"
#include "snn/convert.hpp"

namespace neuro::core {

struct ExperimentSpec {
    std::string dataset = "digits";  ///< digits | fashion | cifar | sar
    std::size_t train_count = 1000;
    std::size_t test_count = 400;
    std::size_t ann_epochs = 4;
    std::vector<std::size_t> hidden = {100};
    std::size_t classes = 10;
    std::uint64_t seed = 1;
};

/// A rate-encoded sample for the full-precision reference: normalized conv
/// activations in [0,1] plus the label.
struct RefSample {
    std::vector<float> rates;
    std::size_t label = 0;
};

/// Everything the experiment benches need, prepared once per dataset.
struct Prepared {
    data::Dataset train;
    data::Dataset test;
    ann::PaperTopology topo;
    std::shared_ptr<ann::Model> model;  ///< pretrained CNN
    double ann_test_accuracy = 0.0;     ///< offline upper bound
    snn::ConvertedStack stack;

    std::vector<RefSample> ref_train;
    std::vector<RefSample> ref_test;
};

/// Runs pipeline stages 1-3 and extracts reference features.
Prepared prepare(const ExperimentSpec& spec);

/// Builds the on-chip network for a prepared experiment.
std::unique_ptr<EmstdpNetwork> build_chip_network(const Prepared& prep,
                                                  const EmstdpOptions& opt);

/// Builds the matching full-precision reference (same feature inputs).
reference::RefEmstdp build_reference(const Prepared& prep,
                                     reference::FeedbackMode mode, float eta,
                                     std::uint64_t seed);

// ---- runtime-API entry points (docs/ARCHITECTURE.md §5) --------------------

/// Compiles the on-chip network of a prepared experiment as an immutable
/// runtime model (LoihiSim backend, frozen conv stack included). Sessions
/// opened from it take raw images and behave exactly like
/// build_chip_network's EmstdpNetwork.
std::shared_ptr<const runtime::CompiledModel> compile_chip_model(
    const Prepared& prep, const EmstdpOptions& opt);

/// Compiles the matching full-precision reference as a runtime model
/// (Reference backend). Its sessions take *normalized conv-feature rate
/// tensors* (Prepared::ref_train / ref_test, see ref_tensor), not raw
/// images — the reference has no conv stack.
std::shared_ptr<const runtime::CompiledModel> compile_reference_model(
    const Prepared& prep, reference::FeedbackMode mode, float eta,
    std::uint64_t seed);

/// Wraps a RefSample's rate vector as the 1x1xN tensor reference sessions
/// consume.
common::Tensor ref_tensor(const RefSample& sample);

/// Trains the reference online for `epochs` passes and returns test accuracy.
double run_reference(reference::RefEmstdp& net, const Prepared& prep,
                     std::size_t epochs, std::uint64_t shuffle_seed);

/// Session-based run_reference: the same shuffle/train/evaluate protocol
/// over a Reference-backend session (see compile_reference_model), so
/// chip-vs-reference comparisons stay in lockstep across both surfaces.
double run_reference(runtime::Session& session, const Prepared& prep,
                     std::size_t epochs, std::uint64_t shuffle_seed);

}  // namespace neuro::core
