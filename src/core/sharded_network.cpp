#include "core/sharded_network.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "data/encode.hpp"
#include "loihi/learning.hpp"

namespace neuro::core {

loihi::ShardPlan plan_network_shards(const loihi::Chip& chip,
                                     std::size_t num_shards) {
    const auto& mapping = chip.mapping();
    std::vector<loihi::PopulationDemand> demands;
    demands.reserve(chip.num_populations());
    for (loihi::PopulationId p = 0; p < chip.num_populations(); ++p)
        demands.push_back({chip.population_config(p).name,
                           mapping.layers.at(p).num_cores});
    std::vector<loihi::PopulationAffinity> edges;
    edges.reserve(chip.num_projections());
    for (loihi::ProjectionId q = 0; q < chip.num_projections(); ++q) {
        const auto& cfg = chip.projection_config(q);
        edges.push_back({cfg.src, cfg.dst, chip.synapse_count(q)});
    }
    return loihi::plan_shards(demands, edges, chip.limits(), num_shards);
}

ShardedEmstdpNetwork::ShardedEmstdpNetwork(const EmstdpOptions& opt,
                                           std::size_t in_c, std::size_t in_h,
                                           std::size_t in_w,
                                           const snn::ConvertedStack* conv,
                                           std::vector<std::size_t> hidden,
                                           std::size_t classes,
                                           std::size_t num_shards,
                                           std::size_t step_threads)
    : ShardedEmstdpNetwork(EmstdpNetwork(opt, in_c, in_h, in_w, conv,
                                         std::move(hidden), classes),
                           num_shards, step_threads) {}

ShardedEmstdpNetwork::ShardedEmstdpNetwork(const EmstdpNetwork& proto,
                                           std::size_t num_shards,
                                           std::size_t step_threads)
    : ShardedEmstdpNetwork(proto, plan_network_shards(proto.chip(), num_shards),
                           step_threads) {}

ShardedEmstdpNetwork::ShardedEmstdpNetwork(const EmstdpNetwork& proto,
                                           loihi::ShardPlan plan,
                                           std::size_t step_threads)
    : opt_(proto.options()),
      chips_([&] {
          if (proto.options().input_mode == InputMode::SpikeInsertion)
              throw std::invalid_argument(
                  "ShardedEmstdpNetwork: InputMode::SpikeInsertion is not "
                  "supported across chips (host spike insertion is not "
                  "routed; use BiasProgramming)");
          return loihi::ShardedChip(proto.chip(), std::move(plan),
                                    step_threads);
      }()),
      classes_(proto.chip().population_size(proto.output_pop())),
      input_size_(proto.chip().population_size(proto.input_pop())),
      label_bias_value_(static_cast<std::int32_t>(std::lround(
          opt_.target_rate * static_cast<float>(opt_.phase_length)))),
      input_(proto.input_pop()),
      label_(proto.label_pop()),
      output_(proto.output_pop()),
      plastic_(proto.plastic_projections()) {
    // Re-seed exactly the way EmstdpNetwork's constructor does, so a
    // 1-shard split of a fresh prototype consumes identical streams.
    common::Rng rng(opt_.seed);
    chips_.seed_learning_noise(rng.next_u64() | 1);
    // Recover the class mask from the prototype's output clamps (a masked
    // class holds a strongly negative bias — see set_class_mask), so the
    // bookkeeping agrees with the captured bias registers.
    class_mask_.assign(classes_, true);
    const auto out_bias = proto.chip().biases(output_);
    for (std::size_t j = 0; j < classes_; ++j) class_mask_[j] = out_bias[j] >= 0;
}

// The per-sample protocol below (train_sample / output_counts / predict /
// set_class_mask / set_learning_shift_offset) deliberately mirrors
// EmstdpNetwork line for line — the two must stay in lockstep or sharded
// and single-chip runs silently diverge. The contract is enforced by
// ShardedExecution.SingleShardBitIdenticalToSingleChip (weights, counts,
// ActivityTotals): a protocol change on either side breaks it.

void ShardedEmstdpNetwork::run_phase(loihi::Phase phase) {
    chips_.set_phase(phase);
    chips_.run(static_cast<std::size_t>(opt_.phase_length));
}

void ShardedEmstdpNetwork::train_sample(const common::Tensor& image,
                                        std::size_t label) {
    if (opt_.inference_only)
        throw std::logic_error(
            "ShardedEmstdpNetwork: inference-only network cannot train");
    if (label >= classes_)
        throw std::out_of_range("ShardedEmstdpNetwork: bad label");

    chips_.reset_dynamic_state();
    if (image.size() != input_size_)
        throw std::invalid_argument("ShardedEmstdpNetwork: image size mismatch");
    chips_.set_bias(input_, data::quantize_to_bias(image, opt_.phase_length));
    std::vector<std::int32_t> lb(classes_, 0);
    if (class_mask_[label]) lb[label] = label_bias_value_;
    chips_.set_bias(*label_, lb);

    run_phase(loihi::Phase::One);
    chips_.reset_membranes();
    run_phase(loihi::Phase::Two);
    chips_.apply_learning();
}

std::vector<std::int32_t> ShardedEmstdpNetwork::output_counts(
    const common::Tensor& image) {
    chips_.reset_dynamic_state();
    if (image.size() != input_size_)
        throw std::invalid_argument("ShardedEmstdpNetwork: image size mismatch");
    chips_.set_bias(input_, data::quantize_to_bias(image, opt_.phase_length));
    if (label_) chips_.clear_bias(*label_);
    run_phase(loihi::Phase::One);
    return chips_.spike_counts(output_, loihi::Phase::One);
}

std::size_t ShardedEmstdpNetwork::predict(const common::Tensor& image) {
    const auto counts = output_counts(image);
    std::size_t best = 0;
    std::int64_t best_v = chips_.membrane(output_, 0);
    for (std::size_t j = 1; j < counts.size(); ++j) {
        const std::int64_t vj = chips_.membrane(output_, j);
        if (counts[j] > counts[best] ||
            (counts[j] == counts[best] && vj > best_v)) {
            best = j;
            best_v = vj;
        }
    }
    return best;
}

void ShardedEmstdpNetwork::set_class_mask(const std::vector<bool>& mask) {
    if (mask.size() != classes_)
        throw std::invalid_argument("set_class_mask: size mismatch");
    class_mask_ = mask;
    std::vector<std::int32_t> bias(classes_, 0);
    for (std::size_t j = 0; j < classes_; ++j)
        if (!mask[j]) bias[j] = -4 * opt_.theta_dense;
    chips_.set_bias(output_, bias);
}

void ShardedEmstdpNetwork::set_learning_shift_offset(int offset) {
    if (offset < 0)
        throw std::invalid_argument("set_learning_shift_offset: negative offset");
    const int base =
        opt_.learning_shift() +
        (opt_.pre_window == loihi::TraceWindow::Both ? 1 : 0);
    const loihi::LearningRule rule = loihi::emstdp_rule(base + offset);
    for (auto proj : plastic_) chips_.set_learning_rule(proj, rule);
}

std::vector<std::vector<std::int32_t>> ShardedEmstdpNetwork::plastic_weights()
    const {
    std::vector<std::vector<std::int32_t>> out;
    out.reserve(plastic_.size());
    for (auto proj : plastic_) out.push_back(chips_.weights(proj));
    return out;
}

void ShardedEmstdpNetwork::set_plastic_weights(
    const std::vector<std::vector<std::int32_t>>& w) {
    if (w.size() != plastic_.size())
        throw std::invalid_argument("set_plastic_weights: layer count mismatch");
    for (std::size_t p = 0; p < plastic_.size(); ++p)
        chips_.program_weights(plastic_[p], w[p]);
}

}  // namespace neuro::core
