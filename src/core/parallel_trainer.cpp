#include "core/parallel_trainer.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/fixed.hpp"
#include "core/trainer.hpp"
#include "runtime/loihi_backend.hpp"

namespace neuro::core {

int ParallelTrainer::rate_shift() const {
    if (!opt_.compensate_rate || opt_.batch <= 1 ||
        opt_.merge == MergeMode::MeanClip)
        return 0;
    return static_cast<int>(
        std::lround(std::log2(static_cast<double>(opt_.batch))));
}

ParallelTrainer::ParallelTrainer(EmstdpNetwork& master, ParallelOptions opt)
    : master_(master), opt_(opt) {
    if (opt_.batch == 0)
        throw std::invalid_argument("ParallelTrainer: batch must be >= 1");
    seed_base_ = opt_.seed != 0 ? opt_.seed : master_.options().seed;

    pool_ = std::make_unique<common::ThreadPool>(opt_.threads);
    const std::size_t workers = pool_->size();

    // One immutable compiled snapshot of the master; every worker session
    // shares its chip structure and (until it trains) its weight image.
    model_ = runtime::adopt(master_);

    // Batched training runs exclusively on sessions — worker 0 included —
    // so rate compensation never touches the master's learning rule. With
    // batch == 1 the sessions only serve the parallel evaluator, and
    // worker 0 reuses the master (a single-threaded trainer carries no
    // session at all).
    replicas_.resize(workers);
    for (std::size_t w = (opt_.batch > 1 ? 0 : 1); w < workers; ++w) {
        replicas_[w] = model_->open_session();
        if (rate_shift() > 0) replicas_[w]->set_learning_shift_offset(rate_shift());
    }

    const auto shapes = master_.plastic_weights();
    deltas_.resize(workers);
    for (auto& d : deltas_) {
        d.resize(shapes.size());
        for (std::size_t p = 0; p < shapes.size(); ++p)
            d[p].assign(shapes[p].size(), 0);
    }
    hits_.assign(workers, 0);
}

ParallelTrainer::~ParallelTrainer() = default;

std::size_t ParallelTrainer::threads() const { return pool_->size(); }

std::uint64_t ParallelTrainer::sample_seed(std::uint64_t pos) const {
    // Two rounds of SplitMix64 over a (seed, epoch, pos) mix. Any stream
    // collision across samples would correlate their rounding noise, but
    // never break the thread-invariance argument.
    std::uint64_t s = seed_base_ ^ (0x9E3779B97F4A7C15ULL * (epoch_ + 1));
    s += (pos + 1) * 0xBF58476D1CE4E5B9ULL;
    common::splitmix64(s);
    return common::splitmix64(s) | 1;
}

double ParallelTrainer::train_epoch(const data::Dataset& stream,
                                    common::Rng& rng, bool measure_prequential) {
    ++epoch_;

    // The strictly-online configuration is the serial trainer, verbatim —
    // same loop, same network, same RNG consumption.
    if (opt_.batch <= 1)
        return core::train_epoch(master_, stream, rng, measure_prequential);

    std::vector<std::size_t> order(stream.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    rng.shuffle(order);

    std::fill(hits_.begin(), hits_.end(), std::size_t{0});
    for (std::size_t b = 0; b < order.size(); b += opt_.batch)
        train_batch(stream, order, b, std::min(b + opt_.batch, order.size()),
                    measure_prequential);

    const std::size_t hits = std::accumulate(hits_.begin(), hits_.end(),
                                             std::size_t{0});
    return stream.size() == 0 || !measure_prequential
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(stream.size());
}

void ParallelTrainer::train_batch(const data::Dataset& stream,
                                  const std::vector<std::size_t>& order,
                                  std::size_t begin, std::size_t end,
                                  bool measure_prequential) {
    const std::size_t count = end - begin;
    const std::size_t workers = pool_->size();
    const runtime::WeightSnapshot w0{master_.plastic_weights()};

    for (auto& d : deltas_)
        for (auto& layer : d) std::fill(layer.begin(), layer.end(), 0);

    pool_->run(workers, [&](std::size_t w) {
        runtime::Session& sess = *replicas_[w];
        auto& delta = deltas_[w];
        // Round-robin sharding; any partition would give the same merged
        // result, since each sample's delta is taken from the same anchor.
        for (std::size_t j = w; j < count; j += workers) {
            const std::size_t pos = begin + j;
            const auto& s = stream.samples[order[pos]];
            sess.load_weights(w0);
            // Seed before predicting too: with decaying traces the
            // inference pass consumes the trace RNG, and the prequential
            // hit must not depend on the session's history.
            sess.seed_noise(sample_seed(pos));
            if (measure_prequential && sess.predict(s.image) == s.label)
                ++hits_[w];
            sess.seed_noise(sample_seed(pos));
            sess.train(s.image, s.label);
            const auto after = sess.weights();
            for (std::size_t p = 0; p < after.layers.size(); ++p)
                for (std::size_t i = 0; i < after.layers[p].size(); ++i)
                    delta[p][i] += after.layers[p][i] - w0.layers[p][i];
        }
    });

    // Merge on the caller thread, in fixed layer/synapse order. Integer
    // sums commute, so the round-robin sharding above cannot leak the
    // worker count into the result.
    auto merged = w0.layers;
    for (std::size_t p = 0; p < merged.size(); ++p) {
        for (std::size_t i = 0; i < merged[p].size(); ++i) {
            std::int64_t sum = 0;
            for (std::size_t w = 0; w < workers; ++w) sum += deltas_[w][p][i];
            if (opt_.merge == MergeMode::MeanClip)
                sum /= static_cast<std::int64_t>(count);
            merged[p][i] = common::saturate_signed(
                static_cast<std::int64_t>(w0.layers[p][i]) + sum,
                master_.options().weight_bits);
        }
    }
    master_.set_plastic_weights(merged);
}

double ParallelTrainer::evaluate(const data::Dataset& test) {
    if (test.size() == 0) return 0.0;
    const std::size_t workers = pool_->size();
    if (workers == 1) return core::evaluate(master_, test);

    const runtime::WeightSnapshot w{master_.plastic_weights()};
    for (std::size_t r = 0; r < workers; ++r)
        if (replicas_[r]) replicas_[r]->load_weights(w);

    std::vector<std::size_t> hits(workers, 0);
    pool_->run(workers, [&](std::size_t r) {
        for (std::size_t i = r; i < test.size(); i += workers) {
            const std::size_t got =
                replicas_[r] ? replicas_[r]->predict(test.samples[i].image)
                             : master_.predict(test.samples[i].image);
            if (got == test.samples[i].label) ++hits[r];
        }
    });
    const std::size_t total = std::accumulate(hits.begin(), hits.end(),
                                              std::size_t{0});
    return static_cast<double>(total) / static_cast<double>(test.size());
}

void ParallelTrainer::set_class_mask(const std::vector<bool>& mask) {
    master_.set_class_mask(mask);
    for (auto& r : replicas_)
        if (r) r->set_class_mask(mask);
}

void ParallelTrainer::set_learning_shift_offset(int offset) {
    master_.set_learning_shift_offset(offset);
    // Sessions stack the rate compensation on top of the user's offset.
    for (auto& r : replicas_)
        if (r) r->set_learning_shift_offset(offset + rate_shift());
}

}  // namespace neuro::core
