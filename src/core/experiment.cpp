#include "core/experiment.hpp"

#include <algorithm>
#include <numeric>

#include "ann/ops.hpp"

namespace neuro::core {

namespace {

/// Normalized conv-stack activations: the rate vector the on-chip feature
/// population would ideally carry (activation / lambda2, clamped to [0,1]).
std::vector<float> feature_rates(const ann::Model& model,
                                 const snn::ConvertedStack& stack,
                                 const common::Tensor& image) {
    const auto& layers = model.layers();
    const auto* conv1 = dynamic_cast<const ann::Conv2d*>(layers[0].get());
    const auto* conv2 = dynamic_cast<const ann::Conv2d*>(layers[2].get());
    const auto a1 = ann::relu_forward(
        ann::conv2d_forward(image, conv1->weights(), conv1->bias(), conv1->stride()));
    const auto a2 = ann::relu_forward(
        ann::conv2d_forward(a1, conv2->weights(), conv2->bias(), conv2->stride()));
    std::vector<float> rates(a2.size());
    const float lambda = stack.conv2.lambda > 0.0f ? stack.conv2.lambda : 1.0f;
    for (std::size_t i = 0; i < a2.size(); ++i)
        rates[i] = std::clamp(a2[i] / lambda, 0.0f, 1.0f);
    return rates;
}

}  // namespace

Prepared prepare(const ExperimentSpec& spec) {
    Prepared prep;

    data::GenOptions gen;
    gen.count = spec.train_count + spec.test_count;
    gen.seed = spec.seed;
    data::Dataset all = data::make_by_name(spec.dataset, gen);
    common::Rng shuffle_rng(spec.seed ^ 0x5EEDULL);
    all.shuffle(shuffle_rng);
    auto [train, test] = data::split(all, spec.train_count);
    prep.train = std::move(train);
    prep.test = std::move(test);

    prep.topo = ann::PaperTopology{};
    prep.topo.in_c = prep.train.channels;
    prep.topo.in_h = prep.train.height;
    prep.topo.in_w = prep.train.width;
    prep.topo.classes = spec.classes;
    if (!spec.hidden.empty()) prep.topo.hidden = spec.hidden.front();

    common::Rng ann_rng(spec.seed ^ 0xA77ULL);
    prep.model = std::make_shared<ann::Model>(
        ann::build_paper_model(prep.topo, ann_rng));
    ann::TrainOptions topt;
    topt.epochs = spec.ann_epochs;
    ann::train(*prep.model, prep.train, topt, ann_rng);
    prep.ann_test_accuracy = ann::evaluate(*prep.model, prep.test);

    // Calibration on a slice of the training set is enough for the
    // percentile estimate.
    data::Dataset calib = prep.train;
    if (calib.samples.size() > 128) calib.samples.resize(128);
    prep.stack = snn::convert_conv_stack(*prep.model, prep.topo, calib, 0.999f, 8);

    prep.ref_train.reserve(prep.train.size());
    for (const auto& s : prep.train.samples)
        prep.ref_train.push_back({feature_rates(*prep.model, prep.stack, s.image),
                                  s.label});
    prep.ref_test.reserve(prep.test.size());
    for (const auto& s : prep.test.samples)
        prep.ref_test.push_back({feature_rates(*prep.model, prep.stack, s.image),
                                 s.label});
    return prep;
}

std::unique_ptr<EmstdpNetwork> build_chip_network(const Prepared& prep,
                                                  const EmstdpOptions& opt) {
    std::vector<std::size_t> hidden = {prep.topo.hidden};
    return std::make_unique<EmstdpNetwork>(opt, prep.topo.in_c, prep.topo.in_h,
                                           prep.topo.in_w, &prep.stack, hidden,
                                           prep.topo.classes);
}

std::shared_ptr<const runtime::CompiledModel> compile_chip_model(
    const Prepared& prep, const EmstdpOptions& opt) {
    runtime::ModelSpec spec;
    spec.input(prep.topo.in_c, prep.topo.in_h, prep.topo.in_w)
        .hidden_layers({prep.topo.hidden})
        .output_classes(prep.topo.classes)
        .with_options(opt)
        .with_conv(prep.stack);
    return runtime::CompiledModel::compile(spec, runtime::BackendKind::LoihiSim);
}

std::shared_ptr<const runtime::CompiledModel> compile_reference_model(
    const Prepared& prep, reference::FeedbackMode mode, float eta,
    std::uint64_t seed) {
    EmstdpOptions opt;
    opt.feedback = mode == reference::FeedbackMode::FA ? FeedbackMode::FA
                                                       : FeedbackMode::DFA;
    opt.eta = eta;
    opt.seed = seed;
    runtime::ModelSpec spec;
    spec.input(1, 1, prep.topo.feature_size())
        .hidden_layers({prep.topo.hidden})
        .output_classes(prep.topo.classes)
        .with_options(opt);
    return runtime::CompiledModel::compile(spec, runtime::BackendKind::Reference);
}

common::Tensor ref_tensor(const RefSample& sample) {
    common::Tensor t({1, 1, sample.rates.size()});
    for (std::size_t i = 0; i < sample.rates.size(); ++i) t[i] = sample.rates[i];
    return t;
}

reference::RefEmstdp build_reference(const Prepared& prep,
                                     reference::FeedbackMode mode, float eta,
                                     std::uint64_t seed) {
    reference::RefConfig cfg;
    cfg.layer_sizes = {prep.topo.feature_size(), prep.topo.hidden,
                       prep.topo.classes};
    cfg.feedback = mode;
    cfg.eta = eta;
    cfg.seed = seed;
    return reference::RefEmstdp(cfg);
}

namespace {

/// The one definition of the reference evaluation protocol (shuffled online
/// epochs, then test-set accuracy), shared by both run_reference surfaces.
/// Callbacks take indices into ref_train / ref_test so each surface can
/// pre-marshal its inputs once.
template <typename TrainFn, typename PredictFn>
double run_reference_protocol(const Prepared& prep, std::size_t epochs,
                              std::uint64_t shuffle_seed, TrainFn train_at,
                              PredictFn predict_at) {
    common::Rng rng(shuffle_seed);
    std::vector<std::size_t> order(prep.ref_train.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    for (std::size_t e = 0; e < epochs; ++e) {
        rng.shuffle(order);
        for (std::size_t idx : order) train_at(idx);
    }
    if (prep.ref_test.empty()) return 0.0;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < prep.ref_test.size(); ++i)
        if (predict_at(i) == prep.ref_test[i].label) ++hits;
    return static_cast<double>(hits) / static_cast<double>(prep.ref_test.size());
}

}  // namespace

double run_reference(reference::RefEmstdp& net, const Prepared& prep,
                     std::size_t epochs, std::uint64_t shuffle_seed) {
    return run_reference_protocol(
        prep, epochs, shuffle_seed,
        [&](std::size_t i) {
            net.train_sample(prep.ref_train[i].rates, prep.ref_train[i].label);
        },
        [&](std::size_t i) { return net.predict(prep.ref_test[i].rates); });
}

double run_reference(runtime::Session& session, const Prepared& prep,
                     std::size_t epochs, std::uint64_t shuffle_seed) {
    // Marshal the fixed datasets into tensors once, not per call.
    std::vector<common::Tensor> train_in, test_in;
    train_in.reserve(prep.ref_train.size());
    for (const auto& s : prep.ref_train) train_in.push_back(ref_tensor(s));
    test_in.reserve(prep.ref_test.size());
    for (const auto& s : prep.ref_test) test_in.push_back(ref_tensor(s));
    return run_reference_protocol(
        prep, epochs, shuffle_seed,
        [&](std::size_t i) {
            session.train(train_in[i], prep.ref_train[i].label);
        },
        [&](std::size_t i) { return session.predict(test_in[i]); });
}

}  // namespace neuro::core
