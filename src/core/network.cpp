#include "core/network.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>

#include "data/encode.hpp"
#include "snn/topology.hpp"

namespace neuro::core {

using loihi::CompartmentConfig;
using loihi::JoinOp;
using loihi::Phase;
using loihi::PopulationConfig;
using loihi::Port;
using loihi::ProjectionConfig;
using loihi::Synapse;
using loihi::TraceConfig;
using loihi::TraceWindow;

int EmstdpOptions::learning_shift() const {
    const double t2 = static_cast<double>(phase_length) * phase_length;
    const double raw = std::log2(t2 / (static_cast<double>(eta) * theta_dense));
    const int shift = static_cast<int>(std::lround(raw));
    return shift < 0 ? 0 : shift;
}

namespace {

/// IF configuration of a forward-path population (paper Sec. III-A: maximum
/// membrane time constant = no voltage leak; current decays immediately).
CompartmentConfig forward_cfg(std::int32_t vth, const EmstdpOptions& opt,
                              JoinOp join) {
    CompartmentConfig c;
    c.decay_u = 4096;
    c.decay_v = 0;
    c.vth = vth;
    c.soft_reset = true;
    c.floor_at_zero = true;
    c.join = join;
    c.pre_trace = TraceConfig{1, 0, opt.pre_window, 7};
    // Decay-trace variant (ablation D): y1 becomes a plain decaying trace
    // whose equilibrium (impulse 2 / decay 128 over T = 64) estimates the
    // recent rate, ~0.87*h_hat + 0.13*h at the end of phase 2 — workable at
    // dense rates, biased toward depression at sparse ones (the ablation
    // shows the collapse; this is why the paper uses trace *counters*). The
    // tag stays an accumulator in both modes — on silicon it is a synaptic
    // *variable* driven by the dt = y0 microcode rule, not a decaying
    // trace; letting it decay would erase the phase-1 count h and destroy
    // the sign of 2*y1 - tag.
    c.post_trace = opt.hw_trace_approx
                       ? TraceConfig{2, 128, TraceWindow::Both, 7}
                       : TraceConfig{1, 0, TraceWindow::Phase2Only, 7};
    c.tag_trace = TraceConfig{1, 0, TraceWindow::Both, 8};
    return c;
}

/// Error-path neurons: signed membranes (two-channel rectification), frozen
/// outside phase 2, optional AND gate against forward activity.
CompartmentConfig error_cfg(std::int32_t vth, bool gated) {
    CompartmentConfig c;
    c.decay_u = 4096;
    c.decay_v = 0;
    c.vth = vth;
    c.soft_reset = true;
    c.floor_at_zero = false;
    c.active_in_phase1 = false;
    c.join = gated ? JoinOp::AndAuxActive : JoinOp::None;
    return c;
}

/// Fixed random feedback matrix, quantized to the weight grid. `limit_f` is
/// the float magnitude bound; `scale` maps float feedback values into the
/// integer domain of the destination (theta_err for error neurons,
/// theta_dense for direct injection). Returns row-major {rows, cols} weights
/// plus the shared power-of-two exponent.
struct IntMatrix {
    std::vector<std::int32_t> w;
    int exponent = 0;
};
IntMatrix random_feedback(std::size_t rows, std::size_t cols, float limit_f,
                          std::int32_t scale, int weight_bits, common::Rng& rng) {
    IntMatrix m;
    const std::int64_t wmax = (std::int64_t{1} << (weight_bits - 1)) - 1;
    std::int64_t limit =
        static_cast<std::int64_t>(std::lround(static_cast<double>(limit_f) * scale));
    while (limit > wmax) {
        limit = (limit + 1) / 2;
        ++m.exponent;
    }
    if (limit < 1) limit = 1;
    m.w.resize(rows * cols);
    for (auto& v : m.w)
        v = static_cast<std::int32_t>(rng.uniform_int(-limit, limit));
    return m;
}

}  // namespace

EmstdpNetwork::EmstdpNetwork(const EmstdpOptions& opt, std::size_t in_c,
                             std::size_t in_h, std::size_t in_w,
                             const snn::ConvertedStack* conv,
                             std::vector<std::size_t> hidden, std::size_t classes)
    : opt_(opt),
      chip_([&] {
          loihi::ChipLimits limits;
          limits.weight_bits = opt.weight_bits;
          return limits;
      }()),
      classes_(classes) {
    if (classes_ == 0) throw std::invalid_argument("EmstdpNetwork: zero classes");
    const std::int32_t T = opt_.phase_length;
    const std::size_t pixels = in_c * in_h * in_w;
    input_size_ = pixels;
    label_bias_value_ = static_cast<std::int32_t>(
        std::lround(opt_.target_rate * static_cast<float>(T)));
    class_mask_.assign(classes_, true);
    common::Rng rng(opt_.seed);
    chip_.seed_learning_noise(rng.next_u64() | 1);

    // ---- forward path -------------------------------------------------------
    {
        PopulationConfig pc;
        pc.name = "input";
        pc.size = pixels;
        pc.compartment = forward_cfg(T, opt_, JoinOp::None);
        input_ = chip_.add_population(pc);
    }

    std::size_t feature_size = pixels;
    feature_ = input_;
    if (conv != nullptr) {
        if (conv->conv1.spec.in_c != in_c || conv->conv1.spec.in_h != in_h ||
            conv->conv1.spec.in_w != in_w)
            throw std::invalid_argument("EmstdpNetwork: conv stack geometry mismatch");
        PopulationConfig c1;
        c1.name = "conv1";
        c1.size = conv->conv1.spec.out_size();
        c1.compartment = forward_cfg(conv->conv1.vth, opt_, JoinOp::None);
        conv1_ = chip_.add_population(c1);

        PopulationConfig c2;
        c2.name = "conv2";
        c2.size = conv->conv2.spec.out_size();
        c2.compartment = forward_cfg(conv->conv2.vth, opt_, JoinOp::None);
        conv2_ = chip_.add_population(c2);

        feature_ = *conv2_;
        feature_size = c2.size;
    }

    // Hidden layers; with DFA they carry the aux compartment that receives
    // the broadcast error (GatedAdd join = the h' gate at the destination).
    const bool dfa = opt_.feedback == FeedbackMode::DFA && !opt_.inference_only;
    std::vector<std::size_t> dense_sizes = hidden;
    for (std::size_t l = 0; l < dense_sizes.size(); ++l) {
        PopulationConfig pc;
        pc.name = "dense" + std::to_string(l + 1);
        pc.size = dense_sizes[l];
        pc.compartment = forward_cfg(
            opt_.theta_dense, opt_,
            dfa && opt_.derivative_gating ? JoinOp::GatedAdd : JoinOp::None);
        pc.neurons_per_core = opt_.neurons_per_core;
        hidden_pops_.push_back(chip_.add_population(pc));
    }
    {
        PopulationConfig pc;
        pc.name = "output";
        pc.size = classes_;
        pc.compartment = forward_cfg(opt_.theta_dense, opt_, JoinOp::None);
        pc.neurons_per_core = opt_.neurons_per_core;
        output_ = chip_.add_population(pc);
    }

    // ---- plastic dense projections -------------------------------------------
    const std::int64_t wmax = (std::int64_t{1} << (opt_.weight_bits - 1)) - 1;
    std::vector<std::size_t> stack_sizes;
    stack_sizes.push_back(feature_size);
    for (std::size_t s : dense_sizes) stack_sizes.push_back(s);
    stack_sizes.push_back(classes_);

    std::vector<loihi::PopulationId> stack_pops;
    stack_pops.push_back(feature_);
    for (auto p : hidden_pops_) stack_pops.push_back(p);
    stack_pops.push_back(output_);

    // With a both-phase pre counter the pre factor is h + h_hat ~ 2h, so
    // the shift grows by one to keep the effective learning rate equal to
    // the phase-gated configuration.
    const int rule_shift = opt_.learning_shift() +
                           (opt_.pre_window == TraceWindow::Both ? 1 : 0);
    const loihi::LearningRule rule = loihi::emstdp_rule(rule_shift);
    for (std::size_t l = 0; l + 1 < stack_pops.size(); ++l) {
        const std::size_t in = stack_sizes[l];
        const std::size_t out = stack_sizes[l + 1];
        const float limit_f = std::sqrt(6.0f / static_cast<float>(in + out));
        std::int64_t limit =
            static_cast<std::int64_t>(std::lround(limit_f * opt_.theta_dense));
        if (limit > wmax) limit = wmax;
        if (limit < 1) limit = 1;
        std::vector<std::int32_t> w(in * out);
        for (auto& v : w)
            v = static_cast<std::int32_t>(rng.uniform_int(-limit, limit));

        ProjectionConfig prc;
        prc.name = "plastic" + std::to_string(l + 1);
        prc.src = stack_pops[l];
        prc.dst = stack_pops[l + 1];
        prc.plastic = true;
        prc.rule = rule;
        prc.stochastic_rounding = opt_.stochastic_rounding;
        plastic_.push_back(
            chip_.add_projection(prc, snn::dense_synapses(in, out, w)));
    }

    // ---- frozen conv projections ---------------------------------------------
    if (conv != nullptr) {
        ProjectionConfig p1;
        p1.name = "conv1";
        p1.src = input_;
        p1.dst = *conv1_;
        chip_.add_projection(p1, snn::conv_synapses(conv->conv1.spec,
                                                    conv->conv1.weights));
        ProjectionConfig p2;
        p2.name = "conv2";
        p2.src = *conv1_;
        p2.dst = *conv2_;
        chip_.add_projection(p2, snn::conv_synapses(conv->conv2.spec,
                                                    conv->conv2.weights));
    }

    // ---- error path ------------------------------------------------------------
    if (!opt_.inference_only) {
        {
            PopulationConfig pc;
            pc.name = "label";
            pc.size = classes_;
            pc.compartment = forward_cfg(T, opt_, JoinOp::None);
            pc.compartment.active_in_phase1 = false;
            label_ = chip_.add_population(pc);
        }
        {
            PopulationConfig pc;
            pc.name = "out_err+";
            pc.size = classes_;
            pc.compartment = error_cfg(opt_.theta_err, /*gated=*/false);
            pc.neurons_per_core = opt_.neurons_per_core;
            out_err_pos_ = chip_.add_population(pc);
            pc.name = "out_err-";
            out_err_neg_ = chip_.add_population(pc);
        }

        const auto unit = loihi::encode_weight(opt_.theta_err, opt_.weight_bits);
        auto one_to_one = [&](loihi::PopulationId src, loihi::PopulationId dst,
                              std::int32_t w, int exp, Port port,
                              const std::string& name) {
            ProjectionConfig pc;
            pc.name = name;
            pc.src = src;
            pc.dst = dst;
            pc.port = port;
            pc.weight_exp = exp;
            feedback_projections_.push_back(chip_.add_projection(
                pc, snn::identity_synapses(chip_.population_size(src), w)));
        };

        // Output error: epsilon_L accumulates theta_err * (label - output)
        // in the + channel and the negation in the - channel (paper eq. 6).
        one_to_one(*label_, *out_err_pos_, unit.weight, unit.exponent, Port::Soma,
                   "label->oe+");
        one_to_one(output_, *out_err_pos_, -unit.weight, unit.exponent, Port::Soma,
                   "out->oe+");
        one_to_one(*label_, *out_err_neg_, -unit.weight, unit.exponent, Port::Soma,
                   "label->oe-");
        one_to_one(output_, *out_err_neg_, unit.weight, unit.exponent, Port::Soma,
                   "out->oe-");

        // Correction injection into the output layer: one error spike = one
        // output spike (weight +-theta_dense).
        const auto inj = loihi::encode_weight(opt_.theta_dense, opt_.weight_bits);
        one_to_one(*out_err_pos_, output_, inj.weight, inj.exponent, Port::Soma,
                   "oe+->out");
        one_to_one(*out_err_neg_, output_, -inj.weight, inj.exponent, Port::Soma,
                   "oe-->out");

        if (opt_.feedback == FeedbackMode::FA) {
            // Mirrored error populations per hidden layer, chained top-down
            // with cross-connected fixed random weights (paper eq. 10).
            for (std::size_t l = 0; l < hidden_pops_.size(); ++l) {
                PopulationConfig pc;
                pc.name = "hid_err" + std::to_string(l + 1) + "+";
                pc.size = dense_sizes[l];
                pc.compartment = error_cfg(opt_.theta_err, opt_.derivative_gating);
                pc.neurons_per_core = opt_.neurons_per_core;
                hid_err_pos_.push_back(chip_.add_population(pc));
                pc.name = "hid_err" + std::to_string(l + 1) + "-";
                hid_err_neg_.push_back(chip_.add_population(pc));
            }
            for (std::size_t l = hidden_pops_.size(); l-- > 0;) {
                const bool top = l + 1 == hidden_pops_.size();
                const loihi::PopulationId up_pos =
                    top ? *out_err_pos_ : hid_err_pos_[l + 1];
                const loihi::PopulationId up_neg =
                    top ? *out_err_neg_ : hid_err_neg_[l + 1];
                const std::size_t rows = dense_sizes[l];
                const std::size_t cols = chip_.population_size(up_pos);
                const float limit_f =
                    opt_.feedback_gain / std::sqrt(static_cast<float>(cols));
                const IntMatrix B = random_feedback(rows, cols, limit_f,
                                                    opt_.theta_err,
                                                    opt_.weight_bits, rng);
                auto cross = [&](loihi::PopulationId src, loihi::PopulationId dst,
                                 int sign, const std::string& name) {
                    std::vector<Synapse> syns;
                    syns.reserve(rows * cols);
                    for (std::size_t r = 0; r < rows; ++r)
                        for (std::size_t c = 0; c < cols; ++c)
                            syns.push_back(
                                {static_cast<std::uint32_t>(c),
                                 static_cast<std::uint32_t>(r),
                                 sign * B.w[r * cols + c]});
                    ProjectionConfig pc;
                    pc.name = name;
                    pc.src = src;
                    pc.dst = dst;
                    pc.weight_exp = B.exponent;
                    feedback_projections_.push_back(
                        chip_.add_projection(pc, std::move(syns)));
                };
                const std::string tag = "fa" + std::to_string(l + 1);
                cross(up_pos, hid_err_pos_[l], +1, tag + ":+->+");
                cross(up_neg, hid_err_pos_[l], -1, tag + ":-->+");
                cross(up_pos, hid_err_neg_[l], -1, tag + ":+->-");
                cross(up_neg, hid_err_neg_[l], +1, tag + ":-->-");

                // h' gate: forward activity opens the error somata via aux.
                if (opt_.derivative_gating) {
                    one_to_one(hidden_pops_[l], hid_err_pos_[l], 1, 0, Port::Aux,
                               tag + ":gate+");
                    one_to_one(hidden_pops_[l], hid_err_neg_[l], 1, 0, Port::Aux,
                               tag + ":gate-");
                }
                // Correction injection into the forward layer.
                one_to_one(hid_err_pos_[l], hidden_pops_[l], inj.weight,
                           inj.exponent, Port::Soma, tag + ":inject+");
                one_to_one(hid_err_neg_[l], hidden_pops_[l], -inj.weight,
                           inj.exponent, Port::Soma, tag + ":inject-");
            }
        } else {
            // DFA: broadcast the output error to every hidden layer through
            // fixed random weights. With gating the broadcast lands on the
            // aux compartment (GatedAdd); without gating, on the soma.
            for (std::size_t l = 0; l < hidden_pops_.size(); ++l) {
                const std::size_t rows = dense_sizes[l];
                const float limit_f =
                    opt_.feedback_gain / std::sqrt(static_cast<float>(classes_));
                const IntMatrix B = random_feedback(rows, classes_, limit_f,
                                                    opt_.theta_dense,
                                                    opt_.weight_bits, rng);
                const Port port =
                    opt_.derivative_gating ? Port::Aux : Port::Soma;
                auto broadcast = [&](loihi::PopulationId src, int sign,
                                     const std::string& name) {
                    std::vector<Synapse> syns;
                    syns.reserve(rows * classes_);
                    for (std::size_t r = 0; r < rows; ++r)
                        for (std::size_t c = 0; c < classes_; ++c)
                            syns.push_back({static_cast<std::uint32_t>(c),
                                            static_cast<std::uint32_t>(r),
                                            sign * B.w[r * classes_ + c]});
                    ProjectionConfig pc;
                    pc.name = name;
                    pc.src = src;
                    pc.dst = hidden_pops_[l];
                    pc.port = port;
                    pc.weight_exp = B.exponent;
                    feedback_projections_.push_back(
                        chip_.add_projection(pc, std::move(syns)));
                };
                const std::string tag = "dfa" + std::to_string(l + 1);
                broadcast(*out_err_pos_, +1, tag + ":+");
                broadcast(*out_err_neg_, -1, tag + ":-");
            }
        }
    }

    // ---- conv parameters & finalize -------------------------------------------
    if (conv != nullptr) {
        chip_.set_bias(*conv1_, conv->conv1.bias);
        chip_.set_bias(*conv2_, conv->conv2.bias);
    }
    chip_.finalize();
    chip_.reset_activity();  // construction-time bias writes are not runtime I/O
}

void EmstdpNetwork::program_input(const common::Tensor& image) {
    if (image.size() != input_size_)
        throw std::invalid_argument("EmstdpNetwork: image size mismatch");
    if (opt_.input_mode == InputMode::BiasProgramming) {
        chip_.set_bias(input_, data::quantize_to_bias(image, opt_.phase_length));
        rasters_.clear();
    } else {
        chip_.clear_bias(input_);
        rasters_ = data::rate_code_spikes(image, opt_.phase_length);
    }
}

void EmstdpNetwork::run_phase(Phase phase) {
    chip_.set_phase(phase);
    const auto T = static_cast<std::size_t>(opt_.phase_length);
    if (opt_.input_mode == InputMode::BiasProgramming) {
        chip_.run(T);
        return;
    }
    for (std::size_t t = 0; t < T; ++t) {
        // Step first, insert after: a bias-driven input neuron firing at
        // step t is delivered downstream at t+1, and host insertion must
        // keep the same one-step alignment (verified by the
        // InputEncoding.BiasAndInsertionProduceIdenticalActivity test).
        chip_.step();
        for (std::size_t i = 0; i < rasters_.size(); ++i)
            if (rasters_[i][t]) chip_.insert_spike(input_, i);
    }
}

void EmstdpNetwork::train_sample(const common::Tensor& image, std::size_t label) {
    if (opt_.inference_only)
        throw std::logic_error("EmstdpNetwork: inference-only network cannot train");
    if (label >= classes_) throw std::out_of_range("EmstdpNetwork: bad label");

    chip_.reset_dynamic_state();
    program_input(image);
    std::vector<std::int32_t> lb(classes_, 0);
    if (class_mask_[label]) lb[label] = label_bias_value_;
    chip_.set_bias(*label_, lb);

    run_phase(Phase::One);
    // Phase boundary: clear membranes so phase 2 replays phase 1 exactly
    // when no correction arrives (see Chip::reset_membranes).
    chip_.reset_membranes();
    run_phase(Phase::Two);
    chip_.apply_learning();
}

std::vector<std::int32_t> EmstdpNetwork::output_counts(const common::Tensor& image) {
    chip_.reset_dynamic_state();
    program_input(image);
    if (label_) chip_.clear_bias(*label_);
    run_phase(Phase::One);
    return chip_.spike_counts(output_, Phase::One);
}

std::size_t EmstdpNetwork::predict(const common::Tensor& image) {
    const auto counts = output_counts(image);
    std::size_t best = 0;
    std::int64_t best_v = chip_.membrane(output_, 0);
    for (std::size_t j = 1; j < counts.size(); ++j) {
        const std::int64_t vj = chip_.membrane(output_, j);
        if (counts[j] > counts[best] || (counts[j] == counts[best] && vj > best_v)) {
            best = j;
            best_v = vj;
        }
    }
    return best;
}

void EmstdpNetwork::set_class_mask(const std::vector<bool>& mask) {
    if (mask.size() != classes_)
        throw std::invalid_argument("set_class_mask: size mismatch");
    class_mask_ = mask;
    // Clamp disabled output neurons off: a strongly negative bias plus the
    // zero floor keeps them at v = 0, so they never spike in either phase
    // and their weight rows receive no update (y1 = tag = 0).
    std::vector<std::int32_t> bias(classes_, 0);
    for (std::size_t j = 0; j < classes_; ++j)
        if (!mask[j]) bias[j] = -4 * opt_.theta_dense;
    chip_.set_bias(output_, bias);
}

void EmstdpNetwork::set_learning_shift_offset(int offset) {
    if (offset < 0)
        throw std::invalid_argument("set_learning_shift_offset: negative offset");
    shift_offset_ = offset;
    const int base = opt_.learning_shift() +
                     (opt_.pre_window == loihi::TraceWindow::Both ? 1 : 0);
    const loihi::LearningRule rule = loihi::emstdp_rule(base + shift_offset_);
    for (auto proj : plastic_) chip_.set_learning_rule(proj, rule);
}

std::vector<std::vector<std::int32_t>> EmstdpNetwork::plastic_weights() const {
    std::vector<std::vector<std::int32_t>> out;
    out.reserve(plastic_.size());
    for (auto proj : plastic_) out.push_back(chip_.weights(proj));
    return out;
}

void EmstdpNetwork::set_plastic_weights(
    const std::vector<std::vector<std::int32_t>>& w) {
    if (w.size() != plastic_.size())
        throw std::invalid_argument("set_plastic_weights: layer count mismatch");
    for (std::size_t p = 0; p < plastic_.size(); ++p)
        chip_.program_weights(plastic_[p], w[p]);
}

void EmstdpNetwork::save(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("EmstdpNetwork::save: cannot open " + path);
    chip_.save_weights(out);
}

void EmstdpNetwork::load(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("EmstdpNetwork::load: cannot open " + path);
    chip_.load_weights(in);
}

StructuralCosts EmstdpNetwork::costs() const {
    StructuralCosts c;
    c.compartments = chip_.total_compartments();
    c.synapses = chip_.total_synapses();
    c.cores = chip_.mapping().total_cores;
    for (auto proj : feedback_projections_)
        c.feedback_synapses += chip_.synapse_count(proj);
    auto pop_compartments = [&](loihi::PopulationId p, bool aux) {
        return chip_.population_size(p) * (aux ? 2 : 1);
    };
    if (out_err_pos_) {
        c.feedback_compartments += pop_compartments(*out_err_pos_, false);
        c.feedback_compartments += pop_compartments(*out_err_neg_, false);
    }
    if (label_) c.feedback_compartments += pop_compartments(*label_, false);
    for (std::size_t l = 0; l < hid_err_pos_.size(); ++l) {
        c.feedback_compartments +=
            pop_compartments(hid_err_pos_[l], opt_.derivative_gating);
        c.feedback_compartments +=
            pop_compartments(hid_err_neg_[l], opt_.derivative_gating);
    }
    return c;
}

}  // namespace neuro::core
