#pragma once
// EMSTDP network on the chip (paper Sec. III, Fig. 1b).
//
// Layout built by this class:
//
//   input (bias-driven IF)                                [pixels]
//     -> conv1 -> conv2 (frozen, pretrained, quantized)   [optional]
//       -> dense hidden ... -> output                     [plastic]
//
//   label (bias-driven, phase 2 only)
//   out_err+/- : two-channel output error neurons
//   FA:  hid_err+/- per hidden layer (soma+aux, AND-gated by forward
//        activity), chained with fixed random weights per eq. (10)
//   DFA: out_err broadcast to hidden somata's aux compartments through
//        fixed random weights; GatedAdd join implements the h' gate
//
// Per training sample (Operation Flow 1): program input & label biases,
// run phase 1 (T steps), reset membranes, run phase 2 (T steps), apply the
// sum-of-products learning rule, reset network state.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/tensor.hpp"
#include "core/options.hpp"
#include "loihi/chip.hpp"
#include "loihi/energy.hpp"
#include "snn/convert.hpp"

namespace neuro::core {

/// Structural cost summary (ablation C / Fig. 3 inputs).
struct StructuralCosts {
    std::size_t compartments = 0;
    std::size_t synapses = 0;
    std::size_t cores = 0;
    std::size_t feedback_synapses = 0;   ///< error-path synapses only
    std::size_t feedback_compartments = 0;
};

class EmstdpNetwork {
public:
    /// Builds the network. `conv` may be null: the dense stack then trains
    /// directly on the (flattened) input — used by unit tests and toy tasks.
    /// `hidden` holds the dense hidden sizes (the paper uses {100}).
    EmstdpNetwork(const EmstdpOptions& opt, std::size_t in_c, std::size_t in_h,
                  std::size_t in_w, const snn::ConvertedStack* conv,
                  std::vector<std::size_t> hidden, std::size_t classes);

    /// One online training step (phase 1 + phase 2 + weight update).
    void train_sample(const common::Tensor& image, std::size_t label);

    /// Phase-1 inference; argmax of output counts, membrane breaks ties.
    std::size_t predict(const common::Tensor& image);

    /// Phase-1 output spike counts.
    std::vector<std::int32_t> output_counts(const common::Tensor& image);

    // ---- incremental online learning hooks (paper Sec. IV-B) --------------
    /// Classes with mask=false are disabled: their label neurons stay silent
    /// and their output neurons are clamped off, which freezes their weight
    /// rows (the update needs postsynaptic activity).
    void set_class_mask(const std::vector<bool>& mask);
    /// Adds `offset` to the learning shift (halving eta per unit) — the
    /// reduced learning rate of IOL step 1. Negative offsets are rejected.
    void set_learning_shift_offset(int offset);

    // ---- replication & weight sync (parallel trainer support) --------------
    /// Explicit replication: the replica behaves exactly like an independent
    /// deep copy (device faults, class masks, RNG streams and all dynamic
    /// state are captured as of this call), but the finalized chip structure
    /// is shared and the synaptic weight image is shared copy-on-write, so a
    /// replica costs only its dynamic state until it first trains. This is
    /// how ParallelTrainer and runtime::Session build per-thread instances.
    /// Implicit copying is deliberately inaccessible — a silent full-network
    /// copy can't happen by accident.
    EmstdpNetwork replicate() const { return EmstdpNetwork(*this); }

    EmstdpNetwork(EmstdpNetwork&&) = default;
    EmstdpNetwork& operator=(EmstdpNetwork&&) = default;
    EmstdpNetwork& operator=(const EmstdpNetwork&) = delete;

    /// Current weights of every plastic projection, in plastic_projections()
    /// order (frozen conv weights are excluded — they never change).
    std::vector<std::vector<std::int32_t>> plastic_weights() const;

    /// Reprograms every plastic projection (sizes must match
    /// plastic_weights(); values must fit the weight precision). Works on a
    /// finalized chip — the host-side equivalent of rewriting synaptic
    /// memory — and leaves stuck-at faulted cells untouched.
    void set_plastic_weights(const std::vector<std::vector<std::int32_t>>& w);

    // ---- deployment ---------------------------------------------------------
    /// Checkpoints every synaptic weight (trained dense + frozen conv) to a
    /// file; load() restores it into an identically-built network. This is
    /// the host-side equivalent of reading back / reprogramming the chip's
    /// synaptic memory.
    void save(const std::string& path) const;
    void load(const std::string& path);

    // ---- probing ------------------------------------------------------------
    loihi::Chip& chip() { return chip_; }
    const loihi::Chip& chip() const { return chip_; }
    StructuralCosts costs() const;
    const EmstdpOptions& options() const { return opt_; }

    loihi::PopulationId input_pop() const { return input_; }
    /// The population feeding the first plastic layer (conv2 or input).
    loihi::PopulationId feature_pop() const { return feature_; }
    const std::vector<loihi::PopulationId>& hidden_pops() const { return hidden_pops_; }
    loihi::PopulationId output_pop() const { return output_; }
    /// The label population (nullopt for inference-only builds). Exposed for
    /// drivers that replay the training protocol on a different substrate
    /// (core::ShardedEmstdpNetwork).
    std::optional<loihi::PopulationId> label_pop() const { return label_; }
    const std::vector<loihi::ProjectionId>& plastic_projections() const {
        return plastic_;
    }

private:
    /// Reachable only through replicate().
    EmstdpNetwork(const EmstdpNetwork&) = default;

    EmstdpOptions opt_;
    loihi::Chip chip_;

    std::size_t classes_;
    std::size_t input_size_;
    std::int32_t label_bias_value_;

    loihi::PopulationId input_ = 0;
    std::optional<loihi::PopulationId> conv1_, conv2_;
    loihi::PopulationId feature_ = 0;
    std::vector<loihi::PopulationId> hidden_pops_;
    loihi::PopulationId output_ = 0;
    std::optional<loihi::PopulationId> label_;
    std::optional<loihi::PopulationId> out_err_pos_, out_err_neg_;
    std::vector<loihi::PopulationId> hid_err_pos_, hid_err_neg_;  // FA only

    std::vector<loihi::ProjectionId> plastic_;
    std::vector<loihi::ProjectionId> feedback_projections_;

    std::vector<bool> class_mask_;
    int shift_offset_ = 0;

    /// Spike-insertion rasters for the current sample (SpikeInsertion mode).
    std::vector<std::vector<bool>> rasters_;

    void program_input(const common::Tensor& image);
    void run_phase(loihi::Phase phase);
    void apply_rules();
};

}  // namespace neuro::core
