#include "core/trainer.hpp"

#include <numeric>
#include <stdexcept>

namespace neuro::core {

double train_epoch(EmstdpNetwork& net, const data::Dataset& stream,
                   common::Rng& rng, bool measure_prequential) {
    std::vector<std::size_t> order(stream.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    rng.shuffle(order);

    std::size_t hits = 0;
    for (std::size_t idx : order) {
        const auto& s = stream.samples[idx];
        if (measure_prequential && net.predict(s.image) == s.label) ++hits;
        net.train_sample(s.image, s.label);
    }
    return stream.size() == 0 || !measure_prequential
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(stream.size());
}

double evaluate(EmstdpNetwork& net, const data::Dataset& test) {
    if (test.size() == 0) return 0.0;
    std::size_t hits = 0;
    for (const auto& s : test.samples)
        if (net.predict(s.image) == s.label) ++hits;
    return static_cast<double>(hits) / static_cast<double>(test.size());
}

loihi::EnergyReport measure_energy(EmstdpNetwork& net, const data::Dataset& ds,
                                   std::size_t samples, bool training,
                                   const loihi::EnergyModelParams& params) {
    if (ds.size() == 0) throw std::invalid_argument("measure_energy: empty dataset");
    net.chip().reset_activity();
    for (std::size_t i = 0; i < samples; ++i) {
        const auto& s = ds.samples[i % ds.size()];
        if (training)
            net.train_sample(s.image, s.label);
        else
            (void)net.predict(s.image);
    }
    return loihi::estimate_energy(params, net.chip(), net.chip().activity(), samples);
}

}  // namespace neuro::core
