#include "core/trainer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/sharded_network.hpp"

namespace neuro::core {

namespace {

// The one definition of the online-epoch and evaluation protocols, shared
// by the EmstdpNetwork and runtime::Session surfaces so seeded comparisons
// between them line up bit-for-bit.

template <typename PredictFn, typename TrainFn>
double train_epoch_protocol(const data::Dataset& stream, common::Rng& rng,
                            bool measure_prequential, PredictFn predict,
                            TrainFn train) {
    std::vector<std::size_t> order(stream.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    rng.shuffle(order);

    std::size_t hits = 0;
    for (std::size_t idx : order) {
        const auto& s = stream.samples[idx];
        if (measure_prequential && predict(s.image) == s.label) ++hits;
        train(s.image, s.label);
    }
    return stream.size() == 0 || !measure_prequential
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(stream.size());
}

template <typename PredictFn>
double evaluate_protocol(const data::Dataset& test, PredictFn predict) {
    if (test.size() == 0) return 0.0;
    std::size_t hits = 0;
    for (const auto& s : test.samples)
        if (predict(s.image) == s.label) ++hits;
    return static_cast<double>(hits) / static_cast<double>(test.size());
}

}  // namespace

double train_epoch(EmstdpNetwork& net, const data::Dataset& stream,
                   common::Rng& rng, bool measure_prequential) {
    return train_epoch_protocol(
        stream, rng, measure_prequential,
        [&](const common::Tensor& x) { return net.predict(x); },
        [&](const common::Tensor& x, std::size_t y) { net.train_sample(x, y); });
}

double evaluate(EmstdpNetwork& net, const data::Dataset& test) {
    return evaluate_protocol(
        test, [&](const common::Tensor& x) { return net.predict(x); });
}

loihi::EnergyReport measure_energy(EmstdpNetwork& net, const data::Dataset& ds,
                                   std::size_t samples, bool training,
                                   const loihi::EnergyModelParams& params) {
    if (ds.size() == 0) throw std::invalid_argument("measure_energy: empty dataset");
    net.chip().reset_activity();
    for (std::size_t i = 0; i < samples; ++i) {
        const auto& s = ds.samples[i % ds.size()];
        if (training)
            net.train_sample(s.image, s.label);
        else
            (void)net.predict(s.image);
    }
    return loihi::estimate_energy(params, net.chip(), net.chip().activity(), samples);
}

double train_epoch(runtime::Session& session, const data::Dataset& stream,
                   common::Rng& rng, bool measure_prequential) {
    return train_epoch_protocol(
        stream, rng, measure_prequential,
        [&](const common::Tensor& x) { return session.predict(x); },
        [&](const common::Tensor& x, std::size_t y) { session.train(x, y); });
}

double evaluate(runtime::Session& session, const data::Dataset& test) {
    return evaluate_protocol(
        test, [&](const common::Tensor& x) { return session.predict(x); });
}

bool train_prequential(runtime::Session& session, const common::Tensor& image,
                       std::size_t label) {
    const bool hit = session.predict(image) == label;
    session.train(image, label);
    return hit;
}

loihi::EnergyReport measure_energy(runtime::Session& session,
                                   const data::Dataset& ds, std::size_t samples,
                                   bool training,
                                   const loihi::EnergyModelParams& params) {
    if (auto* net = session.native_network())
        return measure_energy(*net, ds, samples, training, params);
    if (auto* sharded = session.native_sharded_network()) {
        // Multi-chip operating point: every chip steps behind the same
        // barrier, so the system step time is the slowest shard's; power
        // (incl. per-chip base power) and cores add up across the package.
        // Inter-chip link energy is not modeled.
        if (ds.size() == 0)
            throw std::invalid_argument("measure_energy: empty dataset");
        sharded->reset_activity();
        for (std::size_t i = 0; i < samples; ++i) {
            const auto& s = ds.samples[i % ds.size()];
            if (training)
                session.train(s.image, s.label);
            else
                (void)session.predict(s.image);
        }
        loihi::EnergyReport total{};
        const auto& chips = sharded->chips();
        for (std::size_t sh = 0; sh < chips.num_shards(); ++sh) {
            // shard_activity includes the shard's slice of the router's
            // work (inbound cross-chip deliveries, cut-projection learning
            // visits) — the synaptic work exists whether or not the synapse
            // crossed a chip boundary.
            const auto r = loihi::estimate_energy(
                params, chips.shard(sh), chips.shard_activity(sh), samples);
            total.step_seconds = std::max(total.step_seconds, r.step_seconds);
            total.power_w += r.power_w;
            total.cores += r.cores;
            total.steps_per_sample = std::max(total.steps_per_sample,
                                              r.steps_per_sample);
        }
        total.sample_seconds =
            total.step_seconds * static_cast<double>(total.steps_per_sample);
        total.fps = total.sample_seconds > 0 ? 1.0 / total.sample_seconds : 0.0;
        total.energy_per_sample_j = total.power_w * total.sample_seconds;
        return total;
    }
    throw std::invalid_argument(
        "measure_energy: this backend has no activity/energy model");
}

}  // namespace neuro::core
