#pragma once
// EMSTDP across multiple chips: the single-chip network of core/network.hpp
// split over N loihi::Chip instances with inter-chip spike routing
// (loihi/shard.hpp + loihi/router.hpp).
//
// The class builds the ordinary single-chip prototype first — so topology,
// weight initialization and RNG seeding are *identical* to EmstdpNetwork —
// then shards its finalized structure per a ShardPlan and replays the
// paper's Operation Flow 1 against the sharded substrate. With one shard
// the result is bit-identical to EmstdpNetwork (same weights, same spike
// counts, same ActivityTotals); with several shards the forward pass is
// still bit-identical (spiking consumes no RNG in the default
// configuration) and training is deterministic for any shard count, with
// per-shard / per-cut-projection stochastic-rounding streams replacing the
// single chip-wide stream.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/tensor.hpp"
#include "core/network.hpp"
#include "core/options.hpp"
#include "loihi/router.hpp"
#include "loihi/shard.hpp"

namespace neuro::core {

/// Derives the shard-planner inputs (per-population core demand, pairwise
/// synapse affinity) from a finalized chip's mapping and topology.
loihi::ShardPlan plan_network_shards(const loihi::Chip& chip,
                                     std::size_t num_shards);

class ShardedEmstdpNetwork {
public:
    /// Builds the prototype EmstdpNetwork and shards it. `num_shards` 0
    /// plans automatically (minimum chips that fit the mapping; 1 when the
    /// model fits one chip). `step_threads` bounds the concurrent-shard
    /// worker pool (0 = one thread per shard). Throws when a single
    /// population exceeds one chip's core budget, or for the
    /// InputMode::SpikeInsertion encoding (host spike insertion is not
    /// routed across chips).
    ShardedEmstdpNetwork(const EmstdpOptions& opt, std::size_t in_c,
                         std::size_t in_h, std::size_t in_w,
                         const snn::ConvertedStack* conv,
                         std::vector<std::size_t> hidden, std::size_t classes,
                         std::size_t num_shards = 0,
                         std::size_t step_threads = 0);

    /// Shards an already-built (possibly trained) network: the prototype's
    /// current weights, biases, device state, live learning rules and class
    /// mask (recovered from its output-neuron clamps) are captured; its
    /// stochastic-rounding streams are re-seeded deterministically from the
    /// options seed. The prototype is only read.
    explicit ShardedEmstdpNetwork(const EmstdpNetwork& proto,
                                  std::size_t num_shards = 0,
                                  std::size_t step_threads = 0);

    /// Same, with a precomputed plan (must cover the prototype's
    /// populations) — the path the runtime backend takes after planning
    /// once for its degenerate-shard check.
    ShardedEmstdpNetwork(const EmstdpNetwork& proto, loihi::ShardPlan plan,
                         std::size_t step_threads = 0);

    /// Explicit replication (same contract as EmstdpNetwork::replicate):
    /// shard chips share structure and copy-on-write weight images.
    ShardedEmstdpNetwork replicate() const { return ShardedEmstdpNetwork(*this); }

    ShardedEmstdpNetwork(ShardedEmstdpNetwork&&) = default;
    ShardedEmstdpNetwork& operator=(ShardedEmstdpNetwork&&) = delete;
    ShardedEmstdpNetwork& operator=(const ShardedEmstdpNetwork&) = delete;

    // ---- the EmstdpNetwork workload surface --------------------------------
    void train_sample(const common::Tensor& image, std::size_t label);
    std::size_t predict(const common::Tensor& image);
    std::vector<std::int32_t> output_counts(const common::Tensor& image);

    void set_class_mask(const std::vector<bool>& mask);
    void set_learning_shift_offset(int offset);

    std::vector<std::vector<std::int32_t>> plastic_weights() const;
    void set_plastic_weights(const std::vector<std::vector<std::int32_t>>& w);

    void seed_learning_noise(std::uint64_t seed) {
        chips_.seed_learning_noise(seed);
    }

    // ---- probing -----------------------------------------------------------
    loihi::ShardedChip& chips() { return chips_; }
    const loihi::ShardedChip& chips() const { return chips_; }
    std::size_t num_shards() const { return chips_.num_shards(); }
    const loihi::ShardPlan& plan() const { return chips_.plan(); }
    const EmstdpOptions& options() const { return opt_; }
    /// System-wide activity totals (see ShardedChip::activity).
    loihi::ActivityTotals activity() const { return chips_.activity(); }
    void reset_activity() { chips_.reset_activity(); }

private:
    /// Reachable only through replicate().
    ShardedEmstdpNetwork(const ShardedEmstdpNetwork&) = default;

    void run_phase(loihi::Phase phase);

    EmstdpOptions opt_;
    loihi::ShardedChip chips_;

    std::size_t classes_;
    std::size_t input_size_;
    std::int32_t label_bias_value_;

    loihi::PopulationId input_ = 0;
    std::optional<loihi::PopulationId> label_;
    loihi::PopulationId output_ = 0;
    std::vector<loihi::ProjectionId> plastic_;

    std::vector<bool> class_mask_;
};

}  // namespace neuro::core
