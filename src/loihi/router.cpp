#include "loihi/router.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/fixed.hpp"

namespace neuro::loihi {

namespace {

/// Deterministic per-shard / per-projection stream derivation. Index 0 maps
/// to the seed itself so a 1-shard split consumes exactly the prototype's
/// stream (bit-identity with the unsharded chip).
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t index) {
    if (index == 0) return seed;
    std::uint64_t state = seed + 0x9E3779B97F4A7C15ULL * index;
    return common::splitmix64(state);
}

}  // namespace

ShardedChip::ShardedChip(const Chip& proto, ShardPlan plan,
                         std::size_t step_threads)
    : plan_(std::move(plan)),
      limits_(proto.limits()),
      learn_seed_(derive_seed(0xC0FFEE, 0x5EEDULL)),
      step_threads_(step_threads) {
    if (!proto.finalized())
        throw std::logic_error("ShardedChip: prototype chip must be finalized");
    const std::size_t num_pops = proto.num_populations();
    if (plan_.shard_of.size() != num_pops)
        throw std::invalid_argument(
            "ShardedChip: plan covers " + std::to_string(plan_.shard_of.size()) +
            " populations, chip has " + std::to_string(num_pops));
    if (plan_.num_shards == 0)
        throw std::invalid_argument("ShardedChip: empty plan");

    chips_.reserve(plan_.num_shards);
    for (std::size_t s = 0; s < plan_.num_shards; ++s)
        chips_.emplace_back(limits_);

    // ---- populations, in prototype build order -----------------------------
    pop_shard_.resize(num_pops);
    pop_local_.resize(num_pops);
    for (PopulationId p = 0; p < num_pops; ++p) {
        const std::size_t s = plan_.shard_of[p];
        if (s >= plan_.num_shards)
            throw std::invalid_argument("ShardedChip: plan assigns population " +
                                        std::to_string(p) + " to missing shard");
        pop_shard_[p] = s;
        pop_local_[p] = chips_[s].add_population(proto.population_config(p));
    }

    // ---- projections: on-shard ones rebuild locally, cut ones go to the
    // router (synapses captured with their *current* weights) ---------------
    const std::size_t num_projs = proto.num_projections();
    proj_shard_.resize(num_projs);
    proj_local_.resize(num_projs);
    watch_.resize(plan_.num_shards);
    for (ProjectionId q = 0; q < num_projs; ++q) {
        ProjectionConfig cfg = proto.projection_config(q);
        std::vector<Synapse> syns = proto.projection_synapses(q);
        const std::vector<std::int32_t> live = proto.weights(q);
        for (std::size_t i = 0; i < syns.size(); ++i) syns[i].weight = live[i];

        const std::size_t ss = pop_shard_[cfg.src];
        const std::size_t ds = pop_shard_[cfg.dst];
        if (ss == ds) {
            ProjectionConfig local = cfg;
            local.src = pop_local_[cfg.src];
            local.dst = pop_local_[cfg.dst];
            // Capture the *live* rule — the prototype may have reprogrammed
            // its microcode after finalize (set_learning_rule).
            local.rule = proto.learning_rule(q);
            proj_shard_[q] = ss;
            proj_local_[q] = chips_[ss].add_projection(std::move(local),
                                                       std::move(syns));
        } else {
            if (proto.stuck_synapse_count(q) != 0)
                throw std::invalid_argument(
                    "ShardedChip: projection '" + cfg.name +
                    "' crosses shards and carries stuck-at faults, which the "
                    "router does not model");
            CrossProjection cp;
            cp.rule = proto.learning_rule(q);
            cp.src_shard = ss;
            cp.dst_shard = ds;
            cp.src_local = pop_local_[cfg.src];
            cp.dst_local = pop_local_[cfg.dst];
            cp.w = live;
            cp.eff.resize(syns.size());
            for (std::size_t i = 0; i < syns.size(); ++i)
                cp.eff[i] = static_cast<std::int32_t>(
                    static_cast<std::int64_t>(live[i]) << cfg.weight_exp);
            // CSR over the source neuron index.
            const std::size_t n_src = proto.population_size(cfg.src);
            cp.fan_begin.assign(n_src + 1, 0);
            for (const auto& sy : syns) ++cp.fan_begin[sy.src + 1];
            for (std::size_t i = 0; i < n_src; ++i)
                cp.fan_begin[i + 1] += cp.fan_begin[i];
            cp.fan.resize(syns.size());
            std::vector<std::size_t> cursor(cp.fan_begin.begin(),
                                            cp.fan_begin.end() - 1);
            for (std::size_t i = 0; i < syns.size(); ++i)
                cp.fan[cursor[syns[i].src]++] = static_cast<std::uint32_t>(i);
            cp.synapses = std::move(syns);
            cp.cfg = std::move(cfg);

            proj_shard_[q] = kCross;
            proj_local_[q] = cross_.size();
            watch_[ss].emplace_back(cp.src_local, cross_.size());
            cross_.push_back(std::move(cp));
        }
    }
    for (auto& w : watch_) std::sort(w.begin(), w.end());

    for (auto& chip : chips_) chip.finalize();

    // ---- per-compartment device state and bias registers -------------------
    for (PopulationId p = 0; p < num_pops; ++p) {
        Chip& chip = chips_[pop_shard_[p]];
        const PopulationId lp = pop_local_[p];
        const std::size_t n = proto.population_size(p);
        for (std::size_t i = 0; i < n; ++i) {
            const auto off = proto.threshold_offset(p, i);
            if (off != 0) chip.set_threshold_offset(lp, i, off);
            if (proto.compartment_dead(p, i)) chip.set_compartment_dead(lp, i, true);
        }
        const auto bias = proto.biases(p);
        if (std::any_of(bias.begin(), bias.end(),
                        [](std::int32_t b) { return b != 0; }))
            chip.set_bias(lp, bias);
    }
    // Stuck-at faults on on-shard projections transfer verbatim.
    for (ProjectionId q = 0; q < num_projs; ++q) {
        if (proj_shard_[q] == kCross || proto.stuck_synapse_count(q) == 0) continue;
        Chip& chip = chips_[proj_shard_[q]];
        const auto live = proto.weights(q);
        for (std::size_t i = 0; i < live.size(); ++i)
            if (proto.synapse_stuck(q, i))
                chip.set_synapse_stuck(proj_local_[q], i, live[i]);
    }

    outbox_.assign(plan_.num_shards,
                   std::vector<std::vector<RouteDelivery>>(plan_.num_shards));
    for (auto& slot : mailbox_) slot.resize(plan_.num_shards);
    spiked_scratch_.resize(plan_.num_shards);
    routed_to_.resize(plan_.num_shards);
    learn_visits_to_.resize(plan_.num_shards);
    set_phase(proto.phase());
    set_sparse_sweep(proto.sparse_sweep());
    reset_activity();  // construction-time bias writes are not runtime I/O
}

void ShardedChip::ensure_pool() {
    if (pool_.pool) return;
    const std::size_t threads =
        step_threads_ == 0 ? chips_.size()
                           : std::min(step_threads_, chips_.size());
    pool_.pool = std::make_unique<common::ThreadPool>(threads);
}

void ShardedChip::set_phase(Phase phase) {
    phase_ = phase;
    for (auto& chip : chips_) chip.set_phase(phase);
}

void ShardedChip::set_sparse_sweep(bool enabled) {
    for (auto& chip : chips_) chip.set_sparse_sweep(enabled);
}

void ShardedChip::drain_inbox(std::size_t s) {
    auto& slot = mailbox_[(now_ + 1) % kWheel][s];
    Chip& chip = chips_[s];
    for (const auto& d : slot)
        chip.deliver_external(d.dst_pop, d.dst_idx, d.weight,
                              static_cast<Port>(d.port));
    slot.clear();
}

void ShardedChip::collect_outbox(std::size_t s) {
    auto& scratch = spiked_scratch_[s];
    PopulationId current = std::numeric_limits<PopulationId>::max();
    for (const auto& [pop, ci] : watch_[s]) {
        if (pop != current) {
            scratch.clear();
            chips_[s].collect_spiked(pop, scratch);
            current = pop;
        }
        if (scratch.empty()) continue;
        const CrossProjection& cp = cross_[ci];
        auto& out = outbox_[s][cp.dst_shard];
        const auto port = static_cast<std::uint8_t>(cp.cfg.port);
        for (const std::uint32_t idx : scratch) {
            for (std::size_t k = cp.fan_begin[idx]; k < cp.fan_begin[idx + 1];
                 ++k) {
                const std::uint32_t syn = cp.fan[k];
                out.push_back({cp.synapses[syn].dst, cp.eff[syn],
                               static_cast<std::uint16_t>(cp.dst_local), port,
                               cp.synapses[syn].delay});
            }
        }
    }
}

void ShardedChip::exchange() {
    for (std::size_t src = 0; src < chips_.size(); ++src) {
        for (std::size_t dst = 0; dst < chips_.size(); ++dst) {
            auto& out = outbox_[src][dst];
            if (out.empty()) continue;
            routed_to_[dst] += out.size();
            for (const auto& d : out)
                mailbox_[(now_ + 1 + d.delay) % kWheel][dst].push_back(d);
            out.clear();
        }
    }
}

void ShardedChip::step() {
    if (chips_.size() == 1) {
        chips_[0].step();
        ++now_;
        return;
    }
    ensure_pool();
    pool_.pool->run(chips_.size(), [this](std::size_t s) {
        drain_inbox(s);
        chips_[s].step();
        collect_outbox(s);
    });
    ++now_;
    exchange();
}

void ShardedChip::run(std::size_t steps) {
    for (std::size_t i = 0; i < steps; ++i) step();
}

void ShardedChip::set_bias(PopulationId pop,
                           const std::vector<std::int32_t>& bias) {
    chips_[pop_shard_.at(pop)].set_bias(pop_local_[pop], bias);
}

void ShardedChip::clear_bias(PopulationId pop) {
    chips_[pop_shard_.at(pop)].clear_bias(pop_local_[pop]);
}

void ShardedChip::apply_cross_learning(CrossProjection& cp, common::Rng* rng,
                                       std::uint64_t& visits) {
    const Chip& pre_chip = chips_[cp.src_shard];
    const Chip& post_chip = chips_[cp.dst_shard];
    const std::size_t n_pre = pre_chip.population_size(cp.src_local);
    const std::size_t n_post = post_chip.population_size(cp.dst_local);

    // Bulk-read the boundary state once (the on-chip engine reads the same
    // compartment registers directly).
    std::vector<std::int32_t> x0(n_pre), x1(n_pre), x2(n_pre);
    for (std::size_t i = 0; i < n_pre; ++i) {
        x0[i] = pre_chip.spiked(cp.src_local, i) ? 1 : 0;
        x1[i] = pre_chip.trace_x1(cp.src_local, i);
        x2[i] = pre_chip.trace_x2(cp.src_local, i);
    }
    std::vector<std::int32_t> y0(n_post), y1(n_post), y2(n_post), tag(n_post);
    for (std::size_t i = 0; i < n_post; ++i) {
        y0[i] = post_chip.spiked(cp.dst_local, i) ? 1 : 0;
        y1[i] = post_chip.trace_y1(cp.dst_local, i);
        y2[i] = post_chip.trace_y2(cp.dst_local, i);
        tag[i] = post_chip.trace_tag(cp.dst_local, i);
    }

    for (std::size_t i = 0; i < cp.synapses.size(); ++i) {
        const Synapse& syn = cp.synapses[i];
        ++visits;
        LearnContext ctx;
        ctx.x0 = x0[syn.src];
        ctx.x1 = x1[syn.src];
        ctx.x2 = x2[syn.src];
        ctx.y0 = y0[syn.dst];
        ctx.y1 = y1[syn.dst];
        ctx.y2 = y2[syn.dst];
        ctx.tag = tag[syn.dst];
        ctx.weight = cp.w[i];
        const std::int64_t dw = cp.rule.dw.evaluate(ctx, rng);
        if (dw != 0) {
            cp.w[i] = common::saturate_signed(
                static_cast<std::int64_t>(cp.w[i]) + dw, limits_.weight_bits);
            cp.eff[i] = static_cast<std::int32_t>(
                static_cast<std::int64_t>(cp.w[i]) << cp.cfg.weight_exp);
        }
    }
}

void ShardedChip::apply_learning() {
    if (chips_.size() == 1) {
        chips_[0].apply_learning();
        ++learn_epoch_;
        return;
    }
    ensure_pool();
    // On-shard plastic projections update concurrently — each shard's engine
    // consumes its own stochastic-rounding stream, so the schedule is
    // invisible to the result.
    pool_.pool->run(chips_.size(),
                    [this](std::size_t s) { chips_[s].apply_learning(); });
    ++learn_epoch_;

    // Cut plastic projections: one update pass per projection with a stream
    // derived from (seed, learning epoch, projection) — a pure function of
    // the protocol position, never of the worker that runs it.
    std::vector<std::size_t> plastic;
    for (std::size_t ci = 0; ci < cross_.size(); ++ci)
        if (cross_[ci].cfg.plastic) plastic.push_back(ci);
    if (plastic.empty()) return;
    std::vector<std::uint64_t> visits(plastic.size(), 0);
    pool_.pool->run(plastic.size(), [&](std::size_t j) {
        CrossProjection& cp = cross_[plastic[j]];
        common::Rng rng(derive_seed(
            learn_seed_ + 0x9E3779B97F4A7C15ULL * learn_epoch_, plastic[j] + 1));
        apply_cross_learning(cp, cp.cfg.stochastic_rounding ? &rng : nullptr,
                             visits[j]);
    });
    for (std::size_t j = 0; j < plastic.size(); ++j)
        learn_visits_to_[cross_[plastic[j]].dst_shard] += visits[j];
}

void ShardedChip::set_learning_rule(ProjectionId proj, LearningRule rule) {
    if (proj >= proj_shard_.size())
        throw std::invalid_argument("set_learning_rule: bad projection");
    if (proj_shard_[proj] == kCross) {
        CrossProjection& cp = cross_[proj_local_[proj]];
        if (!cp.cfg.plastic)
            throw std::logic_error("set_learning_rule: projection is not plastic");
        cp.rule = std::move(rule);
    } else {
        chips_[proj_shard_[proj]].set_learning_rule(proj_local_[proj],
                                                    std::move(rule));
    }
}

void ShardedChip::seed_learning_noise(std::uint64_t seed) {
    for (std::size_t s = 0; s < chips_.size(); ++s)
        chips_[s].seed_learning_noise(derive_seed(seed, s));
    learn_seed_ = derive_seed(seed, 0x5EEDULL);
    learn_epoch_ = 0;
}

void ShardedChip::clear_in_flight() {
    for (auto& slot : mailbox_)
        for (auto& per_dst : slot) per_dst.clear();
    for (auto& row : outbox_)
        for (auto& out : row) out.clear();
}

void ShardedChip::reset_dynamic_state() {
    for (auto& chip : chips_) chip.reset_dynamic_state();
    clear_in_flight();
}

void ShardedChip::reset_membranes() {
    for (auto& chip : chips_) chip.reset_membranes();
    // The next-step mailbox slot mirrors the destinations' pending input,
    // which a membrane reset clears; events with extra delay mirror a chip's
    // delay wheel, which it does not.
    auto& due = mailbox_[(now_ + 1) % kWheel];
    for (auto& per_dst : due)
        std::erase_if(per_dst,
                      [](const RouteDelivery& d) { return d.delay == 0; });
}

std::size_t ShardedChip::population_size(PopulationId pop) const {
    return chips_[pop_shard_.at(pop)].population_size(pop_local_[pop]);
}

std::vector<std::int32_t> ShardedChip::spike_counts(PopulationId pop,
                                                    Phase phase) const {
    return chips_[pop_shard_.at(pop)].spike_counts(pop_local_[pop], phase);
}

std::vector<std::int32_t> ShardedChip::spike_counts_total(
    PopulationId pop) const {
    return chips_[pop_shard_.at(pop)].spike_counts_total(pop_local_[pop]);
}

std::int64_t ShardedChip::membrane(PopulationId pop, std::size_t idx) const {
    return chips_[pop_shard_.at(pop)].membrane(pop_local_[pop], idx);
}

bool ShardedChip::projection_is_cut(ProjectionId proj) const {
    if (proj >= proj_shard_.size())
        throw std::invalid_argument("projection_is_cut: bad projection");
    return proj_shard_[proj] == kCross;
}

std::vector<std::int32_t> ShardedChip::weights(ProjectionId proj) const {
    if (proj >= proj_shard_.size())
        throw std::invalid_argument("weights: bad projection");
    if (proj_shard_[proj] == kCross) return cross_[proj_local_[proj]].w;
    return chips_[proj_shard_[proj]].weights(proj_local_[proj]);
}

void ShardedChip::program_weights(ProjectionId proj,
                                  const std::vector<std::int32_t>& w) {
    if (proj >= proj_shard_.size())
        throw std::invalid_argument("program_weights: bad projection");
    if (proj_shard_[proj] != kCross) {
        chips_[proj_shard_[proj]].program_weights(proj_local_[proj], w);
        return;
    }
    CrossProjection& cp = cross_[proj_local_[proj]];
    if (w.size() != cp.synapses.size())
        throw std::invalid_argument("program_weights: size mismatch for " +
                                    cp.cfg.name);
    for (const auto v : w)
        if (v != common::saturate_signed(v, limits_.weight_bits))
            throw std::invalid_argument(
                "program_weights(" + cp.cfg.name + "): weight exceeds " +
                std::to_string(limits_.weight_bits) + " bits");
    cp.w = w;
    for (std::size_t i = 0; i < w.size(); ++i)
        cp.eff[i] = static_cast<std::int32_t>(static_cast<std::int64_t>(w[i])
                                              << cp.cfg.weight_exp);
}

std::size_t ShardedChip::synapse_count(ProjectionId proj) const {
    if (proj >= proj_shard_.size())
        throw std::invalid_argument("synapse_count: bad projection");
    if (proj_shard_[proj] == kCross)
        return cross_[proj_local_[proj]].synapses.size();
    return chips_[proj_shard_[proj]].synapse_count(proj_local_[proj]);
}

std::uint64_t ShardedChip::routed_spikes() const {
    std::uint64_t total = 0;
    for (const auto v : routed_to_) total += v;
    return total;
}

ActivityTotals ShardedChip::shard_activity(std::size_t s) const {
    ActivityTotals a = chips_[s].activity();
    // Cross-chip deliveries are charged at emission by the router (exactly
    // when an unsharded chip's deliver() would have counted them) and
    // attributed to the destination shard, which does the synaptic work;
    // likewise the router's cut-projection learning visits.
    a.synaptic_ops += routed_to_[s];
    a.learning_synapse_visits += learn_visits_to_[s];
    return a;
}

ActivityTotals ShardedChip::activity() const {
    ActivityTotals total{};
    for (std::size_t s = 0; s < chips_.size(); ++s) {
        const ActivityTotals a = shard_activity(s);
        total.compartment_updates += a.compartment_updates;
        total.synaptic_ops += a.synaptic_ops;
        total.spikes += a.spikes;
        total.learning_synapse_visits += a.learning_synapse_visits;
        total.host_io_writes += a.host_io_writes;
    }
    total.steps = chips_[0].activity().steps;
    return total;
}

void ShardedChip::reset_activity() {
    for (auto& chip : chips_) chip.reset_activity();
    std::fill(routed_to_.begin(), routed_to_.end(), 0);
    std::fill(learn_visits_to_.begin(), learn_visits_to_.end(), 0);
}

}  // namespace neuro::loihi
