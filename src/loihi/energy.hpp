#pragma once
// Power / execution-time / energy model of the chip (Table II and Fig. 3).
//
// Structure (DESIGN.md Sec. 2): the numbers the paper reports decompose as
//
//   energy/sample = power * time/sample
//   power         = base + occupied_cores * per-core power (+ event power)
//   time/sample   = steps/sample * step time
//   step time     = max(100 us floor, alpha * compartments on the busiest
//                   core + beta * average synops per core per step)
//
// Idle cores are power-gated ("the active power decreases as the cores that
// are not in use are power gated"), so power falls as neurons-per-core rises
// while the barrier-synchronised step time grows with the busiest core —
// the product is the U-shaped energy curve of Fig. 3.
//
// Constants are calibrated so the paper network at 10 neurons/core lands on
// Table II's operating point (50 FPS / 0.42 W training, 97 FPS / 0.24 W
// testing); see tests/loihi/energy_test.cpp.

#include <cstdint>

#include "loihi/chip.hpp"

namespace neuro::loihi {

struct EnergyModelParams {
    double base_power_w = 0.101;          ///< always-on chip overhead
    double core_power_w = 8.35e-3;        ///< per occupied (non-gated) core
    double step_floor_s = 100e-6;         ///< Loihi's 10 kHz barrier ceiling
    double per_compartment_s = 40e-9;     ///< compartment scan on the busiest core
    /// Synaptic-memory scan per fan-in entry of *plastic* projections on the
    /// busiest core. Present in training and testing alike: once learning is
    /// configured the engine walks the synapse tables every epoch, and the
    /// paper's matching train/test step times (Table II: 50 FPS over 2T vs
    /// 97 FPS over T) show this term dominates for the swept dense cores.
    double per_plastic_synapse_s = 75e-9;
    double per_synop_s = 4.0e-9;          ///< spike handling contribution
    double synop_energy_j = 23.6e-12;     ///< per synaptic event
    double update_energy_j = 30.0e-12;    ///< per compartment update
    double spike_energy_j = 1.8e-12;      ///< per emitted spike
    double learn_energy_j = 60.0e-12;     ///< per synapse visit at an epoch
};

/// A complete Table-II-style operating point derived from measured activity.
struct EnergyReport {
    double step_seconds = 0.0;
    double sample_seconds = 0.0;
    double fps = 0.0;
    double power_w = 0.0;              ///< static + event power
    double energy_per_sample_j = 0.0;
    std::size_t cores = 0;
    std::uint64_t steps_per_sample = 0;
};

/// Derives the operating point from activity totals accumulated over
/// `samples` samples on a finalized chip.
EnergyReport estimate_energy(const EnergyModelParams& params, const Chip& chip,
                             const ActivityTotals& totals, std::uint64_t samples);

}  // namespace neuro::loihi
