#include "loihi/stdp.hpp"

namespace neuro::loihi {

LearningRule pairwise_stdp(const PairwiseStdpParams& p) {
    LearningRule rule;
    rule.dw = SumOfProducts({
        LearnTerm{1, p.ltp_exponent, {{LearnVar::X1, 0}, {LearnVar::Y0, 0}}},
        LearnTerm{-1, p.ltd_exponent, {{LearnVar::X0, 0}, {LearnVar::Y1, 0}}},
    });
    return rule;
}

LearningRule triplet_stdp(const TripletStdpParams& p) {
    LearningRule rule;
    rule.dw = SumOfProducts({
        LearnTerm{1, p.a2_plus_exponent, {{LearnVar::X1, 0}, {LearnVar::Y0, 0}}},
        LearnTerm{1,
                  p.a3_plus_exponent,
                  {{LearnVar::X1, 0}, {LearnVar::Y2, 0}, {LearnVar::Y0, 0}}},
        LearnTerm{-1, p.a2_minus_exponent, {{LearnVar::X0, 0}, {LearnVar::Y1, 0}}},
    });
    return rule;
}

LearningRule homeostatic_stdp(const HomeostaticStdpParams& p) {
    LearningRule rule;
    rule.dw = SumOfProducts({
        LearnTerm{1, p.ltp_exponent, {{LearnVar::X1, 0}, {LearnVar::Y0, 0}}},
        LearnTerm{-1, p.decay_exponent, {{LearnVar::Wgt, 0}, {LearnVar::Y0, 0}}},
    });
    return rule;
}

TraceConfig stdp_trace(std::int32_t impulse, std::int32_t decay) {
    return TraceConfig{impulse, decay, TraceWindow::Both, 7};
}

CompartmentConfig stdp_compartment(const StdpCompartmentParams& p) {
    CompartmentConfig cfg;
    cfg.vth = p.vth;
    cfg.decay_v = p.decay_v;
    cfg.pre_trace = p.fast;
    cfg.post_trace = p.fast;
    cfg.post_trace2 = p.slow;
    return cfg;
}

}  // namespace neuro::loihi
