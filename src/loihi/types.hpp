#pragma once
// Shared vocabulary types and architectural limits for the Loihi-class chip
// simulator (paper Sec. II-B; Davies et al., IEEE Micro 2018).
//
// Fidelity envelope (DESIGN.md Sec. 5): we model the *architectural*
// constraints the learning algorithm has to live with — integer state,
// 8-bit weights, 12-bit decays, saturating 7-bit traces, the sum-of-products
// learning engine, per-core capacity limits and barrier-synchronised
// timesteps. Multi-chip systems are modeled at the barrier level: networks
// larger than one chip's core budget shard across several Chip instances
// with boundary spikes exchanged between timestep barriers (loihi/shard.hpp
// + loihi/router.hpp); the asynchronous mesh itself is not simulated.

#include <cstddef>
#include <cstdint>

namespace neuro::loihi {

/// Index of a population registered with the chip builder.
using PopulationId = std::size_t;

/// Global (chip-wide) compartment index.
using CompartmentId = std::size_t;

/// Index of a projection (synapse group between two populations).
using ProjectionId = std::size_t;

/// Architectural limits of one Loihi chip.
struct ChipLimits {
    std::size_t num_cores = 128;                ///< neuromorphic cores per chip
    std::size_t compartments_per_core = 1024;   ///< compartment registers per core
    std::size_t synapses_per_core = 131072;     ///< synaptic memory entries per core
    std::size_t fanin_axons_per_core = 4096;    ///< input axon table entries
    std::size_t fanout_axons_per_core = 4096;   ///< output axon table entries
    int weight_bits = 8;                        ///< signed synaptic weight precision
    int trace_bits = 7;                         ///< unsigned trace precision (0..127)
    int tag_bits = 8;                           ///< signed tag precision
    /// Loihi's maximum operating rate is 10 kHz, i.e. a timestep can never
    /// complete faster than 100 us (paper Sec. IV-A2).
    double min_step_seconds = 100e-6;
};

/// Which of the two EMSTDP phases the chip is currently executing. The host
/// runner switches this; on silicon the equivalent gating is done with
/// control neurons / NxSDK epoch structuring (DESIGN.md Sec. 5).
enum class Phase : std::uint8_t {
    One = 1,  ///< forward response, error path suppressed
    Two = 2,  ///< error injection, traces for the update accumulate
};

/// Trace accumulation window (DESIGN.md "Phase gating"). `Both` is what raw
/// hardware counters do; the phase-restricted modes emulate NxSDK epoch
/// structuring and are the default for the paper pipeline.
enum class TraceWindow : std::uint8_t {
    Both,
    Phase1Only,
    Phase2Only,
};

/// Multi-compartment join operation between an auxiliary compartment and its
/// soma (paper Sec. III-A: "the spiking activity of the soma is an AND
/// function of the activity of the soma and the auxiliary compartment").
enum class JoinOp : std::uint8_t {
    None,           ///< single-compartment neuron
    AndAuxActive,   ///< soma may spike only if the aux compartment has
                    ///< received any activity in the current sample window
    GatedAdd,       ///< aux input current is added to the soma membrane only
                    ///< if the soma itself was active in phase 1 (used for
                    ///< the DFA broadcast: implements the h' gate at the
                    ///< destination neuron)
    Add,            ///< aux input current is added unconditionally (plain
                    ///< dendritic summation)
};

/// Destination port of a synapse on a multi-compartment neuron.
enum class Port : std::uint8_t {
    Soma,
    Aux,
};

}  // namespace neuro::loihi
