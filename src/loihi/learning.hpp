#pragma once
// Programmable microcode learning engine (paper Sec. II-B, eq. 9).
//
// Loihi describes synaptic adaptation rules in sum-of-products form
//
//     z := z + sum_i  S_i * prod_j (V_ij + C_ij)
//
// where z is a synaptic variable (weight, delay or tag), V_ij is an input
// variable available *locally* at the synapse — presynaptic traces, post-
// synaptic traces, the tag, the weight itself — and S_i / C_ij are signed
// microcode constants (S_i may carry a power-of-two scale).
//
// This module provides the rule representation, an NxSDK-style text parser
// ("dw = 2^-2*x1*y1 - 2^-3*x1*t"), and the integer evaluator. The EMSTDP
// update (paper eq. 12)
//
//     dw = 2*eta*h_hat*h_pre - eta*Z*h_pre,   Z = h_hat + h
//
// maps onto it with x1 = pre spike count, y1 = post phase-2 count (h_hat)
// and t = tag (Z); see emstdp_rule().

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace neuro::loihi {

/// Input variables the learning engine may reference. Only locally available
/// quantities appear here — that is the hardware's locality constraint.
enum class LearnVar : std::uint8_t {
    X0,   ///< presynaptic spike indicator at the epoch boundary (0/1)
    X1,   ///< presynaptic trace
    X2,   ///< second presynaptic trace (independent time constant)
    Y0,   ///< postsynaptic spike indicator at the epoch boundary (0/1)
    Y1,   ///< postsynaptic trace
    Y2,   ///< second postsynaptic trace (triplet-STDP style)
    Tag,  ///< synaptic tag variable
    Wgt,  ///< current synaptic weight
    One,  ///< constant 1 (used for pure-constant factors)
};

/// One (V + C) factor of a product term.
struct LearnFactor {
    LearnVar var = LearnVar::One;
    std::int32_t addend = 0;
};

/// One S * prod(V + C) term. The scale S is mantissa * 2^exponent; negative
/// exponents are evaluated as arithmetic shifts, matching the chip's
/// shift-based scaling.
struct LearnTerm {
    std::int32_t mantissa = 1;
    int exponent = 0;
    std::vector<LearnFactor> factors;
};

/// Values visible to the engine when evaluating one synapse.
struct LearnContext {
    std::int32_t x0 = 0;
    std::int32_t x1 = 0;
    std::int32_t x2 = 0;
    std::int32_t y0 = 0;
    std::int32_t y1 = 0;
    std::int32_t y2 = 0;
    std::int32_t tag = 0;
    std::int32_t weight = 0;
};

/// A sum-of-products expression.
class SumOfProducts {
public:
    SumOfProducts() = default;
    explicit SumOfProducts(std::vector<LearnTerm> terms) : terms_(std::move(terms)) {}

    /// Integer evaluation. Without `rounding`, negative power-of-two scales
    /// truncate toward zero (symmetric). With `rounding`, each term is
    /// scaled with *stochastic rounding* — floor((v + u) / 2^s) for uniform
    /// u in [0, 2^s) — which keeps the expectation of sub-LSB updates exact.
    /// Loihi's learning engine provides this rounding mode; without it an
    /// 8-bit weight grid silently kills every small EMSTDP update.
    std::int64_t evaluate(const LearnContext& ctx,
                          common::Rng* rounding = nullptr) const;

    const std::vector<LearnTerm>& terms() const { return terms_; }
    bool empty() const { return terms_.empty(); }

    /// Round-trippable textual form ("2^-2*x1*y1 - 2^-3*x1*t").
    std::string str() const;

private:
    std::vector<LearnTerm> terms_;
};

/// A full rule: how the weight and the tag transform at a learning epoch.
struct LearningRule {
    SumOfProducts dw;
    SumOfProducts dt;
};

/// Parses one sum-of-products expression. Accepted grammar (whitespace
/// insensitive):
///   expr    := term (('+'|'-') term)*
///   term    := coef ('*' factor)* | factor ('*' factor)*
///   coef    := INT | INT '^' SINT        (e.g. "3", "2^-4")
///   factor  := var | '(' var (('+'|'-') INT)? ')'
///   var     := x0 | x1 | x2 | y0 | y1 | y2 | t | w
/// Throws std::invalid_argument with a position-annotated message on errors.
SumOfProducts parse_sum_of_products(const std::string& text);

/// The paper's on-chip EMSTDP rule (eq. 12) for a given learning-rate shift:
/// dw = 2^-(shift-1)*x1*y1 - 2^-shift*x1*t. `shift` plays the role of
/// -log2(eta); the paper uses eta = 2^-3 on normalized rates.
LearningRule emstdp_rule(int shift);

}  // namespace neuro::loihi
