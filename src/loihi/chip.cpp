#include "loihi/chip.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/fixed.hpp"

namespace neuro::loihi {

Chip::Chip(ChipLimits limits)
    : limits_(limits), s_(std::make_shared<Structure>()) {}

void Chip::detach_structure() {
    if (s_.use_count() != 1) s_ = std::make_shared<Structure>(*s_);
}

PopulationId Chip::add_population(PopulationConfig cfg) {
    check_finalized(false);
    detach_structure();
    if (cfg.size == 0) throw std::invalid_argument("add_population: empty population");
    Population p;
    p.cfg = std::move(cfg);
    p.first = state_.size();
    state_.resize(state_.size() + p.cfg.size);
    s_->pop_of.resize(state_.size(), static_cast<std::uint16_t>(s_->pops.size()));
    vth_offset_.resize(state_.size(), 0);
    dead_.resize(state_.size(), 0);
    s_->pops.push_back(std::move(p));
    return s_->pops.size() - 1;
}

ProjectionId Chip::add_projection(ProjectionConfig cfg, std::vector<Synapse> synapses) {
    check_finalized(false);
    detach_structure();
    if (cfg.src >= s_->pops.size() || cfg.dst >= s_->pops.size())
        throw std::invalid_argument("add_projection: bad population id");
    const auto src_n = s_->pops[cfg.src].cfg.size;
    const auto dst_n = s_->pops[cfg.dst].cfg.size;
    for (const auto& s : synapses) {
        if (s.src >= src_n || s.dst >= dst_n)
            throw std::invalid_argument("add_projection(" + cfg.name +
                                        "): synapse index out of range");
        if (s.weight != common::saturate_signed(s.weight, limits_.weight_bits))
            throw std::invalid_argument("add_projection(" + cfg.name +
                                        "): weight exceeds " +
                                        std::to_string(limits_.weight_bits) + " bits");
        if (s.delay > 62)
            throw std::invalid_argument("add_projection(" + cfg.name +
                                        "): delay exceeds 62 steps");
    }
    Projection p;
    p.cfg = std::move(cfg);
    p.synapses = std::move(synapses);
    s_->projs.push_back(std::move(p));
    stuck_.emplace_back();
    return s_->projs.size() - 1;
}

void Chip::finalize() {
    check_finalized(false);
    detach_structure();

    // ---- core mapping (Operation Flow 1, layer at a time) -----------------
    std::vector<LayerMapSpec> specs;
    specs.reserve(s_->pops.size());
    for (std::size_t pi = 0; pi < s_->pops.size(); ++pi) {
        const auto& pop = s_->pops[pi];
        LayerMapSpec spec;
        spec.name = pop.cfg.name;
        spec.logical_neurons = pop.cfg.size;
        spec.compartments_per_neuron =
            pop.cfg.compartment.join == JoinOp::None ? 1 : 2;
        std::size_t fan_in = 0;
        std::size_t fan_out = 0;
        std::size_t plastic_in = 0;
        std::size_t sources = 0;
        for (const auto& proj : s_->projs) {
            if (proj.cfg.dst == pi) {
                fan_in += proj.synapses.size();
                sources += s_->pops[proj.cfg.src].cfg.size;
                if (proj.cfg.plastic) plastic_in += proj.synapses.size();
            }
            if (proj.cfg.src == pi) fan_out += proj.synapses.size();
        }
        spec.distinct_sources = sources;
        spec.fan_in_per_neuron = (fan_in + pop.cfg.size - 1) / pop.cfg.size;
        spec.fan_out_per_neuron = (fan_out + pop.cfg.size - 1) / pop.cfg.size;
        spec.plastic_fan_in_per_neuron = (plastic_in + pop.cfg.size - 1) / pop.cfg.size;
        spec.neurons_per_core = pop.cfg.neurons_per_core;
        specs.push_back(std::move(spec));
    }
    s_->mapping = map_layers(specs, limits_);

    // ---- fan-out tables & weight image -------------------------------------
    std::vector<std::size_t> degree(state_.size(), 0);
    for (const auto& proj : s_->projs)
        for (const auto& s : proj.synapses)
            ++degree[s_->pops[proj.cfg.src].first + s.src];

    s_->fanout_begin.assign(state_.size() + 1, 0);
    for (std::size_t c = 0; c < state_.size(); ++c)
        s_->fanout_begin[c + 1] = s_->fanout_begin[c] + degree[c];
    s_->fanout.resize(s_->fanout_begin.back());

    img_ = std::make_shared<Weights>();
    img_->w.resize(s_->projs.size());
    img_->eff.resize(s_->fanout_begin.back());

    std::vector<std::size_t> cursor(s_->fanout_begin.begin(),
                                    s_->fanout_begin.end() - 1);
    for (std::size_t pi = 0; pi < s_->projs.size(); ++pi) {
        auto& proj = s_->projs[pi];
        auto& w = img_->w[pi];
        w.reserve(proj.synapses.size());
        proj.fanout_slot.reserve(proj.synapses.size());
        for (const auto& s : proj.synapses) {
            const CompartmentId src = s_->pops[proj.cfg.src].first + s.src;
            const CompartmentId dst = s_->pops[proj.cfg.dst].first + s.dst;
            FanoutEntry e;
            e.dst = static_cast<std::uint32_t>(dst);
            e.port = static_cast<std::uint8_t>(proj.cfg.port);
            e.delay = s.delay;
            const std::size_t slot = cursor[src]++;
            proj.fanout_slot.push_back(slot);
            s_->fanout[slot] = e;
            w.push_back(s.weight);
            img_->eff[slot] = static_cast<std::int32_t>(
                static_cast<std::int64_t>(s.weight) << proj.cfg.weight_exp);
        }
        if (proj.cfg.plastic) s_->has_plastic = true;
    }

    rules_.resize(s_->projs.size());
    for (std::size_t pi = 0; pi < s_->projs.size(); ++pi)
        rules_[pi] = s_->projs[pi].cfg.rule;

    // ---- sparse-sweep bookkeeping ------------------------------------------
    s_->pop_has_decay.assign(s_->pops.size(), 0);
    for (std::size_t pi = 0; pi < s_->pops.size(); ++pi) {
        const CompartmentConfig& cfg = s_->pops[pi].cfg.compartment;
        const bool decays = cfg.pre_trace.decay != 0 || cfg.post_trace.decay != 0 ||
                            cfg.pre_trace2.decay != 0 ||
                            cfg.post_trace2.decay != 0 || cfg.tag_trace.decay != 0;
        s_->pop_has_decay[pi] = decays ? 1 : 0;
    }
    eligible_phase1_ = eligible_phase2_ = 0;
    for (std::size_t c = 0; c < state_.size(); ++c) {
        if (dead_[c] != 0) continue;
        ++eligible_phase2_;
        if (s_->pops[s_->pop_of[c]].cfg.compartment.active_in_phase1)
            ++eligible_phase1_;
    }
    wake_all();

    finalized_ = true;
}

void Chip::set_bias(PopulationId pop, const std::vector<std::int32_t>& bias) {
    if (pop >= s_->pops.size()) throw std::invalid_argument("set_bias: bad population");
    if (bias.size() != s_->pops[pop].cfg.size)
        throw std::invalid_argument("set_bias: size mismatch for " +
                                    s_->pops[pop].cfg.name);
    const CompartmentId base = s_->pops[pop].first;
    for (std::size_t i = 0; i < bias.size(); ++i) state_[base + i].bias = bias[i];
    // A bias write can turn a dormant compartment live; clearing one to zero
    // never invalidates dormancy, so clear_bias needs no wake.
    if (finalized_ && sparse_)
        for (std::size_t i = 0; i < bias.size(); ++i) wake(base + i);
    activity_.host_io_writes += bias.size();
}

void Chip::clear_bias(PopulationId pop) {
    if (pop >= s_->pops.size()) throw std::invalid_argument("clear_bias: bad population");
    const CompartmentId base = s_->pops[pop].first;
    for (std::size_t i = 0; i < s_->pops[pop].cfg.size; ++i) state_[base + i].bias = 0;
}

void Chip::insert_spike(PopulationId pop, std::size_t idx) {
    check_finalized(true);
    ++activity_.host_io_writes;
    const CompartmentId c = global_id(pop, idx);
    // The host write happens either way, but a dead unit relays nothing.
    if (dead_[c] != 0) return;
    // Host-inserted spikes drive the same trace machinery as locally
    // generated ones: on silicon the pre-trace lives with the synapse at the
    // destination core and is updated by the incoming spike event no matter
    // where it originated. Spike counters are updated too so probes and the
    // learning rule see a consistent history.
    CompartmentState& st = state_[c];
    const CompartmentConfig& cfg = s_->pops[pop].cfg.compartment;
    if (phase_ == Phase::One)
        ++st.spikes_phase1;
    else
        ++st.spikes_phase2;
    st.x1.on_spike(cfg.pre_trace, phase_);
    st.y1.on_spike(cfg.post_trace, phase_);
    st.x2.on_spike(cfg.pre_trace2, phase_);
    st.y2.on_spike(cfg.post_trace2, phase_);
    st.tag.on_spike(cfg.tag_trace, phase_);
    ++activity_.spikes;
    if (raster_pop_ && s_->pop_of[c] == *raster_pop_)
        raster_.emplace_back(now_ + 1,  // delivered with the next step
                             static_cast<std::uint32_t>(idx));
    deliver(c);
}

void Chip::deliver(CompartmentId src) {
    const std::size_t begin = s_->fanout_begin[src];
    const std::size_t end = s_->fanout_begin[src + 1];
    const FanoutEntry* fo = s_->fanout.data();
    const std::int32_t* eff = img_->eff.data();
    for (std::size_t k = begin; k < end; ++k) {
        const FanoutEntry& e = fo[k];
        if (e.delay != 0) {
            // Extra latency: park the event on the wheel; it is drained at
            // the start of step now_ + 1 + delay.
            wheel_[(now_ + 1 + e.delay) % kWheel].push_back(
                {e.dst, eff[k], e.port});
            continue;
        }
        CompartmentState& dst = state_[e.dst];
        if (static_cast<Port>(e.port) == Port::Soma)
            dst.pending_soma += eff[k];
        else
            dst.pending_aux += eff[k];
        // Sleeping targets must rejoin the sweep (no-op in dense mode where
        // every flag stays 1; the flag shares the line loaded just above).
        if (dst.awake == 0) {
            dst.awake = 1;
            wake_buf_.push_back(e.dst);
        }
    }
    activity_.synaptic_ops += end - begin;
}

void Chip::step() {
    check_finalized(true);
    ++now_;
    ++activity_.steps;

    // Deliveries whose delay expires this step.
    auto& due = wheel_[now_ % kWheel];
    for (const auto& d : due) {
        CompartmentState& dst = state_[d.dst];
        if (static_cast<Port>(d.port) == Port::Soma)
            dst.pending_soma += d.weight;
        else
            dst.pending_aux += d.weight;
        if (sparse_) wake(d.dst);
    }
    due.clear();

    if (sparse_)
        step_sparse();
    else
        step_dense();
}

// Pass 1 physics of one compartment: integrate and decide the spike.
// Deliveries are queued in pass 2 so the step is order-independent
// (one-step synaptic latency, as on silicon where spikes propagate between
// timestep barriers). `count_update` is false under the sparse sweep, which
// accounts compartment_updates in bulk instead.
void Chip::step_compartment(CompartmentId c, bool count_update) {
    CompartmentState& st = state_[c];
    const CompartmentConfig& cfg = s_->pops[s_->pop_of[c]].cfg.compartment;
    st.spiked = false;

    if (dead_[c] != 0) {
        // A dead unit sinks whatever arrives and produces nothing.
        st.pending_soma = 0;
        st.pending_aux = 0;
        return;
    }

    // Aux-port deliveries are handled even while the soma is frozen so
    // that the h' gate can observe phase-1 forward activity.
    if (cfg.join == JoinOp::AndAuxActive) {
        if (st.pending_aux != 0) st.aux_active = true;
        st.pending_aux = 0;
    } else if (cfg.join == JoinOp::GatedAdd || cfg.join == JoinOp::Add) {
        st.aux_current = st.pending_aux;
        st.pending_aux = 0;
    }

    const bool frozen = (phase_ == Phase::One) && !cfg.active_in_phase1;
    if (frozen) {
        // A frozen compartment neither integrates nor spikes; current
        // that would have arrived is dropped (the population is power-
        // gated during this phase).
        st.pending_soma = 0;
        st.x1.tick(cfg.pre_trace, &trace_rng_);
        st.y1.tick(cfg.post_trace, &trace_rng_);
        st.x2.tick(cfg.pre_trace2, &trace_rng_);
        st.y2.tick(cfg.post_trace2, &trace_rng_);
        st.tag.tick(cfg.tag_trace, &trace_rng_);
        return;
    }

    if (count_update) ++activity_.compartment_updates;

    st.u = common::decay12(st.u, cfg.decay_u) + st.pending_soma;
    st.pending_soma = 0;

    std::int64_t drive = st.u + st.bias;
    if ((cfg.join == JoinOp::GatedAdd && st.spikes_phase1 > 0) ||
        cfg.join == JoinOp::Add)
        drive += st.aux_current;
    st.v = common::decay12(st.v, cfg.decay_v) + drive;
    if (cfg.floor_at_zero && st.v < 0) st.v = 0;

    if (st.refractory_left > 0) {
        --st.refractory_left;
        st.x1.tick(cfg.pre_trace, &trace_rng_);
        st.y1.tick(cfg.post_trace, &trace_rng_);
        st.x2.tick(cfg.pre_trace2, &trace_rng_);
        st.y2.tick(cfg.post_trace2, &trace_rng_);
        st.tag.tick(cfg.tag_trace, &trace_rng_);
        return;
    }

    const std::int64_t vth_eff =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(cfg.vth) +
                                      vth_offset_[c]);
    if (st.v >= vth_eff) {
        // AND-join: the threshold crossing is consumed either way, but
        // the outgoing spike is emitted only if the aux gate is open.
        const bool gate_open =
            cfg.join != JoinOp::AndAuxActive || st.aux_active;
        if (cfg.soft_reset)
            st.v -= vth_eff;
        else
            st.v = 0;
        st.refractory_left = cfg.refractory;
        if (gate_open) {
            st.spiked = true;
            if (phase_ == Phase::One)
                ++st.spikes_phase1;
            else
                ++st.spikes_phase2;
            st.x1.on_spike(cfg.pre_trace, phase_);
            st.y1.on_spike(cfg.post_trace, phase_);
            st.x2.on_spike(cfg.pre_trace2, phase_);
            st.y2.on_spike(cfg.post_trace2, phase_);
            st.tag.on_spike(cfg.tag_trace, phase_);
            ++activity_.spikes;
            if (raster_pop_ && s_->pop_of[c] == *raster_pop_)
                raster_.emplace_back(now_,
                                     static_cast<std::uint32_t>(
                                         c - s_->pops[*raster_pop_].first));
        }
    }
    st.x1.tick(cfg.pre_trace, &trace_rng_);
    st.y1.tick(cfg.post_trace, &trace_rng_);
    st.x2.tick(cfg.pre_trace2, &trace_rng_);
    st.y2.tick(cfg.post_trace2, &trace_rng_);
    st.tag.tick(cfg.tag_trace, &trace_rng_);
}

void Chip::step_dense() {
    for (std::size_t c = 0; c < state_.size(); ++c)
        step_compartment(c, /*count_update=*/true);
    // Pass 2: deliver this step's spikes (visible at the next step).
    for (std::size_t c = 0; c < state_.size(); ++c)
        if (state_[c].spiked) deliver(c);
}

void Chip::step_sparse() {
    merge_wakes();

    // The dense sweep counts an update for every non-dead compartment that
    // is not phase-gated off, whether or not anything changed; account the
    // skipped ones in bulk so the energy model sees identical totals.
    activity_.compartment_updates +=
        phase_ == Phase::One ? eligible_phase1_ : eligible_phase2_;

    std::size_t keep = 0;
    for (std::size_t r = 0; r < active_list_.size(); ++r) {
        const std::uint32_t c = active_list_[r];
        step_compartment(c, /*count_update=*/false);
        if (can_sleep(c))
            state_[c].awake = 0;
        else
            active_list_[keep++] = c;
    }
    active_list_.resize(keep);

    // Pass 2: deliver this step's spikes; deliver() re-wakes the targets
    // for the next step. Only surviving list members can have spiked.
    for (std::size_t r = 0; r < keep; ++r) {
        const std::uint32_t c = active_list_[r];
        if (state_[c].spiked) deliver(c);
    }
}

void Chip::wake(CompartmentId c) {
    if (state_[c].awake == 0) {
        state_[c].awake = 1;
        wake_buf_.push_back(static_cast<std::uint32_t>(c));
    }
}

void Chip::wake_all() {
    active_list_.resize(state_.size());
    for (std::size_t c = 0; c < state_.size(); ++c) {
        active_list_[c] = static_cast<std::uint32_t>(c);
        state_[c].awake = 1;
    }
    wake_buf_.clear();
}

void Chip::merge_wakes() {
    if (wake_buf_.empty()) return;
    std::sort(wake_buf_.begin(), wake_buf_.end());
    // Allocation-free backward two-pointer merge of the sorted wake buffer
    // into the sorted active list (this runs every step; std::inplace_merge
    // would grab a temporary buffer each time).
    std::size_t i = active_list_.size();
    std::size_t j = wake_buf_.size();
    active_list_.resize(i + j);
    std::size_t k = active_list_.size();
    while (j > 0) {
        if (i > 0 && active_list_[i - 1] > wake_buf_[j - 1])
            active_list_[--k] = active_list_[--i];
        else
            active_list_[--k] = wake_buf_[--j];
    }
    wake_buf_.clear();
}

// True when the next visits to `c` are guaranteed no-ops, so the sweep may
// drop it until an external event (delivery, host write) wakes it again.
// Evaluated *after* step_compartment, and deliberately phase-independent:
// a compartment put to sleep stays correct across set_phase() flips.
bool Chip::can_sleep(CompartmentId c) const {
    const CompartmentState& st = state_[c];
    // A dead unit only ever sinks pending input, which the visit above has
    // just cleared; it never ticks traces or consumes RNG.
    if (dead_[c] != 0) return true;
    // A decaying trace evolves — and draws from the shared rounding RNG —
    // every step, so these compartments must be visited in dense order.
    if (s_->pop_has_decay[s_->pop_of[c]] != 0) return false;
    if (st.spiked) return false;  // must clear the flag and deliver next step
    if (st.pending_soma != 0) return false;
    if (st.bias != 0) return false;
    if (st.u != 0) return false;
    if (st.aux_current != 0) return false;
    if (st.refractory_left != 0) return false;
    const CompartmentConfig& cfg = s_->pops[s_->pop_of[c]].cfg.compartment;
    // Joined neurons consume pending_aux each visit; unjoined ones never
    // read it, so a residual value there cannot change anything.
    if (cfg.join != JoinOp::None && st.pending_aux != 0) return false;
    if (st.v != 0) {
        if (cfg.decay_v != 0) return false;           // v still decaying
        if (cfg.floor_at_zero && st.v < 0) return false;  // would clamp
        const std::int64_t vth_eff =
            std::max<std::int64_t>(1, static_cast<std::int64_t>(cfg.vth) +
                                          vth_offset_[c]);
        if (st.v >= vth_eff) return false;            // would keep spiking
    }
    return true;
}

void Chip::set_sparse_sweep(bool enabled) {
    if (enabled == sparse_) return;
    sparse_ = enabled;
    // Either direction re-arms the full list: the dense sweep relies on
    // every awake flag being 1 (so deliveries never queue wakes), and the
    // sparse sweep must start from a complete list.
    if (finalized_) wake_all();
}

void Chip::run(std::size_t steps) {
    for (std::size_t i = 0; i < steps; ++i) step();
}

void Chip::detach_weights() {
    if (img_.use_count() != 1) img_ = std::make_shared<Weights>(*img_);
}

void Chip::apply_learning() {
    check_finalized(true);
    if (s_->has_plastic) detach_weights();
    for (std::size_t pi = 0; pi < s_->projs.size(); ++pi) {
        const auto& proj = s_->projs[pi];
        if (!proj.cfg.plastic) continue;
        auto& w = img_->w[pi];
        const auto& stuck = stuck_[pi];
        const CompartmentId src_base = s_->pops[proj.cfg.src].first;
        const CompartmentId dst_base = s_->pops[proj.cfg.dst].first;
        for (std::size_t i = 0; i < proj.synapses.size(); ++i) {
            const Synapse& syn = proj.synapses[i];
            ++activity_.learning_synapse_visits;
            if (!stuck.empty() && stuck[i] != 0) continue;
            const CompartmentState& pre = state_[src_base + syn.src];
            const CompartmentState& post = state_[dst_base + syn.dst];
            LearnContext ctx;
            ctx.x0 = pre.spiked ? 1 : 0;
            ctx.x1 = pre.x1.value;
            ctx.x2 = pre.x2.value;
            ctx.y0 = post.spiked ? 1 : 0;
            ctx.y1 = post.y1.value;
            ctx.y2 = post.y2.value;
            ctx.tag = post.tag.value;
            ctx.weight = w[i];
            const std::int64_t dw = rules_[pi].dw.evaluate(
                ctx, proj.cfg.stochastic_rounding ? &learn_rng_ : nullptr);
            if (dw != 0) {
                w[i] = common::saturate_signed(
                    static_cast<std::int64_t>(w[i]) + dw, limits_.weight_bits);
                // Propagate into the delivery table (same synaptic memory on
                // silicon; two views of it in the simulator).
                img_->eff[proj.fanout_slot[i]] = static_cast<std::int32_t>(
                    static_cast<std::int64_t>(w[i]) << proj.cfg.weight_exp);
            }
        }
    }
}

void Chip::set_learning_rule(ProjectionId proj, LearningRule rule) {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("set_learning_rule: bad projection");
    if (!s_->projs[proj].cfg.plastic)
        throw std::logic_error("set_learning_rule: projection is not plastic");
    if (finalized_) {
        rules_[proj] = std::move(rule);
    } else {
        detach_structure();
        s_->projs[proj].cfg.rule = std::move(rule);
    }
}

void Chip::reset_dynamic_state() {
    for (auto& st : state_) st.reset_dynamic();
    for (auto& slot : wheel_) slot.clear();
}

void Chip::reset_membranes() {
    for (auto& st : state_) {
        st.u = 0;
        st.v = 0;
        st.pending_soma = 0;
        st.pending_aux = 0;
        st.aux_current = 0;
        st.refractory_left = 0;
    }
}

void Chip::set_threshold_offset(PopulationId pop, std::size_t idx,
                                std::int32_t offset) {
    const CompartmentId c = global_id(pop, idx);
    vth_offset_[c] = offset;
    // A lowered threshold can make a dormant sub-threshold membrane fire.
    if (finalized_ && sparse_) wake(c);
}

std::int32_t Chip::threshold_offset(PopulationId pop, std::size_t idx) const {
    return vth_offset_[global_id(pop, idx)];
}

void Chip::set_compartment_dead(PopulationId pop, std::size_t idx, bool dead) {
    const CompartmentId c = global_id(pop, idx);
    const bool was = dead_[c] != 0;
    dead_[c] = dead ? 1 : 0;
    if (!finalized_ || was == dead) return;  // finalize (re)derives the counts
    const bool p1 = s_->pops[pop].cfg.compartment.active_in_phase1;
    if (dead) {
        --eligible_phase2_;
        if (p1) --eligible_phase1_;
    } else {
        ++eligible_phase2_;
        if (p1) ++eligible_phase1_;
    }
    if (sparse_) wake(c);
}

bool Chip::compartment_dead(PopulationId pop, std::size_t idx) const {
    return dead_[global_id(pop, idx)] != 0;
}

void Chip::set_synapse_stuck(ProjectionId proj, std::size_t syn,
                             std::int32_t value) {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("set_synapse_stuck: bad projection");
    if (!finalized_) detach_structure();  // the builder weight is written below
    auto& p = s_->projs[proj];
    if (syn >= p.synapses.size())
        throw std::invalid_argument("set_synapse_stuck: bad synapse index");
    if (stuck_[proj].empty()) stuck_[proj].assign(p.synapses.size(), 0);
    stuck_[proj][syn] = 1;
    const std::int32_t w = common::saturate_signed(value, limits_.weight_bits);
    if (finalized_) {
        detach_weights();
        img_->w[proj][syn] = w;
        img_->eff[p.fanout_slot[syn]] = static_cast<std::int32_t>(
            static_cast<std::int64_t>(w) << p.cfg.weight_exp);
    } else {
        p.synapses[syn].weight = w;
    }
}

bool Chip::synapse_stuck(ProjectionId proj, std::size_t syn) const {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("synapse_stuck: bad projection");
    if (syn >= s_->projs[proj].synapses.size())
        throw std::invalid_argument("synapse_stuck: bad synapse index");
    return !stuck_[proj].empty() && stuck_[proj][syn] != 0;
}

std::size_t Chip::stuck_synapse_count(ProjectionId proj) const {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("stuck_synapse_count: bad projection");
    std::size_t n = 0;
    for (const auto f : stuck_[proj]) n += f;
    return n;
}

void Chip::deliver_external(PopulationId pop, std::size_t idx,
                            std::int32_t eff_weight, Port port) {
    check_finalized(true);
    const CompartmentId c = global_id(pop, idx);
    CompartmentState& dst = state_[c];
    if (port == Port::Soma)
        dst.pending_soma += eff_weight;
    else
        dst.pending_aux += eff_weight;
    if (sparse_ && dst.awake == 0) {
        dst.awake = 1;
        wake_buf_.push_back(static_cast<std::uint32_t>(c));
    }
}

void Chip::collect_spiked(PopulationId pop,
                          std::vector<std::uint32_t>& out) const {
    const auto n = population_size(pop);
    const CompartmentId base = s_->pops[pop].first;
    for (std::size_t i = 0; i < n; ++i)
        if (state_[base + i].spiked) out.push_back(static_cast<std::uint32_t>(i));
}

const PopulationConfig& Chip::population_config(PopulationId pop) const {
    if (pop >= s_->pops.size())
        throw std::invalid_argument("population_config: bad population");
    return s_->pops[pop].cfg;
}

const ProjectionConfig& Chip::projection_config(ProjectionId proj) const {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("projection_config: bad projection");
    return s_->projs[proj].cfg;
}

const std::vector<Synapse>& Chip::projection_synapses(ProjectionId proj) const {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("projection_synapses: bad projection");
    return s_->projs[proj].synapses;
}

const LearningRule& Chip::learning_rule(ProjectionId proj) const {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("learning_rule: bad projection");
    return finalized_ ? rules_[proj] : s_->projs[proj].cfg.rule;
}

std::vector<std::int32_t> Chip::biases(PopulationId pop) const {
    const auto n = population_size(pop);
    std::vector<std::int32_t> out(n);
    const CompartmentId base = s_->pops[pop].first;
    for (std::size_t i = 0; i < n; ++i) out[i] = state_[base + i].bias;
    return out;
}

std::size_t Chip::population_size(PopulationId pop) const {
    if (pop >= s_->pops.size())
        throw std::invalid_argument("population_size: bad population");
    return s_->pops[pop].cfg.size;
}

std::int32_t Chip::nominal_threshold(PopulationId pop) const {
    if (pop >= s_->pops.size())
        throw std::invalid_argument("nominal_threshold: bad population");
    return s_->pops[pop].cfg.compartment.vth;
}

std::vector<std::int32_t> Chip::spike_counts(PopulationId pop, Phase phase) const {
    const auto n = population_size(pop);
    std::vector<std::int32_t> out(n);
    const CompartmentId base = s_->pops[pop].first;
    for (std::size_t i = 0; i < n; ++i)
        out[i] = phase == Phase::One ? state_[base + i].spikes_phase1
                                     : state_[base + i].spikes_phase2;
    return out;
}

std::vector<std::int32_t> Chip::spike_counts_total(PopulationId pop) const {
    const auto n = population_size(pop);
    std::vector<std::int32_t> out(n);
    const CompartmentId base = s_->pops[pop].first;
    for (std::size_t i = 0; i < n; ++i) out[i] = state_[base + i].spike_count();
    return out;
}

std::int64_t Chip::membrane(PopulationId pop, std::size_t idx) const {
    return state_[global_id(pop, idx)].v;
}

std::int64_t Chip::current(PopulationId pop, std::size_t idx) const {
    return state_[global_id(pop, idx)].u;
}

bool Chip::spiked(PopulationId pop, std::size_t idx) const {
    return state_[global_id(pop, idx)].spiked;
}

std::int32_t Chip::trace_x2(PopulationId pop, std::size_t idx) const {
    return state_[global_id(pop, idx)].x2.value;
}

std::int32_t Chip::trace_y2(PopulationId pop, std::size_t idx) const {
    return state_[global_id(pop, idx)].y2.value;
}

std::int32_t Chip::trace_x1(PopulationId pop, std::size_t idx) const {
    return state_[global_id(pop, idx)].x1.value;
}

std::int32_t Chip::trace_y1(PopulationId pop, std::size_t idx) const {
    return state_[global_id(pop, idx)].y1.value;
}

std::int32_t Chip::trace_tag(PopulationId pop, std::size_t idx) const {
    return state_[global_id(pop, idx)].tag.value;
}

std::vector<std::int32_t> Chip::weights(ProjectionId proj) const {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("weights: bad projection");
    if (finalized_) return img_->w[proj];
    std::vector<std::int32_t> out;
    out.reserve(s_->projs[proj].synapses.size());
    for (const auto& s : s_->projs[proj].synapses) out.push_back(s.weight);
    return out;
}

void Chip::set_weights(ProjectionId proj, const std::vector<std::int32_t>& w) {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("set_weights: bad projection");
    if (finalized_)
        throw std::logic_error("set_weights: weights are fixed after finalize; "
                               "use a plastic projection to adapt them");
    detach_structure();
    auto& syns = s_->projs[proj].synapses;
    if (w.size() != syns.size())
        throw std::invalid_argument("set_weights: size mismatch");
    for (std::size_t i = 0; i < w.size(); ++i)
        syns[i].weight = common::saturate_signed(w[i], limits_.weight_bits);
}

void Chip::write_weight(std::size_t proj, std::size_t i, std::int32_t w) {
    // A stuck memory cell ignores reprogramming.
    if (!stuck_[proj].empty() && stuck_[proj][i] != 0) return;
    const auto& p = s_->projs[proj];
    if (finalized_) {
        img_->w[proj][i] = w;
        img_->eff[p.fanout_slot[i]] = static_cast<std::int32_t>(
            static_cast<std::int64_t>(w) << p.cfg.weight_exp);
    } else {
        s_->projs[proj].synapses[i].weight = w;
    }
}

void Chip::program_weights(ProjectionId proj, const std::vector<std::int32_t>& w) {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("program_weights: bad projection");
    if (finalized_)
        detach_weights();
    else
        detach_structure();  // pre-finalize, write_weight hits the builder
    const auto& p = s_->projs[proj];
    if (w.size() != p.synapses.size())
        throw std::invalid_argument("program_weights: size mismatch for " +
                                    p.cfg.name);
    for (std::size_t i = 0; i < w.size(); ++i) {
        if (w[i] != common::saturate_signed(w[i], limits_.weight_bits))
            throw std::invalid_argument("program_weights(" + p.cfg.name +
                                        "): weight exceeds " +
                                        std::to_string(limits_.weight_bits) +
                                        " bits");
        write_weight(proj, i, w[i]);
    }
}

std::size_t Chip::synapse_count(ProjectionId proj) const {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("synapse_count: bad projection");
    return s_->projs[proj].synapses.size();
}

std::size_t Chip::total_synapses() const {
    std::size_t n = 0;
    for (const auto& p : s_->projs) n += p.synapses.size();
    return n;
}

std::size_t Chip::total_compartments() const {
    std::size_t n = 0;
    for (const auto& p : s_->pops) {
        const std::size_t per =
            p.cfg.compartment.join == JoinOp::None ? 1 : 2;
        n += p.cfg.size * per;
    }
    return n;
}

namespace {
constexpr std::uint32_t kCheckpointMagic = 0x4C4F4948;  // "LOIH"
constexpr std::uint32_t kCheckpointVersion = 1;
}  // namespace

void Chip::save_weights(std::ostream& out) const {
    auto put32 = [&](std::uint32_t v) {
        out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    put32(kCheckpointMagic);
    put32(kCheckpointVersion);
    put32(static_cast<std::uint32_t>(s_->projs.size()));
    for (std::size_t pi = 0; pi < s_->projs.size(); ++pi) {
        const auto w = weights(pi);
        put32(static_cast<std::uint32_t>(w.size()));
        for (const auto v : w) put32(static_cast<std::uint32_t>(v));
    }
}

void Chip::load_weights(std::istream& in) {
    auto get32 = [&]() {
        std::uint32_t v = 0;
        in.read(reinterpret_cast<char*>(&v), sizeof(v));
        if (!in) throw std::runtime_error("load_weights: truncated checkpoint");
        return v;
    };
    if (get32() != kCheckpointMagic)
        throw std::runtime_error("load_weights: bad magic");
    if (get32() != kCheckpointVersion)
        throw std::runtime_error("load_weights: unsupported version");
    if (get32() != s_->projs.size())
        throw std::runtime_error("load_weights: projection count mismatch");
    if (finalized_)
        detach_weights();
    else
        detach_structure();  // pre-finalize, write_weight hits the builder
    for (std::size_t pi = 0; pi < s_->projs.size(); ++pi) {
        const auto& proj = s_->projs[pi];
        if (get32() != proj.synapses.size())
            throw std::runtime_error("load_weights: synapse count mismatch in " +
                                     proj.cfg.name);
        for (std::size_t i = 0; i < proj.synapses.size(); ++i) {
            const auto w = static_cast<std::int32_t>(get32());
            if (w != common::saturate_signed(w, limits_.weight_bits))
                throw std::runtime_error("load_weights: weight out of range in " +
                                         proj.cfg.name);
            // Stream values for stuck cells are consumed but not applied.
            write_weight(pi, i, w);
        }
    }
}

const MappingResult& Chip::mapping() const {
    if (!finalized_) throw std::logic_error("mapping: chip not finalized");
    return s_->mapping;
}

void Chip::enable_raster(PopulationId pop) {
    if (pop >= s_->pops.size()) throw std::invalid_argument("enable_raster: bad pop");
    raster_pop_ = pop;
}

CompartmentId Chip::global_id(PopulationId pop, std::size_t idx) const {
    if (pop >= s_->pops.size() || idx >= s_->pops[pop].cfg.size)
        throw std::invalid_argument("bad (population, index)");
    return s_->pops[pop].first + idx;
}

void Chip::check_finalized(bool expected) const {
    if (finalized_ != expected)
        throw std::logic_error(expected ? "chip must be finalized first"
                                        : "chip is already finalized");
}

EncodedWeight encode_weight(std::int64_t desired, int weight_bits) {
    EncodedWeight e;
    const std::int64_t mag = desired < 0 ? -desired : desired;
    const std::int64_t wmax = (std::int64_t{1} << (weight_bits - 1)) - 1;
    std::int64_t m = mag;
    while (m > wmax) {
        m = (m + 1) >> 1;
        ++e.exponent;
    }
    e.weight = static_cast<std::int32_t>(desired < 0 ? -m : m);
    return e;
}

}  // namespace neuro::loihi
