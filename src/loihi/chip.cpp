#include "loihi/chip.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/fixed.hpp"
#include "obs/timer.hpp"

namespace neuro::loihi {

namespace {

// ---- vector kernels of the dense sweep --------------------------------------
// Free functions over restrict-qualified lane pointers so the compiler can
// prove the lanes disjoint and autovectorize (this TU is built -O3 with a
// SIMD baseline arch, see NEURO_KERNEL_ARCH in CMakeLists.txt; the tagged
// loops are gated by tools/check_vectorization.py in CI). The arithmetic is
// the exact scalar semantics of Chip::step_compartment specialized to
// JoinOp::None populations: integer lanes only, no gather/scatter, the
// floor clamp written as a select, and the spike decision materialized into
// a byte lane consumed by the scalar epilogue.

/// The paper's IF configuration (decay_u == 4096, decay_v == 0): the current
/// clears every step, the membrane integrates perfectly — no multiplies at
/// all in the loop.
template <bool Floor, bool Refrac>
void integrate_if(std::int64_t* __restrict u, std::int64_t* __restrict v,
                  std::int64_t* __restrict pending,
                  const std::int32_t* __restrict bias,
                  const std::int64_t* __restrict vth,
                  [[maybe_unused]] std::int32_t* __restrict refr,
                  std::uint8_t* __restrict fired, std::size_t n) {
    // NEURO_VEC_HOT: dense integrate + spike-detect (IF configuration)
    for (std::size_t i = 0; i < n; ++i) {
        const std::int64_t ui = pending[i];
        pending[i] = 0;
        u[i] = ui;
        std::int64_t vi = v[i] + ui + bias[i];
        if constexpr (Floor) vi = vi < 0 ? 0 : vi;
        v[i] = vi;
        if constexpr (Refrac) {
            const std::int32_t r = refr[i];
            fired[i] = static_cast<std::uint8_t>((r == 0) & (vi >= vth[i]));
            refr[i] = r > 0 ? r - 1 : r;
        } else {
            fired[i] = static_cast<std::uint8_t>(vi >= vth[i]);
        }
    }
}

/// General 12-bit decay pair (common::decay12 semantics: truncation toward
/// zero, so the division must stay a division, not a shift).
template <bool Floor, bool Refrac>
void integrate_decay(std::int64_t* __restrict u, std::int64_t* __restrict v,
                     std::int64_t* __restrict pending,
                     const std::int32_t* __restrict bias,
                     const std::int64_t* __restrict vth,
                     [[maybe_unused]] std::int32_t* __restrict refr,
                     std::uint8_t* __restrict fired, std::size_t n,
                     std::int32_t decay_u, std::int32_t decay_v) {
    // NEURO_VEC_HOT: dense integrate + spike-detect (general decays)
    for (std::size_t i = 0; i < n; ++i) {
        const std::int64_t ui = common::decay12(u[i], decay_u) + pending[i];
        pending[i] = 0;
        u[i] = ui;
        std::int64_t vi = common::decay12(v[i], decay_v) + ui + bias[i];
        if constexpr (Floor) vi = vi < 0 ? 0 : vi;
        v[i] = vi;
        if constexpr (Refrac) {
            const std::int32_t r = refr[i];
            fired[i] = static_cast<std::uint8_t>((r == 0) & (vi >= vth[i]));
            refr[i] = r > 0 ? r - 1 : r;
        } else {
            fired[i] = static_cast<std::uint8_t>(vi >= vth[i]);
        }
    }
}

/// IF configuration with an aux join (JoinOp::GatedAdd / JoinOp::Add): the
/// aux accumulator is pulled into aux_current every step and added to the
/// drive — for GatedAdd only where the compartment spiked in phase 1 (the
/// h' derivative gate of paper eq. 11). The gate is computed as mask
/// arithmetic so the loop stays branch-free and vectorizes.
template <bool Floor, bool Refrac, bool Gated>
void integrate_if_join(std::int64_t* __restrict u, std::int64_t* __restrict v,
                       std::int64_t* __restrict pending,
                       const std::int32_t* __restrict bias,
                       const std::int64_t* __restrict vth,
                       [[maybe_unused]] std::int32_t* __restrict refr,
                       std::uint8_t* __restrict fired,
                       std::int64_t* __restrict aux_cur,
                       std::int64_t* __restrict pending_aux,
                       const std::int32_t* __restrict sp1, std::size_t n) {
    // NEURO_VEC_HOT: dense integrate + spike-detect (IF, aux join)
    for (std::size_t i = 0; i < n; ++i) {
        const std::int64_t a = pending_aux[i];
        pending_aux[i] = 0;
        aux_cur[i] = a;
        const std::int64_t ui = pending[i];
        pending[i] = 0;
        u[i] = ui;
        std::int64_t drive = ui + bias[i];
        if constexpr (Gated)
            drive += a & -static_cast<std::int64_t>(sp1[i] > 0);
        else
            drive += a;
        std::int64_t vi = v[i] + drive;
        if constexpr (Floor) vi = vi < 0 ? 0 : vi;
        v[i] = vi;
        if constexpr (Refrac) {
            const std::int32_t r = refr[i];
            fired[i] = static_cast<std::uint8_t>((r == 0) & (vi >= vth[i]));
            refr[i] = r > 0 ? r - 1 : r;
        } else {
            fired[i] = static_cast<std::uint8_t>(vi >= vth[i]);
        }
    }
}

/// Frozen-phase aux pull for joined populations: the soma is power-gated
/// but the join input still drains into aux_current, exactly as in the
/// scalar step (the gate observes deliveries while frozen).
void pull_aux(std::int64_t* __restrict aux_cur,
              std::int64_t* __restrict pending_aux, std::size_t n) {
    // (deliberately untagged for the vectorization gate: gcc distributes
    // this into memcpy + memset, which beats a vector loop and leaves no
    // loop to report)
    for (std::size_t i = 0; i < n; ++i) {
        aux_cur[i] = pending_aux[i];
        pending_aux[i] = 0;
    }
}

}  // namespace

Chip::Chip(ChipLimits limits)
    : limits_(limits), s_(std::make_shared<Structure>()) {}

void Chip::detach_structure() {
    if (s_.use_count() != 1) s_ = std::make_shared<Structure>(*s_);
}

PopulationId Chip::add_population(PopulationConfig cfg) {
    check_finalized(false);
    detach_structure();
    if (cfg.size == 0) throw std::invalid_argument("add_population: empty population");
    Population p;
    p.cfg = std::move(cfg);
    p.first = bank_.size();
    bank_.resize(bank_.size() + p.cfg.size);
    s_->pop_of.resize(bank_.size(), static_cast<std::uint16_t>(s_->pops.size()));
    vth_offset_.resize(bank_.size(), 0);
    dead_.resize(bank_.size(), 0);
    pop_dead_.push_back(0);
    s_->pops.push_back(std::move(p));
    return s_->pops.size() - 1;
}

ProjectionId Chip::add_projection(ProjectionConfig cfg, std::vector<Synapse> synapses) {
    check_finalized(false);
    detach_structure();
    if (cfg.src >= s_->pops.size() || cfg.dst >= s_->pops.size())
        throw std::invalid_argument("add_projection: bad population id");
    const auto src_n = s_->pops[cfg.src].cfg.size;
    const auto dst_n = s_->pops[cfg.dst].cfg.size;
    for (const auto& s : synapses) {
        if (s.src >= src_n || s.dst >= dst_n)
            throw std::invalid_argument("add_projection(" + cfg.name +
                                        "): synapse index out of range");
        if (s.weight != common::saturate_signed(s.weight, limits_.weight_bits))
            throw std::invalid_argument("add_projection(" + cfg.name +
                                        "): weight exceeds " +
                                        std::to_string(limits_.weight_bits) + " bits");
        if (s.delay > 62)
            throw std::invalid_argument("add_projection(" + cfg.name +
                                        "): delay exceeds 62 steps");
    }
    Projection p;
    p.cfg = std::move(cfg);
    p.synapses = std::move(synapses);
    s_->projs.push_back(std::move(p));
    stuck_.emplace_back();
    return s_->projs.size() - 1;
}

void Chip::finalize() {
    check_finalized(false);
    detach_structure();

    // ---- core mapping (Operation Flow 1, layer at a time) -----------------
    std::vector<LayerMapSpec> specs;
    specs.reserve(s_->pops.size());
    for (std::size_t pi = 0; pi < s_->pops.size(); ++pi) {
        const auto& pop = s_->pops[pi];
        LayerMapSpec spec;
        spec.name = pop.cfg.name;
        spec.logical_neurons = pop.cfg.size;
        spec.compartments_per_neuron =
            pop.cfg.compartment.join == JoinOp::None ? 1 : 2;
        std::size_t fan_in = 0;
        std::size_t fan_out = 0;
        std::size_t plastic_in = 0;
        std::size_t sources = 0;
        for (const auto& proj : s_->projs) {
            if (proj.cfg.dst == pi) {
                fan_in += proj.synapses.size();
                sources += s_->pops[proj.cfg.src].cfg.size;
                if (proj.cfg.plastic) plastic_in += proj.synapses.size();
            }
            if (proj.cfg.src == pi) fan_out += proj.synapses.size();
        }
        spec.distinct_sources = sources;
        spec.fan_in_per_neuron = (fan_in + pop.cfg.size - 1) / pop.cfg.size;
        spec.fan_out_per_neuron = (fan_out + pop.cfg.size - 1) / pop.cfg.size;
        spec.plastic_fan_in_per_neuron = (plastic_in + pop.cfg.size - 1) / pop.cfg.size;
        spec.neurons_per_core = pop.cfg.neurons_per_core;
        specs.push_back(std::move(spec));
    }
    s_->mapping = map_layers(specs, limits_);

    // ---- fan-out tables & weight image -------------------------------------
    std::vector<std::size_t> degree(bank_.size(), 0);
    for (const auto& proj : s_->projs)
        for (const auto& s : proj.synapses)
            ++degree[s_->pops[proj.cfg.src].first + s.src];

    s_->fanout_begin.assign(bank_.size() + 1, 0);
    for (std::size_t c = 0; c < bank_.size(); ++c)
        s_->fanout_begin[c + 1] = s_->fanout_begin[c] + degree[c];
    s_->fanout.resize(s_->fanout_begin.back());

    img_ = std::make_shared<Weights>();
    img_->w.resize(s_->projs.size());
    img_->eff.resize(s_->fanout_begin.back());

    std::vector<std::size_t> cursor(s_->fanout_begin.begin(),
                                    s_->fanout_begin.end() - 1);
    for (std::size_t pi = 0; pi < s_->projs.size(); ++pi) {
        auto& proj = s_->projs[pi];
        auto& w = img_->w[pi];
        w.reserve(proj.synapses.size());
        proj.fanout_slot.reserve(proj.synapses.size());
        for (const auto& s : proj.synapses) {
            const CompartmentId src = s_->pops[proj.cfg.src].first + s.src;
            const CompartmentId dst = s_->pops[proj.cfg.dst].first + s.dst;
            FanoutEntry e;
            e.dst = static_cast<std::uint32_t>(dst);
            e.port = static_cast<std::uint8_t>(proj.cfg.port);
            e.delay = s.delay;
            const std::size_t slot = cursor[src]++;
            proj.fanout_slot.push_back(slot);
            s_->fanout[slot] = e;
            w.push_back(s.weight);
            img_->eff[slot] = static_cast<std::int32_t>(
                static_cast<std::int64_t>(s.weight) << proj.cfg.weight_exp);
        }
        if (proj.cfg.plastic) s_->has_plastic = true;
    }

    // ---- delivery run segmentation -----------------------------------------
    // Compress each source's CSR span into contiguous / generic segments
    // (see FanoutRun). Runs shorter than kMinRun are not worth the vector
    // loop's setup and stay in the surrounding generic segment.
    constexpr std::size_t kMinRun = 4;
    s_->run_begin.assign(bank_.size() + 1, 0);
    s_->runs.clear();
    for (std::size_t c = 0; c < bank_.size(); ++c) {
        const std::size_t begin = s_->fanout_begin[c];
        const std::size_t end = s_->fanout_begin[c + 1];
        std::size_t k = begin;
        while (k < end) {
            // Longest contiguous candidate starting at k.
            std::size_t j = k;
            if (s_->fanout[k].delay == 0) {
                while (j + 1 < end && s_->fanout[j + 1].delay == 0 &&
                       s_->fanout[j + 1].port == s_->fanout[k].port &&
                       s_->fanout[j + 1].dst == s_->fanout[j].dst + 1)
                    ++j;
                ++j;
            }
            if (j - k >= kMinRun) {
                FanoutRun run;
                run.dst0 = s_->fanout[k].dst;
                run.slot0 = static_cast<std::uint32_t>(k);
                run.len = static_cast<std::uint32_t>(j - k);
                run.port = s_->fanout[k].port;
                run.contiguous = 1;
                s_->runs.push_back(run);
                k = j;
                continue;
            }
            // Extend (or open) a generic segment by one entry. The run must
            // already belong to this compartment (runs.size() > run_begin[c])
            // — slots are contiguous across compartments, so slot adjacency
            // alone would merge spans across source boundaries.
            if (s_->runs.size() > s_->run_begin[c] &&
                s_->runs.back().contiguous == 0 &&
                s_->runs.back().slot0 + s_->runs.back().len == k)
                ++s_->runs.back().len;
            else {
                FanoutRun run;
                run.slot0 = static_cast<std::uint32_t>(k);
                run.len = 1;
                run.contiguous = 0;
                s_->runs.push_back(run);
            }
            ++k;
        }
        s_->run_begin[c + 1] = s_->runs.size();
    }

    rules_.resize(s_->projs.size());
    for (std::size_t pi = 0; pi < s_->projs.size(); ++pi)
        rules_[pi] = s_->projs[pi].cfg.rule;

    // ---- sweep bookkeeping -------------------------------------------------
    s_->pop_has_decay.assign(s_->pops.size(), 0);
    s_->pop_vec_ok.assign(s_->pops.size(), 0);
    for (std::size_t pi = 0; pi < s_->pops.size(); ++pi) {
        const CompartmentConfig& cfg = s_->pops[pi].cfg.compartment;
        const bool decays = cfg.pre_trace.decay != 0 || cfg.post_trace.decay != 0 ||
                            cfg.pre_trace2.decay != 0 ||
                            cfg.post_trace2.decay != 0 || cfg.tag_trace.decay != 0;
        s_->pop_has_decay[pi] = decays ? 1 : 0;
        // Vector-sweep kind: 0 = scalar only, 1 = plain lanes, 2/3 = IF
        // lanes with a GatedAdd/Add aux join. Decaying traces force scalar
        // order (they draw from the shared rounding RNG per compartment);
        // AndAuxActive stays scalar for its sticky gate bit; the join
        // kernels are specialized to the IF configuration.
        const bool if_cfg = cfg.decay_u == 4096 && cfg.decay_v == 0;
        std::uint8_t kind = 0;
        if (!decays) {
            if (cfg.join == JoinOp::None)
                kind = 1;
            else if (cfg.join == JoinOp::GatedAdd && if_cfg)
                kind = 2;
            else if (cfg.join == JoinOp::Add && if_cfg)
                kind = 3;
        }
        s_->pop_vec_ok[pi] = kind;
    }
    vth_eff_.resize(bank_.size());
    for (std::size_t c = 0; c < bank_.size(); ++c)
        vth_eff_[c] = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(
                   s_->pops[s_->pop_of[c]].cfg.compartment.vth) +
                   vth_offset_[c]);
    fired_.assign(bank_.size(), 0);
    pop_dead_.assign(s_->pops.size(), 0);
    for (std::size_t c = 0; c < bank_.size(); ++c)
        if (dead_[c] != 0) ++pop_dead_[s_->pop_of[c]];
    eligible_phase1_ = eligible_phase2_ = 0;
    for (std::size_t c = 0; c < bank_.size(); ++c) {
        if (dead_[c] != 0) continue;
        ++eligible_phase2_;
        if (s_->pops[s_->pop_of[c]].cfg.compartment.active_in_phase1)
            ++eligible_phase1_;
    }
    wake_all();

    finalized_ = true;
}

void Chip::set_bias(PopulationId pop, const std::vector<std::int32_t>& bias) {
    if (pop >= s_->pops.size()) throw std::invalid_argument("set_bias: bad population");
    if (bias.size() != s_->pops[pop].cfg.size)
        throw std::invalid_argument("set_bias: size mismatch for " +
                                    s_->pops[pop].cfg.name);
    const CompartmentId base = s_->pops[pop].first;
    for (std::size_t i = 0; i < bias.size(); ++i) bank_.bias[base + i] = bias[i];
    // A bias write can turn a dormant compartment live; clearing one to zero
    // never invalidates dormancy, so clear_bias needs no wake.
    if (finalized_ && sparse_)
        for (std::size_t i = 0; i < bias.size(); ++i) wake(base + i);
    activity_.host_io_writes += bias.size();
}

void Chip::clear_bias(PopulationId pop) {
    if (pop >= s_->pops.size()) throw std::invalid_argument("clear_bias: bad population");
    const CompartmentId base = s_->pops[pop].first;
    for (std::size_t i = 0; i < s_->pops[pop].cfg.size; ++i)
        bank_.bias[base + i] = 0;
}

void Chip::tick_traces(CompartmentId c, const CompartmentConfig& cfg) {
    trace_tick(bank_.x1[c], cfg.pre_trace, &trace_rng_);
    trace_tick(bank_.y1[c], cfg.post_trace, &trace_rng_);
    trace_tick(bank_.x2[c], cfg.pre_trace2, &trace_rng_);
    trace_tick(bank_.y2[c], cfg.post_trace2, &trace_rng_);
    trace_tick(bank_.tag[c], cfg.tag_trace, &trace_rng_);
}

void Chip::insert_spike(PopulationId pop, std::size_t idx) {
    check_finalized(true);
    ++activity_.host_io_writes;
    const CompartmentId c = global_id(pop, idx);
    // The host write happens either way, but a dead unit relays nothing.
    if (dead_[c] != 0) return;
    // Host-inserted spikes drive the same trace machinery as locally
    // generated ones: on silicon the pre-trace lives with the synapse at the
    // destination core and is updated by the incoming spike event no matter
    // where it originated. Spike counters are updated too so probes and the
    // learning rule see a consistent history.
    const CompartmentConfig& cfg = s_->pops[pop].cfg.compartment;
    if (phase_ == Phase::One)
        ++bank_.spikes_phase1[c];
    else
        ++bank_.spikes_phase2[c];
    trace_on_spike(bank_.x1[c], cfg.pre_trace, phase_);
    trace_on_spike(bank_.y1[c], cfg.post_trace, phase_);
    trace_on_spike(bank_.x2[c], cfg.pre_trace2, phase_);
    trace_on_spike(bank_.y2[c], cfg.post_trace2, phase_);
    trace_on_spike(bank_.tag[c], cfg.tag_trace, phase_);
    ++activity_.spikes;
    if (raster_pop_ && s_->pop_of[c] == *raster_pop_)
        raster_.emplace_back(now_ + 1,  // delivered with the next step
                             static_cast<std::uint32_t>(idx));
    deliver(c);
}

void Chip::deliver_span(std::size_t b, std::size_t e) {
    const FanoutEntry* fo = s_->fanout.data();
    const std::int32_t* eff = img_->eff.data();
    for (std::size_t k = b; k < e; ++k) {
        const FanoutEntry& entry = fo[k];
        if (entry.delay != 0) {
            // Extra latency: park the event on the wheel; it is drained at
            // the start of step now_ + 1 + delay.
            wheel_[(now_ + 1 + entry.delay) % kWheel].push_back(
                {entry.dst, eff[k], entry.port});
            continue;
        }
        if (static_cast<Port>(entry.port) == Port::Soma)
            bank_.pending_soma[entry.dst] += eff[k];
        else
            bank_.pending_aux[entry.dst] += eff[k];
        // Sleeping targets must rejoin the sweep (dense mode keeps every
        // flag at 1, so it skips the test altogether).
        if (sparse_ && !bank_.awake.get(entry.dst)) {
            bank_.awake.set(entry.dst);
            wake_buf_.push_back(entry.dst);
        }
    }
}

void Chip::wake_range(std::size_t d0, std::size_t len) {
    std::uint64_t* words = bank_.awake.words();
    std::size_t i = d0;
    const std::size_t e = d0 + len;
    while (i < e) {
        const std::size_t wi = i >> 6;
        const std::size_t lo = i & 63;
        const std::size_t hi = std::min<std::size_t>(64, lo + (e - i));
        const std::uint64_t upper =
            hi == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << hi) - 1;
        std::uint64_t missing =
            upper & ~((std::uint64_t{1} << lo) - 1) & ~words[wi];
        if (missing != 0) {
            words[wi] |= missing;
            while (missing != 0) {
                wake_buf_.push_back(static_cast<std::uint32_t>(
                    (wi << 6) + std::countr_zero(missing)));
                missing &= missing - 1;
            }
        }
        i = (wi << 6) + hi;
    }
}

void Chip::deliver(CompartmentId src) {
    if (vector_sweep_) {
        const FanoutRun* runs = s_->runs.data();
        const std::size_t rb = s_->run_begin[src];
        const std::size_t re = s_->run_begin[src + 1];
        const std::int32_t* eff = img_->eff.data();
        for (std::size_t r = rb; r < re; ++r) {
            const FanoutRun& run = runs[r];
            if (run.contiguous != 0) {
                std::int64_t* __restrict p =
                    (static_cast<Port>(run.port) == Port::Soma
                         ? bank_.pending_soma.data()
                         : bank_.pending_aux.data()) +
                    run.dst0;
                const std::int32_t* __restrict w = eff + run.slot0;
                const std::size_t len = run.len;
                // NEURO_VEC_HOT: batched synaptic accumulation over one run
                for (std::size_t j = 0; j < len; ++j) p[j] += w[j];
                // Dense mode keeps every awake flag at 1 (only the sparse
                // sweep clears them), so the wake scan is skipped entirely.
                if (sparse_) wake_range(run.dst0, len);
            } else {
                deliver_span(run.slot0, run.slot0 + run.len);
            }
        }
    } else {
        deliver_span(s_->fanout_begin[src], s_->fanout_begin[src + 1]);
    }
    activity_.synaptic_ops += s_->fanout_begin[src + 1] - s_->fanout_begin[src];
}

void Chip::step() {
    check_finalized(true);
    ++now_;
    ++activity_.steps;

    // Deliveries whose delay expires this step.
    auto& due = wheel_[now_ % kWheel];
    for (const auto& d : due) {
        if (static_cast<Port>(d.port) == Port::Soma)
            bank_.pending_soma[d.dst] += d.weight;
        else
            bank_.pending_aux[d.dst] += d.weight;
        if (sparse_) wake(d.dst);
    }
    due.clear();

    if (sparse_)
        step_sparse();
    else
        step_dense();
}

// Pass 1 physics of one compartment: integrate and decide the spike.
// Deliveries are queued in pass 2 so the step is order-independent
// (one-step synaptic latency, as on silicon where spikes propagate between
// timestep barriers). `count_update` is false under the sparse sweep, which
// accounts compartment_updates in bulk instead.
void Chip::step_compartment(CompartmentId c, bool count_update) {
    const CompartmentConfig& cfg = s_->pops[s_->pop_of[c]].cfg.compartment;
    bank_.spiked.clear(c);

    if (dead_[c] != 0) {
        // A dead unit sinks whatever arrives and produces nothing.
        bank_.pending_soma[c] = 0;
        bank_.pending_aux[c] = 0;
        return;
    }

    // Aux-port deliveries are handled even while the soma is frozen so
    // that the h' gate can observe phase-1 forward activity.
    if (cfg.join == JoinOp::AndAuxActive) {
        if (bank_.pending_aux[c] != 0) bank_.aux_active.set(c);
        bank_.pending_aux[c] = 0;
    } else if (cfg.join == JoinOp::GatedAdd || cfg.join == JoinOp::Add) {
        bank_.aux_current[c] = bank_.pending_aux[c];
        bank_.pending_aux[c] = 0;
    }

    const bool frozen = (phase_ == Phase::One) && !cfg.active_in_phase1;
    if (frozen) {
        // A frozen compartment neither integrates nor spikes; current
        // that would have arrived is dropped (the population is power-
        // gated during this phase).
        bank_.pending_soma[c] = 0;
        tick_traces(c, cfg);
        return;
    }

    if (count_update) ++activity_.compartment_updates;

    const std::int64_t u =
        common::decay12(bank_.u[c], cfg.decay_u) + bank_.pending_soma[c];
    bank_.u[c] = u;
    bank_.pending_soma[c] = 0;

    std::int64_t drive = u + bank_.bias[c];
    if ((cfg.join == JoinOp::GatedAdd && bank_.spikes_phase1[c] > 0) ||
        cfg.join == JoinOp::Add)
        drive += bank_.aux_current[c];
    std::int64_t v = common::decay12(bank_.v[c], cfg.decay_v) + drive;
    if (cfg.floor_at_zero && v < 0) v = 0;
    bank_.v[c] = v;

    if (bank_.refractory_left[c] > 0) {
        --bank_.refractory_left[c];
        tick_traces(c, cfg);
        return;
    }

    if (v >= vth_eff_[c]) {
        // AND-join: the threshold crossing is consumed either way, but
        // the outgoing spike is emitted only if the aux gate is open.
        const bool gate_open =
            cfg.join != JoinOp::AndAuxActive || bank_.aux_active.get(c);
        if (cfg.soft_reset)
            bank_.v[c] = v - vth_eff_[c];
        else
            bank_.v[c] = 0;
        bank_.refractory_left[c] = cfg.refractory;
        if (gate_open) {
            bank_.spiked.set(c);
            if (phase_ == Phase::One)
                ++bank_.spikes_phase1[c];
            else
                ++bank_.spikes_phase2[c];
            trace_on_spike(bank_.x1[c], cfg.pre_trace, phase_);
            trace_on_spike(bank_.y1[c], cfg.post_trace, phase_);
            trace_on_spike(bank_.x2[c], cfg.pre_trace2, phase_);
            trace_on_spike(bank_.y2[c], cfg.post_trace2, phase_);
            trace_on_spike(bank_.tag[c], cfg.tag_trace, phase_);
            ++activity_.spikes;
            if (raster_pop_ && s_->pop_of[c] == *raster_pop_)
                raster_.emplace_back(now_,
                                     static_cast<std::uint32_t>(
                                         c - s_->pops[*raster_pop_].first));
        }
    }
    tick_traces(c, cfg);
}

void Chip::fire_compartment(CompartmentId c, const CompartmentConfig& cfg) {
    // Vector-path and fast-visit populations never use JoinOp::AndAuxActive,
    // so the aux gate is always open and every threshold crossing is an
    // emitted spike.
    const std::int64_t vth_eff = vth_eff_[c];
    if (cfg.soft_reset)
        bank_.v[c] -= vth_eff;
    else
        bank_.v[c] = 0;
    bank_.refractory_left[c] = cfg.refractory;
    bank_.spiked.set(c);
    if (phase_ == Phase::One)
        ++bank_.spikes_phase1[c];
    else
        ++bank_.spikes_phase2[c];
    trace_on_spike(bank_.x1[c], cfg.pre_trace, phase_);
    trace_on_spike(bank_.y1[c], cfg.post_trace, phase_);
    trace_on_spike(bank_.x2[c], cfg.pre_trace2, phase_);
    trace_on_spike(bank_.y2[c], cfg.post_trace2, phase_);
    trace_on_spike(bank_.tag[c], cfg.tag_trace, phase_);
    ++activity_.spikes;
    if (raster_pop_ && s_->pop_of[c] == *raster_pop_)
        raster_.emplace_back(
            now_, static_cast<std::uint32_t>(c - s_->pops[*raster_pop_].first));
}

void Chip::sweep_pop_vector(PopulationId p, std::size_t b, std::size_t e) {
    const CompartmentConfig& cfg = s_->pops[p].cfg.compartment;
    const std::uint8_t kind = s_->pop_vec_ok[p];
    const std::size_t n = e - b;
    bank_.spiked.clear_range(b, e);

    std::int64_t* pending = bank_.pending_soma.data() + b;
    std::int64_t* aux_cur = bank_.aux_current.data() + b;
    std::int64_t* pend_aux = bank_.pending_aux.data() + b;
    if ((phase_ == Phase::One) && !cfg.active_in_phase1) {
        // Frozen population: drop pending input (joined populations still
        // pull the aux port — the gate observes phase-1 traffic); the
        // pure-counter traces of a vector-eligible population do not tick
        // (decay == 0), and a frozen compartment counts no update.
        if (kind != 1) pull_aux(aux_cur, pend_aux, n);
        std::fill_n(pending, n, std::int64_t{0});
        return;
    }
    activity_.compartment_updates += n;

    std::int64_t* u = bank_.u.data() + b;
    std::int64_t* v = bank_.v.data() + b;
    const std::int32_t* bias = bank_.bias.data() + b;
    const std::int64_t* vth = vth_eff_.data() + b;
    std::int32_t* refr = bank_.refractory_left.data() + b;
    std::uint8_t* fired = fired_.data() + b;

    if (kind == 2 || kind == 3) {
        const std::int32_t* sp1 = bank_.spikes_phase1.data() + b;
        const int jsel = (kind == 2 ? 4 : 0) | (cfg.floor_at_zero ? 2 : 0) |
                         (cfg.refractory > 0 ? 1 : 0);
        switch (jsel) {
            case 0: integrate_if_join<false, false, false>(
                        u, v, pending, bias, vth, refr, fired, aux_cur,
                        pend_aux, sp1, n);
                    break;
            case 1: integrate_if_join<false, true, false>(
                        u, v, pending, bias, vth, refr, fired, aux_cur,
                        pend_aux, sp1, n);
                    break;
            case 2: integrate_if_join<true, false, false>(
                        u, v, pending, bias, vth, refr, fired, aux_cur,
                        pend_aux, sp1, n);
                    break;
            case 3: integrate_if_join<true, true, false>(
                        u, v, pending, bias, vth, refr, fired, aux_cur,
                        pend_aux, sp1, n);
                    break;
            case 4: integrate_if_join<false, false, true>(
                        u, v, pending, bias, vth, refr, fired, aux_cur,
                        pend_aux, sp1, n);
                    break;
            case 5: integrate_if_join<false, true, true>(
                        u, v, pending, bias, vth, refr, fired, aux_cur,
                        pend_aux, sp1, n);
                    break;
            case 6: integrate_if_join<true, false, true>(
                        u, v, pending, bias, vth, refr, fired, aux_cur,
                        pend_aux, sp1, n);
                    break;
            default: integrate_if_join<true, true, true>(
                         u, v, pending, bias, vth, refr, fired, aux_cur,
                         pend_aux, sp1, n);
                     break;
        }
        fire_epilogue(b, e, cfg);
        return;
    }

    const bool if_cfg = cfg.decay_u == 4096 && cfg.decay_v == 0;
    const int sel = (if_cfg ? 4 : 0) | (cfg.floor_at_zero ? 2 : 0) |
                    (cfg.refractory > 0 ? 1 : 0);
    switch (sel) {
        case 0: integrate_decay<false, false>(u, v, pending, bias, vth, refr,
                                              fired, n, cfg.decay_u, cfg.decay_v);
                break;
        case 1: integrate_decay<false, true>(u, v, pending, bias, vth, refr,
                                             fired, n, cfg.decay_u, cfg.decay_v);
                break;
        case 2: integrate_decay<true, false>(u, v, pending, bias, vth, refr,
                                             fired, n, cfg.decay_u, cfg.decay_v);
                break;
        case 3: integrate_decay<true, true>(u, v, pending, bias, vth, refr,
                                            fired, n, cfg.decay_u, cfg.decay_v);
                break;
        case 4: integrate_if<false, false>(u, v, pending, bias, vth, refr,
                                           fired, n);
                break;
        case 5: integrate_if<false, true>(u, v, pending, bias, vth, refr,
                                          fired, n);
                break;
        case 6: integrate_if<true, false>(u, v, pending, bias, vth, refr,
                                          fired, n);
                break;
        default: integrate_if<true, true>(u, v, pending, bias, vth, refr,
                                          fired, n);
                 break;
    }

    fire_epilogue(b, e, cfg);
}

// Scalar epilogue over the fired compartments, ascending (spikes are
// sparse; whole zero words of the fired lane are skipped eight at a
// time). Bookkeeping order per spike matches step_compartment exactly.
void Chip::fire_epilogue(std::size_t b, std::size_t e,
                         const CompartmentConfig& cfg) {
    std::size_t c = b;
    while (c < e) {
        if ((c & 7) == 0 && c + 8 <= e) {
            std::uint64_t block;
            std::memcpy(&block, fired_.data() + c, sizeof(block));
            if (block == 0) {
                c += 8;
                continue;
            }
        }
        if (fired_[c] != 0) fire_compartment(c, cfg);
        ++c;
    }
}

void Chip::step_dense() {
    // Phase timers wrap whole passes — never the NEURO_VEC_HOT loops — so
    // the clock reads stay out of autovectorized code (two reads per pass
    // when enabled, one relaxed load when not).
    {
        obs::Timer t(phase_times_.sweep_ns);
        for (PopulationId p = 0; p < s_->pops.size(); ++p) {
            const Population& pop = s_->pops[p];
            const std::size_t b = pop.first;
            const std::size_t e = b + pop.cfg.size;
            if (vector_sweep_ && s_->pop_vec_ok[p] != 0 && pop_dead_[p] == 0)
                sweep_pop_vector(p, b, e);
            else
                for (std::size_t c = b; c < e; ++c)
                    step_compartment(c, /*count_update=*/true);
        }
    }
    // Pass 2: deliver this step's spikes (visible at the next step), in
    // ascending compartment order via the packed spike bitset.
    obs::Timer t(phase_times_.accum_ns);
    const std::uint64_t* words = bank_.spiked.words();
    const std::size_t nw = bank_.spiked.word_count();
    for (std::size_t wi = 0; wi < nw; ++wi) {
        std::uint64_t bits = words[wi];
        while (bits != 0) {
            deliver((wi << 6) + static_cast<std::size_t>(std::countr_zero(bits)));
            bits &= bits - 1;
        }
    }
}

// Fused sparse visit: the exact arithmetic of step_compartment followed by
// the exact predicate of can_sleep, on values still in registers. Callers
// guarantee the population has no decaying traces (so no trace ticks and no
// RNG draws), no AndAuxActive gate and no dead units. Returns true when the
// compartment may leave the active list.
bool Chip::sparse_visit_fast(CompartmentId c, const CompartmentConfig& cfg,
                             bool frozen) {
    bank_.spiked.clear(c);
    std::int64_t aux;
    if (cfg.join != JoinOp::None) {
        aux = bank_.pending_aux[c];
        bank_.pending_aux[c] = 0;
        bank_.aux_current[c] = aux;
    } else {
        // Never written for unjoined compartments, but can_sleep reads it.
        aux = bank_.aux_current[c];
    }
    const std::int64_t bias = bank_.bias[c];

    if (frozen) {
        bank_.pending_soma[c] = 0;
        if (bias != 0 || bank_.u[c] != 0 || aux != 0 ||
            bank_.refractory_left[c] != 0)
            return false;
        const std::int64_t v = bank_.v[c];
        if (v != 0) {
            if (cfg.decay_v != 0) return false;
            if (cfg.floor_at_zero && v < 0) return false;
            if (v >= vth_eff_[c]) return false;
        }
        return true;
    }

    const std::int64_t u =
        common::decay12(bank_.u[c], cfg.decay_u) + bank_.pending_soma[c];
    bank_.u[c] = u;
    bank_.pending_soma[c] = 0;

    std::int64_t drive = u + bias;
    if ((cfg.join == JoinOp::GatedAdd && bank_.spikes_phase1[c] > 0) ||
        cfg.join == JoinOp::Add)
        drive += aux;
    std::int64_t v = common::decay12(bank_.v[c], cfg.decay_v) + drive;
    if (cfg.floor_at_zero && v < 0) v = 0;
    bank_.v[c] = v;

    std::int32_t refr = bank_.refractory_left[c];
    if (refr > 0) {
        bank_.refractory_left[c] = --refr;
    } else if (v >= vth_eff_[c]) {
        fire_compartment(c, cfg);
        return false;
    }
    if (bias != 0 || u != 0 || aux != 0 || refr != 0) return false;
    if (v != 0) {
        if (cfg.decay_v != 0) return false;
        if (cfg.floor_at_zero && v < 0) return false;
        if (v >= vth_eff_[c]) return false;
    }
    return true;
}

void Chip::step_sparse() {
    obs::Timer sweep_timer(phase_times_.sweep_ns);
    merge_wakes();

    // The dense sweep counts an update for every non-dead compartment that
    // is not phase-gated off, whether or not anything changed; account the
    // skipped ones in bulk so the energy model sees identical totals.
    activity_.compartment_updates +=
        phase_ == Phase::One ? eligible_phase1_ : eligible_phase2_;

    // The list is sorted ascending, so per-population flags are hoisted at
    // population boundaries instead of re-derived per compartment.
    // Populations whose visit needs no RNG, no sticky aux gate and no dead
    // handling take a fused visit + sleep-check fast path that keeps the
    // update's operands in registers (same arithmetic as step_compartment
    // followed by the same predicate as can_sleep).
    const bool phase1 = phase_ == Phase::One;
    std::size_t pop_end = 0;
    const CompartmentConfig* cfg = nullptr;
    bool fast = false;
    bool frozen = false;
    std::size_t keep = 0;
    for (std::size_t r = 0; r < active_list_.size(); ++r) {
        const std::uint32_t c = active_list_[r];
        if (c >= pop_end) {
            const PopulationId p = s_->pop_of[c];
            const Population& pop = s_->pops[p];
            pop_end = pop.first + pop.cfg.size;
            cfg = &pop.cfg.compartment;
            frozen = phase1 && !cfg->active_in_phase1;
            fast = vector_sweep_ && s_->pop_has_decay[p] == 0 &&
                   cfg->join != JoinOp::AndAuxActive && pop_dead_[p] == 0;
        }
        bool sleep;
        if (fast) {
            sleep = sparse_visit_fast(c, *cfg, frozen);
        } else {
            step_compartment(c, /*count_update=*/false);
            sleep = can_sleep(c);
        }
        if (sleep)
            bank_.awake.clear(c);
        else
            active_list_[keep++] = c;
    }
    active_list_.resize(keep);
    sweep_timer.stop();

    // Pass 2: deliver this step's spikes; deliver() re-wakes the targets
    // for the next step. Only surviving list members can have spiked.
    obs::Timer accum_timer(phase_times_.accum_ns);
    for (std::size_t r = 0; r < keep; ++r) {
        const std::uint32_t c = active_list_[r];
        if (bank_.spiked.get(c)) deliver(c);
    }
}

void Chip::wake(CompartmentId c) {
    if (!bank_.awake.get(c)) {
        bank_.awake.set(c);
        wake_buf_.push_back(static_cast<std::uint32_t>(c));
    }
}

void Chip::wake_all() {
    active_list_.resize(bank_.size());
    for (std::size_t c = 0; c < bank_.size(); ++c)
        active_list_[c] = static_cast<std::uint32_t>(c);
    bank_.awake.fill(true);
    wake_buf_.clear();
}

void Chip::merge_wakes() {
    if (wake_buf_.empty()) return;
    std::sort(wake_buf_.begin(), wake_buf_.end());
    // Allocation-free backward two-pointer merge of the sorted wake buffer
    // into the sorted active list (this runs every step; std::inplace_merge
    // would grab a temporary buffer each time).
    std::size_t i = active_list_.size();
    std::size_t j = wake_buf_.size();
    active_list_.resize(i + j);
    std::size_t k = active_list_.size();
    while (j > 0) {
        if (i > 0 && active_list_[i - 1] > wake_buf_[j - 1])
            active_list_[--k] = active_list_[--i];
        else
            active_list_[--k] = wake_buf_[--j];
    }
    wake_buf_.clear();
}

// True when the next visits to `c` are guaranteed no-ops, so the sweep may
// drop it until an external event (delivery, host write) wakes it again.
// Evaluated *after* step_compartment, and deliberately phase-independent:
// a compartment put to sleep stays correct across set_phase() flips.
bool Chip::can_sleep(CompartmentId c) const {
    // A dead unit only ever sinks pending input, which the visit above has
    // just cleared; it never ticks traces or consumes RNG.
    if (dead_[c] != 0) return true;
    // A decaying trace evolves — and draws from the shared rounding RNG —
    // every step, so these compartments must be visited in dense order.
    if (s_->pop_has_decay[s_->pop_of[c]] != 0) return false;
    if (bank_.spiked.get(c)) return false;  // must clear and deliver next step
    if (bank_.pending_soma[c] != 0) return false;
    if (bank_.bias[c] != 0) return false;
    if (bank_.u[c] != 0) return false;
    if (bank_.aux_current[c] != 0) return false;
    if (bank_.refractory_left[c] != 0) return false;
    const CompartmentConfig& cfg = s_->pops[s_->pop_of[c]].cfg.compartment;
    // Joined neurons consume pending_aux each visit; unjoined ones never
    // read it, so a residual value there cannot change anything.
    if (cfg.join != JoinOp::None && bank_.pending_aux[c] != 0) return false;
    const std::int64_t v = bank_.v[c];
    if (v != 0) {
        if (cfg.decay_v != 0) return false;               // v still decaying
        if (cfg.floor_at_zero && v < 0) return false;     // would clamp
        if (v >= vth_eff_[c]) return false;               // would keep spiking
    }
    return true;
}

void Chip::set_sparse_sweep(bool enabled) {
    if (enabled == sparse_) return;
    sparse_ = enabled;
    // Either direction re-arms the full list: the dense sweep relies on
    // every awake flag being 1 (so deliveries never queue wakes), and the
    // sparse sweep must start from a complete list.
    if (finalized_) wake_all();
}

void Chip::run(std::size_t steps) {
    for (std::size_t i = 0; i < steps; ++i) step();
}

void Chip::detach_weights() {
    if (img_.use_count() != 1) img_ = std::make_shared<Weights>(*img_);
}

void Chip::apply_learning() {
    check_finalized(true);
    if (s_->has_plastic) detach_weights();
    for (std::size_t pi = 0; pi < s_->projs.size(); ++pi) {
        const auto& proj = s_->projs[pi];
        if (!proj.cfg.plastic) continue;
        auto& w = img_->w[pi];
        const auto& stuck = stuck_[pi];
        const CompartmentId src_base = s_->pops[proj.cfg.src].first;
        const CompartmentId dst_base = s_->pops[proj.cfg.dst].first;
        for (std::size_t i = 0; i < proj.synapses.size(); ++i) {
            const Synapse& syn = proj.synapses[i];
            ++activity_.learning_synapse_visits;
            if (!stuck.empty() && stuck[i] != 0) continue;
            const CompartmentId pre = src_base + syn.src;
            const CompartmentId post = dst_base + syn.dst;
            LearnContext ctx;
            ctx.x0 = bank_.spiked.get(pre) ? 1 : 0;
            ctx.x1 = bank_.x1[pre];
            ctx.x2 = bank_.x2[pre];
            ctx.y0 = bank_.spiked.get(post) ? 1 : 0;
            ctx.y1 = bank_.y1[post];
            ctx.y2 = bank_.y2[post];
            ctx.tag = bank_.tag[post];
            ctx.weight = w[i];
            const std::int64_t dw = rules_[pi].dw.evaluate(
                ctx, proj.cfg.stochastic_rounding ? &learn_rng_ : nullptr);
            if (dw != 0) {
                w[i] = common::saturate_signed(
                    static_cast<std::int64_t>(w[i]) + dw, limits_.weight_bits);
                // Propagate into the delivery table (same synaptic memory on
                // silicon; two views of it in the simulator).
                img_->eff[proj.fanout_slot[i]] = static_cast<std::int32_t>(
                    static_cast<std::int64_t>(w[i]) << proj.cfg.weight_exp);
            }
        }
    }
}

void Chip::set_learning_rule(ProjectionId proj, LearningRule rule) {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("set_learning_rule: bad projection");
    if (!s_->projs[proj].cfg.plastic)
        throw std::logic_error("set_learning_rule: projection is not plastic");
    if (finalized_) {
        rules_[proj] = std::move(rule);
    } else {
        detach_structure();
        s_->projs[proj].cfg.rule = std::move(rule);
    }
}

void Chip::reset_dynamic_state() {
    bank_.reset_dynamic();
    for (auto& slot : wheel_) slot.clear();
}

void Chip::reset_membranes() {
    bank_.reset_membranes();
}

void Chip::set_threshold_offset(PopulationId pop, std::size_t idx,
                                std::int32_t offset) {
    const CompartmentId c = global_id(pop, idx);
    vth_offset_[c] = offset;
    if (finalized_) {
        vth_eff_[c] = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(
                   s_->pops[pop].cfg.compartment.vth) + offset);
        // A lowered threshold can make a dormant sub-threshold membrane fire.
        if (sparse_) wake(c);
    }
}

std::int32_t Chip::threshold_offset(PopulationId pop, std::size_t idx) const {
    return vth_offset_[global_id(pop, idx)];
}

void Chip::set_compartment_dead(PopulationId pop, std::size_t idx, bool dead) {
    const CompartmentId c = global_id(pop, idx);
    const bool was = dead_[c] != 0;
    dead_[c] = dead ? 1 : 0;
    if (!finalized_ || was == dead) return;  // finalize (re)derives the counts
    if (dead)
        ++pop_dead_[pop];
    else
        --pop_dead_[pop];
    const bool p1 = s_->pops[pop].cfg.compartment.active_in_phase1;
    if (dead) {
        --eligible_phase2_;
        if (p1) --eligible_phase1_;
    } else {
        ++eligible_phase2_;
        if (p1) ++eligible_phase1_;
    }
    if (sparse_) wake(c);
}

bool Chip::compartment_dead(PopulationId pop, std::size_t idx) const {
    return dead_[global_id(pop, idx)] != 0;
}

void Chip::set_synapse_stuck(ProjectionId proj, std::size_t syn,
                             std::int32_t value) {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("set_synapse_stuck: bad projection");
    if (!finalized_) detach_structure();  // the builder weight is written below
    auto& p = s_->projs[proj];
    if (syn >= p.synapses.size())
        throw std::invalid_argument("set_synapse_stuck: bad synapse index");
    if (stuck_[proj].empty()) stuck_[proj].assign(p.synapses.size(), 0);
    stuck_[proj][syn] = 1;
    const std::int32_t w = common::saturate_signed(value, limits_.weight_bits);
    if (finalized_) {
        detach_weights();
        img_->w[proj][syn] = w;
        img_->eff[p.fanout_slot[syn]] = static_cast<std::int32_t>(
            static_cast<std::int64_t>(w) << p.cfg.weight_exp);
    } else {
        p.synapses[syn].weight = w;
    }
}

bool Chip::synapse_stuck(ProjectionId proj, std::size_t syn) const {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("synapse_stuck: bad projection");
    if (syn >= s_->projs[proj].synapses.size())
        throw std::invalid_argument("synapse_stuck: bad synapse index");
    return !stuck_[proj].empty() && stuck_[proj][syn] != 0;
}

std::size_t Chip::stuck_synapse_count(ProjectionId proj) const {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("stuck_synapse_count: bad projection");
    std::size_t n = 0;
    for (const auto f : stuck_[proj]) n += f;
    return n;
}

void Chip::deliver_external(PopulationId pop, std::size_t idx,
                            std::int32_t eff_weight, Port port) {
    check_finalized(true);
    const CompartmentId c = global_id(pop, idx);
    if (port == Port::Soma)
        bank_.pending_soma[c] += eff_weight;
    else
        bank_.pending_aux[c] += eff_weight;
    if (sparse_ && !bank_.awake.get(c)) {
        bank_.awake.set(c);
        wake_buf_.push_back(static_cast<std::uint32_t>(c));
    }
}

void Chip::collect_spiked(PopulationId pop,
                          std::vector<std::uint32_t>& out) const {
    const auto n = population_size(pop);
    const CompartmentId base = s_->pops[pop].first;
    for (std::size_t i = 0; i < n; ++i)
        if (bank_.spiked.get(base + i)) out.push_back(static_cast<std::uint32_t>(i));
}

const PopulationConfig& Chip::population_config(PopulationId pop) const {
    if (pop >= s_->pops.size())
        throw std::invalid_argument("population_config: bad population");
    return s_->pops[pop].cfg;
}

const ProjectionConfig& Chip::projection_config(ProjectionId proj) const {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("projection_config: bad projection");
    return s_->projs[proj].cfg;
}

const std::vector<Synapse>& Chip::projection_synapses(ProjectionId proj) const {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("projection_synapses: bad projection");
    return s_->projs[proj].synapses;
}

const LearningRule& Chip::learning_rule(ProjectionId proj) const {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("learning_rule: bad projection");
    return finalized_ ? rules_[proj] : s_->projs[proj].cfg.rule;
}

std::vector<std::int32_t> Chip::biases(PopulationId pop) const {
    const auto n = population_size(pop);
    std::vector<std::int32_t> out(n);
    const CompartmentId base = s_->pops[pop].first;
    for (std::size_t i = 0; i < n; ++i) out[i] = bank_.bias[base + i];
    return out;
}

std::size_t Chip::population_size(PopulationId pop) const {
    if (pop >= s_->pops.size())
        throw std::invalid_argument("population_size: bad population");
    return s_->pops[pop].cfg.size;
}

std::int32_t Chip::nominal_threshold(PopulationId pop) const {
    if (pop >= s_->pops.size())
        throw std::invalid_argument("nominal_threshold: bad population");
    return s_->pops[pop].cfg.compartment.vth;
}

std::vector<std::int32_t> Chip::spike_counts(PopulationId pop, Phase phase) const {
    const auto n = population_size(pop);
    std::vector<std::int32_t> out(n);
    const CompartmentId base = s_->pops[pop].first;
    for (std::size_t i = 0; i < n; ++i)
        out[i] = phase == Phase::One ? bank_.spikes_phase1[base + i]
                                     : bank_.spikes_phase2[base + i];
    return out;
}

std::vector<std::int32_t> Chip::spike_counts_total(PopulationId pop) const {
    const auto n = population_size(pop);
    std::vector<std::int32_t> out(n);
    const CompartmentId base = s_->pops[pop].first;
    for (std::size_t i = 0; i < n; ++i) out[i] = bank_.spike_count(base + i);
    return out;
}

std::int64_t Chip::membrane(PopulationId pop, std::size_t idx) const {
    return bank_.v[global_id(pop, idx)];
}

std::int64_t Chip::current(PopulationId pop, std::size_t idx) const {
    return bank_.u[global_id(pop, idx)];
}

bool Chip::spiked(PopulationId pop, std::size_t idx) const {
    return bank_.spiked.get(global_id(pop, idx));
}

std::int32_t Chip::trace_x2(PopulationId pop, std::size_t idx) const {
    return bank_.x2[global_id(pop, idx)];
}

std::int32_t Chip::trace_y2(PopulationId pop, std::size_t idx) const {
    return bank_.y2[global_id(pop, idx)];
}

std::int32_t Chip::trace_x1(PopulationId pop, std::size_t idx) const {
    return bank_.x1[global_id(pop, idx)];
}

std::int32_t Chip::trace_y1(PopulationId pop, std::size_t idx) const {
    return bank_.y1[global_id(pop, idx)];
}

std::int32_t Chip::trace_tag(PopulationId pop, std::size_t idx) const {
    return bank_.tag[global_id(pop, idx)];
}

std::vector<std::int32_t> Chip::weights(ProjectionId proj) const {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("weights: bad projection");
    if (finalized_) return img_->w[proj];
    std::vector<std::int32_t> out;
    out.reserve(s_->projs[proj].synapses.size());
    for (const auto& s : s_->projs[proj].synapses) out.push_back(s.weight);
    return out;
}

void Chip::set_weights(ProjectionId proj, const std::vector<std::int32_t>& w) {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("set_weights: bad projection");
    if (finalized_)
        throw std::logic_error("set_weights: weights are fixed after finalize; "
                               "use a plastic projection to adapt them");
    detach_structure();
    auto& syns = s_->projs[proj].synapses;
    if (w.size() != syns.size())
        throw std::invalid_argument("set_weights: size mismatch");
    for (std::size_t i = 0; i < w.size(); ++i)
        syns[i].weight = common::saturate_signed(w[i], limits_.weight_bits);
}

void Chip::write_weight(std::size_t proj, std::size_t i, std::int32_t w) {
    // A stuck memory cell ignores reprogramming.
    if (!stuck_[proj].empty() && stuck_[proj][i] != 0) return;
    const auto& p = s_->projs[proj];
    if (finalized_) {
        img_->w[proj][i] = w;
        img_->eff[p.fanout_slot[i]] = static_cast<std::int32_t>(
            static_cast<std::int64_t>(w) << p.cfg.weight_exp);
    } else {
        s_->projs[proj].synapses[i].weight = w;
    }
}

void Chip::program_weights(ProjectionId proj, const std::vector<std::int32_t>& w) {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("program_weights: bad projection");
    if (finalized_)
        detach_weights();
    else
        detach_structure();  // pre-finalize, write_weight hits the builder
    const auto& p = s_->projs[proj];
    if (w.size() != p.synapses.size())
        throw std::invalid_argument("program_weights: size mismatch for " +
                                    p.cfg.name);
    for (std::size_t i = 0; i < w.size(); ++i) {
        if (w[i] != common::saturate_signed(w[i], limits_.weight_bits))
            throw std::invalid_argument("program_weights(" + p.cfg.name +
                                        "): weight exceeds " +
                                        std::to_string(limits_.weight_bits) +
                                        " bits");
        write_weight(proj, i, w[i]);
    }
}

std::size_t Chip::synapse_count(ProjectionId proj) const {
    if (proj >= s_->projs.size())
        throw std::invalid_argument("synapse_count: bad projection");
    return s_->projs[proj].synapses.size();
}

std::size_t Chip::total_synapses() const {
    std::size_t n = 0;
    for (const auto& p : s_->projs) n += p.synapses.size();
    return n;
}

std::size_t Chip::total_compartments() const {
    std::size_t n = 0;
    for (const auto& p : s_->pops) {
        const std::size_t per =
            p.cfg.compartment.join == JoinOp::None ? 1 : 2;
        n += p.cfg.size * per;
    }
    return n;
}

namespace {
constexpr std::uint32_t kCheckpointMagic = 0x4C4F4948;  // "LOIH"
constexpr std::uint32_t kCheckpointVersion = 1;
}  // namespace

void Chip::save_weights(std::ostream& out) const {
    auto put32 = [&](std::uint32_t v) {
        out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    put32(kCheckpointMagic);
    put32(kCheckpointVersion);
    put32(static_cast<std::uint32_t>(s_->projs.size()));
    for (std::size_t pi = 0; pi < s_->projs.size(); ++pi) {
        const auto w = weights(pi);
        put32(static_cast<std::uint32_t>(w.size()));
        for (const auto v : w) put32(static_cast<std::uint32_t>(v));
    }
}

void Chip::load_weights(std::istream& in) {
    auto get32 = [&]() {
        std::uint32_t v = 0;
        in.read(reinterpret_cast<char*>(&v), sizeof(v));
        if (!in) throw std::runtime_error("load_weights: truncated checkpoint");
        return v;
    };
    if (get32() != kCheckpointMagic)
        throw std::runtime_error("load_weights: bad magic");
    if (get32() != kCheckpointVersion)
        throw std::runtime_error("load_weights: unsupported version");
    if (get32() != s_->projs.size())
        throw std::runtime_error("load_weights: projection count mismatch");
    if (finalized_)
        detach_weights();
    else
        detach_structure();  // pre-finalize, write_weight hits the builder
    for (std::size_t pi = 0; pi < s_->projs.size(); ++pi) {
        const auto& proj = s_->projs[pi];
        if (get32() != proj.synapses.size())
            throw std::runtime_error("load_weights: synapse count mismatch in " +
                                     proj.cfg.name);
        for (std::size_t i = 0; i < proj.synapses.size(); ++i) {
            const auto w = static_cast<std::int32_t>(get32());
            if (w != common::saturate_signed(w, limits_.weight_bits))
                throw std::runtime_error("load_weights: weight out of range in " +
                                         proj.cfg.name);
            // Stream values for stuck cells are consumed but not applied.
            write_weight(pi, i, w);
        }
    }
}

const MappingResult& Chip::mapping() const {
    if (!finalized_) throw std::logic_error("mapping: chip not finalized");
    return s_->mapping;
}

void Chip::enable_raster(PopulationId pop) {
    if (pop >= s_->pops.size()) throw std::invalid_argument("enable_raster: bad pop");
    raster_pop_ = pop;
}

CompartmentId Chip::global_id(PopulationId pop, std::size_t idx) const {
    if (pop >= s_->pops.size() || idx >= s_->pops[pop].cfg.size)
        throw std::invalid_argument("bad (population, index)");
    return s_->pops[pop].first + idx;
}

void Chip::check_finalized(bool expected) const {
    if (finalized_ != expected)
        throw std::logic_error(expected ? "chip must be finalized first"
                                        : "chip is already finalized");
}

EncodedWeight encode_weight(std::int64_t desired, int weight_bits) {
    EncodedWeight e;
    const std::int64_t mag = desired < 0 ? -desired : desired;
    const std::int64_t wmax = (std::int64_t{1} << (weight_bits - 1)) - 1;
    std::int64_t m = mag;
    while (m > wmax) {
        m = (m + 1) >> 1;
        ++e.exponent;
    }
    e.weight = static_cast<std::int32_t>(desired < 0 ? -m : m);
    return e;
}

}  // namespace neuro::loihi
