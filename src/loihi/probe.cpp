#include "loihi/probe.hpp"

#include <stdexcept>

#include "common/csv.hpp"

namespace neuro::loihi {

SpikeProbe::SpikeProbe(const Chip& chip, PopulationId pop) : chip_(chip), pop_(pop) {
    // Validate eagerly so a typo fails at construction, not mid-run.
    (void)chip_.population_size(pop_);
}

void SpikeProbe::sample() {
    const std::size_t n = chip_.population_size(pop_);
    for (std::size_t i = 0; i < n; ++i) {
        if (chip_.spiked(pop_, i))
            events_.emplace_back(chip_.now(), static_cast<std::uint32_t>(i));
    }
}

std::vector<std::uint32_t> SpikeProbe::totals() const {
    std::vector<std::uint32_t> t(chip_.population_size(pop_), 0);
    for (const auto& [step, idx] : events_) ++t[idx];
    return t;
}

std::string SpikeProbe::write_csv(const std::string& dir,
                                  const std::string& name) const {
    common::CsvWriter csv(dir, name, {"step", "neuron"});
    for (const auto& [step, idx] : events_)
        csv.add_row({std::to_string(step), std::to_string(idx)});
    return csv.write();
}

StateProbe::StateProbe(const Chip& chip, PopulationId pop,
                       std::vector<std::size_t> neurons, StateField field)
    : chip_(chip), pop_(pop), neurons_(std::move(neurons)), field_(field) {
    const std::size_t n = chip_.population_size(pop_);
    for (std::size_t idx : neurons_)
        if (idx >= n) throw std::invalid_argument("StateProbe: neuron out of range");
    series_.resize(neurons_.size());
}

void StateProbe::sample() {
    steps_.push_back(chip_.now());
    for (std::size_t k = 0; k < neurons_.size(); ++k) {
        const std::size_t i = neurons_[k];
        std::int64_t v = 0;
        switch (field_) {
            case StateField::Membrane: v = chip_.membrane(pop_, i); break;
            case StateField::Current: v = chip_.current(pop_, i); break;
            case StateField::TraceX1: v = chip_.trace_x1(pop_, i); break;
            case StateField::TraceY1: v = chip_.trace_y1(pop_, i); break;
            case StateField::TraceTag: v = chip_.trace_tag(pop_, i); break;
        }
        series_[k].push_back(v);
    }
}

void StateProbe::clear() {
    steps_.clear();
    for (auto& s : series_) s.clear();
}

std::string StateProbe::write_csv(const std::string& dir,
                                  const std::string& name) const {
    std::vector<std::string> header{"step"};
    for (std::size_t idx : neurons_) {
        // Two-step append instead of "n" + std::to_string(idx): the rvalue
        // operator+ trips GCC 12's -Wrestrict false positive under -O3.
        std::string col = "n";
        col += std::to_string(idx);
        header.push_back(std::move(col));
    }
    common::CsvWriter csv(dir, name, header);
    for (std::size_t row = 0; row < steps_.size(); ++row) {
        std::vector<std::string> cells{std::to_string(steps_[row])};
        for (const auto& s : series_) cells.push_back(std::to_string(s[row]));
        csv.add_row(std::move(cells));
    }
    return csv.write();
}

}  // namespace neuro::loihi
