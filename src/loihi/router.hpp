#pragma once
// Multi-chip sharded execution: N Chip instances stepping in lockstep with
// an inter-chip spike router carrying the boundary traffic.
//
// Splitting: ShardedChip is built from a *finalized* prototype chip and a
// ShardPlan. Every population is rebuilt (same config, same build order) on
// its assigned shard; projections with both endpoints on one shard become
// ordinary on-chip projections there; projections that cross the cut are
// owned by the router, which holds their synapses, live weights and
// learning rules.
//
// Timing: one ShardedChip::step() is one barrier-synchronised system step.
// Each shard first drains its inbound mailbox (boundary events generated
// last step) into compartment pending accumulators — exactly what the local
// pass-2 delivery would have done — then steps its chip; after all shards
// reach the barrier, the router collects this step's boundary spikes,
// expands them through the cross-shard fan-out and exchanges them into the
// destination mailboxes for the next step. A spike at step t is therefore
// visible to its cross-chip targets at t+1, identical to the on-chip
// one-step synaptic latency, so forward dynamics are bit-identical to the
// unsharded chip for any shard count (spiking is RNG-free unless decaying
// traces are configured).
//
// Threading: shards step concurrently on a lazily-created ThreadPool.
// Worker w touches only shard w's chip and outbox row (double-buffered
// mailboxes: workers fill outboxes while inboxes drain); the exchange runs
// single-threaded between barriers, in shard order, so delivery order —
// and every result — is independent of the thread count. Cross-shard
// learning uses one derived RNG stream per (seed, epoch, projection),
// never per worker, preserving determinism.

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "loihi/chip.hpp"
#include "loihi/shard.hpp"

namespace neuro::loihi {

class ShardedChip {
public:
    /// Splits `proto` (finalized; its *current* weights and biases are
    /// captured) according to `plan`. `step_threads` bounds the worker pool
    /// for concurrent shard stepping: 0 = one thread per shard, 1 = step
    /// shards sequentially on the caller thread (identical results — the
    /// thread count is never observable in the simulation).
    ShardedChip(const Chip& proto, ShardPlan plan, std::size_t step_threads = 0);

    /// Copies share each shard chip's structure and copy-on-write weight
    /// image (see loihi::Chip); router tables and dynamic state are deep.
    /// The worker pool is per-instance and re-created lazily (LazyPool
    /// resets on copy, which is what lets this stay defaulted).
    ShardedChip(const ShardedChip& other) = default;
    ShardedChip& operator=(const ShardedChip&) = delete;
    ShardedChip(ShardedChip&&) = default;

    std::size_t num_shards() const { return chips_.size(); }
    const ShardPlan& plan() const { return plan_; }
    /// Direct access to one shard's chip (tests / probing).
    Chip& shard(std::size_t s) { return chips_[s]; }
    const Chip& shard(std::size_t s) const { return chips_[s]; }
    const ChipLimits& limits() const { return limits_; }

    // ---- Chip-shaped facade (logical ids = prototype ids) ------------------
    void set_phase(Phase phase);
    Phase phase() const { return phase_; }
    void step();
    void run(std::size_t steps);
    void set_sparse_sweep(bool enabled);

    void set_bias(PopulationId pop, const std::vector<std::int32_t>& bias);
    void clear_bias(PopulationId pop);

    void apply_learning();
    void set_learning_rule(ProjectionId proj, LearningRule rule);
    void seed_learning_noise(std::uint64_t seed);

    void reset_dynamic_state();
    void reset_membranes();

    std::size_t population_size(PopulationId pop) const;
    std::vector<std::int32_t> spike_counts(PopulationId pop, Phase phase) const;
    std::vector<std::int32_t> spike_counts_total(PopulationId pop) const;
    std::int64_t membrane(PopulationId pop, std::size_t idx) const;

    std::vector<std::int32_t> weights(ProjectionId proj) const;
    void program_weights(ProjectionId proj, const std::vector<std::int32_t>& w);
    std::size_t synapse_count(ProjectionId proj) const;

    /// True when the projection's endpoints live on different shards (its
    /// synapses are carried by the router).
    bool projection_is_cut(ProjectionId proj) const;
    /// Boundary events the router has carried since construction/reset.
    std::uint64_t routed_spikes() const;

    /// One shard's activity including its share of the router's work
    /// (inbound cross-chip deliveries as synaptic ops, cut-projection
    /// learning visits attributed to the destination shard) — the totals
    /// the per-chip energy model should see.
    ActivityTotals shard_activity(std::size_t s) const;
    /// System-wide activity: shard_activity summed across shards; `steps`
    /// counts system barriers, not per-shard work. For a 1-shard split this
    /// equals the prototype's totals exactly.
    ActivityTotals activity() const;
    void reset_activity();

private:
    /// A projection whose endpoints live on different shards. The router
    /// owns its synapses, weights and (when plastic) its learning state.
    struct CrossProjection {
        ProjectionConfig cfg;             // src/dst are *logical* pop ids
        std::vector<Synapse> synapses;    // population-local endpoints
        std::vector<std::int32_t> w;      // live weights
        std::vector<std::int32_t> eff;    // w << weight_exp, delivery values
        LearningRule rule;
        std::size_t src_shard = 0, dst_shard = 0;
        PopulationId src_local = 0, dst_local = 0;
        // CSR over source-neuron index: fan[fan_begin[i]..fan_begin[i+1])
        // are synapse indices originating at local neuron i.
        std::vector<std::size_t> fan_begin;
        std::vector<std::uint32_t> fan;
    };

    /// One boundary event en route to a destination shard. `delay` is the
    /// synapse's extra delay: it selects the mailbox slot at exchange time
    /// and afterwards distinguishes delayed events (which survive a
    /// membrane reset, like entries parked on a chip's delay wheel) from
    /// ordinary next-step deliveries (which do not, like pending input).
    struct RouteDelivery {
        std::uint32_t dst_idx;
        std::int32_t weight;
        std::uint16_t dst_pop;
        std::uint8_t port;
        std::uint8_t delay;
    };

    void ensure_pool();
    /// Drains the mailbox slot due this step into shard `s`'s chip.
    void drain_inbox(std::size_t s);
    /// Scans shard `s`'s boundary populations for this step's spikes and
    /// expands them into outbox_[s] (worker-private).
    void collect_outbox(std::size_t s);
    /// Moves every outbox into the due mailbox slots (single-threaded,
    /// shard order — this fixes the delivery order deterministically).
    void exchange();
    void clear_in_flight();
    void apply_cross_learning(CrossProjection& cp, common::Rng* rng,
                              std::uint64_t& visits);

    ShardPlan plan_;
    ChipLimits limits_;
    std::vector<Chip> chips_;
    Phase phase_ = Phase::One;
    std::uint64_t now_ = 0;

    // Logical-id maps (prototype numbering).
    std::vector<std::size_t> pop_shard_;        // owning shard per population
    std::vector<PopulationId> pop_local_;       // id within the owning chip
    static constexpr std::size_t kCross = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> proj_shard_;       // owning shard or kCross
    std::vector<std::size_t> proj_local_;       // local proj id / cross index
    std::vector<CrossProjection> cross_;

    /// Boundary sources per shard: (local pop, cross index), sorted by pop
    /// so the spike scan runs once per population.
    std::vector<std::vector<std::pair<PopulationId, std::size_t>>> watch_;

    /// Double-buffered mailboxes as a delay ring: slot (t % kWheel) holds
    /// the deliveries that must be pending before the system steps to t,
    /// per destination shard. Slot indices follow Chip's wheel convention
    /// (delay d -> slot now + 1 + d), so cross-shard synapse delays match
    /// on-chip delays step for step.
    static constexpr std::size_t kWheel = 64;
    std::array<std::vector<std::vector<RouteDelivery>>, kWheel> mailbox_;
    /// outbox_[src][dst]: filled by worker `src` during a step, swapped into
    /// the mailbox by exchange(). Kept allocated across steps.
    std::vector<std::vector<std::vector<RouteDelivery>>> outbox_;

    std::uint64_t learn_seed_;
    std::uint64_t learn_epoch_ = 0;
    /// Router work attributed per *destination* shard (activity parity with
    /// the unsharded chip and per-chip energy accounting).
    std::vector<std::uint64_t> routed_to_;
    std::vector<std::uint64_t> learn_visits_to_;

    std::size_t step_threads_;
    /// Lazily-created worker pool. ThreadPool is not copyable and every
    /// instance needs its own, so copies reset to empty — keeping the
    /// ShardedChip copy constructor defaultable (no member list to forget).
    struct LazyPool {
        std::unique_ptr<common::ThreadPool> pool;
        LazyPool() = default;
        LazyPool(const LazyPool&) noexcept {}
        LazyPool(LazyPool&&) = default;
        LazyPool& operator=(const LazyPool&) = delete;
        LazyPool& operator=(LazyPool&&) = default;
    };
    LazyPool pool_;

    /// Scratch for collect_outbox: per-shard spiked-index buffer.
    std::vector<std::vector<std::uint32_t>> spiked_scratch_;
};

}  // namespace neuro::loihi
