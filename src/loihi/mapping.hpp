#pragma once
// Layer-at-a-time core mapping (paper Sec. III-C, Operation Flow 1).
//
// "the neurons are mapped incrementally onto the cores satisfying the
//  constraints a layer at a time ... we first generate the adjacency
//  matrices for the connectivity between adjacent layers ... This provides
//  the number of fan-ins and fan-outs for each neuron which is used to
//  assign the number of neurons per core."
//
// The mapper takes one spec per layer (population) with its fan-in/fan-out
// demand, honours an explicit neurons-per-core override when given (this is
// the Fig. 3 sweep variable), and otherwise packs to the capacity bound.

#include <cstddef>
#include <string>
#include <vector>

#include "loihi/types.hpp"

namespace neuro::loihi {

/// Per-layer mapping demand.
struct LayerMapSpec {
    std::string name;
    std::size_t logical_neurons = 0;
    std::size_t compartments_per_neuron = 1;  ///< 2 for soma+aux neurons
    std::size_t fan_in_per_neuron = 0;        ///< synapses terminating per neuron
    std::size_t fan_out_per_neuron = 0;       ///< synapses originating per neuron
    /// Subset of fan-in that belongs to learning-enabled projections. The
    /// learning engine scans these entries every epoch; the per-core count
    /// is the dominant term of the barrier-synchronised step time.
    std::size_t plastic_fan_in_per_neuron = 0;
    /// Total presynaptic neurons across incoming projections. Input-axon
    /// table entries are per *source neuron*, not per synapse, so the
    /// per-core demand is min(distinct_sources, npc * fan_in).
    std::size_t distinct_sources = 0;
    std::size_t neurons_per_core = 0;         ///< 0 = capacity-packed
};

/// Where one layer landed.
struct LayerAssignment {
    std::size_t first_core = 0;
    std::size_t num_cores = 0;
    std::size_t neurons_per_core = 0;  ///< the value actually used
    std::size_t compartments_per_core = 0;
    std::size_t synapses_per_core = 0;
    std::size_t plastic_synapses_per_core = 0;
    std::size_t memory_bytes_per_core = 0;  ///< synaptic memory footprint
};

struct MappingResult {
    std::vector<LayerAssignment> layers;
    std::size_t total_cores = 0;
    std::size_t max_compartments_per_core = 0;
    std::size_t max_synapses_per_core = 0;
    std::size_t max_plastic_synapses_per_core = 0;
    std::size_t max_memory_bytes_per_core = 0;
    /// Synaptic memory occupied across all cores (paper Sec. III-A: DFA
    /// "reduces the amount of memory utilized by the synapses in the cores").
    std::size_t total_memory_bytes = 0;
    bool feasible = true;                  ///< fits one chip
    std::vector<std::string> violations;   ///< human-readable constraint misses
};

/// Size of one synaptic memory entry in bits: the weight field plus the
/// fixed addressing / delay / tag overhead of the synaptic memory word
/// (Loihi packs variable-width entries; 12 overhead bits is the ballpark of
/// its dense encoding).
std::size_t synapse_entry_bits(const ChipLimits& limits);

/// Largest neurons-per-core for the layer that satisfies every per-core
/// limit (compartments, synapse memory, fan-in/fan-out axons). At least 1.
std::size_t capacity_neurons_per_core(const LayerMapSpec& spec, const ChipLimits& limits);

/// Maps all layers, a layer at a time, cores never shared across layers
/// (Loihi assigns learning/compartment configuration per core, so the paper
/// maps homogeneous layers to dedicated cores).
MappingResult map_layers(const std::vector<LayerMapSpec>& layers,
                         const ChipLimits& limits);

}  // namespace neuro::loihi
