#pragma once
// CUBA leaky-integrate-and-fire compartment model (paper Sec. II-B, eq. 8).
//
// Two internal state variables per compartment: synaptic response current u
// (decaying weighted incoming spikes) and membrane potential v. Both decays
// are 12-bit fixed point exactly as on chip:
//     u[t] = u[t-1] * (4096 - du) / 4096 + sum(w * s)
//     v[t] = v[t-1] * (4096 - dv) / 4096 + u[t] + bias
// Spike when v >= vth.
//
// The paper's IF configuration (Sec. III-A): "we utilize the maximum time
// constant tau_v such that the membrane potential doesn't leak over time
// whereas the current decays immediately" — i.e. dv = 0 and du = 4096.

#include <cstdint>

#include "common/fixed.hpp"
#include "loihi/trace.hpp"
#include "loihi/types.hpp"

namespace neuro::loihi {

/// Static per-population compartment configuration.
struct CompartmentConfig {
    std::int32_t decay_u = 4096;  ///< current decay; 4096 = clears every step
    std::int32_t decay_v = 0;     ///< voltage decay; 0 = perfect integrator
    std::int32_t vth = 64;        ///< firing threshold
    /// Reset behaviour. Soft reset (v -= vth) preserves the sub-threshold
    /// residue, making the spike count exactly floor(u_acc / vth) — this is
    /// the activation approximation of paper eq. 2. Hard reset clears v to 0.
    bool soft_reset = true;
    /// Refractory period in steps after a spike (0 = none).
    std::int32_t refractory = 0;
    /// Clamp the membrane at zero from below. Forward-path neurons use this
    /// so inhibition cannot accumulate an unbounded negative reserve that
    /// would swallow phase-2 corrections (the *shifted* ReLU of paper
    /// eq. 2). Error-path neurons keep signed membranes — the two-channel
    /// (+/-) representation depends on them.
    bool floor_at_zero = false;

    JoinOp join = JoinOp::None;

    /// Pre-synaptic trace (x1), read when this compartment is the source of
    /// a learning-enabled projection.
    TraceConfig pre_trace{};
    /// Post-synaptic trace (y1), read when it is the destination.
    TraceConfig post_trace{1, 0, TraceWindow::Phase2Only, 7};
    /// Optional second trace pair (x2 / y2) with independent time constants
    /// — Loihi exposes several traces per synapse/compartment precisely so
    /// rules like triplet STDP can combine a fast and a slow view of the
    /// same spike train. Impulse 0 (the default) keeps them inert.
    TraceConfig pre_trace2{0, 0, TraceWindow::Both, 7};
    TraceConfig post_trace2{0, 0, TraceWindow::Both, 7};
    /// Tag counter (Z in paper eq. 12): accumulated via the microcode rule
    /// dt = y0 applied every step; counts spikes across both phases.
    TraceConfig tag_trace{1, 0, TraceWindow::Both, 8};

    /// When false the compartment is frozen outside phase 2 — neither
    /// integrating nor spiking. Used for error-path and label populations
    /// (phase gating, see DESIGN.md Sec. 5).
    bool active_in_phase1 = true;
};

/// Dynamic per-compartment state.
struct CompartmentState {
    std::int64_t u = 0;
    std::int64_t v = 0;
    std::int32_t bias = 0;
    std::int32_t refractory_left = 0;

    /// Accumulators for spikes that arrived this step (applied next step,
    /// matching the chip's one-step synaptic delay).
    std::int64_t pending_soma = 0;
    std::int64_t pending_aux = 0;

    /// Aux-compartment activity flag used by JoinOp::AndAuxActive — true if
    /// the aux compartment received any input in the current sample window.
    bool aux_active = false;
    /// Aux input accumulated for JoinOp::GatedAdd.
    std::int64_t aux_current = 0;

    // Spike bookkeeping for the current sample window.
    std::int32_t spikes_phase1 = 0;
    std::int32_t spikes_phase2 = 0;

    TraceState x1{};   // pre trace
    TraceState y1{};   // post trace
    TraceState x2{};   // second pre trace
    TraceState y2{};   // second post trace
    TraceState tag{};  // tag counter

    bool spiked = false;  ///< did this compartment fire in the current step

    /// Membership flag of the chip's sparse active list (kept here rather
    /// than in a side array so the delivery hot path finds it on the same
    /// cache line as pending_soma). Owned by Chip; not dynamic state.
    std::uint8_t awake = 1;

    std::int32_t spike_count() const { return spikes_phase1 + spikes_phase2; }

    void reset_dynamic() {
        u = 0;
        v = 0;
        refractory_left = 0;
        pending_soma = 0;
        pending_aux = 0;
        aux_active = false;
        aux_current = 0;
        spikes_phase1 = 0;
        spikes_phase2 = 0;
        x1.reset();
        y1.reset();
        x2.reset();
        y2.reset();
        tag.reset();
        spiked = false;
    }
};

}  // namespace neuro::loihi
