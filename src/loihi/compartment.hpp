#pragma once
// CUBA leaky-integrate-and-fire compartment model (paper Sec. II-B, eq. 8).
//
// Two internal state variables per compartment: synaptic response current u
// (decaying weighted incoming spikes) and membrane potential v. Both decays
// are 12-bit fixed point exactly as on chip:
//     u[t] = u[t-1] * (4096 - du) / 4096 + sum(w * s)
//     v[t] = v[t-1] * (4096 - dv) / 4096 + u[t] + bias
// Spike when v >= vth.
//
// The paper's IF configuration (Sec. III-A): "we utilize the maximum time
// constant tau_v such that the membrane potential doesn't leak over time
// whereas the current decays immediately" — i.e. dv = 0 and du = 4096.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/aligned.hpp"
#include "common/fixed.hpp"
#include "loihi/trace.hpp"
#include "loihi/types.hpp"

namespace neuro::loihi {

/// Static per-population compartment configuration.
struct CompartmentConfig {
    std::int32_t decay_u = 4096;  ///< current decay; 4096 = clears every step
    std::int32_t decay_v = 0;     ///< voltage decay; 0 = perfect integrator
    std::int32_t vth = 64;        ///< firing threshold
    /// Reset behaviour. Soft reset (v -= vth) preserves the sub-threshold
    /// residue, making the spike count exactly floor(u_acc / vth) — this is
    /// the activation approximation of paper eq. 2. Hard reset clears v to 0.
    bool soft_reset = true;
    /// Refractory period in steps after a spike (0 = none).
    std::int32_t refractory = 0;
    /// Clamp the membrane at zero from below. Forward-path neurons use this
    /// so inhibition cannot accumulate an unbounded negative reserve that
    /// would swallow phase-2 corrections (the *shifted* ReLU of paper
    /// eq. 2). Error-path neurons keep signed membranes — the two-channel
    /// (+/-) representation depends on them.
    bool floor_at_zero = false;

    JoinOp join = JoinOp::None;

    /// Pre-synaptic trace (x1), read when this compartment is the source of
    /// a learning-enabled projection.
    TraceConfig pre_trace{};
    /// Post-synaptic trace (y1), read when it is the destination.
    TraceConfig post_trace{1, 0, TraceWindow::Phase2Only, 7};
    /// Optional second trace pair (x2 / y2) with independent time constants
    /// — Loihi exposes several traces per synapse/compartment precisely so
    /// rules like triplet STDP can combine a fast and a slow view of the
    /// same spike train. Impulse 0 (the default) keeps them inert.
    TraceConfig pre_trace2{0, 0, TraceWindow::Both, 7};
    TraceConfig post_trace2{0, 0, TraceWindow::Both, 7};
    /// Tag counter (Z in paper eq. 12): accumulated via the microcode rule
    /// dt = y0 applied every step; counts spikes across both phases.
    TraceConfig tag_trace{1, 0, TraceWindow::Both, 8};

    /// When false the compartment is frozen outside phase 2 — neither
    /// integrating nor spiking. Used for error-path and label populations
    /// (phase gating, see DESIGN.md Sec. 5).
    bool active_in_phase1 = true;
};

/// Packed bitset lane for per-compartment boolean flags (spiked, aux gate,
/// sparse-sweep membership). One cache line covers 512 compartments, so the
/// dense pass-2 spike scan and the delivery wake check touch 64x less memory
/// than the old one-byte-per-flag layout, and whole sleeping words are
/// skipped with a single load. Bits past size() are kept zero so word scans
/// need no tail masking.
class BitLane {
public:
    std::size_t size() const { return size_; }
    std::size_t word_count() const { return words_.size(); }
    const std::uint64_t* words() const { return words_.data(); }
    std::uint64_t* words() { return words_.data(); }

    /// Grows to n bits; new bits are zero, existing bits are preserved.
    void resize(std::size_t n) {
        words_.resize((n + 63) / 64, 0);
        size_ = n;
    }

    bool get(std::size_t i) const {
        return (words_[i >> 6] >> (i & 63)) & 1u;
    }
    void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
    void clear(std::size_t i) {
        words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }

    void fill(bool value) {
        std::fill(words_.begin(), words_.end(),
                  value ? ~std::uint64_t{0} : std::uint64_t{0});
        if (value && size_ % 64 != 0 && !words_.empty())
            words_.back() = (std::uint64_t{1} << (size_ % 64)) - 1;
    }

    /// Clears bits [b, e).
    void clear_range(std::size_t b, std::size_t e) {
        while (b < e) {
            const std::size_t wi = b >> 6;
            const std::size_t lo = b & 63;
            const std::size_t hi = std::min<std::size_t>(64, lo + (e - b));
            const std::uint64_t upper =
                hi == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << hi) - 1;
            words_[wi] &= ~(upper & ~((std::uint64_t{1} << lo) - 1));
            b = (wi << 6) + hi;
        }
    }

private:
    std::vector<std::uint64_t, common::AlignedAlloc<std::uint64_t>> words_;
    std::size_t size_ = 0;
};

/// Dynamic compartment state in struct-of-arrays form: one contiguous,
/// cache-line-aligned integer lane per variable, indexed by global
/// compartment id, plus packed bitsets for the boolean flags. The dense
/// membrane sweep and the CSR synaptic accumulation iterate single lanes
/// with unit stride, which is what lets them autovectorize (the loops
/// tagged NEURO_VEC_HOT in chip.cpp); the scalar sparse/join/learning paths
/// index the same lanes element-wise with unchanged semantics.
struct CompartmentBank {
    template <typename T>
    using Lane = std::vector<T, common::AlignedAlloc<T>>;

    Lane<std::int64_t> u;             ///< synaptic response current
    Lane<std::int64_t> v;             ///< membrane potential
    /// Accumulators for spikes that arrived this step (applied next step,
    /// matching the chip's one-step synaptic delay).
    Lane<std::int64_t> pending_soma;
    Lane<std::int64_t> pending_aux;
    /// Aux input accumulated for JoinOp::GatedAdd / JoinOp::Add.
    Lane<std::int64_t> aux_current;

    Lane<std::int32_t> bias;
    Lane<std::int32_t> refractory_left;
    // Spike bookkeeping for the current sample window.
    Lane<std::int32_t> spikes_phase1;
    Lane<std::int32_t> spikes_phase2;

    // Trace values (see loihi/trace.hpp for the shared tick/on-spike ops).
    Lane<std::int32_t> x1;   // pre trace
    Lane<std::int32_t> y1;   // post trace
    Lane<std::int32_t> x2;   // second pre trace
    Lane<std::int32_t> y2;   // second post trace
    Lane<std::int32_t> tag;  // tag counter

    BitLane spiked;      ///< fired in the current step
    /// Aux-compartment activity flag used by JoinOp::AndAuxActive — set if
    /// the aux compartment received any input in the current sample window.
    BitLane aux_active;
    /// Membership flags of the chip's sparse active list. Owned by Chip;
    /// not dynamic state (reset_dynamic leaves it alone).
    BitLane awake;

    std::size_t size() const { return u.size(); }

    /// Grows every lane to n compartments, zero-initialized.
    void resize(std::size_t n) {
        u.resize(n, 0);
        v.resize(n, 0);
        pending_soma.resize(n, 0);
        pending_aux.resize(n, 0);
        aux_current.resize(n, 0);
        bias.resize(n, 0);
        refractory_left.resize(n, 0);
        spikes_phase1.resize(n, 0);
        spikes_phase2.resize(n, 0);
        x1.resize(n, 0);
        y1.resize(n, 0);
        x2.resize(n, 0);
        y2.resize(n, 0);
        tag.resize(n, 0);
        spiked.resize(n);
        aux_active.resize(n);
        awake.resize(n);
    }

    std::int32_t spike_count(std::size_t c) const {
        return spikes_phase1[c] + spikes_phase2[c];
    }

    /// Per-sample reset: everything except bias (a host register) and the
    /// awake flags (sweep bookkeeping owned by Chip).
    void reset_dynamic() {
        std::fill(u.begin(), u.end(), 0);
        std::fill(v.begin(), v.end(), 0);
        std::fill(pending_soma.begin(), pending_soma.end(), 0);
        std::fill(pending_aux.begin(), pending_aux.end(), 0);
        std::fill(aux_current.begin(), aux_current.end(), 0);
        std::fill(refractory_left.begin(), refractory_left.end(), 0);
        std::fill(spikes_phase1.begin(), spikes_phase1.end(), 0);
        std::fill(spikes_phase2.begin(), spikes_phase2.end(), 0);
        std::fill(x1.begin(), x1.end(), 0);
        std::fill(y1.begin(), y1.end(), 0);
        std::fill(x2.begin(), x2.end(), 0);
        std::fill(y2.begin(), y2.end(), 0);
        std::fill(tag.begin(), tag.end(), 0);
        spiked.fill(false);
        aux_active.fill(false);
    }

    /// Phase-boundary reset: clears the integrators but keeps spike
    /// counters, traces, tags and aux gates (see Chip::reset_membranes).
    void reset_membranes() {
        std::fill(u.begin(), u.end(), 0);
        std::fill(v.begin(), v.end(), 0);
        std::fill(pending_soma.begin(), pending_soma.end(), 0);
        std::fill(pending_aux.begin(), pending_aux.end(), 0);
        std::fill(aux_current.begin(), aux_current.end(), 0);
        std::fill(refractory_left.begin(), refractory_left.end(), 0);
    }
};

}  // namespace neuro::loihi
