#include "loihi/learning.hpp"

#include <cctype>
#include <stdexcept>

namespace neuro::loihi {

namespace {

std::int32_t value_of(LearnVar v, const LearnContext& ctx) {
    switch (v) {
        case LearnVar::X0: return ctx.x0;
        case LearnVar::X1: return ctx.x1;
        case LearnVar::X2: return ctx.x2;
        case LearnVar::Y0: return ctx.y0;
        case LearnVar::Y1: return ctx.y1;
        case LearnVar::Y2: return ctx.y2;
        case LearnVar::Tag: return ctx.tag;
        case LearnVar::Wgt: return ctx.weight;
        case LearnVar::One: return 1;
    }
    return 0;
}

/// Arithmetic scale by 2^exponent with symmetric truncation toward zero.
std::int64_t scale_pow2(std::int64_t v, int exponent) {
    if (exponent >= 0) return v << exponent;
    const std::int64_t div = std::int64_t{1} << (-exponent);
    return v / div;  // C++ integer division truncates toward zero
}

/// Stochastic-rounding variant: floor((v + u) / 2^s), u ~ U[0, 2^s).
/// Unbiased for either sign of v.
std::int64_t scale_pow2_stochastic(std::int64_t v, int exponent,
                                   common::Rng& rng) {
    if (exponent >= 0) return v << exponent;
    const int s = -exponent;
    const std::int64_t u =
        static_cast<std::int64_t>(rng.next_u64() & ((std::uint64_t{1} << s) - 1));
    return (v + u) >> s;  // arithmetic shift = floor division
}

const char* var_name(LearnVar v) {
    switch (v) {
        case LearnVar::X0: return "x0";
        case LearnVar::X1: return "x1";
        case LearnVar::X2: return "x2";
        case LearnVar::Y0: return "y0";
        case LearnVar::Y1: return "y1";
        case LearnVar::Y2: return "y2";
        case LearnVar::Tag: return "t";
        case LearnVar::Wgt: return "w";
        case LearnVar::One: return "1";
    }
    return "?";
}

}  // namespace

std::int64_t SumOfProducts::evaluate(const LearnContext& ctx,
                                     common::Rng* rounding) const {
    std::int64_t total = 0;
    for (const auto& term : terms_) {
        std::int64_t p = term.mantissa;
        for (const auto& f : term.factors)
            p *= static_cast<std::int64_t>(value_of(f.var, ctx)) + f.addend;
        total += rounding != nullptr ? scale_pow2_stochastic(p, term.exponent, *rounding)
                                     : scale_pow2(p, term.exponent);
    }
    return total;
}

std::string SumOfProducts::str() const {
    std::string out;
    for (std::size_t i = 0; i < terms_.size(); ++i) {
        const auto& t = terms_[i];
        const bool neg = t.mantissa < 0;
        const std::int32_t mant = neg ? -t.mantissa : t.mantissa;
        if (i == 0)
            out += neg ? "-" : "";
        else
            out += neg ? " - " : " + ";
        std::string coef;
        if (t.exponent != 0) {
            // Scale prints as [mant*]2^exp, which the parser reads back as
            // mantissa * 2^exponent.
            if (mant != 1) coef = std::to_string(mant) + "*";
            coef += "2^" + std::to_string(t.exponent);
        } else if (mant != 1 || t.factors.empty()) {
            coef = std::to_string(mant);
        }
        out += coef;
        for (std::size_t j = 0; j < t.factors.size(); ++j) {
            if (j > 0 || !coef.empty()) out += "*";
            const auto& f = t.factors[j];
            if (f.addend == 0) {
                out += var_name(f.var);
            } else {
                out += "(";
                out += var_name(f.var);
                out += f.addend > 0 ? "+" : "-";
                out += std::to_string(f.addend > 0 ? f.addend : -f.addend);
                out += ")";
            }
        }
    }
    return out;
}

namespace {

/// Minimal recursive-descent parser for the grammar in the header.
class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    SumOfProducts parse() {
        std::vector<LearnTerm> terms;
        skip_ws();
        int sign = 1;
        if (peek() == '-') {
            sign = -1;
            ++pos_;
        } else if (peek() == '+') {
            ++pos_;
        }
        terms.push_back(parse_term(sign));
        skip_ws();
        while (pos_ < text_.size()) {
            const char c = peek();
            if (c == '+' || c == '-') {
                ++pos_;
                terms.push_back(parse_term(c == '-' ? -1 : 1));
                skip_ws();
            } else {
                fail("expected '+' or '-'");
            }
        }
        return SumOfProducts(std::move(terms));
    }

private:
    const std::string& text_;
    std::size_t pos_ = 0;

    [[noreturn]] void fail(const std::string& why) const {
        throw std::invalid_argument("learning-rule parse error at position " +
                                    std::to_string(pos_) + ": " + why + " in '" +
                                    text_ + "'");
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    std::int32_t parse_int() {
        skip_ws();
        int sign = 1;
        if (peek() == '-') {
            sign = -1;
            ++pos_;
        }
        if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("expected integer");
        std::int64_t v = 0;
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
            v = v * 10 + (text_[pos_] - '0');
            if (v > 1'000'000'000) fail("integer constant too large");
            ++pos_;
        }
        return static_cast<std::int32_t>(sign * v);
    }

    bool try_parse_var(LearnVar& out) {
        skip_ws();
        auto match = [&](const char* name, LearnVar v) {
            const std::size_t n = std::string(name).size();
            if (text_.compare(pos_, n, name) == 0) {
                // Must not be followed by an identifier character.
                const char next = pos_ + n < text_.size() ? text_[pos_ + n] : '\0';
                if (!std::isalnum(static_cast<unsigned char>(next))) {
                    pos_ += n;
                    out = v;
                    return true;
                }
            }
            return false;
        };
        // Longest names first.
        return match("x0", LearnVar::X0) || match("x1", LearnVar::X1) ||
               match("x2", LearnVar::X2) || match("y0", LearnVar::Y0) ||
               match("y1", LearnVar::Y1) || match("y2", LearnVar::Y2) ||
               match("w", LearnVar::Wgt) || match("t", LearnVar::Tag);
    }

    LearnFactor parse_factor() {
        skip_ws();
        LearnFactor f;
        if (peek() == '(') {
            ++pos_;
            if (!try_parse_var(f.var)) fail("expected variable inside parentheses");
            skip_ws();
            if (peek() == '+' || peek() == '-') {
                const int sign = peek() == '-' ? -1 : 1;
                ++pos_;
                f.addend = sign * parse_int();
            }
            skip_ws();
            if (peek() != ')') fail("expected ')'");
            ++pos_;
            return f;
        }
        if (!try_parse_var(f.var)) fail("expected variable or '('");
        return f;
    }

    /// Folds one numeric coefficient into the term. "A^B" is A raised to
    /// B; negative exponents are only supported for base 2 (the chip's
    /// shift-based scaling), e.g. "2^-4*x1*y1" or "3*2^-2*x1".
    void apply_coefficient(LearnTerm& term) {
        const std::int32_t base = parse_int();
        skip_ws();
        if (peek() != '^') {
            term.mantissa *= base;
            return;
        }
        ++pos_;
        const std::int32_t exp = parse_int();
        if (exp >= 0) {
            std::int64_t v = 1;
            for (std::int32_t i = 0; i < exp; ++i) {
                v *= base;
                if (v > 1'000'000'000) fail("coefficient overflow");
            }
            term.mantissa = static_cast<std::int32_t>(term.mantissa * v);
        } else {
            if (base != 2) fail("negative exponents require base 2");
            term.exponent += exp;
        }
    }

    LearnTerm parse_term(int sign) {
        skip_ws();
        LearnTerm term;
        term.mantissa = sign;
        bool have_any = false;
        for (;;) {
            skip_ws();
            if (std::isdigit(static_cast<unsigned char>(peek()))) {
                apply_coefficient(term);
            } else {
                term.factors.push_back(parse_factor());
            }
            have_any = true;
            skip_ws();
            if (peek() == '*') {
                ++pos_;
                continue;
            }
            break;
        }
        if (!have_any) fail("empty term");
        return term;
    }
};

}  // namespace

SumOfProducts parse_sum_of_products(const std::string& text) {
    return Parser(text).parse();
}

LearningRule emstdp_rule(int shift) {
    LearningRule rule;
    // dw = 2^-(shift-1) * x1 * y1  -  2^-shift * x1 * t
    //    = eta * x1 * (2*y1 - t)  with  eta = 2^-shift
    // which with y1 = h_hat, t = Z = h_hat + h and x1 = h_pre is exactly
    // paper eq. 12 and therefore eq. 7: eta * (h_hat - h) * h_pre.
    rule.dw = SumOfProducts({
        LearnTerm{1, -(shift - 1), {{LearnVar::X1, 0}, {LearnVar::Y1, 0}}},
        LearnTerm{-1, -shift, {{LearnVar::X1, 0}, {LearnVar::Tag, 0}}},
    });
    // dt = y0: the tag accumulates the postsynaptic spike indicator every
    // step, building up Z across both phases.
    rule.dt = SumOfProducts({LearnTerm{1, 0, {{LearnVar::Y0, 0}}}});
    return rule;
}

}  // namespace neuro::loihi
