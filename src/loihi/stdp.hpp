#pragma once
// Canonical synaptic-plasticity rules expressed in the chip's sum-of-products
// microcode (paper Sec. II-B: "Regular pairwise and triplet STDP rules can be
// implemented along with more complicated adaptation rules utilizing this
// form").
//
// EMSTDP is one point in this rule space; these builders cover the classic
// unsupervised points, demonstrating that the simulated learning engine is a
// faithful general-purpose substrate rather than an EMSTDP special case:
//
//   pairwise STDP    dw = 2^a+ * x1 * y0  -  2^a- * x0 * y1
//   triplet STDP     dw = y0 * x1 * (2^a2+ + 2^a3+ * y2)  -  2^a2- * x0 * y1
//   homeostatic STDP dw = 2^a+ * x1 * y0  -  2^ad * w * y0
//
// where x0/y0 are the pre/post spike indicators at the learning epoch, x1/y1
// the fast pre/post traces, y2 a slow post trace and w the weight itself.
// All rules assume per-step learning epochs (call Chip::apply_learning()
// after every step), which is how Loihi realizes spike-timing rules.
//
// Timing note: the engine samples traces *after* the current step's spike
// impulses have been applied, so the y2 factor of the triplet term includes
// the just-fired post spike's impulse. This adds a constant offset
// 2^a3+ * x1 * impulse(y2) to every potentiation — a pairwise-shaped bias
// that leaves the triplet signature (rate-dependent potentiation) intact.
// Keep the y2 impulse small relative to its saturation for a faithful fit.

#include "loihi/compartment.hpp"
#include "loihi/learning.hpp"
#include "loihi/trace.hpp"

namespace neuro::loihi {

/// Trace-based pair rule (Bi & Poo curve): potentiation when a pre trace is
/// present at a post spike, depression when a post trace is present at a pre
/// spike. Amplitudes are power-of-two scales, as the chip's shifter prefers.
struct PairwiseStdpParams {
    int ltp_exponent = -4;  ///< A+ = 2^ltp_exponent
    int ltd_exponent = -4;  ///< A- = 2^ltd_exponent
};
LearningRule pairwise_stdp(const PairwiseStdpParams& p = {});

/// Minimal triplet rule (Pfister & Gerstner 2006, "minimal" parameter set):
/// the potentiation amplitude grows with the slow post trace y2, producing
/// the experimentally observed rate dependence pair rules cannot express.
struct TripletStdpParams {
    int a2_plus_exponent = -5;   ///< pair potentiation
    int a2_minus_exponent = -4;  ///< pair depression
    int a3_plus_exponent = -8;   ///< triplet potentiation (x1 * y2 * y0)
};
LearningRule triplet_stdp(const TripletStdpParams& p = {});

/// Pair potentiation balanced by weight-proportional depression at each post
/// spike. The fixed point w* = 2^(ltp - decay) * E[x1 | post spike] keeps
/// weights bounded without hard saturation — a microcode-form homeostasis.
struct HomeostaticStdpParams {
    int ltp_exponent = -4;    ///< A+ = 2^ltp_exponent
    int decay_exponent = -4;  ///< depression = 2^decay_exponent * w per post spike
};
LearningRule homeostatic_stdp(const HomeostaticStdpParams& p = {});

/// Saturating 7-bit trace with the given impulse and 12-bit decay, windowed
/// over both phases — the configuration spike-timing rules expect.
TraceConfig stdp_trace(std::int32_t impulse, std::int32_t decay);

/// Compartment configuration for an STDP experiment population: fast
/// pre/post traces and a slow second post trace for triplet rules. The
/// membrane is memoryless by default (decay_v = 4096, Loihi's maximum): the
/// neuron fires exactly on the steps its instantaneous drive crosses vth,
/// which makes it a coincidence detector — the natural element for
/// controlled-timing protocols and pattern-selectivity experiments. Set
/// decay_v = 0 for the paper's perfect-integrator IF configuration.
struct StdpCompartmentParams {
    std::int32_t vth = 64;
    std::int32_t decay_v = 4096;
    TraceConfig fast = stdp_trace(96, 512);  ///< x1 / y1 (~tau of 8 steps)
    TraceConfig slow = stdp_trace(16, 128);  ///< y2 (~tau of 32 steps)
};
CompartmentConfig stdp_compartment(const StdpCompartmentParams& p = {});

}  // namespace neuro::loihi
