#include "loihi/mapping.hpp"

#include <algorithm>

namespace neuro::loihi {

std::size_t synapse_entry_bits(const ChipLimits& limits) {
    return static_cast<std::size_t>(limits.weight_bits) + 12;
}

std::size_t capacity_neurons_per_core(const LayerMapSpec& spec,
                                      const ChipLimits& limits) {
    std::size_t npc = limits.compartments_per_core /
                      std::max<std::size_t>(1, spec.compartments_per_neuron);
    // Synaptic memory: one entry per synapse terminating on the core.
    if (spec.fan_in_per_neuron > 0)
        npc = std::min(npc, limits.synapses_per_core / spec.fan_in_per_neuron);
    // Input-axon table: one entry per distinct presynaptic neuron reaching
    // the core, bounded by min(distinct_sources, npc * fan_in). When the
    // whole source population fits the axon table the constraint never
    // binds, whatever npc is.
    if (spec.fan_in_per_neuron > 0 &&
        spec.distinct_sources > limits.fanin_axons_per_core)
        npc = std::min(npc, limits.fanin_axons_per_core / spec.fan_in_per_neuron);
    return std::max<std::size_t>(1, npc);
}

MappingResult map_layers(const std::vector<LayerMapSpec>& layers,
                         const ChipLimits& limits) {
    MappingResult result;
    std::size_t next_core = 0;
    for (const auto& layer : layers) {
        LayerAssignment a;
        std::size_t npc = layer.neurons_per_core != 0
                              ? layer.neurons_per_core
                              : capacity_neurons_per_core(layer, limits);
        // An explicit override must still respect the hard capacity bound.
        const std::size_t cap = capacity_neurons_per_core(layer, limits);
        if (npc > cap) {
            result.violations.push_back(
                layer.name + ": requested " + std::to_string(npc) +
                " neurons/core exceeds capacity " + std::to_string(cap) +
                "; clamped");
            npc = cap;
        }
        a.neurons_per_core = npc;
        a.first_core = next_core;
        a.num_cores = layer.logical_neurons == 0
                          ? 0
                          : (layer.logical_neurons + npc - 1) / npc;
        next_core += a.num_cores;

        a.compartments_per_core = npc * layer.compartments_per_neuron;
        a.synapses_per_core = npc * layer.fan_in_per_neuron;
        a.plastic_synapses_per_core = npc * layer.plastic_fan_in_per_neuron;
        a.memory_bytes_per_core =
            (a.synapses_per_core * synapse_entry_bits(limits) + 7) / 8;
        result.max_compartments_per_core =
            std::max(result.max_compartments_per_core, a.compartments_per_core);
        result.max_synapses_per_core =
            std::max(result.max_synapses_per_core, a.synapses_per_core);
        result.max_plastic_synapses_per_core =
            std::max(result.max_plastic_synapses_per_core,
                     a.plastic_synapses_per_core);
        result.max_memory_bytes_per_core =
            std::max(result.max_memory_bytes_per_core, a.memory_bytes_per_core);
        result.total_memory_bytes += a.num_cores * a.memory_bytes_per_core;

        result.layers.push_back(a);
    }
    result.total_cores = next_core;
    if (result.total_cores > limits.num_cores) {
        result.feasible = false;
        result.violations.push_back(
            "network needs " + std::to_string(result.total_cores) +
            " cores but the chip has " + std::to_string(limits.num_cores));
    }
    return result;
}

}  // namespace neuro::loihi
