#include "loihi/faults.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"

namespace neuro::loihi {

namespace {

/// First round(fraction * n) entries of a seeded permutation of [0, n).
std::vector<std::size_t> pick_fraction(std::size_t n, double fraction,
                                       std::uint64_t seed) {
    if (fraction < 0.0 || fraction > 1.0)
        throw std::invalid_argument("fault injection: fraction must be in [0,1]");
    const auto k = static_cast<std::size_t>(
        std::llround(fraction * static_cast<double>(n)));
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    common::Rng rng(seed);
    rng.shuffle(idx);
    idx.resize(k);
    return idx;
}

}  // namespace

std::vector<std::int32_t> apply_threshold_variation(Chip& chip, PopulationId pop,
                                                    double sigma,
                                                    std::uint64_t seed) {
    if (sigma < 0.0)
        throw std::invalid_argument("apply_threshold_variation: sigma < 0");
    const std::size_t n = chip.population_size(pop);
    std::vector<std::int32_t> offsets(n, 0);
    if (sigma == 0.0) return offsets;
    common::Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        // The nominal threshold is a population constant; recover it from the
        // configured value by probing the current offset (0 on first call).
        const double rel = rng.normal(0.0, sigma);
        // Offsets are relative to the *configured* vth; the chip clamps the
        // effective threshold at 1, so arbitrarily negative draws are safe.
        const auto nominal = static_cast<double>(chip.nominal_threshold(pop));
        offsets[i] = static_cast<std::int32_t>(std::llround(nominal * rel));
        chip.set_threshold_offset(pop, i, offsets[i]);
    }
    return offsets;
}

std::size_t kill_fraction(Chip& chip, PopulationId pop, double fraction,
                          std::uint64_t seed) {
    const auto victims = pick_fraction(chip.population_size(pop), fraction, seed);
    for (const auto i : victims) chip.set_compartment_dead(pop, i, true);
    return victims.size();
}

std::size_t stick_fraction(Chip& chip, ProjectionId proj, double fraction,
                           std::int32_t value, std::uint64_t seed) {
    const auto victims = pick_fraction(chip.synapse_count(proj), fraction, seed);
    for (const auto i : victims) chip.set_synapse_stuck(proj, i, value);
    return victims.size();
}

}  // namespace neuro::loihi
