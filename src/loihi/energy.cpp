#include "loihi/energy.hpp"

#include <algorithm>
#include <stdexcept>

namespace neuro::loihi {

EnergyReport estimate_energy(const EnergyModelParams& params, const Chip& chip,
                             const ActivityTotals& totals, std::uint64_t samples) {
    if (samples == 0) throw std::invalid_argument("estimate_energy: zero samples");
    if (totals.steps == 0) throw std::invalid_argument("estimate_energy: no steps run");

    EnergyReport r;
    r.cores = chip.mapping().total_cores;
    r.steps_per_sample = totals.steps / samples;

    const double steps = static_cast<double>(totals.steps);
    const double synops_per_core_step =
        static_cast<double>(totals.synaptic_ops) /
        (steps * static_cast<double>(std::max<std::size_t>(1, r.cores)));

    // Barrier-synchronised step: the slowest core sets the pace, and a step
    // can never beat the 10 kHz silicon ceiling. Each layer's cores are
    // homogeneous, so the busiest core is the max over layers of its
    // compartment-scan plus synaptic-memory-scan cost.
    double busiest = 0.0;
    for (const auto& layer : chip.mapping().layers) {
        const double cost =
            params.per_compartment_s *
                static_cast<double>(layer.compartments_per_core) +
            params.per_plastic_synapse_s *
                static_cast<double>(layer.plastic_synapses_per_core);
        busiest = std::max(busiest, cost);
    }
    r.step_seconds = std::max(
        params.step_floor_s, busiest + params.per_synop_s * synops_per_core_step);

    r.sample_seconds = r.step_seconds * static_cast<double>(r.steps_per_sample);
    r.fps = r.sample_seconds > 0.0 ? 1.0 / r.sample_seconds : 0.0;

    // Event energy, averaged into power over the run.
    const double event_energy =
        params.synop_energy_j * static_cast<double>(totals.synaptic_ops) +
        params.update_energy_j * static_cast<double>(totals.compartment_updates) +
        params.spike_energy_j * static_cast<double>(totals.spikes) +
        params.learn_energy_j * static_cast<double>(totals.learning_synapse_visits);
    const double run_seconds = r.step_seconds * steps;
    const double event_power = run_seconds > 0.0 ? event_energy / run_seconds : 0.0;

    r.power_w = params.base_power_w +
                params.core_power_w * static_cast<double>(r.cores) + event_power;
    r.energy_per_sample_j = r.power_w * r.sample_seconds;
    return r;
}

}  // namespace neuro::loihi
