#pragma once
// The chip: populations of CUBA compartments, projections of 8-bit synapses,
// a barrier-synchronised time stepper, and the microcode learning engine.
//
// Usage is NxSDK-shaped: declare populations and projections, finalize()
// (which also maps compartments onto cores), then per sample: program
// biases, run phase 1, run phase 2, apply_learning(), reset_dynamic_state().
//
// Everything on the datapath is integer; the only floats are in the energy
// model, which consumes the activity counters this class maintains.
//
// Copy semantics (the runtime Session substrate): once finalized, a chip's
// structure — populations, synapse topology, CSR fan-out, core mapping — is
// immutable and *shared* between copies through a shared_ptr, and the
// synaptic weight image is shared copy-on-write (detached on the first
// write: learning, reprogramming, checkpoint load, stuck-at injection).
// Copying a finalized chip therefore costs only the dynamic state
// (compartments, wheel, RNGs), not the synapse tables; N inference copies
// read one weight image. Behaviour is bit-identical to an independent deep
// copy. Pre-finalize copies still deep-copy everything.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "loihi/compartment.hpp"
#include "loihi/learning.hpp"
#include "loihi/mapping.hpp"
#include "loihi/types.hpp"

namespace neuro::loihi {

/// Static description of a population (a layer's worth of identical
/// compartments).
struct PopulationConfig {
    std::string name;
    std::size_t size = 0;
    CompartmentConfig compartment{};
    /// Logical neurons packed per core; 0 = pack to capacity (Operation
    /// Flow 1's "optimal number of neurons per core"). A logical neuron with
    /// an aux compartment occupies two compartment slots.
    std::size_t neurons_per_core = 0;
};

/// One synapse, population-local indices. Weights are `weight_bits`-wide
/// signed integers; the effective current is weight << weight_exp of the
/// owning projection. `delay` adds extra timesteps on top of the intrinsic
/// one-step latency (Loihi: 0..62). After finalize, `weight` holds the
/// *initial* (programmed-at-build) value; the live weight lives in the
/// chip's copy-on-write weight image.
struct Synapse {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::int32_t weight = 0;
    std::uint8_t delay = 0;
};

/// Static description of a projection (synapse group).
struct ProjectionConfig {
    std::string name;
    PopulationId src = 0;
    PopulationId dst = 0;
    Port port = Port::Soma;
    int weight_exp = 0;   ///< effective weight = w * 2^weight_exp
    bool plastic = false; ///< subject to the learning rule at epochs
    LearningRule rule{};  ///< initial rule when plastic (see set_learning_rule)
    /// Apply the engine's stochastic-rounding mode to the rule's
    /// power-of-two scaling (see SumOfProducts::evaluate).
    bool stochastic_rounding = true;
};

/// Aggregate event counters used by the energy/time model. Counters
/// accumulate until reset_activity().
struct ActivityTotals {
    std::uint64_t steps = 0;
    std::uint64_t compartment_updates = 0;
    std::uint64_t synaptic_ops = 0;
    std::uint64_t spikes = 0;
    std::uint64_t learning_synapse_visits = 0;
    std::uint64_t host_io_writes = 0;  ///< bias writes + spike insertions
};

/// Wall-clock attribution of step() time to its two passes: the
/// integrate/spike sweep (pass 1) and the synaptic accumulation/delivery
/// (pass 2). Nanoseconds from obs::Timer sinks — they only advance while
/// obs::set_timing(true), and cost one relaxed load per step otherwise.
/// Deliberately NOT part of ActivityTotals: totals are compared
/// bit-identically across kernel modes (bench/micro_chip), wall time is
/// not. Per-chip, deep-copied, reset independently of activity.
struct KernelPhaseTimes {
    std::uint64_t sweep_ns = 0;
    std::uint64_t accum_ns = 0;
};

class Chip {
public:
    explicit Chip(ChipLimits limits = {});

    /// Copies share the structure and (copy-on-write) the weight image;
    /// dynamic state, device faults, rules and RNG streams are deep. The
    /// defaulted memberwise copy is correct because both shared blocks are
    /// copy-on-write: the structure detaches on the next pre-finalize build
    /// mutation (and is immutable after finalize), the weight image on the
    /// next weight write.
    Chip(const Chip& other) = default;
    Chip& operator=(const Chip& other) = default;
    Chip(Chip&&) = default;
    Chip& operator=(Chip&&) = default;

    // ---- construction -----------------------------------------------------
    PopulationId add_population(PopulationConfig cfg);
    ProjectionId add_projection(ProjectionConfig cfg, std::vector<Synapse> synapses);

    /// Maps populations onto cores and builds the fan-out tables. Must be
    /// called exactly once, before any stepping. Throws if the network
    /// violates the chip limits (too many cores needed, bad indices...).
    void finalize();
    bool finalized() const { return finalized_; }

    // ---- host interface (Operation Flow 1) --------------------------------
    /// Programs per-neuron bias registers (the paper's input encoding: one
    /// host write per neuron per sample). Counted as host I/O.
    void set_bias(PopulationId pop, const std::vector<std::int32_t>& bias);
    /// Clears all biases of a population to zero (not counted as I/O).
    void clear_bias(PopulationId pop);
    /// Direct spike insertion from the host (the costly input path the bias
    /// encoding replaces; kept for bench/ablation_input_encoding). The spike
    /// is delivered to the population's fan-out at the next step.
    void insert_spike(PopulationId pop, std::size_t idx);

    void set_phase(Phase phase) { phase_ = phase; }
    Phase phase() const { return phase_; }

    /// Advances one barrier-synchronised timestep.
    ///
    /// By default the sweep is *sparse*: only compartments on the active
    /// list are visited. A compartment leaves the list when visiting it
    /// could not change any state — no pending input, zero bias, fully
    /// decayed current, stable sub-threshold membrane, no refractory
    /// countdown, no decaying traces — and re-enters it on any spike
    /// delivery or host write. The sparse sweep is bit-identical to the
    /// dense reference sweep (including the stochastic-rounding RNG streams
    /// and every ActivityTotals counter); it only changes the step cost
    /// from O(compartments) to O(active + spike traffic).
    void step();
    void run(std::size_t steps);

    /// Selects the step-loop implementation: sparse active-set sweep (the
    /// default) or the dense reference sweep that visits every compartment.
    /// The two are bit-identical; the dense path is kept for regression
    /// testing and as the baseline of bench/throughput_parallel. May be
    /// toggled at any time.
    void set_sparse_sweep(bool enabled);
    bool sparse_sweep() const { return sparse_; }

    /// Selects the kernel implementation: the SIMD-friendly lane kernels
    /// (the default — per-population vectorized integrate/spike sweep plus
    /// batched contiguous-run synaptic accumulation) or the scalar reference
    /// kernels that visit one compartment / one fan-out entry at a time.
    /// The two are bit-identical (spikes, ActivityTotals, RNG streams,
    /// traces); the scalar path is kept for equivalence testing and as the
    /// normalization row of bench/micro_chip. May be toggled at any time
    /// and composes with set_sparse_sweep.
    void set_vector_sweep(bool enabled) { vector_sweep_ = enabled; }
    bool vector_sweep() const { return vector_sweep_; }

    /// Applies the learning rule of every plastic projection (the end-of-2T
    /// weight update of Operation Flow 1). Detaches the shared weight image
    /// on the first call after a copy (copy-on-write).
    void apply_learning();

    /// Replaces the learning rule of a plastic projection. Allowed after
    /// finalize — reprogramming microcode does not change the network
    /// structure (the incremental-learning experiment uses this to reduce
    /// the learning rate during its step 1).
    void set_learning_rule(ProjectionId proj, LearningRule rule);

    /// Reseeds the learning engine's stochastic-rounding generator (the
    /// trace-decay generator derives from the same seed).
    void seed_learning_noise(std::uint64_t seed) {
        learn_rng_ = common::Rng(seed);
        trace_rng_ = common::Rng(seed ^ 0x7EAC0DEULL);
    }

    /// Clears membranes, currents, pending inputs, traces, tags, spike
    /// counters and aux flags — the paper's per-sample "Reset network state".
    void reset_dynamic_state();

    /// Clears membranes, currents and pending inputs but *keeps* spike
    /// counters, traces, tags and aux gates. Called at the phase-1/phase-2
    /// boundary so phase 2 replays phase 1 exactly when no correction is
    /// injected — otherwise sub-threshold residues give (h_hat - h) a
    /// systematic positive bias (see DESIGN.md).
    void reset_membranes();

    // ---- device variation & fault injection --------------------------------
    // Deployed-silicon properties (paper Sec. I: in-hardware learning
    // "provides the ability to compensate any device variation and/or
    // environment noise"). They persist across reset_dynamic_state() — a
    // sample reset does not heal a chip — and may be set before or after
    // finalize. Statistical injectors live in loihi/faults.hpp. Faults are
    // per-chip: replicas copied from a faulted chip inherit its faults, and
    // faults injected later never leak into other copies.

    /// Additive offset on the firing threshold of one compartment (device
    /// mismatch). The effective threshold is clamped at 1, and soft reset
    /// subtracts the *effective* threshold so eq. (2)'s floor(u/theta)
    /// activation holds per-device.
    void set_threshold_offset(PopulationId pop, std::size_t idx, std::int32_t offset);
    std::int32_t threshold_offset(PopulationId pop, std::size_t idx) const;

    /// Marks a compartment dead: it never integrates, spikes, or relays
    /// host-inserted events (a defective or permanently power-gated unit).
    void set_compartment_dead(PopulationId pop, std::size_t idx, bool dead);
    bool compartment_dead(PopulationId pop, std::size_t idx) const;

    /// Forces one synapse to a constant weight (stuck-at fault). The learning
    /// engine skips it and checkpoint loads leave it untouched, exactly as a
    /// defective synaptic memory cell would behave under reprogramming.
    void set_synapse_stuck(ProjectionId proj, std::size_t syn, std::int32_t value);
    bool synapse_stuck(ProjectionId proj, std::size_t syn) const;
    std::size_t stuck_synapse_count(ProjectionId proj) const;

    // ---- inter-chip mesh interface (multi-chip sharding) -------------------
    // These are the primitives loihi::ShardedChip builds on: a router owns
    // the synapses that cross chip boundaries and uses them to re-create the
    // exact effect of an on-chip delivery on the destination chip.

    /// Delivers one already-weighted synaptic event to a compartment, exactly
    /// as the local fan-out path would (pending accumulator + wake). Visible
    /// at the next step. Not host I/O, and deliberately not a synaptic op on
    /// this chip either: on-chip accounting charges synops at spike
    /// *emission* (see deliver()), so the router tallies cross-chip events
    /// on the sending side to keep system totals identical to an unsharded
    /// chip.
    void deliver_external(PopulationId pop, std::size_t idx,
                          std::int32_t eff_weight, Port port);

    /// Appends the population-local indices of compartments that fired
    /// during the most recent step (the boundary-spike readout of the
    /// inter-chip router).
    void collect_spiked(PopulationId pop, std::vector<std::uint32_t>& out) const;

    // ---- structure introspection (used to split a chip into shards) --------
    std::size_t num_populations() const { return s_->pops.size(); }
    std::size_t num_projections() const { return s_->projs.size(); }
    const PopulationConfig& population_config(PopulationId pop) const;
    const ProjectionConfig& projection_config(ProjectionId proj) const;
    /// Synapse list as built (weights are the *initial* values; live weights
    /// come from weights()).
    const std::vector<Synapse>& projection_synapses(ProjectionId proj) const;
    /// The *live* learning rule: reflects post-finalize reprogramming via
    /// set_learning_rule (ProjectionConfig::rule keeps only the build-time
    /// value).
    const LearningRule& learning_rule(ProjectionId proj) const;
    /// Current bias registers of a population.
    std::vector<std::int32_t> biases(PopulationId pop) const;

    // ---- readout -----------------------------------------------------------
    std::size_t population_size(PopulationId pop) const;
    /// Configured (nominal) firing threshold of a population, before any
    /// per-compartment variation offsets.
    std::int32_t nominal_threshold(PopulationId pop) const;
    std::vector<std::int32_t> spike_counts(PopulationId pop, Phase phase) const;
    std::vector<std::int32_t> spike_counts_total(PopulationId pop) const;
    std::int64_t membrane(PopulationId pop, std::size_t idx) const;
    std::int64_t current(PopulationId pop, std::size_t idx) const;
    bool spiked(PopulationId pop, std::size_t idx) const;
    std::uint64_t now() const { return now_; }
    std::int32_t trace_x1(PopulationId pop, std::size_t idx) const;
    std::int32_t trace_y1(PopulationId pop, std::size_t idx) const;
    std::int32_t trace_x2(PopulationId pop, std::size_t idx) const;
    std::int32_t trace_y2(PopulationId pop, std::size_t idx) const;
    std::int32_t trace_tag(PopulationId pop, std::size_t idx) const;

    /// Synapse weights of a projection (for probing / checkpointing).
    std::vector<std::int32_t> weights(ProjectionId proj) const;
    void set_weights(ProjectionId proj, const std::vector<std::int32_t>& w);

    /// Reprograms the weights of one projection. Unlike set_weights() this
    /// is allowed after finalize — it models the host rewriting synaptic
    /// memory on a deployed chip (the weight-sync path of the parallel
    /// trainer): stuck-at faulted cells ignore the write and the delivery
    /// tables are refreshed immediately. Weights must fit `weight_bits`.
    void program_weights(ProjectionId proj, const std::vector<std::int32_t>& w);
    std::size_t synapse_count(ProjectionId proj) const;
    std::size_t total_synapses() const;
    std::size_t total_compartments() const;

    /// Serializes every projection's weights (versioned binary format).
    /// Usable after finalize — this is how a trained chip is checkpointed
    /// for redeployment; loading refreshes the delivery tables.
    void save_weights(std::ostream& out) const;
    void load_weights(std::istream& in);

    const ActivityTotals& activity() const { return activity_; }
    void reset_activity() { activity_ = {}; }

    /// Cumulative per-pass step() timing (see KernelPhaseTimes). Read on
    /// the thread that steps the chip; serving workers snapshot deltas
    /// around each request to attribute compute time (ARCHITECTURE §14).
    const KernelPhaseTimes& kernel_phase_times() const { return phase_times_; }
    void reset_kernel_phase_times() { phase_times_ = {}; }

    const MappingResult& mapping() const;
    const ChipLimits& limits() const { return limits_; }

    /// Optional spike raster capture (tests); records (step, global index).
    void enable_raster(PopulationId pop);
    const std::vector<std::pair<std::uint64_t, std::uint32_t>>& raster() const {
        return raster_;
    }

    // ---- sharing introspection ---------------------------------------------
    /// True when both chips read the same finalized structure tables
    /// (populations, synapse topology, fan-out, mapping).
    bool shares_structure_with(const Chip& other) const {
        return finalized_ && s_ == other.s_;
    }
    /// True while both chips still read the same copy-on-write weight image
    /// (no weight write has detached either side since the copy).
    bool shares_weights_with(const Chip& other) const {
        return img_ != nullptr && img_ == other.img_;
    }

private:
    struct Population {
        PopulationConfig cfg;
        CompartmentId first = 0;  ///< global index of compartment 0
    };

    /// Structural half of a fan-out entry; the effective weight lives in the
    /// copy-on-write image (Weights::eff), indexed by the same slot.
    struct FanoutEntry {
        std::uint32_t dst;       ///< global compartment index
        std::uint8_t port;       ///< Port
        std::uint8_t delay;      ///< extra steps on top of the intrinsic one
    };

    struct Projection {
        ProjectionConfig cfg;
        std::vector<Synapse> synapses;  // population-local; initial weights
        /// Fan-out table slot of each synapse, so weight updates (learning,
        /// checkpoint loads) propagate to the delivery path immediately.
        std::vector<std::size_t> fanout_slot;
    };

    /// One delivery segment of a source's CSR fan-out span. finalize()
    /// compresses each span into segments: a *contiguous* segment covers
    /// slots whose destinations are consecutive global ids with zero delay
    /// and one shared port — the hot case built by dense_synapses — and is
    /// applied as a single `pending[dst0+j] += eff[slot0+j]` vector loop; a
    /// *generic* segment falls back to per-entry delivery (delays, gaps,
    /// mixed ports). Segments keep slot order, so the accumulate/wheel-push
    /// sequence is a reordering-free partition of the original entry walk.
    struct FanoutRun {
        std::uint32_t dst0 = 0;   ///< first destination (contiguous only)
        std::uint32_t slot0 = 0;  ///< first fan-out slot (indexes eff/fanout)
        std::uint32_t len = 0;    ///< slots covered
        std::uint8_t port = 0;    ///< Port (contiguous only)
        std::uint8_t contiguous = 0;
    };

    /// Everything frozen at finalize() and shared between copies.
    struct Structure {
        std::vector<Population> pops;
        std::vector<Projection> projs;
        std::vector<std::uint16_t> pop_of;      // owning population per compartment
        std::vector<std::size_t> fanout_begin;  // CSR, size = compartments + 1
        std::vector<FanoutEntry> fanout;
        std::vector<std::size_t> run_begin;     // CSR over runs, compartments + 1
        std::vector<FanoutRun> runs;
        /// Per-population: any trace with a nonzero decay constant? Such
        /// compartments tick the shared trace RNG every step and never sleep.
        std::vector<std::uint8_t> pop_has_decay;
        /// Per-population: eligible for the vectorized dense sweep? True for
        /// single-compartment populations (JoinOp::None) with pure-counter
        /// traces — no aux state, no per-step RNG draws. Populations with a
        /// dead compartment fall back at run time (see pop_dead_).
        std::vector<std::uint8_t> pop_vec_ok;
        MappingResult mapping;
        bool has_plastic = false;
    };

    /// The live synaptic memory: per-projection raw weights plus the
    /// effective (exponent-shifted) delivery weights, one per fan-out slot.
    /// Shared between copies until the first write (copy-on-write).
    struct Weights {
        std::vector<std::vector<std::int32_t>> w;
        std::vector<std::int32_t> eff;
    };

    ChipLimits limits_;
    /// Mutable while building (copy-on-write, see detach_structure);
    /// logically frozen (and shared) after finalize.
    std::shared_ptr<Structure> s_;
    std::shared_ptr<Weights> img_;  ///< null until finalize; copy-on-write

    // Flattened dynamic state in struct-of-arrays lanes, indexed by global
    // compartment id (see CompartmentBank).
    CompartmentBank bank_;

    // Device properties, indexed by global compartment id. Not dynamic
    // state: reset_dynamic_state() leaves them alone.
    std::vector<std::int32_t> vth_offset_;
    std::vector<std::uint8_t> dead_;
    /// Precomputed effective thresholds, max(1, vth + vth_offset_), one per
    /// compartment, so the vectorized spike-detect loop compares against a
    /// flat lane. Rebuilt at finalize, patched by set_threshold_offset.
    CompartmentBank::Lane<std::int64_t> vth_eff_;
    /// Per-population dead-compartment counts: a population with any dead
    /// unit takes the scalar sweep (dead units sink input element-wise).
    std::vector<std::uint32_t> pop_dead_;
    /// Per-projection stuck-at masks; empty until the first fault.
    std::vector<std::vector<std::uint8_t>> stuck_;
    /// Live learning rules (set_learning_rule reprograms microcode per chip
    /// without touching the shared structure). Sized at finalize.
    std::vector<LearningRule> rules_;

    Phase phase_ = Phase::One;
    bool finalized_ = false;
    std::uint64_t now_ = 0;

    /// Delay wheel: slot (now_ + delay) % kWheel holds deliveries that
    /// become visible at that step. Only synapses with delay > 0 use it.
    static constexpr std::size_t kWheel = 64;
    struct DelayedDelivery {
        std::uint32_t dst;
        std::int32_t weight;
        std::uint8_t port;
    };
    std::array<std::vector<DelayedDelivery>, kWheel> wheel_{};

    ActivityTotals activity_{};
    KernelPhaseTimes phase_times_{};

    std::optional<PopulationId> raster_pop_{};
    std::vector<std::pair<std::uint64_t, std::uint32_t>> raster_;

    common::Rng learn_rng_{0xC0FFEE};
    common::Rng trace_rng_{0x7EAC0DE};

    // ---- sparse active-set sweep (see step()) ------------------------------
    bool sparse_ = true;
    /// SIMD lane kernels vs scalar reference kernels (see set_vector_sweep).
    bool vector_sweep_ = true;
    /// Scratch spike-detect lane of the vectorized sweep (one byte per
    /// compartment; rewritten for the population being swept each step).
    CompartmentBank::Lane<std::uint8_t> fired_;
    /// Sorted global ids of compartments that must be visited next step.
    /// Kept in ascending order so the visit order — and therefore the
    /// trace-decay RNG stream — matches the dense sweep exactly.
    /// (The membership flag lives in CompartmentBank::awake.)
    std::vector<std::uint32_t> active_list_;
    std::vector<std::uint32_t> wake_buf_;    ///< wakes pending the next merge
    /// Number of compartments the dense sweep would count as updated per
    /// step (non-dead, and active in the given phase) — used to keep
    /// ActivityTotals::compartment_updates exact under the sparse sweep.
    /// Depends on dead_, hence per-chip rather than structural.
    std::size_t eligible_phase1_ = 0;
    std::size_t eligible_phase2_ = 0;

    void wake(CompartmentId c);
    void wake_all();
    void merge_wakes();
    bool can_sleep(CompartmentId c) const;
    /// One compartment's worth of the pass-1 physics (integrate, spike,
    /// traces); shared verbatim between the dense and sparse sweeps.
    void step_compartment(CompartmentId c, bool count_update);
    void step_dense();
    void step_sparse();
    /// Pass-1 physics of one vector-eligible population [b, e): vectorized
    /// integrate + spike-detect over the lanes, then a scalar epilogue over
    /// the (rare) fired compartments. Bit-identical to per-compartment
    /// step_compartment calls over the same range.
    void sweep_pop_vector(PopulationId p, std::size_t b, std::size_t e);
    /// Scalar pass over the fired byte lane [b, e): calls fire_compartment
    /// on each set byte, skipping whole zero 8-byte blocks.
    void fire_epilogue(std::size_t b, std::size_t e,
                       const CompartmentConfig& cfg);
    /// Fused sparse-sweep visit + sleep decision for populations without
    /// decaying traces, AndAuxActive gates or dead units. Bit-identical to
    /// step_compartment followed by can_sleep.
    bool sparse_visit_fast(CompartmentId c, const CompartmentConfig& cfg,
                           bool frozen);
    /// Spike bookkeeping of one fired vector-path compartment (reset,
    /// refractory re-arm, counters, trace impulses, raster).
    void fire_compartment(CompartmentId c, const CompartmentConfig& cfg);
    void tick_traces(CompartmentId c, const CompartmentConfig& cfg);

    CompartmentId global_id(PopulationId pop, std::size_t idx) const;
    void deliver(CompartmentId src);
    /// Per-entry reference delivery of fan-out slots [b, e) (delays, mixed
    /// ports, non-contiguous destinations, and the scalar-kernel path).
    void deliver_span(std::size_t b, std::size_t e);
    /// Wakes every sleeping compartment in [d0, d0 + len) by bitset words
    /// (the batched-run counterpart of the per-entry wake check).
    void wake_range(std::size_t d0, std::size_t len);
    void check_finalized(bool expected) const;
    /// Clones the structure iff it is still shared with another chip (call
    /// before any pre-finalize build mutation; after finalize the structure
    /// is immutable and stays shared forever).
    void detach_structure();
    /// Clones the weight image iff it is still shared with another chip
    /// (call before any weight write after finalize).
    void detach_weights();
    /// Writes one synapse's weight, honouring stuck-at faults and keeping
    /// the delivery table in sync (shared by program_weights/load_weights).
    /// Caller must detach_weights() first.
    void write_weight(std::size_t proj, std::size_t i, std::int32_t w);
};

/// Encodes a desired integer magnitude as (weight, exponent) with |weight|
/// within `weight_bits`. Used for error-injection weights of +-theta where
/// theta can exceed the 8-bit range.
struct EncodedWeight {
    std::int32_t weight = 0;
    int exponent = 0;
};
EncodedWeight encode_weight(std::int64_t desired, int weight_bits);

}  // namespace neuro::loihi
