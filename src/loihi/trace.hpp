#pragma once
// Synaptic trace state machines (paper Sec. II-B: "each synapse is
// associated with integer-valued synaptic variables and multiple presynaptic
// traces, and ... compartment with postsynaptic traces").
//
// A trace is a saturating unsigned integer that receives an impulse on every
// spike of its owner and decays exponentially with a 12-bit decay constant:
//     x <- x * (4096 - delta) / 4096            (every step)
//     x <- sat7(x + impulse)                    (on spike)
// With delta = 0 and impulse = 1 the trace is a plain spike counter — this
// is the configuration the EMSTDP mapping uses to hold the spike counts
// h, h_hat and Z = h + h_hat of the two-phase window (paper eq. 12).
//
// Decay uses *stochastic rounding* when a generator is supplied, as the
// silicon does: with plain truncation a low-valued trace loses at least one
// count per step and can never climb toward its rate equilibrium, which
// breaks every decay-based rate estimate (see the hw-decay ablation).

#include "common/fixed.hpp"
#include "common/rng.hpp"
#include "loihi/types.hpp"

namespace neuro::loihi {

/// Static configuration of one trace slot.
struct TraceConfig {
    std::int32_t impulse = 1;       ///< added on each spike of the owner
    std::int32_t decay = 0;         ///< 12-bit decay delta (0 = pure counter)
    TraceWindow window = TraceWindow::Both;
    int bits = 7;                   ///< saturation width (Loihi traces: 7)
};

/// Per-step decay of one trace value; a pure counter (decay == 0) is
/// untouched. With `rounding`, the fractional part of the 12-bit decay is
/// rounded stochastically (unbiased); without it, truncation toward zero.
/// Free-function form so the chip's SoA lanes (CompartmentBank) and any
/// AoS reference model share one definition.
inline void trace_tick(std::int32_t& value, const TraceConfig& cfg,
                       common::Rng* rounding = nullptr) {
    if (cfg.decay == 0) return;
    const std::int64_t num =
        static_cast<std::int64_t>(value) * (4096 - cfg.decay);
    if (rounding != nullptr) {
        const auto u = static_cast<std::int64_t>(rounding->next_u64() & 4095);
        value = static_cast<std::int32_t>((num + u) >> 12);
    } else {
        value = static_cast<std::int32_t>(num >> 12);
    }
}

/// Spike event of the trace's owner during `phase`.
inline void trace_on_spike(std::int32_t& value, const TraceConfig& cfg,
                           Phase phase) {
    if (cfg.window == TraceWindow::Phase1Only && phase != Phase::One) return;
    if (cfg.window == TraceWindow::Phase2Only && phase != Phase::Two) return;
    value = common::saturate_unsigned(
        static_cast<std::int64_t>(value) + cfg.impulse, cfg.bits);
}

/// Dynamic value of one trace slot (AoS form; the chip itself keeps traces
/// as flat int32 lanes and calls the free functions above).
struct TraceState {
    std::int32_t value = 0;

    void tick(const TraceConfig& cfg, common::Rng* rounding = nullptr) {
        trace_tick(value, cfg, rounding);
    }

    void on_spike(const TraceConfig& cfg, Phase phase) {
        trace_on_spike(value, cfg, phase);
    }

    void reset() { value = 0; }
};

}  // namespace neuro::loihi
