#pragma once
// Statistical device-variation and fault injection (paper Sec. I: in-hardware
// learning "provides the ability to compensate any device variation and/or
// environment noise in the inference stage").
//
// These helpers model three silicon non-idealities on top of the Chip's
// per-unit fault API:
//
//   * threshold mismatch — every compartment's firing threshold deviates
//     from nominal by a Gaussian fraction (process variation of the
//     comparator / charge pump);
//   * dead compartments — a fraction of units never fire (manufacturing
//     defects, permanently power-gated rows);
//   * stuck synapses — a fraction of synaptic memory cells ignore writes and
//     hold a fixed value.
//
// All injectors are deterministic in their seed, so the same "chip instance"
// can be recreated: the device-variation ablation deploys offline-trained
// weights onto a varied chip and then trains *the same* varied chip in
// hardware to show the compensation the paper motivates.

#include <cstdint>
#include <vector>

#include "loihi/chip.hpp"

namespace neuro::loihi {

/// Applies Gaussian multiplicative threshold mismatch to one population:
/// vth_offset = round(vth * N(0, sigma)), clamped so the effective threshold
/// stays >= 1. Returns the applied offsets (one per compartment).
std::vector<std::int32_t> apply_threshold_variation(Chip& chip, PopulationId pop,
                                                    double sigma,
                                                    std::uint64_t seed);

/// Kills round(fraction * size) distinct compartments of the population,
/// chosen uniformly. Returns how many were killed.
std::size_t kill_fraction(Chip& chip, PopulationId pop, double fraction,
                          std::uint64_t seed);

/// Sticks round(fraction * synapses) distinct synapses of the projection at
/// `value`, chosen uniformly. Returns how many were stuck.
std::size_t stick_fraction(Chip& chip, ProjectionId proj, double fraction,
                           std::int32_t value, std::uint64_t seed);

}  // namespace neuro::loihi
