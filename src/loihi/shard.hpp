#pragma once
// Multi-chip shard planning (the scaling axis the paper points at in
// Sec. III-C: one chip's core budget caps the mappable network, so larger
// models must partition across chips with spike traffic between them).
//
// The planner assigns whole populations to shards — a population is
// homogeneous and already mapped to dedicated cores, so it is the natural
// unit of placement — using greedy core-budget packing with a
// cut-minimizing affinity heuristic: each shard grows by repeatedly pulling
// in the unassigned population with the largest synapse count into the
// shard, so tightly-coupled layer groups (forward layer + its error twin,
// adjacent dense layers) land together and the synapses that must travel
// between chips are minimized.
//
// Plans are pure functions of their inputs: same demands, same edges, same
// limits, same shard count -> byte-identical plan, every time. This is load-
// bearing for the determinism contract of loihi::ShardedChip.

#include <cstddef>
#include <string>
#include <vector>

#include "loihi/types.hpp"

namespace neuro::loihi {

/// Core demand of one population (from MappingResult::layers).
struct PopulationDemand {
    std::string name;
    std::size_t cores = 0;
};

/// Synapse count between two populations (direction-insensitive for the
/// planner; duplicate pairs are summed).
struct PopulationAffinity {
    std::size_t a = 0;
    std::size_t b = 0;
    std::size_t synapses = 0;
};

/// Where every population landed.
struct ShardPlan {
    std::size_t num_shards = 1;
    std::vector<std::size_t> shard_of;        ///< per population
    std::vector<std::size_t> cores_per_shard;
    std::size_t total_cores = 0;
    /// Synapses whose endpoints live on different shards — the inter-chip
    /// spike traffic the router must carry.
    std::size_t cut_synapses = 0;

    bool single() const { return num_shards <= 1; }
};

/// Plans a partition of `pops` onto chips of `limits.num_cores` cores.
///
/// `num_shards == 0` (auto) uses the minimum shard count whose packing
/// fits; an explicit count spreads the load over exactly that many shards
/// (soft target ceil(total/num_shards) per shard, hard cap one chip).
///
/// Throws std::invalid_argument when any single population needs more cores
/// than one chip holds (populations are atomic — splitting one across chips
/// would put half a layer's fan-in behind the mesh), when an explicit shard
/// count cannot hold the network or cannot be reached (more shards
/// requested than the atomic populations can spread across), or on
/// malformed edges.
ShardPlan plan_shards(const std::vector<PopulationDemand>& pops,
                      const std::vector<PopulationAffinity>& edges,
                      const ChipLimits& limits, std::size_t num_shards = 0);

}  // namespace neuro::loihi
