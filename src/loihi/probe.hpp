#pragma once
// Pull-based probes, the simulator's equivalent of NxSDK's spike/state
// probes: the caller samples after each step (or each phase) and the probe
// accumulates a time series that can be inspected or dumped to CSV.
//
// Probes are deliberately outside the Chip class: they read only through
// the public readout API, so they can never perturb the simulation, and any
// number can watch the same population.

#include <cstdint>
#include <string>
#include <vector>

#include "loihi/chip.hpp"

namespace neuro::loihi {

/// Records (step, neuron) pairs for every spike of a population.
class SpikeProbe {
public:
    SpikeProbe(const Chip& chip, PopulationId pop);

    /// Call once per completed chip step.
    void sample();

    const std::vector<std::pair<std::uint64_t, std::uint32_t>>& events() const {
        return events_;
    }
    /// Per-neuron spike totals over everything sampled so far.
    std::vector<std::uint32_t> totals() const;
    void clear() { events_.clear(); }

    /// Writes "step,neuron" rows; returns the file path.
    std::string write_csv(const std::string& dir, const std::string& name) const;

private:
    const Chip& chip_;
    PopulationId pop_;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> events_;
};

/// Which scalar a StateProbe records.
enum class StateField : std::uint8_t {
    Membrane,
    Current,
    TraceX1,
    TraceY1,
    TraceTag,
};

/// Records a per-step time series of one state field for selected neurons.
class StateProbe {
public:
    StateProbe(const Chip& chip, PopulationId pop, std::vector<std::size_t> neurons,
               StateField field);

    void sample();

    /// series()[k] is the trajectory of the k-th watched neuron.
    const std::vector<std::vector<std::int64_t>>& series() const { return series_; }
    const std::vector<std::uint64_t>& steps() const { return steps_; }
    void clear();

    /// Writes "step,n<idx0>,n<idx1>,..." rows; returns the file path.
    std::string write_csv(const std::string& dir, const std::string& name) const;

private:
    const Chip& chip_;
    PopulationId pop_;
    std::vector<std::size_t> neurons_;
    StateField field_;
    std::vector<std::uint64_t> steps_;
    std::vector<std::vector<std::int64_t>> series_;
};

}  // namespace neuro::loihi
