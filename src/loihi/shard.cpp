#include "loihi/shard.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace neuro::loihi {

namespace {

constexpr std::size_t kUnassigned = std::numeric_limits<std::size_t>::max();

/// One packing attempt. `balance` spreads the load toward equal shards
/// (explicit shard counts: per-shard soft target of the remaining cores
/// divided by the remaining shards); without it each shard packs to the
/// hard one-chip budget, which minimizes the shard count (auto mode).
/// Returns false when some population cannot be placed under the hard cap.
bool pack(const std::vector<PopulationDemand>& pops,
          const std::vector<std::vector<std::size_t>>& affinity,
          std::size_t hard_cap, std::size_t num_shards, bool balance,
          std::vector<std::size_t>& shard_of,
          std::vector<std::size_t>& cores_per_shard) {
    const std::size_t n = pops.size();
    shard_of.assign(n, kUnassigned);
    cores_per_shard.clear();

    std::size_t remaining_cores = 0;
    for (const auto& p : pops) remaining_cores += p.cores;
    std::size_t unassigned = n;

    for (std::size_t s = 0; s < num_shards && unassigned > 0; ++s) {
        const bool last = s + 1 == num_shards;
        // Soft target for this shard: an even split of what is left across
        // the shards still to open, never below the largest remaining
        // population (which must land somewhere), never above one chip.
        std::size_t cap = hard_cap;
        if (balance && !last) {
            std::size_t target =
                (remaining_cores + (num_shards - s) - 1) / (num_shards - s);
            for (std::size_t p = 0; p < n; ++p)
                if (shard_of[p] == kUnassigned) target = std::max(target, pops[p].cores);
            cap = std::min(hard_cap, target);
        }

        // Seed with the lowest-index unassigned population (stable, and
        // layer build order starts at the input).
        std::size_t cores = 0;
        for (std::size_t p = 0; p < n; ++p) {
            if (shard_of[p] == kUnassigned) {
                shard_of[p] = s;
                cores = pops[p].cores;
                remaining_cores -= pops[p].cores;
                --unassigned;
                break;
            }
        }

        // Grow: repeatedly admit the unassigned population with the largest
        // synapse affinity to this shard (ties -> lowest index). Populations
        // with no coupling to the shard open a later shard instead — except
        // on the last shard, which must take whatever still fits.
        for (;;) {
            std::size_t best = kUnassigned;
            std::size_t best_aff = 0;
            for (std::size_t p = 0; p < n; ++p) {
                if (shard_of[p] != kUnassigned) continue;
                if (cores + pops[p].cores > cap) continue;
                std::size_t aff = 0;
                for (std::size_t q = 0; q < n; ++q)
                    if (shard_of[q] == s) aff += affinity[p][q];
                if (best == kUnassigned || aff > best_aff) {
                    best = p;
                    best_aff = aff;
                }
            }
            if (best == kUnassigned) break;
            if (best_aff == 0 && !last) break;
            shard_of[best] = s;
            cores += pops[best].cores;
            remaining_cores -= pops[best].cores;
            --unassigned;
        }
        cores_per_shard.push_back(cores);
    }
    return unassigned == 0;
}

}  // namespace

ShardPlan plan_shards(const std::vector<PopulationDemand>& pops,
                      const std::vector<PopulationAffinity>& edges,
                      const ChipLimits& limits, std::size_t num_shards) {
    const std::size_t n = pops.size();
    ShardPlan plan;
    if (n == 0) return plan;

    std::size_t total = 0;
    for (const auto& p : pops) {
        if (p.cores > limits.num_cores)
            throw std::invalid_argument(
                "plan_shards: population '" + p.name + "' needs " +
                std::to_string(p.cores) + " cores but one chip has " +
                std::to_string(limits.num_cores) +
                " (populations cannot split across chips)");
        total += p.cores;
    }
    plan.total_cores = total;

    std::vector<std::vector<std::size_t>> affinity(
        n, std::vector<std::size_t>(n, 0));
    for (const auto& e : edges) {
        if (e.a >= n || e.b >= n)
            throw std::invalid_argument("plan_shards: edge references population " +
                                        std::to_string(std::max(e.a, e.b)) +
                                        " but there are only " + std::to_string(n));
        if (e.a == e.b) continue;  // intra-population synapses never cross
        affinity[e.a][e.b] += e.synapses;
        affinity[e.b][e.a] += e.synapses;
    }

    std::vector<std::size_t> shard_of;
    std::vector<std::size_t> cores_per_shard;
    bool packed = false;
    if (num_shards == 0) {
        // Auto: the smallest shard count whose packing fits. Each population
        // fits one chip, so k == n always succeeds.
        std::size_t k = std::max<std::size_t>(
            1, (total + limits.num_cores - 1) / limits.num_cores);
        for (; k <= n && !packed; ++k)
            packed = pack(pops, affinity, limits.num_cores, k,
                          /*balance=*/false, shard_of, cores_per_shard);
    } else {
        // Explicit: spread over the requested count (soft-balanced); if the
        // balanced heuristic strands a population, retry with every shard
        // allowed to fill to the hard budget before giving up.
        packed = (pack(pops, affinity, limits.num_cores, num_shards,
                       /*balance=*/true, shard_of, cores_per_shard) &&
                  cores_per_shard.size() == num_shards) ||
                 (pack(pops, affinity, limits.num_cores, num_shards,
                       /*balance=*/false, shard_of, cores_per_shard) &&
                  cores_per_shard.size() == num_shards);
        if (!packed)
            throw std::invalid_argument(
                "plan_shards: network (" + std::to_string(n) +
                " populations, " + std::to_string(total) +
                " cores) does not spread across exactly " +
                std::to_string(num_shards) + " chips of " +
                std::to_string(limits.num_cores) +
                " cores (populations are atomic)");
    }
    if (!packed)
        throw std::invalid_argument("plan_shards: packing failed");  // unreachable

    plan.shard_of = std::move(shard_of);
    plan.cores_per_shard = std::move(cores_per_shard);
    plan.num_shards = plan.cores_per_shard.size();
    for (const auto& e : edges)
        if (e.a != e.b && plan.shard_of[e.a] != plan.shard_of[e.b])
            plan.cut_synapses += e.synapses;
    return plan;
}

}  // namespace neuro::loihi
