#include "serve/server.hpp"

#include <stdexcept>
#include <utility>

namespace neuro::serve {

namespace {

InferenceResult rejected_result(RejectReason reason, Priority cls) {
    InferenceResult r;
    r.status = Status::Rejected;
    r.reject = reason;
    r.priority = cls;
    return r;
}

}  // namespace

const char* to_string(Status s) {
    switch (s) {
        case Status::Ok: return "ok";
        case Status::Rejected: return "rejected";
        case Status::Error: return "error";
    }
    return "?";
}

const char* to_string(RejectReason r) {
    switch (r) {
        case RejectReason::None: return "none";
        case RejectReason::QueueFull: return "queue-full";
        case RejectReason::Shutdown: return "shutdown";
        case RejectReason::Overload: return "overload";
        case RejectReason::DeadlineExceeded: return "deadline-exceeded";
    }
    return "?";
}

Server::Server(std::shared_ptr<const runtime::CompiledModel> model,
               ServerOptions options)
    : model_(std::move(model)),
      options_(options),
      clock_(options.clock ? options.clock : default_clock()),
      queue_(options.queue_capacity, options.admission, clock_) {
    if (!model_) throw std::invalid_argument("Server: null model");
    if (options_.workers == 0)
        throw std::invalid_argument("Server: zero workers");
    if (options_.batch.max_batch == 0)
        throw std::invalid_argument("Server: zero max_batch");
    if (options_.admission.feedback_capacity > 0)
        feedback_ = std::make_shared<FeedbackQueue>(
            options_.admission.feedback_capacity, options_.admission, clock_);
    sessions_ = model_->open_sessions(options_.workers);
}

Server::~Server() { shutdown(); }

void Server::start() {
    std::lock_guard<std::mutex> lock(lifecycle_m_);
    start_locked();
}

void Server::start_locked() {
    if (started_.load()) return;  // lifecycle_m_ is held: no concurrent start
    // start_time_ is written before started_ flips so the unsynchronized
    // read in elapsed_seconds() (gated on started_) sees a complete value.
    start_time_ = std::chrono::steady_clock::now();
    workers_.reserve(options_.workers);
    for (std::size_t w = 0; w < options_.workers; ++w)
        workers_.emplace_back([this, w] { worker_loop(w); });
    started_.store(true);
}

void Server::shutdown() {
    std::lock_guard<std::mutex> lock(lifecycle_m_);
    // Start-before-drain so requests queued against a never-started server
    // still run to completion (the accepted-implies-completed guarantee).
    start_locked();
    closing_.store(true);
    queue_.close();
    // Closing the feedback stream is the learner's end-of-input signal: it
    // drains what was accepted and stops (online::OnlineEngine).
    if (feedback_) feedback_->close();
    if (joined_.exchange(true)) return;
    for (auto& w : workers_)
        if (w.joinable()) w.join();
    frozen_elapsed_s_.store(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_time_)
            .count());
}

InferenceHandle Server::enqueue(Request::Kind kind, const common::Tensor& image,
                                SubmitOptions opt) {
    Request req;
    req.kind = kind;
    req.image = image;
    auto future = req.promise.get_future();
    enqueue_request(std::move(req), opt);
    return InferenceHandle(std::move(future));
}

void Server::enqueue_async(Request::Kind kind, const common::Tensor& image,
                           SubmitOptions opt, CompletionFn done) {
    Request req;
    req.kind = kind;
    req.image = image;
    req.on_complete = std::move(done);
    enqueue_request(std::move(req), opt);
}

void Server::enqueue_request(Request req, SubmitOptions opt) {
    if (closing_.load()) {
        metrics_.on_reject();
        req.resolve(rejected_result(RejectReason::Shutdown, opt.priority));
        return;
    }
    // A relative SLO becomes an absolute Clock deadline at the intake; the
    // queue compares against the same clock at the head.
    const std::uint64_t deadline_us =
        opt.deadline_us == 0 ? 0 : clock_->now_us() + opt.deadline_us;

    bool accepted = false;
    RejectReason refusal = RejectReason::Shutdown;
    if (options_.backpressure == Backpressure::Block) {
        // push() returns false only if the queue closed while waiting.
        accepted = queue_.push(req, opt.priority, deadline_us);
    } else {
        switch (queue_.try_push(req, opt.priority, deadline_us)) {
            case AdmissionQueue<Request>::Push::Ok: accepted = true; break;
            case AdmissionQueue<Request>::Push::Full:
                refusal = RejectReason::QueueFull;
                break;
            case AdmissionQueue<Request>::Push::Closed: break;
        }
    }
    if (!accepted) {
        metrics_.on_reject();
        req.resolve(rejected_result(refusal, opt.priority));
    } else {
        metrics_.on_accept(queue_.size());
    }
}

bool Server::submit_feedback(const common::Tensor& image, std::size_t label) {
    // Label validation happens at the intake, not on the learner thread: a
    // malformed client sample must never be able to take the learner down.
    if (!feedback_ || closing_.load() || label >= model_->spec().classes) {
        metrics_.on_feedback_drop();
        return false;
    }
    FeedbackSample sample{image, label};
    if (feedback_->try_push(sample, Priority::Feedback) !=
        FeedbackQueue::Push::Ok) {
        metrics_.on_feedback_drop();
        return false;
    }
    return true;
}

void Server::worker_loop(std::size_t worker_index) {
    runtime::Session& session = *sessions_[worker_index];
    std::vector<Admitted<Request>> batch;
    std::vector<double> ok_latencies_us;
    std::vector<double> sojourns_us;
    // Head drops resolve here, on the worker thread: the request WAS
    // accepted, so its future must complete — as an explicit rejection.
    const auto reject_drop = [this](Dropped<Request>&& d) {
        InferenceResult res = rejected_result(
            d.cause == DropCause::DeadlineExceeded
                ? RejectReason::DeadlineExceeded
                : RejectReason::Overload,
            d.cls);
        res.sojourn_us = static_cast<double>(d.sojourn_us);
        metrics_.on_admission_drop(res.sojourn_us);
        d.value.resolve(std::move(res));
    };
    while (collect_admitted(queue_, options_.batch, batch, reject_drop)) {
        // Batch boundary: adopt any newly published weight image before the
        // batch runs, so every request in it executes against one version.
        if (session.refresh()) metrics_.on_weight_refresh();
        ok_latencies_us.clear();
        sojourns_us.clear();
        std::size_t error_count = 0;
        for (Admitted<Request>& a : batch) {
            Request& r = a.value;
            InferenceResult res;
            res.batch_size = batch.size();
            res.priority = a.cls;
            res.sojourn_us = static_cast<double>(a.sojourn_us);
            try {
                if (r.kind == Request::Kind::Predict) {
                    res.label = session.predict(r.image);
                } else {
                    res.counts = session.output_counts(r.image);
                    std::size_t best = 0;
                    for (std::size_t j = 1; j < res.counts.size(); ++j)
                        if (res.counts[j] > res.counts[best]) best = j;
                    res.label = best;
                }
                res.status = Status::Ok;
            } catch (const std::exception& e) {
                res.status = Status::Error;
                res.error = e.what();
            }
            const std::uint64_t now = clock_->now_us();
            res.latency_us = static_cast<double>(
                now >= a.enqueued_at_us ? now - a.enqueued_at_us : 0);
            sojourns_us.push_back(res.sojourn_us);
            if (res.status == Status::Ok)
                ok_latencies_us.push_back(res.latency_us);
            else
                ++error_count;
            r.resolve(std::move(res));
        }
        metrics_.on_batch(batch.size(), ok_latencies_us, sojourns_us,
                          error_count);
    }
}

double Server::elapsed_seconds() const {
    const double frozen = frozen_elapsed_s_.load();
    if (frozen >= 0.0) return frozen;
    if (!started_.load()) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_time_)
        .count();
}

ServerStats Server::stats() const {
    return metrics_.snapshot(elapsed_seconds(), queue_.counters(),
                             feedback_ ? feedback_->counters()
                                       : AdmissionCounters{});
}

}  // namespace neuro::serve
