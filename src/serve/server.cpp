#include "serve/server.hpp"

#include <stdexcept>
#include <utility>

namespace neuro::serve {

const char* to_string(Status s) {
    switch (s) {
        case Status::Ok: return "ok";
        case Status::Rejected: return "rejected";
        case Status::Error: return "error";
    }
    return "?";
}

const char* to_string(RejectReason r) {
    switch (r) {
        case RejectReason::None: return "none";
        case RejectReason::QueueFull: return "queue-full";
        case RejectReason::Shutdown: return "shutdown";
        case RejectReason::Overload: return "overload";
        case RejectReason::DeadlineExceeded: return "deadline-exceeded";
        case RejectReason::UnknownModel: return "unknown-model";
    }
    return "?";
}

Server::Server(std::shared_ptr<const runtime::CompiledModel> model,
               ServerOptions options)
    : options_(options) {
    // Validate with the historical messages before the router sees it.
    if (!model) throw std::invalid_argument("Server: null model");
    if (options_.workers == 0)
        throw std::invalid_argument("Server: zero workers");
    if (options_.batch.max_batch == 0)
        throw std::invalid_argument("Server: zero max_batch");
    RouterOptions ropt;
    ropt.workers = options_.workers;
    ropt.queue_capacity = options_.queue_capacity;
    ropt.batch = options_.batch;
    ropt.backpressure = options_.backpressure;
    ropt.admission = options_.admission;
    ropt.clock = options_.clock;
    // No fleet_dir and no budget: the fleet of one, permanently resident.
    router_ = std::make_shared<ModelRouter>(std::move(model), std::move(ropt));
}

}  // namespace neuro::serve
