#pragma once
// neuro::serve::ModelRouter — multi-model, multi-tenant serving over one
// admission layer (docs/ARCHITECTURE.md §12).
//
//   submit{model:"a"} ──┐
//   submit{model:"b"} ──┼─► ONE AdmissionQueue ─► worker ─► entry "a" pool
//   submit{model:""}  ──┘    (global CoDel /        │        entry "b" pool
//                             priority / deadline)  └──────► default pool
//
// One router fronts a *fleet* of named model entries behind the single
// AdmissionQueue the engine already had, so priority classes, CoDel head
// drops, and SLO deadlines stay global properties of the service while
// dispatch routes each admitted request to its model's per-worker Session
// pool. Entry lifecycle:
//
//   * Lazy load — the first request (or an explicit `load`) addressed to a
//     name materializes it from an online::ModelRegistry directory at
//     RouterOptions::fleet_dir/<name>: the last good version's snapshot is
//     compiled onto the default model's topology (the fleet shares one
//     network shape; per-tenant entries differ in weights, which is the
//     paper's per-task EMSTDP deployment story).
//   * LRU eviction — resident plastic-weight bytes are accounted per arm;
//     when they exceed RouterOptions::resident_budget_bytes the
//     least-recently-dispatched entry is dropped. Pinned entries and
//     entries with requests in flight are NEVER evicted (the budget is a
//     soft ceiling), and eviction only frees memory: a queued request for
//     an evicted entry simply reloads it at dispatch — an accepted request
//     is never dropped by eviction.
//   * Pin / unload — `pin(name, ver)` publishes registry version `ver` as
//     the entry's base weights (the pool adopts it at batch boundaries via
//     the PR 5 COW channel) and makes the entry eviction-immune; `unload`
//     drops residency and the pin. The default entry ("") is permanently
//     pinned.
//   * Canary — `set_canary(name, ver, pct)` loads version `ver` as a
//     second session pool and routes a deterministic hash(request_id)-based
//     pct% of the entry's traffic to it, with per-arm dispatch/ok/error
//     counters. Promotion is `pin(name, ver)` + clearing the canary;
//     rollback is just clearing it — candidate weights never touch the
//     base arm, composing with the online engine's shadow-eval gate.
//
// Threading: one mutex guards the entry table, LRU state, and byte
// accounting. Workers take it only to resolve an entry and bump its
// inflight count; inference runs outside the lock, and the inflight count
// is what makes that safe against eviction (an entry's sessions are only
// dropped at inflight == 0, under the same mutex). Lazy loads compile
// under the lock — rare, bounded, and it keeps every load/evict/dispatch
// interleaving trivially race-free (tests/router_test.cpp hammers this
// under TSan).
//
// serve::Server is now a thin single-model wrapper over this class, so the
// two share one engine: admission, micro-batching, refresh-at-batch-
// boundary, stats, and the accepted-implies-completed guarantee behave
// identically whether or not a fleet is configured.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "common/tensor.hpp"
#include "obs/flight_recorder.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/admission.hpp"
#include "serve/clock.hpp"
#include "serve/feedback.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "serve/stats.hpp"

namespace neuro::serve {

enum class Backpressure { Block, Shed };

struct RouterOptions {
    std::size_t workers = 2;         ///< worker threads == sessions per pool
    std::size_t queue_capacity = 64; ///< bounded intake; the backpressure knob
    BatchPolicy batch;               ///< micro-batch coalescing policy
    Backpressure backpressure = Backpressure::Block;
    /// Head-of-queue admission control — global across the whole fleet.
    AdmissionConfig admission;
    /// Time source for admission decisions and latency accounting; null
    /// (default) uses the shared monotonic SteadyClock.
    std::shared_ptr<Clock> clock;
    /// Root directory holding one online::ModelRegistry subdirectory per
    /// model name — the lazy-load source. "" disables fleet loading (the
    /// router then serves only its default model, i.e. plain Server mode).
    std::string fleet_dir;
    /// Registry directory for the DEFAULT entry's pin/canary weights
    /// (typically the same registry the online engine records into). ""
    /// means the default entry cannot canary.
    std::string default_registry_dir;
    /// Resident plastic-weight budget in bytes, summed over every loaded
    /// arm fleet-wide (the always-pinned default entry counts too). 0 =
    /// unlimited. Soft ceiling: pinned/inflight entries are never evicted.
    std::size_t resident_budget_bytes = 0;
    /// Flight recorder for control-plane events (admission drops, LRU
    /// evictions, model loads, canary changes, slow requests —
    /// docs/ARCHITECTURE.md §14). Non-owning; must outlive the router.
    /// Null disables recording. neurod wires obs::default_recorder().
    obs::FlightRecorder* recorder = nullptr;
    /// Slow-request log threshold: a dispatched request whose wall latency
    /// exceeds this many microseconds is recorded as a SlowRequest event
    /// with its full span breakdown (phase stamps are taken for every
    /// request while this is nonzero, traced or not). 0 disables.
    std::uint64_t slow_request_us = 0;
};

/// Point-in-time view of one fleet entry (the control plane's `models` /
/// per-model `stats` JSON). Plain data, safe to copy around.
struct ModelEntryStats {
    std::string name;                  ///< "" = the default entry
    bool resident = false;             ///< sessions are loaded right now
    bool pinned = false;               ///< eviction-immune
    std::uint64_t base_version = 0;    ///< registry version of the base arm
                                       ///< (0 = the compiled-in weights)
    std::uint64_t canary_version = 0;  ///< 0 = no canary arm
    std::uint32_t canary_pct = 0;      ///< % of traffic on the canary arm
    std::uint64_t base_dispatched = 0; ///< requests run on the base arm
    std::uint64_t base_ok = 0;
    std::uint64_t base_errors = 0;
    std::uint64_t canary_dispatched = 0;
    std::uint64_t canary_ok = 0;
    std::uint64_t canary_errors = 0;
    std::uint64_t loads = 0;           ///< times this entry became resident
    std::uint64_t evictions = 0;       ///< times the LRU evictor dropped it
    std::size_t weight_bytes = 0;      ///< resident bytes (both arms)
    std::uint64_t last_used = 0;       ///< LRU sequence (higher = hotter)
    std::uint64_t inflight = 0;        ///< requests executing right now
    /// Admission drops attributed to this entry (same names as the global
    /// ServerStats schema; the global totals also count requests for the
    /// default entry "", which these per-model rows break out).
    std::uint64_t codel_dropped = 0;
    std::uint64_t deadline_dropped = 0;
    /// Per-model dispatch latency (accept → complete, Ok outcomes only),
    /// from the entry's own log-bucketed histogram.
    std::uint64_t latency_count = 0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double mean_us = 0.0;
    double max_us = 0.0;
};

class ModelRouter {
public:
    /// Validates options, installs `default_model` as the permanently
    /// pinned entry "" and opens its session pool. Workers do not run
    /// until start(); submissions before start() queue up (or shed once
    /// the queue fills). Throws std::invalid_argument on a null model or
    /// degenerate options.
    ModelRouter(std::shared_ptr<const runtime::CompiledModel> default_model,
                RouterOptions options = {});
    /// Drains and joins (shutdown()).
    ~ModelRouter();

    ModelRouter(const ModelRouter&) = delete;
    ModelRouter& operator=(const ModelRouter&) = delete;

    /// Spawns the worker threads. Idempotent; harmless after shutdown().
    void start();

    /// Graceful shutdown: refuses new submissions, resolves every accepted
    /// request (dispatch or admission drop), then joins the workers.
    /// Idempotent; starts first if never started so queued work drains.
    void shutdown();

    bool running() const { return started_.load() && !joined_.load(); }

    // ---- the model-addressed submit API ------------------------------------
    // One options struct for every verb; opt.model picks the fleet entry.

    /// Async argmax inference, bit-identical to a dedicated Session on the
    /// addressed model. When opt.on_complete is set the request resolves
    /// through the callback instead and the returned handle is invalid.
    InferenceHandle submit(const common::Tensor& image, SubmitOptions opt = {});

    /// Async phase-1 spike counts (Session::output_counts semantics).
    InferenceHandle submit_counts(const common::Tensor& image,
                                  SubmitOptions opt = {});

    /// Push-style submit: requires opt.on_complete (throws
    /// std::invalid_argument otherwise). See CompletionFn for the contract.
    void submit_async(const common::Tensor& image, SubmitOptions opt);
    void submit_counts_async(const common::Tensor& image, SubmitOptions opt);

    /// Hands a labeled observation to the Feedback class, tagged with
    /// opt.model. Best-effort: returns false — dropping the sample — when
    /// feedback is disabled, the queue is full, the label is out of range,
    /// the model name is unknown, or the router is shutting down.
    bool submit_feedback(const common::Tensor& image, std::size_t label,
                         const SubmitOptions& opt = {});

    /// The feedback stream the online learner drains (null when
    /// admission.feedback_capacity == 0). Closed by shutdown().
    const std::shared_ptr<FeedbackQueue>& feedback_queue() const {
        return feedback_;
    }

    // ---- fleet control plane (thread-safe; throws on failure) --------------

    /// Makes `name` resident (lazy-load path, forced), returning the base
    /// registry version it serves. Throws when the name is unknown or its
    /// registry is empty/corrupt.
    std::uint64_t load(const std::string& name);

    /// Drops residency, pin, and canary of `name`. Throws for the default
    /// entry, an unknown name, or when in-flight requests keep the entry
    /// busy past a short grace period. Queued requests for the entry are
    /// NOT dropped — they reload it at dispatch.
    void unload(const std::string& name);

    /// Publishes registry version `version` as the entry's base weights
    /// (resident pools adopt at their next batch boundary) and pins the
    /// entry against eviction. version == 0 pins the current weights.
    /// Returns the base version now serving.
    std::uint64_t pin(const std::string& name, std::uint64_t version);

    /// Routes `pct`% (0..100) of the entry's traffic to registry version
    /// `version` on a second session pool. pct == 0 clears the canary.
    /// The split is deterministic in SubmitOptions::request_id.
    void set_canary(const std::string& name, std::uint64_t version,
                    std::uint32_t pct);

    /// Deterministic canary-arm decision: splitmix64(request_id) % 100 <
    /// pct. Exposed so tests and operators can predict the split.
    static bool canary_arm(std::uint64_t request_id, std::uint32_t pct);

    // ---- observability -----------------------------------------------------

    /// Every known entry, default first, then fleet entries by name.
    std::vector<ModelEntryStats> model_stats() const;
    /// One entry's view; throws when `name` was never registered.
    ModelEntryStats model_stats(const std::string& name) const;
    /// Resident plastic-weight bytes across all arms right now.
    std::size_t resident_bytes() const;

    /// Global counters + latency percentiles (the ServerStats schema —
    /// admission is fleet-wide, so these aggregate across models).
    ServerStats stats() const;

    const RouterOptions& options() const { return options_; }
    const std::shared_ptr<Clock>& clock() const { return clock_; }
    const std::shared_ptr<const runtime::CompiledModel>& default_model()
        const {
        return default_model_;
    }

private:
    /// One named fleet member. All fields are guarded by entries_m_ except
    /// the Sessions' *contents*, which a worker may only touch while it
    /// holds a nonzero share of `inflight` (taken under the mutex).
    struct Entry {
        std::string name;
        // Base arm. `model` doubles as the residency flag (null = cold).
        std::shared_ptr<const runtime::CompiledModel> model;
        std::vector<std::unique_ptr<runtime::Session>> sessions;
        // Canary arm: its own compiled model so candidate weights never
        // touch the base pool.
        std::shared_ptr<const runtime::CompiledModel> canary_model;
        std::vector<std::unique_ptr<runtime::Session>> canary_sessions;
        bool pinned = false;
        std::uint64_t base_version = 0;
        std::uint64_t canary_version = 0;
        std::uint32_t canary_pct = 0;
        std::size_t base_bytes = 0;
        std::size_t canary_bytes = 0;
        std::uint64_t lru_seq = 0;
        /// Per-arm so a canary can be torn down under live base traffic:
        /// once canary_pct drops to 0 the canary arm drains on its own.
        std::uint64_t base_inflight = 0;
        std::uint64_t canary_inflight = 0;
        std::uint64_t loads = 0;
        std::uint64_t evictions = 0;
        std::uint64_t base_dispatched = 0, base_ok = 0, base_errors = 0;
        std::uint64_t canary_dispatched = 0, canary_ok = 0,
                      canary_errors = 0;
        /// Head drops attributed to this entry by the reject path.
        std::uint64_t codel_dropped = 0, deadline_dropped = 0;
        /// Per-model accept→complete latency (Ok outcomes; both arms).
        common::LatencyHistogram latency;
        /// Per-worker ordinal of the last batch whose boundary refreshed
        /// the base session — refresh runs once per (entry, worker, batch).
        std::vector<std::uint64_t> refreshed_batch;
    };

    /// What acquire_slot hands a worker: a session it may use lock-free
    /// (inflight was bumped) or an error explaining why dispatch failed.
    struct DispatchSlot {
        Entry* entry = nullptr;
        runtime::Session* session = nullptr;
        bool canary = false;
        bool do_refresh = false;
        std::string error;
    };

    InferenceHandle enqueue(Request::Kind kind, const common::Tensor& image,
                            SubmitOptions opt);
    void enqueue_request(Request req, const SubmitOptions& opt);
    void start_locked();
    void worker_loop(std::size_t worker_index);
    double elapsed_seconds() const;

    /// Looks `name` up, registering a cold entry when fleet_dir has a
    /// registry directory for it. Throws std::invalid_argument for names
    /// the fleet cannot serve. Requires entries_m_.
    Entry& find_or_register_locked(const std::string& name);
    /// Makes `e` resident at `version` (0 = the registry's last good),
    /// restoring a configured canary arm, charging the budget, and running
    /// the evictor. Requires entries_m_.
    void load_locked(Entry& e, std::uint64_t version);
    /// Evicts LRU entries (never pinned / inflight / `keep`) until the
    /// budget holds or nothing is evictable. Requires entries_m_.
    void evict_locked(const Entry* keep);
    /// Frees both arms of `e` (caller guarantees inflight == 0). An LRU
    /// evict keeps the canary configuration so a reload restores the arm;
    /// an explicit unload clears everything. Requires entries_m_.
    void drop_arms_locked(Entry& e, bool keep_canary_config);
    void drop_canary_arm_locked(Entry& e);
    /// The registry directory serving `e` ("" when it has none).
    std::string registry_dir_locked(const Entry& e) const;
    DispatchSlot acquire_slot(const Request& r, std::size_t worker,
                              std::uint64_t batch_ordinal);
    /// `latency_us` < 0 skips the per-model histogram (error outcomes).
    void release_slot(const DispatchSlot& slot, bool ok, double latency_us);
    /// Attributes an admission head drop to its entry's counters and the
    /// flight recorder (called outside the queue lock).
    void on_head_drop(const Dropped<Request>& d);
    ModelEntryStats entry_stats_locked(const Entry& e) const;

    std::mutex lifecycle_m_;  // serializes start()/shutdown()
    std::shared_ptr<const runtime::CompiledModel> default_model_;
    RouterOptions options_;
    std::shared_ptr<Clock> clock_;
    AdmissionQueue<Request> queue_;
    std::shared_ptr<FeedbackQueue> feedback_;
    std::vector<std::thread> workers_;
    ServerMetrics metrics_;

    mutable std::mutex entries_m_;
    /// Ordered so model_stats() lists deterministically; "" sorts first.
    std::map<std::string, std::unique_ptr<Entry>> entries_;
    std::uint64_t lru_clock_ = 0;
    std::size_t resident_bytes_ = 0;

    std::atomic<bool> started_{false};
    std::atomic<bool> closing_{false};
    std::atomic<bool> joined_{false};
    std::chrono::steady_clock::time_point start_time_{};
    std::atomic<double> frozen_elapsed_s_{-1.0};
};

}  // namespace neuro::serve
