#pragma once
// Micro-batching scheduler for neuro::serve. Each worker repeatedly calls
// collect_batch(): block for the first request, then coalesce more until
// the batch is full or max_delay_us has elapsed since the first arrival —
// whichever hits first. Coalescing trades a bounded latency increase (at
// most max_delay_us of extra queueing for the first request in a batch)
// for fewer wake-ups per request and batch-sized dispatch units, which is
// what a phase-aligned neuromorphic backend wants: EMSTDP inference runs
// in fixed-length phases, so requests dispatched together pipeline through
// one session without re-arming the worker in between.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bounded_queue.hpp"

namespace neuro::serve {

struct BatchPolicy {
    /// Upper bound on requests per dispatch; 1 disables coalescing.
    std::size_t max_batch = 8;
    /// How long a batch may wait for company after its first request.
    std::uint64_t max_delay_us = 200;
};

/// Collects one micro-batch from `q` into `out` (cleared first). Blocks
/// until at least one item is available; returns false only when the queue
/// is closed and drained — the worker's signal to exit. A timeout or a
/// close mid-coalesce simply dispatches the partial batch.
template <typename T>
bool collect_batch(common::BoundedQueue<T>& q, const BatchPolicy& policy,
                   std::vector<T>& out) {
    out.clear();
    T first;
    if (!q.pop(first)) return false;
    out.push_back(std::move(first));
    if (policy.max_batch <= 1) return true;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(policy.max_delay_us);
    while (out.size() < policy.max_batch) {
        T next;
        if (!q.pop_until(next, deadline)) break;
        out.push_back(std::move(next));
    }
    return true;
}

}  // namespace neuro::serve
