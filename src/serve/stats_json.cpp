// serve::stats_to_json — the one ServerStats JSON schema, shared by the
// neurod control socket (`stats` command), the socket-mode load bench, and
// anything else that wants the full snapshot rather than a bench row.

#include <string>

#include "common/json.hpp"
#include "serve/stats.hpp"

namespace neuro::serve {

namespace {

std::string class_array(const std::array<std::uint64_t, kPriorityClasses>& a) {
    std::string out = "[";
    for (std::size_t c = 0; c < kPriorityClasses; ++c) {
        if (c > 0) out += ",";
        out += std::to_string(a[c]);
    }
    return out + "]";
}

}  // namespace

std::string stats_to_json(const ServerStats& s) {
    common::JsonObject o;
    o.add("accepted", s.accepted)
        .add("rejected", s.rejected)
        .add("completed", s.completed)
        .add("errors", s.errors)
        .add("batches", s.batches)
        .add_raw("class_accepted", class_array(s.class_accepted))
        .add_raw("class_codel_dropped", class_array(s.class_codel_dropped))
        .add_raw("class_deadline_dropped",
                 class_array(s.class_deadline_dropped))
        .add("codel_dropped", s.codel_dropped)
        .add("deadline_dropped", s.deadline_dropped)
        .add("drop_state_entries", s.drop_state_entries)
        .add("sojourn_p50_us", s.sojourn_p50_us)
        .add("sojourn_p95_us", s.sojourn_p95_us)
        .add("sojourn_p99_us", s.sojourn_p99_us)
        .add("sojourn_max_us", s.sojourn_max_us)
        .add("weight_refreshes", s.weight_refreshes)
        .add("feedback_dropped", s.feedback_dropped)
        .add("mean_batch", s.mean_batch)
        .add("max_batch", static_cast<std::uint64_t>(s.max_batch))
        .add("peak_queue_depth", static_cast<std::uint64_t>(s.peak_queue_depth))
        .add("p50_us", s.p50_us)
        .add("p95_us", s.p95_us)
        .add("p99_us", s.p99_us)
        .add("mean_us", s.mean_us)
        .add("max_us", s.max_us)
        .add("elapsed_s", s.elapsed_s)
        .add("throughput_rps", s.throughput_rps);
    return o.str();
}

}  // namespace neuro::serve
