#pragma once
// Labeled-feedback intake for learning-while-serving (neuro::online,
// docs/ARCHITECTURE.md §9). Clients that learn the true label after (or
// alongside) an inference hand it back through Server::submit_feedback;
// the samples flow through the Feedback class of the admission layer —
// an AdmissionQueue running the same CoDel discipline as the request
// queue — which the background learner (online::OnlineEngine) drains with
// the same micro-batch coalescing the serving workers use.
//
// Feedback is advisory by contract: the serving path never blocks on it,
// a full queue sheds at the intake, and under standing delay CoDel sheds
// stale samples at the head — a label that sat in the queue through a
// whole overload episode describes a model state the learner has already
// moved past, so training on it is wasted energy. Capacity and discipline
// come from ServerOptions::admission (AdmissionConfig::feedback_capacity),
// not a standalone knob: feedback is just the lowest-priority class.

#include <cstddef>
#include <string>

#include "common/tensor.hpp"
#include "serve/admission.hpp"

namespace neuro::serve {

/// One labeled observation — the raw material of the online learner.
struct FeedbackSample {
    common::Tensor image;
    std::size_t label = 0;
    /// Fleet entry the label belongs to ("" = default model). The online
    /// engine trains the default model and skips addressed samples; a
    /// per-model learner can filter on it.
    std::string model;
};

/// The hand-off between Server::submit_feedback and the online learner.
using FeedbackQueue = AdmissionQueue<FeedbackSample>;

}  // namespace neuro::serve
