#pragma once
// Labeled-feedback intake for learning-while-serving (neuro::online,
// docs/ARCHITECTURE.md §9). Clients that learn the true label after (or
// alongside) an inference hand it back through Server::submit_feedback;
// the samples flow through a second BoundedQueue that the background
// learner (online::OnlineEngine) drains with the same micro-batch
// coalescing the serving workers use.
//
// Feedback is advisory by contract: the serving path never blocks on it,
// and a full queue sheds (the learner is allowed to fall behind a feedback
// burst — inference traffic is the priority workload).

#include <cstddef>

#include "common/bounded_queue.hpp"
#include "common/tensor.hpp"

namespace neuro::serve {

/// One labeled observation — the raw material of the online learner.
struct FeedbackSample {
    common::Tensor image;
    std::size_t label = 0;
};

/// The hand-off between Server::submit_feedback and the online learner.
using FeedbackQueue = common::BoundedQueue<FeedbackSample>;

}  // namespace neuro::serve
