#pragma once
// Admission control for neuro::serve — the layer between request intake
// and the worker pool that decides, for every queued item, whether it is
// still worth a session slot. Replaces the blunt Block/Shed pair (which
// only acts at the queue *tail*) with three head-of-queue disciplines:
//
//   * CoDel controlled delay (Nichols & Jacobson): every entry is stamped
//     with its enqueue time; when the sojourn time of dequeued entries
//     stays above `target_us` for longer than `interval_us`, the queue
//     enters a drop state and sheds from the HEAD on a decreasing
//     interval schedule (interval / sqrt(drop count)) until sojourn falls
//     back under target. Head drops shed the *stalest* work — the work
//     whose response nobody is still waiting for — which is exactly the
//     energy a neuromorphic deployment cannot afford to burn.
//   * Weighted priority classes: Interactive / Batch / Feedback sub-queues
//     with weighted-round-robin dequeue (weight = consecutive dequeues
//     while non-empty; work-conserving, FIFO within a class).
//   * Deadline-aware drop: an entry may carry an absolute SLO deadline; a
//     dequeue never dispatches an entry whose deadline has passed — it is
//     handed back as a DeadlineExceeded drop instead.
//
// Drops are never silent: every dequeue operation surfaces the entries it
// dropped to the caller (serve::Server resolves their futures as
// Rejected{Overload|DeadlineExceeded}), so the accepted-implies-completed
// guarantee survives — "completed" now includes "explicitly rejected at
// the head", which is the whole point of admission control.
//
// All time flows through the injected Clock (serve/clock.hpp), so every
// state transition here is deterministically unit-testable with a
// ManualClock — see tests/admission_test.cpp. Default-constructed config
// disables CoDel and carries no deadlines, in which case a single-class
// queue degenerates to plain FIFO and the server behaves bit-identically
// to the pre-admission engine.

#include <array>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "serve/clock.hpp"
#include "serve/scheduler.hpp"

namespace neuro::serve {

/// Request classes, highest priority first. Weights (AdmissionConfig) give
/// Interactive traffic most of the dequeue bandwidth while Batch and
/// Feedback still make progress under load (no starvation).
enum class Priority : std::uint8_t { Interactive = 0, Batch = 1, Feedback = 2 };
inline constexpr std::size_t kPriorityClasses = 3;
const char* to_string(Priority p);

/// Why an accepted entry was dropped at the head instead of dispatched.
enum class DropCause : std::uint8_t {
    Overload,          ///< CoDel drop state: standing queue above target
    DeadlineExceeded,  ///< the entry's SLO deadline passed while it queued
};
const char* to_string(DropCause c);

struct CoDelConfig {
    bool enabled = false;           ///< off => sojourn is tracked but never drops
    std::uint64_t target_us = 5'000;    ///< acceptable standing sojourn time
    std::uint64_t interval_us = 100'000;///< how long above target before dropping
};

/// Shared admission configuration (ServerOptions::admission).
struct AdmissionConfig {
    CoDelConfig codel;
    /// Weighted-round-robin quanta per class, indexed by Priority. Every
    /// weight must be >= 1 (a class can be de-prioritized, not disabled).
    std::array<std::uint32_t, kPriorityClasses> weights{8, 2, 1};
    /// Capacity of the labeled-feedback intake (the Feedback class drained
    /// by online::OnlineEngine); 0 disables it. Lives here — not as a
    /// top-level server knob — because feedback is just the lowest
    /// priority class of the same admission layer: its queue runs the same
    /// CoDel discipline, so stale feedback is shed instead of trained on.
    std::size_t feedback_capacity = 0;
};

/// Per-class disposition counters, snapshot under the queue mutex.
struct AdmissionCounters {
    std::array<std::uint64_t, kPriorityClasses> accepted{};
    std::array<std::uint64_t, kPriorityClasses> dispatched{};
    std::array<std::uint64_t, kPriorityClasses> codel_dropped{};
    std::array<std::uint64_t, kPriorityClasses> deadline_dropped{};
    /// Times the CoDel state machine entered the drop state.
    std::uint64_t drop_state_entries = 0;
};

/// CoDel state, exposed for tests (tests/admission_test.cpp pins the
/// enter/exit transitions and the sqrt-decreasing drop schedule).
struct CoDelState {
    bool dropping = false;
    std::uint32_t count = 0;           ///< drops in the current drop state
    std::uint64_t first_above_us = 0;  ///< when sojourn first crossed target
    std::uint64_t drop_next_us = 0;    ///< next scheduled head drop
};

/// A dequeued entry the caller may dispatch.
template <typename T>
struct Admitted {
    T value{};
    Priority cls = Priority::Interactive;
    std::uint64_t enqueued_at_us = 0;  ///< Clock time at acceptance
    std::uint64_t sojourn_us = 0;      ///< time spent queued
};

/// A dequeued entry the caller must reject (it was accepted, so its future
/// still has to resolve — the queue cannot do that for a generic T).
template <typename T>
struct Dropped {
    T value{};
    Priority cls = Priority::Interactive;
    std::uint64_t sojourn_us = 0;
    DropCause cause = DropCause::Overload;
};

/// Bounded MPMC queue with admission control at the head. Same blocking /
/// shedding / close-drains-accepted surface as common::BoundedQueue, plus
/// per-entry class + deadline metadata and the CoDel state machine. Unlike
/// BoundedQueue it stores entries in per-class deques (admission reorders
/// across classes by design; FIFO holds within a class).
template <typename T>
class AdmissionQueue {
public:
    enum class Push { Ok, Full, Closed };

    explicit AdmissionQueue(std::size_t capacity, AdmissionConfig config = {},
                            std::shared_ptr<Clock> clock = nullptr)
        : capacity_(capacity),
          config_(config),
          clock_(clock ? std::move(clock) : default_clock()) {
        if (capacity_ == 0)
            throw std::invalid_argument("AdmissionQueue: zero capacity");
        for (const std::uint32_t w : config_.weights)
            if (w == 0)
                throw std::invalid_argument(
                    "AdmissionQueue: class weights must be >= 1");
        if (config_.codel.enabled &&
            (config_.codel.target_us == 0 || config_.codel.interval_us == 0))
            throw std::invalid_argument(
                "AdmissionQueue: CoDel target/interval must be > 0");
        rr_left_ = config_.weights[0];
    }

    AdmissionQueue(const AdmissionQueue&) = delete;
    AdmissionQueue& operator=(const AdmissionQueue&) = delete;

    std::size_t capacity() const { return capacity_; }
    const AdmissionConfig& config() const { return config_; }
    const std::shared_ptr<Clock>& clock() const { return clock_; }

    std::size_t size() const {
        std::lock_guard<std::mutex> lock(m_);
        return total_;
    }

    bool closed() const {
        std::lock_guard<std::mutex> lock(m_);
        return closed_;
    }

    /// Blocks while full; returns false iff the queue is (or becomes)
    /// closed. The value is moved out of `v` only on success. `deadline_us`
    /// is an absolute Clock time (0 = no deadline).
    bool push(T& v, Priority cls = Priority::Interactive,
              std::uint64_t deadline_us = 0) {
        std::unique_lock<std::mutex> lock(m_);
        cv_space_.wait(lock, [&] { return closed_ || total_ < capacity_; });
        if (closed_) return false;
        place(std::move(v), cls, deadline_us);
        lock.unlock();
        cv_items_.notify_one();
        return true;
    }

    /// Non-blocking push; on Full/Closed the value stays in `v`.
    Push try_push(T& v, Priority cls = Priority::Interactive,
                  std::uint64_t deadline_us = 0) {
        std::unique_lock<std::mutex> lock(m_);
        if (closed_) return Push::Closed;
        if (total_ == capacity_) return Push::Full;
        place(std::move(v), cls, deadline_us);
        lock.unlock();
        cv_items_.notify_one();
        return Push::Ok;
    }

    /// Blocks until something leaves a head: returns true with `out` filled
    /// when an entry was ADMITTED. Entries dropped on the way (CoDel /
    /// deadline) are appended to `drops` — the caller must resolve them
    /// whatever pop returns. A pop NEVER blocks while holding undelivered
    /// drops: when everything available was dropped it returns false with
    /// `drops` non-empty so the caller can resolve their futures promptly,
    /// then call pop again. False with `drops` untouched means closed and
    /// fully drained — the terminal state.
    bool pop(Admitted<T>& out, std::vector<Dropped<T>>& drops) {
        std::unique_lock<std::mutex> lock(m_);
        cv_items_.wait(lock, [&] { return closed_ || total_ > 0; });
        if (total_ == 0) return false;  // closed and drained
        const bool admitted = admit_locked(out, drops);
        lock.unlock();
        cv_space_.notify_all();  // drops may have freed several slots
        return admitted;
    }

    /// pop() with a real-time deadline for the blocking wait (micro-batch
    /// coalescing). Same contract for `drops` as pop(); false with `drops`
    /// untouched means timeout OR closed-and-drained.
    bool pop_until(Admitted<T>& out,
                   std::chrono::steady_clock::time_point deadline,
                   std::vector<Dropped<T>>& drops) {
        std::unique_lock<std::mutex> lock(m_);
        if (!cv_items_.wait_until(lock, deadline,
                                  [&] { return closed_ || total_ > 0; }))
            return false;  // timeout
        if (total_ == 0) return false;  // closed and drained
        const bool admitted = admit_locked(out, drops);
        lock.unlock();
        cv_space_.notify_all();
        return admitted;
    }

    /// Refuses all future pushes and wakes every blocked producer and
    /// consumer. Idempotent. Accepted entries remain poppable — each is
    /// still individually admitted or dropped, so a drain under standing
    /// delay sheds stale work instead of dispatching it.
    void close() {
        {
            std::lock_guard<std::mutex> lock(m_);
            closed_ = true;
        }
        cv_items_.notify_all();
        cv_space_.notify_all();
    }

    AdmissionCounters counters() const {
        std::lock_guard<std::mutex> lock(m_);
        return counters_;
    }

    CoDelState codel_state() const {
        std::lock_guard<std::mutex> lock(m_);
        CoDelState s;
        s.dropping = dropping_;
        s.count = count_;
        s.first_above_us = first_above_us_;
        s.drop_next_us = drop_next_us_;
        return s;
    }

private:
    struct Entry {
        T value{};
        std::uint64_t enqueued_at_us = 0;
        std::uint64_t deadline_us = 0;  // 0 = none
    };

    void place(T&& v, Priority cls, std::uint64_t deadline_us) {
        const auto c = static_cast<std::size_t>(cls);
        queues_[c].push_back(Entry{std::move(v), clock_->now_us(), deadline_us});
        ++total_;
        ++counters_.accepted[c];
    }

    /// Next class to serve under weighted round robin: the current class
    /// while it has quantum left and entries; otherwise advance (a class
    /// that empties forfeits the rest of its quantum — work conserving).
    /// Pre: total_ > 0, so a non-empty class always exists.
    std::size_t pick_class_locked() {
        for (;;) {
            if (rr_left_ > 0 && !queues_[rr_cls_].empty()) return rr_cls_;
            rr_cls_ = (rr_cls_ + 1) % kPriorityClasses;
            rr_left_ = config_.weights[rr_cls_];
        }
    }

    static std::uint64_t control_law(std::uint64_t t, std::uint64_t interval_us,
                                     std::uint32_t count) {
        return t + static_cast<std::uint64_t>(
                       static_cast<double>(interval_us) /
                       std::sqrt(static_cast<double>(count)));
    }

    /// The CoDel sojourn test on one dequeued entry (classic dodequeue):
    /// updates first_above_us_ and answers "may this entry be dropped?".
    /// Called after the entry left its sub-queue, so total_ is the number
    /// of entries still waiting — an empty queue cannot hold a standing
    /// delay and resets the above-target tracking.
    bool codel_ok_to_drop(std::uint64_t sojourn_us, std::uint64_t now_us) {
        if (!config_.codel.enabled) return false;
        if (sojourn_us < config_.codel.target_us || total_ == 0) {
            first_above_us_ = 0;
            return false;
        }
        if (first_above_us_ == 0) {
            first_above_us_ = now_us + config_.codel.interval_us;
            return false;
        }
        return now_us >= first_above_us_;
    }

    /// Works the head until one entry is admitted (true) or the queue runs
    /// dry through drops (false). Drops go to `drops`; WRR quantum is
    /// consumed by dispatches only — a drop is not service.
    bool admit_locked(Admitted<T>& out, std::vector<Dropped<T>>& drops) {
        while (total_ > 0) {
            const std::uint64_t now = clock_->now_us();
            const std::size_t cls = pick_class_locked();
            Entry e = std::move(queues_[cls].front());
            queues_[cls].pop_front();
            --total_;
            const std::uint64_t sojourn =
                now >= e.enqueued_at_us ? now - e.enqueued_at_us : 0;

            // Deadline first: expired work never costs a session slot, and
            // never feeds the CoDel estimator (it is not "served" traffic).
            if (e.deadline_us != 0 && now > e.deadline_us) {
                ++counters_.deadline_dropped[cls];
                drops.push_back(Dropped<T>{std::move(e.value),
                                           static_cast<Priority>(cls), sojourn,
                                           DropCause::DeadlineExceeded});
                continue;
            }

            const bool ok_to_drop = codel_ok_to_drop(sojourn, now);
            if (dropping_) {
                if (!ok_to_drop) {
                    dropping_ = false;  // sojourn back under target: exit
                } else if (now >= drop_next_us_) {
                    ++count_;
                    ++counters_.codel_dropped[cls];
                    drops.push_back(Dropped<T>{std::move(e.value),
                                               static_cast<Priority>(cls),
                                               sojourn, DropCause::Overload});
                    drop_next_us_ = control_law(
                        drop_next_us_, config_.codel.interval_us, count_);
                    continue;
                }
            } else if (ok_to_drop) {
                // Enter drop state: shed this head entry, then restart the
                // control law — near the previous drop rate when the last
                // drop state was recent (classic CoDel hysteresis), else
                // from one drop per interval.
                ++counters_.codel_dropped[cls];
                drops.push_back(Dropped<T>{std::move(e.value),
                                           static_cast<Priority>(cls), sojourn,
                                           DropCause::Overload});
                dropping_ = true;
                ++counters_.drop_state_entries;
                count_ = (count_ > 2 &&
                          now - drop_next_us_ < 16 * config_.codel.interval_us)
                             ? count_ - 2
                             : 1;
                drop_next_us_ =
                    control_law(now, config_.codel.interval_us, count_);
                continue;
            }

            --rr_left_;
            ++counters_.dispatched[cls];
            out = Admitted<T>{std::move(e.value), static_cast<Priority>(cls),
                              e.enqueued_at_us, sojourn};
            return true;
        }
        return false;
    }

    const std::size_t capacity_;
    const AdmissionConfig config_;
    const std::shared_ptr<Clock> clock_;

    mutable std::mutex m_;
    std::condition_variable cv_items_;
    std::condition_variable cv_space_;
    std::array<std::deque<Entry>, kPriorityClasses> queues_;
    std::size_t total_ = 0;
    bool closed_ = false;

    // Weighted round robin.
    std::size_t rr_cls_ = 0;
    std::uint32_t rr_left_ = 0;

    // CoDel state machine.
    bool dropping_ = false;
    std::uint32_t count_ = 0;
    std::uint64_t first_above_us_ = 0;
    std::uint64_t drop_next_us_ = 0;

    AdmissionCounters counters_;
};

/// Micro-batch collection over an AdmissionQueue: same coalescing contract
/// as serve::collect_batch (block for the first admitted entry, coalesce
/// until max_batch or max_delay_us), plus a drop sink — `on_drop` is
/// invoked outside the queue lock for every entry shed by admission, and
/// is called for trailing drops even when the collect itself returns
/// false. Returns false only when the queue is closed and drained.
template <typename T, typename OnDrop>
bool collect_admitted(AdmissionQueue<T>& q, const BatchPolicy& policy,
                      std::vector<Admitted<T>>& out, OnDrop&& on_drop) {
    out.clear();
    std::vector<Dropped<T>> drops;
    Admitted<T> first;
    for (;;) {
        drops.clear();
        const bool alive = q.pop(first, drops);
        for (Dropped<T>& d : drops) on_drop(std::move(d));
        if (alive) break;
        // False + drops means "all available entries were shed, resolve
        // them and keep waiting"; false without drops is the real drain.
        if (drops.empty()) return false;
    }
    out.push_back(std::move(first));
    if (policy.max_batch > 1) {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::microseconds(policy.max_delay_us);
        while (out.size() < policy.max_batch) {
            drops.clear();
            Admitted<T> next;
            const bool more = q.pop_until(next, deadline, drops);
            for (Dropped<T>& d : drops) on_drop(std::move(d));
            if (more) {
                out.push_back(std::move(next));
            } else if (drops.empty()) {
                break;  // timeout or closed-and-drained
            }
            // else: a drop round — not a timeout, keep coalescing
        }
    }
    return true;
}

/// Value-only overload matching the BoundedQueue collect_batch signature,
/// for consumers that do not resolve futures (the online learner draining
/// the Feedback class): dropped entries are discarded — the queue already
/// counted them (AdmissionCounters), and a stale feedback sample needs no
/// further resolution.
template <typename T>
bool collect_batch(AdmissionQueue<T>& q, const BatchPolicy& policy,
                   std::vector<T>& out) {
    std::vector<Admitted<T>> admitted;
    const bool alive =
        collect_admitted(q, policy, admitted, [](Dropped<T>&&) {});
    out.clear();
    for (Admitted<T>& a : admitted) out.push_back(std::move(a.value));
    return alive;
}

}  // namespace neuro::serve
