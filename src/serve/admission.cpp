#include "serve/admission.hpp"

namespace neuro::serve {

const char* to_string(Priority p) {
    switch (p) {
        case Priority::Interactive: return "interactive";
        case Priority::Batch: return "batch";
        case Priority::Feedback: return "feedback";
    }
    return "?";
}

const char* to_string(DropCause c) {
    switch (c) {
        case DropCause::Overload: return "overload";
        case DropCause::DeadlineExceeded: return "deadline-exceeded";
    }
    return "?";
}

}  // namespace neuro::serve
