#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>

namespace neuro::serve {

std::size_t LatencyHistogram::bucket_of(double us) {
    if (!(us >= 1.0)) return 0;  // sub-microsecond (and NaN) bucket
    int exp = 0;
    const double frac = std::frexp(us, &exp);  // frac in [0.5, 1), us = frac * 2^exp
    // Octave o covers [2^o, 2^(o+1)); frac*2 in [1, 2) picks the sub-bucket.
    const auto octave = std::min<std::size_t>(static_cast<std::size_t>(exp - 1),
                                              kOctaves - 1);
    const auto sub = std::min<std::size_t>(
        static_cast<std::size_t>((frac * 2.0 - 1.0) * kSubBuckets),
        kSubBuckets - 1);
    return 1 + octave * kSubBuckets + sub;
}

double LatencyHistogram::upper_edge(std::size_t bucket) {
    if (bucket == 0) return 1.0;
    const std::size_t b = bucket - 1;
    const std::size_t octave = b / kSubBuckets;
    const std::size_t sub = b % kSubBuckets;
    return std::ldexp(1.0 + static_cast<double>(sub + 1) /
                                static_cast<double>(kSubBuckets),
                      static_cast<int>(octave));
}

void LatencyHistogram::record(double us) {
    ++buckets_[bucket_of(us)];
    ++count_;
    sum_ += us;
    max_ = std::max(max_, us);
}

double LatencyHistogram::percentile(double q) const {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::uint64_t>(
        std::max(1.0, std::ceil(q * static_cast<double>(count_))));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        seen += buckets_[b];
        if (seen >= rank) return std::min(upper_edge(b), max_);
    }
    return max_;
}

void ServerMetrics::on_accept(std::size_t queue_depth_after) {
    std::lock_guard<std::mutex> lock(m_);
    ++accepted_;
    peak_queue_depth_ = std::max(peak_queue_depth_, queue_depth_after);
}

void ServerMetrics::on_reject() {
    std::lock_guard<std::mutex> lock(m_);
    ++rejected_;
}

void ServerMetrics::on_batch(std::size_t batch_size,
                             const std::vector<double>& ok_latencies_us,
                             std::size_t error_count) {
    std::lock_guard<std::mutex> lock(m_);
    ++batches_;
    batched_requests_ += batch_size;
    max_batch_ = std::max(max_batch_, batch_size);
    completed_ += ok_latencies_us.size();
    errors_ += error_count;
    for (const double us : ok_latencies_us) latency_.record(us);
}

ServerStats ServerMetrics::snapshot(double elapsed_s) const {
    std::lock_guard<std::mutex> lock(m_);
    ServerStats s;
    s.accepted = accepted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.errors = errors_;
    s.batches = batches_;
    s.mean_batch = batches_ == 0 ? 0.0
                                 : static_cast<double>(batched_requests_) /
                                       static_cast<double>(batches_);
    s.max_batch = max_batch_;
    s.peak_queue_depth = peak_queue_depth_;
    s.p50_us = latency_.percentile(0.50);
    s.p95_us = latency_.percentile(0.95);
    s.p99_us = latency_.percentile(0.99);
    s.mean_us = latency_.mean_us();
    s.max_us = latency_.max_us();
    s.elapsed_s = elapsed_s;
    s.throughput_rps =
        elapsed_s > 0.0 ? static_cast<double>(completed_) / elapsed_s : 0.0;
    return s;
}

}  // namespace neuro::serve
