#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>

namespace neuro::serve {

void ServerMetrics::on_accept(std::size_t queue_depth_after) {
    std::lock_guard<std::mutex> lock(m_);
    ++accepted_;
    peak_queue_depth_ = std::max(peak_queue_depth_, queue_depth_after);
}

void ServerMetrics::on_reject() {
    std::lock_guard<std::mutex> lock(m_);
    ++rejected_;
}

void ServerMetrics::on_admission_drop(double sojourn_us) {
    std::lock_guard<std::mutex> lock(m_);
    sojourn_.record(sojourn_us);
}

void ServerMetrics::on_weight_refresh() {
    std::lock_guard<std::mutex> lock(m_);
    ++weight_refreshes_;
}

void ServerMetrics::on_feedback_drop() {
    std::lock_guard<std::mutex> lock(m_);
    ++feedback_dropped_;
}

void ServerMetrics::on_batch(std::size_t batch_size,
                             const std::vector<double>& ok_latencies_us,
                             const std::vector<double>& sojourns_us,
                             std::size_t error_count) {
    std::lock_guard<std::mutex> lock(m_);
    ++batches_;
    batched_requests_ += batch_size;
    max_batch_ = std::max(max_batch_, batch_size);
    completed_ += ok_latencies_us.size();
    errors_ += error_count;
    for (const double us : ok_latencies_us) latency_.record(us);
    for (const double us : sojourns_us) sojourn_.record(us);
}

ServerStats ServerMetrics::snapshot(double elapsed_s,
                                    const AdmissionCounters& queue,
                                    const AdmissionCounters& feedback) const {
    std::lock_guard<std::mutex> lock(m_);
    ServerStats s;
    s.accepted = accepted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.errors = errors_;
    s.batches = batches_;
    for (std::size_t c = 0; c < kPriorityClasses; ++c) {
        s.class_accepted[c] = queue.accepted[c] + feedback.accepted[c];
        s.class_codel_dropped[c] =
            queue.codel_dropped[c] + feedback.codel_dropped[c];
        s.class_deadline_dropped[c] =
            queue.deadline_dropped[c] + feedback.deadline_dropped[c];
        s.codel_dropped += s.class_codel_dropped[c];
        s.deadline_dropped += s.class_deadline_dropped[c];
    }
    s.drop_state_entries =
        queue.drop_state_entries + feedback.drop_state_entries;
    s.sojourn_p50_us = sojourn_.percentile(0.50);
    s.sojourn_p95_us = sojourn_.percentile(0.95);
    s.sojourn_p99_us = sojourn_.percentile(0.99);
    s.sojourn_max_us = sojourn_.max_us();
    s.weight_refreshes = weight_refreshes_;
    s.feedback_dropped = feedback_dropped_;
    s.mean_batch = batches_ == 0 ? 0.0
                                 : static_cast<double>(batched_requests_) /
                                       static_cast<double>(batches_);
    s.max_batch = max_batch_;
    s.peak_queue_depth = peak_queue_depth_;
    s.p50_us = latency_.percentile(0.50);
    s.p95_us = latency_.percentile(0.95);
    s.p99_us = latency_.percentile(0.99);
    s.mean_us = latency_.mean_us();
    s.max_us = latency_.max_us();
    s.elapsed_s = elapsed_s;
    s.throughput_rps =
        elapsed_s > 0.0 ? static_cast<double>(completed_) / elapsed_s : 0.0;
    return s;
}

}  // namespace neuro::serve
