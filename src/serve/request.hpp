#pragma once
// The request/response vocabulary of neuro::serve. A client submits an
// image (optionally with a priority class and an SLO deadline) and gets
// back an InferenceHandle — a one-shot future that resolves to an
// InferenceResult once a worker session has run the phase-1 inference, or
// immediately when admission control rejects the request (shed at intake,
// CoDel head drop, missed deadline, shutdown).

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "common/tensor.hpp"
#include "obs/trace.hpp"
#include "serve/admission.hpp"

namespace neuro::serve {

enum class Status {
    Ok,        ///< inference ran; label (and counts, if requested) are valid
    Rejected,  ///< never dispatched — see InferenceResult::reject for why
    Error,     ///< the backend threw (e.g. image size mismatch); see `error`
};

const char* to_string(Status s);

/// Why a request resolved Rejected. QueueFull rejects happen at the intake
/// (Shed backpressure); Overload and DeadlineExceeded rejects happen at
/// the queue head — the request WAS accepted, but admission control chose
/// not to spend a session slot on it (docs/ARCHITECTURE.md §10).
enum class RejectReason : std::uint8_t {
    None,              ///< not rejected
    QueueFull,         ///< shed at intake by the Shed backpressure policy
    Shutdown,          ///< submitted after (or refused during) shutdown
    Overload,          ///< CoDel drop state shed it from the queue head
    DeadlineExceeded,  ///< its SLO deadline passed while it queued
    UnknownModel,      ///< SubmitOptions::model names no fleet entry
};

const char* to_string(RejectReason r);

struct InferenceResult;

/// Completion callback for the push-style submit path (SubmitOptions::
/// on_complete / Server::submit_async). Invoked exactly once per request
/// with the final result — on a worker thread for dispatched/head-dropped
/// requests, inline on the submitter's thread for intake rejects. Must not
/// throw and must not block: the serving workers (and, in neurod, the
/// epoll loop) run it.
using CompletionFn = std::function<void(InferenceResult&&)>;

/// Per-request submission parameters — the single options struct every
/// submit verb (submit / submit_counts / submit_async / submit_feedback)
/// takes, on both Server and ModelRouter. One struct instead of parallel
/// overload ladders: a new knob lands in every path at once.
struct SubmitOptions {
    Priority priority = Priority::Interactive;
    /// SLO deadline relative to acceptance, in microseconds; 0 = none.
    /// A request whose deadline passes while it queues is never
    /// dispatched — it resolves Rejected{DeadlineExceeded} instead.
    std::uint64_t deadline_us = 0;
    /// Which fleet entry serves this request; "" = the default model, so
    /// every pre-router call site keeps its meaning unchanged. On a plain
    /// single-model Server a non-empty name resolves
    /// Rejected{UnknownModel}.
    std::string model;
    /// Stable client-supplied id (netd passes the wire request_id). The
    /// router hashes it to pick the canary arm, so a retry of the same
    /// logical request deterministically lands on the same weights.
    std::uint64_t request_id = 0;
    /// When set, the request resolves through this callback instead of a
    /// future (the push-style submit_async path).
    CompletionFn on_complete;
    /// Request tracing: when true the router stamps every phase boundary
    /// (intake, admission dequeue, batch collect, compute, resolve) into
    /// InferenceResult::trace so the caller can attribute latency
    /// (docs/ARCHITECTURE.md §14). Untraced requests skip every stamp.
    bool trace = false;
};

struct InferenceResult {
    Status status = Status::Rejected;
    RejectReason reject = RejectReason::None;
    /// The class the request was submitted under.
    Priority priority = Priority::Interactive;
    /// argmax prediction. For count requests ties break on the raw counts
    /// (first maximum) rather than the backend's membrane tie-break.
    std::size_t label = 0;
    /// Phase-1 output spike counts; filled only for Server::submit_counts.
    std::vector<std::int32_t> counts;
    /// Accept-to-completion latency (queueing + batching + inference).
    double latency_us = 0.0;
    /// Time spent queued before dispatch or head drop (0 for intake
    /// rejects, which never queued).
    double sojourn_us = 0.0;
    /// Size of the micro-batch this request was dispatched in (>= 1).
    std::size_t batch_size = 0;
    /// Exception text when status == Error.
    std::string error;
    /// Span breakdown; trace.enabled iff the request was submitted with
    /// SubmitOptions::trace and reached the queue. The four phase spans
    /// telescope to total_us(), which equals latency_us to clock
    /// resolution for dispatched requests.
    obs::TraceContext trace;
};

/// One-shot handle to an in-flight request. Move-only, like the future it
/// wraps; get() blocks until a worker (or the reject path) completes it.
class InferenceHandle {
public:
    InferenceHandle() = default;
    explicit InferenceHandle(std::future<InferenceResult> f)
        : future_(std::move(f)) {}

    /// A handle that is already complete — the shed/shutdown fast path.
    static InferenceHandle immediate(InferenceResult r) {
        std::promise<InferenceResult> p;
        p.set_value(std::move(r));
        return InferenceHandle(p.get_future());
    }

    bool valid() const { return future_.valid(); }
    /// True once the result can be get() without blocking.
    bool ready() const {
        return future_.valid() &&
               future_.wait_for(std::chrono::seconds(0)) ==
                   std::future_status::ready;
    }
    void wait() const { future_.wait(); }
    InferenceResult get() { return future_.get(); }

private:
    std::future<InferenceResult> future_;
};

/// The internal wire format between submit and the worker loops — what
/// actually travels through the AdmissionQueue. Enqueue time, class and
/// deadline live in the queue's entry metadata (the queue stamps them via
/// its Clock); the Request itself carries only what the worker needs to
/// route, run, and resolve the inference.
struct Request {
    enum class Kind { Predict, Counts };
    Kind kind = Kind::Predict;
    common::Tensor image;
    /// Fleet entry this request is addressed to ("" = default model); the
    /// router resolves it to a session pool at dispatch time.
    std::string model;
    /// Client id the router hashes for the canary split (0 when unset).
    std::uint64_t request_id = 0;
    std::promise<InferenceResult> promise;
    /// When set, the request resolves through the callback and the promise
    /// is never touched (the future-less submit_async path — one fewer
    /// allocation and no blocking get() anywhere).
    CompletionFn on_complete;
    /// Phase stamps accumulated as the request moves through the engine;
    /// enabled iff SubmitOptions::trace was set. Copied into the result.
    obs::TraceContext trace;

    /// Routes the result to whichever completion mechanism this request
    /// uses. Every accepted request is resolved exactly once.
    void resolve(InferenceResult&& r) {
        if (on_complete)
            on_complete(std::move(r));
        else
            promise.set_value(std::move(r));
    }
};

}  // namespace neuro::serve
