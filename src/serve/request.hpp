#pragma once
// The request/response vocabulary of neuro::serve. A client submits an
// image and gets back an InferenceHandle — a one-shot future that resolves
// to an InferenceResult once a worker session has run the phase-1 inference
// (or immediately, when the request is shed or the server is down).

#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "common/tensor.hpp"

namespace neuro::serve {

enum class Status {
    Ok,        ///< inference ran; label (and counts, if requested) are valid
    Rejected,  ///< shed by backpressure policy or submitted after shutdown
    Error,     ///< the backend threw (e.g. image size mismatch); see `error`
};

const char* to_string(Status s);

struct InferenceResult {
    Status status = Status::Rejected;
    /// argmax prediction. For count requests ties break on the raw counts
    /// (first maximum) rather than the backend's membrane tie-break.
    std::size_t label = 0;
    /// Phase-1 output spike counts; filled only for Server::submit_counts.
    std::vector<std::int32_t> counts;
    /// Accept-to-completion latency (queueing + batching + inference).
    double latency_us = 0.0;
    /// Size of the micro-batch this request was dispatched in (>= 1).
    std::size_t batch_size = 0;
    /// Exception text when status == Error.
    std::string error;
};

/// One-shot handle to an in-flight request. Move-only, like the future it
/// wraps; get() blocks until a worker (or the shed path) completes it.
class InferenceHandle {
public:
    InferenceHandle() = default;
    explicit InferenceHandle(std::future<InferenceResult> f)
        : future_(std::move(f)) {}

    /// A handle that is already complete — the shed/shutdown fast path.
    static InferenceHandle immediate(InferenceResult r) {
        std::promise<InferenceResult> p;
        p.set_value(std::move(r));
        return InferenceHandle(p.get_future());
    }

    bool valid() const { return future_.valid(); }
    /// True once the result can be get() without blocking.
    bool ready() const {
        return future_.valid() &&
               future_.wait_for(std::chrono::seconds(0)) ==
                   std::future_status::ready;
    }
    void wait() const { future_.wait(); }
    InferenceResult get() { return future_.get(); }

private:
    std::future<InferenceResult> future_;
};

/// The internal wire format between Server::submit and the worker loops —
/// what actually travels through the BoundedQueue. Public because the
/// scheduler (collect_batch) and tests operate on queues of these.
struct Request {
    enum class Kind { Predict, Counts };
    Kind kind = Kind::Predict;
    common::Tensor image;
    std::chrono::steady_clock::time_point accepted_at{};
    std::promise<InferenceResult> promise;
};

}  // namespace neuro::serve
