#pragma once
// Serving observability: a log-bucketed latency histogram plus the
// thread-safe metrics sink workers record into. Server::stats() snapshots
// the sink into a plain ServerStats struct that benches export through
// bench_util::JsonWriter (see bench/serving_load.cpp for the schema).

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/stats.hpp"

namespace neuro::serve {

/// The histogram now lives in common::stats (shared with neuro::online);
/// this alias keeps the historical serve::LatencyHistogram name working.
using LatencyHistogram = common::LatencyHistogram;

/// Point-in-time snapshot of a Server's counters. Plain data — safe to
/// copy out of the lock and print/serialize at leisure.
struct ServerStats {
    std::uint64_t accepted = 0;   ///< entered the queue
    std::uint64_t rejected = 0;   ///< shed (queue full) or refused (shutdown)
    std::uint64_t completed = 0;  ///< resolved Ok
    std::uint64_t errors = 0;     ///< resolved Error (backend threw)
    std::uint64_t batches = 0;    ///< dispatch units executed
    /// Times a worker session loaded a newly published weight image at a
    /// batch boundary (learning-while-serving; 0 on a frozen model).
    std::uint64_t weight_refreshes = 0;
    /// Labeled feedback samples dropped because the feedback queue was
    /// full, disabled, or closing (feedback is best-effort by design).
    std::uint64_t feedback_dropped = 0;
    double mean_batch = 0.0;
    std::size_t max_batch = 0;
    std::size_t peak_queue_depth = 0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double mean_us = 0.0;
    double max_us = 0.0;
    double elapsed_s = 0.0;        ///< since Server::start()
    double throughput_rps = 0.0;   ///< completed / elapsed_s
};

/// The mutable, mutex-guarded sink behind Server::stats(). One mutex is
/// plenty: inference dominates each request by orders of magnitude.
class ServerMetrics {
public:
    void on_accept(std::size_t queue_depth_after);
    void on_reject();
    /// One dispatched micro-batch: its size plus per-request outcomes.
    void on_batch(std::size_t batch_size, const std::vector<double>& ok_latencies_us,
                  std::size_t error_count);
    /// A worker session picked up a newly published weight image.
    void on_weight_refresh();
    /// A feedback sample was shed (queue full/disabled/closing).
    void on_feedback_drop();

    ServerStats snapshot(double elapsed_s) const;

private:
    mutable std::mutex m_;
    std::uint64_t accepted_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t weight_refreshes_ = 0;
    std::uint64_t feedback_dropped_ = 0;
    std::uint64_t batched_requests_ = 0;
    std::size_t max_batch_ = 0;
    std::size_t peak_queue_depth_ = 0;
    LatencyHistogram latency_;
};

}  // namespace neuro::serve
