#pragma once
// Serving observability: log-bucketed latency + sojourn histograms plus
// the thread-safe metrics sink workers record into. Server::stats()
// snapshots the sink — merged with the admission queues' disposition
// counters — into a plain ServerStats struct that benches export through
// bench_util::JsonWriter (see bench/serving_load.cpp for the schema).

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "serve/admission.hpp"

namespace neuro::serve {

/// The histogram now lives in common::stats (shared with neuro::online);
/// this alias keeps the historical serve::LatencyHistogram name working.
using LatencyHistogram = common::LatencyHistogram;

/// Point-in-time snapshot of a Server's counters. Plain data — safe to
/// copy out of the lock and print/serialize at leisure.
///
/// Top-level accepted/rejected/completed count INFERENCE requests only
/// (back-compat with the pre-admission schema). The per-class arrays span
/// the whole admission layer: inference classes on the request queue plus
/// the Feedback class on the feedback queue, indexed by Priority.
struct ServerStats {
    std::uint64_t accepted = 0;   ///< entered the request queue
    std::uint64_t rejected = 0;   ///< refused at intake (shed / shutdown)
    std::uint64_t completed = 0;  ///< resolved Ok
    std::uint64_t errors = 0;     ///< resolved Error (backend threw)
    std::uint64_t batches = 0;    ///< dispatch units executed

    // ---- admission layer (docs/ARCHITECTURE.md §10) ----
    // Drop-counter naming matches AdmissionCounters verbatim — the one
    // schema every surface (this struct, stats_to_json, the per-model
    // entry JSON) uses: codel_dropped / deadline_dropped, class arrays
    // prefixed class_.
    /// Accepted per class, across request + feedback queues.
    std::array<std::uint64_t, kPriorityClasses> class_accepted{};
    /// CoDel head drops per class (accepted, then shed as Overload).
    std::array<std::uint64_t, kPriorityClasses> class_codel_dropped{};
    /// Deadline-expired drops per class (never dispatched).
    std::array<std::uint64_t, kPriorityClasses> class_deadline_dropped{};
    std::uint64_t codel_dropped = 0;     ///< sum of class_codel_dropped
    std::uint64_t deadline_dropped = 0;  ///< sum of class_deadline_dropped
    /// Times the CoDel state machines entered the drop state.
    std::uint64_t drop_state_entries = 0;
    /// Queue-wait (sojourn) percentiles over everything that left a head —
    /// dispatched AND dropped — the signal CoDel regulates.
    double sojourn_p50_us = 0.0;
    double sojourn_p95_us = 0.0;
    double sojourn_p99_us = 0.0;
    double sojourn_max_us = 0.0;

    /// Times a worker session loaded a newly published weight image at a
    /// batch boundary (learning-while-serving; 0 on a frozen model).
    std::uint64_t weight_refreshes = 0;
    /// Labeled feedback samples refused at the intake (queue full,
    /// disabled, or closing — feedback is best-effort by design).
    std::uint64_t feedback_dropped = 0;
    double mean_batch = 0.0;
    std::size_t max_batch = 0;
    std::size_t peak_queue_depth = 0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double mean_us = 0.0;
    double max_us = 0.0;
    double elapsed_s = 0.0;        ///< since Server::start()
    double throughput_rps = 0.0;   ///< completed / elapsed_s
};

/// The canonical JSON rendering of a ServerStats snapshot (one flat object,
/// per-class counters as three-element arrays). This is the single schema
/// shared by the neurod control socket's `stats` command and the bench
/// binaries' stats dumps — escaping and number formatting come from
/// common/json.hpp, the same rules bench_util::JsonWriter uses.
std::string stats_to_json(const ServerStats& s);

/// The mutable, mutex-guarded sink behind Server::stats(). One mutex is
/// plenty: inference dominates each request by orders of magnitude.
/// Per-class accept/drop accounting lives in the AdmissionQueues
/// themselves (AdmissionCounters) — snapshot() merges them in.
class ServerMetrics {
public:
    void on_accept(std::size_t queue_depth_after);
    void on_reject();
    /// An accepted request was shed at the queue head; its sojourn still
    /// feeds the histogram (head drops are the longest waits, hiding them
    /// would flatter the tail).
    void on_admission_drop(double sojourn_us);
    /// One dispatched micro-batch: its size, per-request outcomes, and
    /// per-request queue waits.
    void on_batch(std::size_t batch_size,
                  const std::vector<double>& ok_latencies_us,
                  const std::vector<double>& sojourns_us,
                  std::size_t error_count);
    /// A worker session picked up a newly published weight image.
    void on_weight_refresh();
    /// A feedback sample was shed at the intake (full/disabled/closing).
    void on_feedback_drop();

    /// `queue` / `feedback` are the admission counters of the request and
    /// feedback queues (pass {} when absent); their per-class dispositions
    /// are merged into the class arrays and totals.
    ServerStats snapshot(double elapsed_s, const AdmissionCounters& queue,
                         const AdmissionCounters& feedback) const;

private:
    mutable std::mutex m_;
    std::uint64_t accepted_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t weight_refreshes_ = 0;
    std::uint64_t feedback_dropped_ = 0;
    std::uint64_t batched_requests_ = 0;
    std::size_t max_batch_ = 0;
    std::size_t peak_queue_depth_ = 0;
    LatencyHistogram latency_;
    LatencyHistogram sojourn_;
};

}  // namespace neuro::serve
