#pragma once
// Serving observability: a log-bucketed latency histogram plus the
// thread-safe metrics sink workers record into. Server::stats() snapshots
// the sink into a plain ServerStats struct that benches export through
// bench_util::JsonWriter (see bench/serving_load.cpp for the schema).

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace neuro::serve {

/// Fixed-footprint latency histogram: 64 octaves x 16 sub-buckets per
/// octave (~6% relative resolution), plus a sub-microsecond bucket. No
/// allocation on record(), so workers can log every request.
class LatencyHistogram {
public:
    static constexpr std::size_t kOctaves = 64;
    static constexpr std::size_t kSubBuckets = 16;

    void record(double us);

    std::uint64_t count() const { return count_; }
    double max_us() const { return max_; }
    double mean_us() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

    /// Value at quantile q in [0, 1] — the upper edge of the bucket holding
    /// the rank-ceil(q*count) sample, so the estimate errs high by at most
    /// one sub-bucket (~6%). Returns 0 when empty.
    double percentile(double q) const;

private:
    static std::size_t bucket_of(double us);
    static double upper_edge(std::size_t bucket);

    std::array<std::uint64_t, 1 + kOctaves * kSubBuckets> buckets_{};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double max_ = 0.0;
};

/// Point-in-time snapshot of a Server's counters. Plain data — safe to
/// copy out of the lock and print/serialize at leisure.
struct ServerStats {
    std::uint64_t accepted = 0;   ///< entered the queue
    std::uint64_t rejected = 0;   ///< shed (queue full) or refused (shutdown)
    std::uint64_t completed = 0;  ///< resolved Ok
    std::uint64_t errors = 0;     ///< resolved Error (backend threw)
    std::uint64_t batches = 0;    ///< dispatch units executed
    double mean_batch = 0.0;
    std::size_t max_batch = 0;
    std::size_t peak_queue_depth = 0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double mean_us = 0.0;
    double max_us = 0.0;
    double elapsed_s = 0.0;        ///< since Server::start()
    double throughput_rps = 0.0;   ///< completed / elapsed_s
};

/// The mutable, mutex-guarded sink behind Server::stats(). One mutex is
/// plenty: inference dominates each request by orders of magnitude.
class ServerMetrics {
public:
    void on_accept(std::size_t queue_depth_after);
    void on_reject();
    /// One dispatched micro-batch: its size plus per-request outcomes.
    void on_batch(std::size_t batch_size, const std::vector<double>& ok_latencies_us,
                  std::size_t error_count);

    ServerStats snapshot(double elapsed_s) const;

private:
    mutable std::mutex m_;
    std::uint64_t accepted_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t batched_requests_ = 0;
    std::size_t max_batch_ = 0;
    std::size_t peak_queue_depth_ = 0;
    LatencyHistogram latency_;
};

}  // namespace neuro::serve
