#pragma once
// The clock seam of neuro::serve. Every time-dependent admission decision
// (CoDel sojourn tracking, drop-state scheduling, SLO deadlines, latency
// accounting) reads time through this interface instead of calling
// std::chrono directly, so the whole admission state machine is
// deterministically unit-testable: production injects nothing and gets a
// monotonic steady clock; tests inject a ManualClock and advance virtual
// time explicitly — no sleeps, no wall-time flakiness (tests/admission_test).
//
// The clock is only read at discrete decision points (enqueue, dequeue,
// completion). Blocking waits (queue condvars, micro-batch coalescing)
// stay on the real steady clock: they are about thread parking, not about
// admission semantics, and tests drive them event-style (items present, or
// an already-expired coalescing deadline) so they never actually wait.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace neuro::serve {

/// Monotonic microsecond clock. now_us() must never decrease; the epoch is
/// arbitrary (only differences are meaningful). Implementations must be
/// safe to call from any thread.
class Clock {
public:
    virtual ~Clock() = default;
    virtual std::uint64_t now_us() const = 0;
};

/// Production clock: std::chrono::steady_clock, epoch = construction.
class SteadyClock final : public Clock {
public:
    std::uint64_t now_us() const override {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count());
    }

private:
    std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
};

/// Test clock: virtual time that moves only when the test says so.
class ManualClock final : public Clock {
public:
    std::uint64_t now_us() const override {
        return now_.load(std::memory_order_acquire);
    }
    void advance_us(std::uint64_t delta) {
        now_.fetch_add(delta, std::memory_order_acq_rel);
    }
    void set_us(std::uint64_t t) { now_.store(t, std::memory_order_release); }

private:
    std::atomic<std::uint64_t> now_{0};
};

/// The shared production clock used when no clock is injected.
inline const std::shared_ptr<Clock>& default_clock() {
    static const std::shared_ptr<Clock> clock = std::make_shared<SteadyClock>();
    return clock;
}

}  // namespace neuro::serve
