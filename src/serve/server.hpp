#pragma once
// neuro::serve::Server — the async serving engine over the runtime API.
//
//   submit() ──► AdmissionQueue ──► collect_admitted() ──► worker Session
//                 (backpressure,      (micro-batching +        ──► future
//                  priority classes)   CoDel / deadline drops)
//
// One Server owns one immutable CompiledModel and a pool of worker
// Sessions (one per worker thread — Sessions are not thread-safe, models
// are; see docs/ARCHITECTURE.md §5). Producers on any number of threads
// submit images — optionally with a priority class and an SLO deadline
// (SubmitOptions); workers coalesce admitted requests into micro-batches
// (up to max_batch or max_delay_us, whichever first) and resolve each
// request's future. Every ACCEPTED request is guaranteed to resolve:
// dispatched requests complete Ok/Error, head-dropped requests complete
// Rejected{Overload|DeadlineExceeded} — shutdown() closes the intake,
// drains the queue, and joins the workers.
//
// Backpressure (ServerOptions::backpressure) acts at the intake:
//   * Block — submit() blocks until queue space frees (closed-loop
//     clients; no request is ever dropped).
//   * Shed  — submit() returns an already-completed Rejected{QueueFull}
//     handle when the queue is full (open-loop traffic; bounded memory).
//
// Admission control (ServerOptions::admission) acts at the head — see
// docs/ARCHITECTURE.md §10: CoDel controlled delay keeps the standing
// queue near target_us under overload by shedding the stalest work,
// weighted round robin shares worker bandwidth across Interactive/Batch/
// Feedback classes, and deadline-expired requests never cost a session
// slot. All admission time flows through the injectable Clock
// (ServerOptions::clock), so every state transition is deterministically
// testable with a ManualClock. With CoDel off (the default) and no
// deadlines, admission degenerates to FIFO and serving is bit-identical
// to the pre-admission engine.
//
// Determinism: workers run each request individually on an isolated
// Session, so results are bit-identical to sequential Session calls no
// matter the batch size, worker count, or arrival order (tests/serve_test).
//
// Learning-while-serving (docs/ARCHITECTURE.md §9): every worker calls
// Session::refresh() at each batch boundary, so a weight image published on
// the model (by online::OnlineEngine, or anyone) is picked up by the whole
// pool within one batch per worker — without pausing the pool, and without
// affecting requests already in flight. The labeled-feedback intake is the
// admission layer's Feedback class (AdmissionConfig::feedback_capacity,
// submit_feedback): a second AdmissionQueue under the same CoDel
// discipline, drained by the online learner.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/tensor.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/admission.hpp"
#include "serve/clock.hpp"
#include "serve/feedback.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "serve/stats.hpp"

namespace neuro::serve {

enum class Backpressure { Block, Shed };

struct ServerOptions {
    std::size_t workers = 2;         ///< worker threads == backend sessions
    std::size_t queue_capacity = 64; ///< bounded intake; the backpressure knob
    BatchPolicy batch;               ///< micro-batch coalescing policy
    Backpressure backpressure = Backpressure::Block;
    /// Head-of-queue admission control: CoDel discipline, class weights,
    /// and the Feedback-class (labeled feedback) intake capacity.
    AdmissionConfig admission;
    /// Time source for admission decisions and latency accounting; null
    /// (default) uses the shared monotonic SteadyClock. Tests inject a
    /// ManualClock to drive CoDel/deadline transitions deterministically.
    std::shared_ptr<Clock> clock;
};

class Server {
public:
    /// Validates options and opens one Session per worker. Workers do not
    /// run until start(); submissions before start() queue up (or shed once
    /// the queue fills), which makes backpressure tests deterministic.
    Server(std::shared_ptr<const runtime::CompiledModel> model,
           ServerOptions options = {});
    /// Drains and joins (shutdown()).
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Spawns the worker threads. Idempotent; harmless after shutdown().
    void start();

    /// Async argmax inference. The handle resolves with status Ok and the
    /// predicted label (bit-identical to Session::predict on this model),
    /// or Rejected when backpressure or admission control refused it.
    InferenceHandle submit(const common::Tensor& image,
                           SubmitOptions opt = {}) {
        return enqueue(Request::Kind::Predict, image, opt);
    }

    /// Async phase-1 spike counts (bit-identical to Session::output_counts).
    InferenceHandle submit_counts(const common::Tensor& image,
                                  SubmitOptions opt = {}) {
        return enqueue(Request::Kind::Counts, image, opt);
    }

    /// Push-style submit: instead of a future, `done` is invoked exactly
    /// once with the final result — on a worker thread when the request was
    /// dispatched or head-dropped, inline on the calling thread when it was
    /// refused at the intake. `done` must not throw or block (neurod's
    /// epoll loop and the serving workers run it). With Block backpressure
    /// the *submit call* may still block on queue space, so event-loop
    /// callers pair this with the Shed policy.
    void submit_async(const common::Tensor& image, SubmitOptions opt,
                      CompletionFn done) {
        enqueue_async(Request::Kind::Predict, image, opt, std::move(done));
    }

    /// submit_async for phase-1 spike counts.
    void submit_counts_async(const common::Tensor& image, SubmitOptions opt,
                             CompletionFn done) {
        enqueue_async(Request::Kind::Counts, image, opt, std::move(done));
    }

    /// Hands a labeled observation to the Feedback class. Best-effort:
    /// returns false — and drops the sample — when the feedback intake is
    /// disabled (admission.feedback_capacity == 0), the queue is full, the
    /// label is out of range for the model, or the server is shutting
    /// down. Never blocks: inference traffic has priority over learning
    /// material.
    bool submit_feedback(const common::Tensor& image, std::size_t label);

    /// The feedback stream the online learner drains (null when
    /// admission.feedback_capacity == 0). Closed by shutdown(), which is
    /// the learner's signal to finish its drain and stop.
    const std::shared_ptr<FeedbackQueue>& feedback_queue() const {
        return feedback_;
    }

    /// Graceful shutdown: refuses new submissions, resolves every accepted
    /// request (dispatch or admission drop), then joins the workers.
    /// Idempotent. If the server was never start()ed, it is started first
    /// so queued requests still drain.
    void shutdown();

    bool running() const { return started_.load() && !joined_.load(); }
    const ServerOptions& options() const { return options_; }
    /// The admission clock (the injected one, or the shared steady clock).
    const std::shared_ptr<Clock>& clock() const { return clock_; }

    /// Point-in-time counters + latency percentiles. elapsed/throughput are
    /// measured from start() (frozen at shutdown()).
    ServerStats stats() const;

private:
    InferenceHandle enqueue(Request::Kind kind, const common::Tensor& image,
                            SubmitOptions opt);
    void enqueue_async(Request::Kind kind, const common::Tensor& image,
                       SubmitOptions opt, CompletionFn done);
    /// Shared intake tail: pushes `req` under the backpressure policy and
    /// resolves it immediately on refusal.
    void enqueue_request(Request req, SubmitOptions opt);
    void start_locked();
    void worker_loop(std::size_t worker_index);
    double elapsed_seconds() const;

    std::mutex lifecycle_m_;  // serializes start()/shutdown()
    std::shared_ptr<const runtime::CompiledModel> model_;
    ServerOptions options_;
    std::shared_ptr<Clock> clock_;
    AdmissionQueue<Request> queue_;
    std::shared_ptr<FeedbackQueue> feedback_;
    std::vector<std::unique_ptr<runtime::Session>> sessions_;
    std::vector<std::thread> workers_;
    ServerMetrics metrics_;
    std::atomic<bool> started_{false};
    std::atomic<bool> closing_{false};
    std::atomic<bool> joined_{false};
    std::chrono::steady_clock::time_point start_time_{};
    std::atomic<double> frozen_elapsed_s_{-1.0};
};

}  // namespace neuro::serve
