#pragma once
// neuro::serve::Server — the async serving engine over the runtime API.
//
//   submit() ──► BoundedQueue ──► collect_batch() ──► worker Session ──► future
//                 (backpressure)    (micro-batching)    (one per worker)
//
// One Server owns one immutable CompiledModel and a pool of worker
// Sessions (one per worker thread — Sessions are not thread-safe, models
// are; see docs/ARCHITECTURE.md §5). Producers on any number of threads
// submit images; workers coalesce requests into micro-batches (up to
// max_batch or max_delay_us, whichever first) and resolve each request's
// future. Every ACCEPTED request is guaranteed to complete: shutdown()
// closes the intake, drains the queue, and joins the workers.
//
// Backpressure (ServerOptions::backpressure):
//   * Block — submit() blocks until queue space frees (closed-loop
//     clients; no request is ever dropped).
//   * Shed  — submit() returns an already-completed Rejected handle when
//     the queue is full (open-loop traffic; bounded memory and latency).
//
// Determinism: workers run each request individually on an isolated
// Session, so results are bit-identical to sequential Session calls no
// matter the batch size, worker count, or arrival order (tests/serve_test).

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bounded_queue.hpp"
#include "common/tensor.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "serve/stats.hpp"

namespace neuro::serve {

enum class Backpressure { Block, Shed };

struct ServerOptions {
    std::size_t workers = 2;         ///< worker threads == backend sessions
    std::size_t queue_capacity = 64; ///< bounded intake; the backpressure knob
    BatchPolicy batch;               ///< micro-batch coalescing policy
    Backpressure backpressure = Backpressure::Block;
};

class Server {
public:
    /// Validates options and opens one Session per worker. Workers do not
    /// run until start(); submissions before start() queue up (or shed once
    /// the queue fills), which makes backpressure tests deterministic.
    Server(std::shared_ptr<const runtime::CompiledModel> model,
           ServerOptions options = {});
    /// Drains and joins (shutdown()).
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Spawns the worker threads. Idempotent; harmless after shutdown().
    void start();

    /// Async argmax inference. The handle resolves with status Ok and the
    /// predicted label (bit-identical to Session::predict on this model).
    InferenceHandle submit(const common::Tensor& image) {
        return enqueue(Request::Kind::Predict, image);
    }

    /// Async phase-1 spike counts (bit-identical to Session::output_counts).
    InferenceHandle submit_counts(const common::Tensor& image) {
        return enqueue(Request::Kind::Counts, image);
    }

    /// Graceful shutdown: refuses new submissions, completes every accepted
    /// request, then joins the workers. Idempotent. If the server was never
    /// start()ed, it is started first so queued requests still drain.
    void shutdown();

    bool running() const { return started_.load() && !joined_.load(); }
    const ServerOptions& options() const { return options_; }

    /// Point-in-time counters + latency percentiles. elapsed/throughput are
    /// measured from start() (frozen at shutdown()).
    ServerStats stats() const;

private:
    InferenceHandle enqueue(Request::Kind kind, const common::Tensor& image);
    void start_locked();
    void worker_loop(std::size_t worker_index);
    double elapsed_seconds() const;

    std::mutex lifecycle_m_;  // serializes start()/shutdown()
    std::shared_ptr<const runtime::CompiledModel> model_;
    ServerOptions options_;
    common::BoundedQueue<Request> queue_;
    std::vector<std::unique_ptr<runtime::Session>> sessions_;
    std::vector<std::thread> workers_;
    ServerMetrics metrics_;
    std::atomic<bool> started_{false};
    std::atomic<bool> closing_{false};
    std::atomic<bool> joined_{false};
    std::chrono::steady_clock::time_point start_time_{};
    std::atomic<double> frozen_elapsed_s_{-1.0};
};

}  // namespace neuro::serve
