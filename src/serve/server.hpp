#pragma once
// neuro::serve::Server — the async serving engine over the runtime API.
//
//   submit() ──► BoundedQueue ──► collect_batch() ──► worker Session ──► future
//                 (backpressure)    (micro-batching)    (one per worker)
//
// One Server owns one immutable CompiledModel and a pool of worker
// Sessions (one per worker thread — Sessions are not thread-safe, models
// are; see docs/ARCHITECTURE.md §5). Producers on any number of threads
// submit images; workers coalesce requests into micro-batches (up to
// max_batch or max_delay_us, whichever first) and resolve each request's
// future. Every ACCEPTED request is guaranteed to complete: shutdown()
// closes the intake, drains the queue, and joins the workers.
//
// Backpressure (ServerOptions::backpressure):
//   * Block — submit() blocks until queue space frees (closed-loop
//     clients; no request is ever dropped).
//   * Shed  — submit() returns an already-completed Rejected handle when
//     the queue is full (open-loop traffic; bounded memory and latency).
//
// Determinism: workers run each request individually on an isolated
// Session, so results are bit-identical to sequential Session calls no
// matter the batch size, worker count, or arrival order (tests/serve_test).
//
// Learning-while-serving (docs/ARCHITECTURE.md §9): every worker calls
// Session::refresh() at each batch boundary, so a weight image published on
// the model (by online::OnlineEngine, or anyone) is picked up by the whole
// pool within one batch per worker — without pausing the pool, and without
// affecting requests already in flight. On a model that never publishes the
// refresh is a single version check and serving is bit-identical to a
// frozen server. The optional feedback queue (ServerOptions::
// feedback_capacity, submit_feedback) is the labeled-sample intake the
// online learner drains.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bounded_queue.hpp"
#include "common/tensor.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/feedback.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "serve/stats.hpp"

namespace neuro::serve {

enum class Backpressure { Block, Shed };

struct ServerOptions {
    std::size_t workers = 2;         ///< worker threads == backend sessions
    std::size_t queue_capacity = 64; ///< bounded intake; the backpressure knob
    BatchPolicy batch;               ///< micro-batch coalescing policy
    Backpressure backpressure = Backpressure::Block;
    /// Capacity of the labeled-feedback queue (learning-while-serving);
    /// 0 disables the feedback intake entirely.
    std::size_t feedback_capacity = 0;
};

class Server {
public:
    /// Validates options and opens one Session per worker. Workers do not
    /// run until start(); submissions before start() queue up (or shed once
    /// the queue fills), which makes backpressure tests deterministic.
    Server(std::shared_ptr<const runtime::CompiledModel> model,
           ServerOptions options = {});
    /// Drains and joins (shutdown()).
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Spawns the worker threads. Idempotent; harmless after shutdown().
    void start();

    /// Async argmax inference. The handle resolves with status Ok and the
    /// predicted label (bit-identical to Session::predict on this model).
    InferenceHandle submit(const common::Tensor& image) {
        return enqueue(Request::Kind::Predict, image);
    }

    /// Async phase-1 spike counts (bit-identical to Session::output_counts).
    InferenceHandle submit_counts(const common::Tensor& image) {
        return enqueue(Request::Kind::Counts, image);
    }

    /// Hands a labeled observation to the feedback stream. Best-effort:
    /// returns false — and drops the sample — when the feedback intake is
    /// disabled (feedback_capacity == 0), the queue is full, the label is
    /// out of range for the model, or the server is shutting down. Never
    /// blocks: inference traffic has priority over learning material.
    bool submit_feedback(const common::Tensor& image, std::size_t label);

    /// The feedback stream the online learner drains (null when
    /// feedback_capacity == 0). Closed by shutdown(), which is the
    /// learner's signal to finish its drain and stop.
    const std::shared_ptr<FeedbackQueue>& feedback_queue() const {
        return feedback_;
    }

    /// Graceful shutdown: refuses new submissions, completes every accepted
    /// request, then joins the workers. Idempotent. If the server was never
    /// start()ed, it is started first so queued requests still drain.
    void shutdown();

    bool running() const { return started_.load() && !joined_.load(); }
    const ServerOptions& options() const { return options_; }

    /// Point-in-time counters + latency percentiles. elapsed/throughput are
    /// measured from start() (frozen at shutdown()).
    ServerStats stats() const;

private:
    InferenceHandle enqueue(Request::Kind kind, const common::Tensor& image);
    void start_locked();
    void worker_loop(std::size_t worker_index);
    double elapsed_seconds() const;

    std::mutex lifecycle_m_;  // serializes start()/shutdown()
    std::shared_ptr<const runtime::CompiledModel> model_;
    ServerOptions options_;
    common::BoundedQueue<Request> queue_;
    std::shared_ptr<FeedbackQueue> feedback_;
    std::vector<std::unique_ptr<runtime::Session>> sessions_;
    std::vector<std::thread> workers_;
    ServerMetrics metrics_;
    std::atomic<bool> started_{false};
    std::atomic<bool> closing_{false};
    std::atomic<bool> joined_{false};
    std::chrono::steady_clock::time_point start_time_{};
    std::atomic<double> frozen_elapsed_s_{-1.0};
};

}  // namespace neuro::serve
