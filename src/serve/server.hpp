#pragma once
// neuro::serve::Server — the single-model face of the serving engine.
//
//   submit() ──► AdmissionQueue ──► collect_admitted() ──► worker Session
//                 (backpressure,      (micro-batching +        ──► future
//                  priority classes)   CoDel / deadline drops)
//
// Since the multi-model PR the engine itself lives in serve::ModelRouter
// (router.hpp, docs/ARCHITECTURE.md §12); a Server is a thin wrapper that
// configures a router with exactly one permanently resident model — the
// fleet of one. Every behavioral contract established here still holds
// and is still test-enforced (tests/serve_test.cpp):
//
//   * One Server owns one immutable CompiledModel and a pool of worker
//     Sessions (one per worker thread — Sessions are not thread-safe,
//     models are; docs/ARCHITECTURE.md §5).
//   * Every ACCEPTED request resolves: dispatched requests complete
//     Ok/Error, head-dropped requests complete Rejected{Overload|
//     DeadlineExceeded} — shutdown() closes the intake, drains the queue,
//     and joins the workers.
//   * Backpressure (ServerOptions::backpressure) acts at the intake:
//     Block parks the submitter until space frees; Shed returns an
//     already-completed Rejected{QueueFull} handle.
//   * Admission control (ServerOptions::admission) acts at the head —
//     CoDel controlled delay, weighted round robin across classes,
//     deadline-expired requests never cost a session slot
//     (docs/ARCHITECTURE.md §10) — all on the injectable Clock.
//   * Determinism: results are bit-identical to sequential Session calls
//     no matter the batch size, worker count, or arrival order.
//   * Learning-while-serving: workers refresh() at batch boundaries, so a
//     published weight image reaches the pool within one batch per worker
//     (docs/ARCHITECTURE.md §9); labeled feedback flows through the
//     admission layer's Feedback class (submit_feedback).
//
// API note: every submit verb takes the one SubmitOptions struct
// (priority, deadline_us, model, request_id, on_complete). The old
// (image, opt, done) callback overloads survive as thin shims.

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/tensor.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/admission.hpp"
#include "serve/clock.hpp"
#include "serve/feedback.hpp"
#include "serve/request.hpp"
#include "serve/router.hpp"
#include "serve/scheduler.hpp"
#include "serve/stats.hpp"

namespace neuro::serve {

struct ServerOptions {
    std::size_t workers = 2;         ///< worker threads == backend sessions
    std::size_t queue_capacity = 64; ///< bounded intake; the backpressure knob
    BatchPolicy batch;               ///< micro-batch coalescing policy
    Backpressure backpressure = Backpressure::Block;
    /// Head-of-queue admission control: CoDel discipline, class weights,
    /// and the Feedback-class (labeled feedback) intake capacity.
    AdmissionConfig admission;
    /// Time source for admission decisions and latency accounting; null
    /// (default) uses the shared monotonic SteadyClock. Tests inject a
    /// ManualClock to drive CoDel/deadline transitions deterministically.
    std::shared_ptr<Clock> clock;
};

class Server {
public:
    /// Validates options and opens one Session per worker. Workers do not
    /// run until start(); submissions before start() queue up (or shed once
    /// the queue fills), which makes backpressure tests deterministic.
    Server(std::shared_ptr<const runtime::CompiledModel> model,
           ServerOptions options = {});
    /// Drains and joins (shutdown()).
    ~Server() = default;

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Spawns the worker threads. Idempotent; harmless after shutdown().
    void start() { router_->start(); }

    /// Async argmax inference. The handle resolves with status Ok and the
    /// predicted label (bit-identical to Session::predict on this model),
    /// or Rejected when backpressure or admission control refused it. When
    /// opt.on_complete is set the result goes through the callback instead
    /// and the returned handle is invalid.
    InferenceHandle submit(const common::Tensor& image,
                           SubmitOptions opt = {}) {
        return router_->submit(image, std::move(opt));
    }

    /// Async phase-1 spike counts (bit-identical to Session::output_counts).
    InferenceHandle submit_counts(const common::Tensor& image,
                                  SubmitOptions opt = {}) {
        return router_->submit_counts(image, std::move(opt));
    }

    /// Push-style submit: opt.on_complete is invoked exactly once with the
    /// final result — on a worker thread when the request was dispatched or
    /// head-dropped, inline on the calling thread when it was refused at
    /// the intake. The callback must not throw or block (neurod's epoll
    /// loop and the serving workers run it). With Block backpressure the
    /// *submit call* may still block on queue space, so event-loop callers
    /// pair this with the Shed policy.
    void submit_async(const common::Tensor& image, SubmitOptions opt) {
        router_->submit_async(image, std::move(opt));
    }

    /// submit_async for phase-1 spike counts.
    void submit_counts_async(const common::Tensor& image, SubmitOptions opt) {
        router_->submit_counts_async(image, std::move(opt));
    }

    /// Deprecated shim (pre-unification signature): the callback now lives
    /// in SubmitOptions::on_complete — prefer submit_async(image, opt).
    void submit_async(const common::Tensor& image, SubmitOptions opt,
                      CompletionFn done) {
        opt.on_complete = std::move(done);
        submit_async(image, std::move(opt));
    }

    /// Deprecated shim: prefer submit_counts_async(image, opt).
    void submit_counts_async(const common::Tensor& image, SubmitOptions opt,
                             CompletionFn done) {
        opt.on_complete = std::move(done);
        submit_counts_async(image, std::move(opt));
    }

    /// Hands a labeled observation to the Feedback class. Best-effort:
    /// returns false — and drops the sample — when the feedback intake is
    /// disabled (admission.feedback_capacity == 0), the queue is full, the
    /// label is out of range for the model, or the server is shutting
    /// down. Never blocks: inference traffic has priority over learning
    /// material.
    bool submit_feedback(const common::Tensor& image, std::size_t label,
                         const SubmitOptions& opt = {}) {
        return router_->submit_feedback(image, label, opt);
    }

    /// The feedback stream the online learner drains (null when
    /// admission.feedback_capacity == 0). Closed by shutdown(), which is
    /// the learner's signal to finish its drain and stop.
    const std::shared_ptr<FeedbackQueue>& feedback_queue() const {
        return router_->feedback_queue();
    }

    /// Graceful shutdown: refuses new submissions, resolves every accepted
    /// request (dispatch or admission drop), then joins the workers.
    /// Idempotent. If the server was never start()ed, it is started first
    /// so queued requests still drain.
    void shutdown() { router_->shutdown(); }

    bool running() const { return router_->running(); }
    const ServerOptions& options() const { return options_; }
    /// The admission clock (the injected one, or the shared steady clock).
    const std::shared_ptr<Clock>& clock() const { return router_->clock(); }

    /// The engine underneath — what netd::Daemon actually drives. A plain
    /// Server's router serves only the default entry "".
    const std::shared_ptr<ModelRouter>& router() const { return router_; }

    /// Point-in-time counters + latency percentiles. elapsed/throughput are
    /// measured from start() (frozen at shutdown()).
    ServerStats stats() const { return router_->stats(); }

private:
    ServerOptions options_;
    std::shared_ptr<ModelRouter> router_;
};

}  // namespace neuro::serve
