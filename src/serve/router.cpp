#include "serve/router.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "online/registry.hpp"
#include "runtime/session.hpp"

namespace neuro::serve {

namespace {

InferenceResult rejected_result(RejectReason reason, Priority cls) {
    InferenceResult r;
    r.status = Status::Rejected;
    r.reject = reason;
    r.priority = cls;
    return r;
}

std::size_t snapshot_bytes(const runtime::WeightSnapshot& snap) {
    std::size_t n = 0;
    for (const auto& layer : snap.layers) n += layer.size() * sizeof(std::int32_t);
    return n;
}

// Names share the control-socket line grammar with bare version numbers
// and the keyword "latest", so they must start with a letter; the rest is
// the usual filesystem-safe set (the name doubles as a registry directory).
bool valid_model_name(const std::string& name) {
    if (name.empty() || name.size() > 64) return false;
    if (!std::isalpha(static_cast<unsigned char>(name.front()))) return false;
    for (const char c : name) {
        const auto u = static_cast<unsigned char>(c);
        if (!std::isalnum(u) && c != '.' && c != '_' && c != '-') return false;
    }
    return true;
}

}  // namespace

bool ModelRouter::canary_arm(std::uint64_t request_id, std::uint32_t pct) {
    if (pct == 0) return false;
    if (pct >= 100) return true;
    // splitmix64: a fixed, platform-independent mix so the same request_id
    // lands on the same arm on every run of every build.
    std::uint64_t z = request_id + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z % 100 < pct;
}

ModelRouter::ModelRouter(
    std::shared_ptr<const runtime::CompiledModel> default_model,
    RouterOptions options)
    : default_model_(std::move(default_model)),
      options_(std::move(options)),
      clock_(options_.clock ? options_.clock : default_clock()),
      queue_(options_.queue_capacity, options_.admission, clock_) {
    if (!default_model_) throw std::invalid_argument("ModelRouter: null model");
    if (options_.workers == 0)
        throw std::invalid_argument("ModelRouter: zero workers");
    if (options_.batch.max_batch == 0)
        throw std::invalid_argument("ModelRouter: zero max_batch");
    if (options_.admission.feedback_capacity > 0)
        feedback_ = std::make_shared<FeedbackQueue>(
            options_.admission.feedback_capacity, options_.admission, clock_);
    // The default entry is resident from birth and permanently pinned: the
    // fleet's topology donor must never be evicted out from under it.
    auto def = std::make_unique<Entry>();
    def->name = "";
    def->model = default_model_;
    def->sessions = default_model_->open_sessions(options_.workers);
    def->pinned = true;
    def->base_bytes = snapshot_bytes(default_model_->initial_weights());
    def->refreshed_batch.assign(options_.workers, 0);
    def->loads = 1;
    resident_bytes_ = def->base_bytes;
    entries_.emplace("", std::move(def));
}

ModelRouter::~ModelRouter() { shutdown(); }

void ModelRouter::start() {
    std::lock_guard<std::mutex> lock(lifecycle_m_);
    start_locked();
}

void ModelRouter::start_locked() {
    if (started_.load()) return;  // lifecycle_m_ is held: no concurrent start
    // start_time_ is written before started_ flips so the unsynchronized
    // read in elapsed_seconds() (gated on started_) sees a complete value.
    start_time_ = std::chrono::steady_clock::now();
    workers_.reserve(options_.workers);
    for (std::size_t w = 0; w < options_.workers; ++w)
        workers_.emplace_back([this, w] { worker_loop(w); });
    started_.store(true);
}

void ModelRouter::shutdown() {
    std::lock_guard<std::mutex> lock(lifecycle_m_);
    // Start-before-drain so requests queued against a never-started router
    // still run to completion (the accepted-implies-completed guarantee).
    start_locked();
    closing_.store(true);
    queue_.close();
    // Closing the feedback stream is the learner's end-of-input signal.
    if (feedback_) feedback_->close();
    if (joined_.exchange(true)) return;
    for (auto& w : workers_)
        if (w.joinable()) w.join();
    frozen_elapsed_s_.store(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_time_)
            .count());
}

InferenceHandle ModelRouter::submit(const common::Tensor& image,
                                    SubmitOptions opt) {
    return enqueue(Request::Kind::Predict, image, std::move(opt));
}

InferenceHandle ModelRouter::submit_counts(const common::Tensor& image,
                                           SubmitOptions opt) {
    return enqueue(Request::Kind::Counts, image, std::move(opt));
}

void ModelRouter::submit_async(const common::Tensor& image, SubmitOptions opt) {
    if (!opt.on_complete)
        throw std::invalid_argument("ModelRouter: submit_async needs "
                                    "SubmitOptions::on_complete");
    (void)enqueue(Request::Kind::Predict, image, std::move(opt));
}

void ModelRouter::submit_counts_async(const common::Tensor& image,
                                      SubmitOptions opt) {
    if (!opt.on_complete)
        throw std::invalid_argument("ModelRouter: submit_counts_async needs "
                                    "SubmitOptions::on_complete");
    (void)enqueue(Request::Kind::Counts, image, std::move(opt));
}

InferenceHandle ModelRouter::enqueue(Request::Kind kind,
                                     const common::Tensor& image,
                                     SubmitOptions opt) {
    Request req;
    req.kind = kind;
    req.image = image;
    req.model = opt.model;
    req.request_id = opt.request_id;
    InferenceHandle handle;
    if (opt.on_complete)
        req.on_complete = std::move(opt.on_complete);
    else
        handle = InferenceHandle(req.promise.get_future());
    enqueue_request(std::move(req), opt);
    return handle;
}

void ModelRouter::enqueue_request(Request req, const SubmitOptions& opt) {
    if (closing_.load()) {
        metrics_.on_reject();
        req.resolve(rejected_result(RejectReason::Shutdown, opt.priority));
        return;
    }
    // Addressability check at the intake: an unknown name must reject
    // immediately (never block, never occupy queue space). Loading the
    // model itself stays lazy — it happens on a worker at dispatch.
    if (!req.model.empty()) {
        std::lock_guard<std::mutex> lk(entries_m_);
        try {
            (void)find_or_register_locked(req.model);
        } catch (const std::exception&) {
            metrics_.on_reject();
            req.resolve(
                rejected_result(RejectReason::UnknownModel, opt.priority));
            return;
        }
    }
    // Intake stamp: taken for traced requests, and for every request while
    // the slow-request log is armed (its span breakdown needs the stamps
    // whether or not the client asked for a trace echo).
    req.trace.enabled = opt.trace;
    if (opt.trace || options_.slow_request_us > 0)
        req.trace.t_intake_us = clock_->now_us();
    // A relative SLO becomes an absolute Clock deadline at the intake; the
    // queue compares against the same clock at the head.
    const std::uint64_t deadline_us =
        opt.deadline_us == 0 ? 0 : clock_->now_us() + opt.deadline_us;

    bool accepted = false;
    RejectReason refusal = RejectReason::Shutdown;
    if (options_.backpressure == Backpressure::Block) {
        // push() returns false only if the queue closed while waiting.
        accepted = queue_.push(req, opt.priority, deadline_us);
    } else {
        switch (queue_.try_push(req, opt.priority, deadline_us)) {
            case AdmissionQueue<Request>::Push::Ok: accepted = true; break;
            case AdmissionQueue<Request>::Push::Full:
                refusal = RejectReason::QueueFull;
                break;
            case AdmissionQueue<Request>::Push::Closed: break;
        }
    }
    if (!accepted) {
        metrics_.on_reject();
        req.resolve(rejected_result(refusal, opt.priority));
    } else {
        metrics_.on_accept(queue_.size());
    }
}

bool ModelRouter::submit_feedback(const common::Tensor& image,
                                  std::size_t label, const SubmitOptions& opt) {
    // Label validation happens at the intake, not on the learner thread; the
    // fleet shares the default model's topology, so one class count covers
    // every entry.
    if (!feedback_ || closing_.load() ||
        label >= default_model_->spec().classes) {
        metrics_.on_feedback_drop();
        return false;
    }
    if (!opt.model.empty()) {
        std::lock_guard<std::mutex> lk(entries_m_);
        try {
            (void)find_or_register_locked(opt.model);
        } catch (const std::exception&) {
            metrics_.on_feedback_drop();
            return false;
        }
    }
    FeedbackSample sample{image, label, opt.model};
    if (feedback_->try_push(sample, Priority::Feedback) !=
        FeedbackQueue::Push::Ok) {
        metrics_.on_feedback_drop();
        return false;
    }
    return true;
}

ModelRouter::Entry& ModelRouter::find_or_register_locked(
    const std::string& name) {
    auto it = entries_.find(name);
    if (it != entries_.end()) return *it->second;
    if (!valid_model_name(name))
        throw std::invalid_argument("ModelRouter: invalid model name '" +
                                    name + "'");
    if (options_.fleet_dir.empty() ||
        !std::filesystem::is_directory(
            std::filesystem::path(options_.fleet_dir) / name))
        throw std::invalid_argument("ModelRouter: unknown model '" + name +
                                    "'");
    auto e = std::make_unique<Entry>();
    e->name = name;
    e->refreshed_batch.assign(options_.workers, 0);
    Entry& ref = *e;
    entries_.emplace(name, std::move(e));
    return ref;
}

std::string ModelRouter::registry_dir_locked(const Entry& e) const {
    if (e.name.empty()) return options_.default_registry_dir;
    if (options_.fleet_dir.empty()) return "";
    return (std::filesystem::path(options_.fleet_dir) / e.name).string();
}

void ModelRouter::load_locked(Entry& e, std::uint64_t version) {
    const std::string dir = registry_dir_locked(e);
    if (dir.empty())
        throw std::runtime_error("ModelRouter: model '" + e.name +
                                 "' has no registry");
    online::ModelRegistry reg(dir);
    if (version == 0) {
        const auto last = reg.last_good();
        if (!last)
            throw std::runtime_error("ModelRouter: registry for '" + e.name +
                                     "' is empty");
        version = last->version;
    }
    const auto snap = reg.load(version);  // throws on unknown/corrupt
    e.model = default_model_->with_weights(snap);
    e.sessions = e.model->open_sessions(options_.workers);
    e.base_version = version;
    e.base_bytes = snapshot_bytes(snap);
    resident_bytes_ += e.base_bytes;
    std::fill(e.refreshed_batch.begin(), e.refreshed_batch.end(), 0);
    ++e.loads;
    if (options_.recorder)
        options_.recorder->record(obs::EventKind::ModelLoad, clock_->now_us(),
                                  e.name, e.base_bytes, version);
    // A surviving canary configuration (e.g. after an LRU evict) comes
    // back with the entry, so the split an operator set keeps holding.
    if (e.canary_version != 0 && e.canary_pct != 0) {
        const auto csnap = reg.load(e.canary_version);
        e.canary_model = default_model_->with_weights(csnap);
        e.canary_sessions = e.canary_model->open_sessions(options_.workers);
        e.canary_bytes = snapshot_bytes(csnap);
        resident_bytes_ += e.canary_bytes;
    }
    evict_locked(&e);
}

void ModelRouter::drop_canary_arm_locked(Entry& e) {
    resident_bytes_ -= e.canary_bytes;
    e.canary_bytes = 0;
    e.canary_sessions.clear();
    e.canary_model.reset();
}

void ModelRouter::drop_arms_locked(Entry& e, bool keep_canary_config) {
    resident_bytes_ -= e.base_bytes;
    e.base_bytes = 0;
    e.sessions.clear();
    e.model.reset();
    e.base_version = 0;
    drop_canary_arm_locked(e);
    if (!keep_canary_config) {
        e.canary_version = 0;
        e.canary_pct = 0;
    }
}

void ModelRouter::evict_locked(const Entry* keep) {
    if (options_.resident_budget_bytes == 0) return;
    while (resident_bytes_ > options_.resident_budget_bytes) {
        Entry* victim = nullptr;
        for (auto& [name, ep] : entries_) {
            Entry& e = *ep;
            if (!e.model || e.pinned || &e == keep) continue;
            if (e.base_inflight + e.canary_inflight > 0) continue;
            if (!victim || e.lru_seq < victim->lru_seq) victim = &e;
        }
        if (!victim) return;  // soft ceiling: nothing is evictable
        ++victim->evictions;
        if (options_.recorder)
            options_.recorder->record(obs::EventKind::Eviction,
                                      clock_->now_us(), victim->name,
                                      victim->base_bytes + victim->canary_bytes,
                                      victim->base_version);
        drop_arms_locked(*victim, /*keep_canary_config=*/true);
    }
}

ModelRouter::DispatchSlot ModelRouter::acquire_slot(
    const Request& r, std::size_t worker, std::uint64_t batch_ordinal) {
    DispatchSlot slot;
    std::lock_guard<std::mutex> lk(entries_m_);
    Entry* e = nullptr;
    try {
        e = &find_or_register_locked(r.model);
        if (!e->model) load_locked(*e, 0);
    } catch (const std::exception& ex) {
        slot.error = ex.what();
        return slot;
    }
    e->lru_seq = ++lru_clock_;
    slot.entry = e;
    slot.canary = e->canary_pct > 0 && !e->canary_sessions.empty() &&
                  canary_arm(r.request_id, e->canary_pct);
    if (slot.canary) {
        slot.session = e->canary_sessions[worker].get();
        ++e->canary_dispatched;
        ++e->canary_inflight;
    } else {
        slot.session = e->sessions[worker].get();
        ++e->base_dispatched;
        ++e->base_inflight;
        // Batch boundary: the base arm adopts a newly published weight
        // image once per (entry, worker, batch), exactly the old Server
        // refresh discipline. The canary arm never refreshes — its whole
        // point is serving a fixed candidate version.
        if (e->refreshed_batch[worker] != batch_ordinal) {
            e->refreshed_batch[worker] = batch_ordinal;
            slot.do_refresh = true;
        }
    }
    return slot;
}

void ModelRouter::release_slot(const DispatchSlot& slot, bool ok,
                               double latency_us) {
    std::lock_guard<std::mutex> lk(entries_m_);
    Entry& e = *slot.entry;
    if (slot.canary) {
        --e.canary_inflight;
        ok ? ++e.canary_ok : ++e.canary_errors;
    } else {
        --e.base_inflight;
        ok ? ++e.base_ok : ++e.base_errors;
    }
    // Per-model latency is arm-agnostic (the canary split is a routing
    // detail, not a separate service) and excludes error outcomes, which
    // pass latency_us < 0.
    if (latency_us >= 0.0) e.latency.record(latency_us);
}

void ModelRouter::on_head_drop(const Dropped<Request>& d) {
    // collect_admitted invokes its on_drop callback OUTSIDE the queue lock
    // (admission.hpp pins that), so taking entries_m_ here cannot deadlock.
    // The entry exists: intake registers every addressable name before the
    // request may enter the queue — but an empty fleet_dir race is cheap to
    // tolerate, so a miss just skips per-model attribution.
    std::lock_guard<std::mutex> lk(entries_m_);
    const auto it = entries_.find(d.value.model);
    if (it != entries_.end()) {
        if (d.cause == DropCause::DeadlineExceeded)
            ++it->second->deadline_dropped;
        else
            ++it->second->codel_dropped;
    }
    if (options_.recorder)
        options_.recorder->record(
            d.cause == DropCause::DeadlineExceeded
                ? obs::EventKind::DeadlineDrop
                : obs::EventKind::CoDelDrop,
            clock_->now_us(), d.value.model, d.sojourn_us,
            static_cast<std::uint64_t>(d.cls));
}

void ModelRouter::worker_loop(std::size_t worker_index) {
    std::vector<Admitted<Request>> batch;
    std::vector<double> ok_latencies_us;
    std::vector<double> sojourns_us;
    std::uint64_t batch_ordinal = 0;
    // Head drops resolve here, on the worker thread: the request WAS
    // accepted, so its future must complete — as an explicit rejection.
    const auto reject_drop = [this](Dropped<Request>&& d) {
        on_head_drop(d);
        InferenceResult res = rejected_result(
            d.cause == DropCause::DeadlineExceeded
                ? RejectReason::DeadlineExceeded
                : RejectReason::Overload,
            d.cls);
        res.sojourn_us = static_cast<double>(d.sojourn_us);
        metrics_.on_admission_drop(res.sojourn_us);
        d.value.resolve(std::move(res));
    };
    while (collect_admitted(queue_, options_.batch, batch, reject_drop)) {
        ++batch_ordinal;
        ok_latencies_us.clear();
        sojourns_us.clear();
        std::size_t error_count = 0;
        for (Admitted<Request>& a : batch) {
            Request& r = a.value;
            // Stamps are taken whenever the request is traced or the
            // slow-request log is armed; a disabled trace costs one branch.
            const bool stamping =
                r.trace.enabled || options_.slow_request_us > 0;
            if (stamping) {
                // Dequeue time is derived from the sojourn the queue
                // already measured — no extra clock read at the head.
                r.trace.t_dequeue_us = a.enqueued_at_us + a.sojourn_us;
                r.trace.t_dispatch_us = clock_->now_us();
            }
            InferenceResult res;
            res.batch_size = batch.size();
            res.priority = a.cls;
            res.sojourn_us = static_cast<double>(a.sojourn_us);
            DispatchSlot slot = acquire_slot(r, worker_index, batch_ordinal);
            if (slot.session == nullptr) {
                // Routing failed (lazy load threw) — accepted requests
                // still complete, as an explicit Error.
                res.status = Status::Error;
                res.error = slot.error;
                // Keep the span chain telescoping: no compute happened.
                if (stamping) r.trace.t_compute_done_us = clock_->now_us();
            } else {
                // Inference runs outside entries_m_; the inflight share
                // taken in acquire_slot keeps the sessions alive.
                if (slot.do_refresh && slot.session->refresh())
                    metrics_.on_weight_refresh();
                // Kernel phase attribution: the session's cumulative
                // sweep/accumulate sinks are deltaed around the compute
                // call. Same-thread reads — a session is owned by this
                // worker — so plain loads are safe.
                const loihi::KernelPhaseTimes* phases =
                    stamping ? slot.session->kernel_phases() : nullptr;
                std::uint64_t sweep0 = 0, accum0 = 0;
                if (phases) {
                    sweep0 = phases->sweep_ns;
                    accum0 = phases->accum_ns;
                }
                try {
                    if (r.kind == Request::Kind::Predict) {
                        res.label = slot.session->predict(r.image);
                    } else {
                        res.counts = slot.session->output_counts(r.image);
                        std::size_t best = 0;
                        for (std::size_t j = 1; j < res.counts.size(); ++j)
                            if (res.counts[j] > res.counts[best]) best = j;
                        res.label = best;
                    }
                    res.status = Status::Ok;
                } catch (const std::exception& e) {
                    res.status = Status::Error;
                    res.error = e.what();
                }
                if (phases) {
                    r.trace.kernel_sweep_ns = phases->sweep_ns - sweep0;
                    r.trace.kernel_accum_ns = phases->accum_ns - accum0;
                }
                if (stamping) r.trace.t_compute_done_us = clock_->now_us();
                const std::uint64_t now = clock_->now_us();
                const double latency = static_cast<double>(
                    now >= a.enqueued_at_us ? now - a.enqueued_at_us : 0);
                release_slot(slot, res.status == Status::Ok,
                             res.status == Status::Ok ? latency : -1.0);
            }
            // t_complete shares the clock read that defines latency_us, so
            // a trace's span sum telescopes to the reported wall latency
            // exactly (ISSUE acceptance: within 5% by construction).
            const std::uint64_t now = clock_->now_us();
            if (stamping) r.trace.t_complete_us = now;
            res.latency_us = static_cast<double>(
                now >= a.enqueued_at_us ? now - a.enqueued_at_us : 0);
            if (r.trace.enabled) res.trace = r.trace;
            if (options_.recorder && options_.slow_request_us > 0 &&
                res.latency_us >
                    static_cast<double>(options_.slow_request_us)) {
                obs::Event ev;
                ev.t_us = now;
                ev.kind = obs::EventKind::SlowRequest;
                ev.a = r.request_id;
                ev.b = static_cast<std::uint64_t>(res.latency_us);
                ev.spans[0] = r.trace.queue_us();
                ev.spans[1] = r.trace.batch_us();
                ev.spans[2] = r.trace.compute_us();
                ev.spans[3] = r.trace.resolve_us();
                ev.spans[4] = r.trace.kernel_sweep_ns;
                ev.spans[5] = r.trace.kernel_accum_ns;
                ev.spans[6] = r.trace.total_us();
                ev.set_detail(r.model);
                options_.recorder->record(ev);
            }
            sojourns_us.push_back(res.sojourn_us);
            if (res.status == Status::Ok)
                ok_latencies_us.push_back(res.latency_us);
            else
                ++error_count;
            r.resolve(std::move(res));
        }
        metrics_.on_batch(batch.size(), ok_latencies_us, sojourns_us,
                          error_count);
    }
}

std::uint64_t ModelRouter::load(const std::string& name) {
    std::lock_guard<std::mutex> lk(entries_m_);
    Entry& e = find_or_register_locked(name);
    if (!e.model) load_locked(e, 0);
    return e.base_version;
}

void ModelRouter::unload(const std::string& name) {
    if (name.empty())
        throw std::invalid_argument(
            "ModelRouter: cannot unload the default model");
    for (int i = 0;; ++i) {
        {
            std::lock_guard<std::mutex> lk(entries_m_);
            auto it = entries_.find(name);
            if (it == entries_.end())
                throw std::invalid_argument("ModelRouter: unknown model '" +
                                            name + "'");
            Entry& e = *it->second;
            if (e.base_inflight + e.canary_inflight == 0) {
                e.pinned = false;
                drop_arms_locked(e, /*keep_canary_config=*/false);
                return;
            }
        }
        // Requests already dispatched finish on their session; queued ones
        // will reload the entry — unload never drops accepted work.
        if (i >= 250)
            throw std::runtime_error("ModelRouter: model '" + name +
                                     "' has requests in flight");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

std::uint64_t ModelRouter::pin(const std::string& name,
                               std::uint64_t version) {
    std::lock_guard<std::mutex> lk(entries_m_);
    Entry& e = find_or_register_locked(name);
    if (version == 0) {
        if (!e.model) load_locked(e, 0);
    } else if (e.model) {
        // Resident: hand the pool the pinned weights through the COW
        // publication channel — sessions adopt at their next batch
        // boundary, in-flight requests finish on the version they started.
        const std::string dir = registry_dir_locked(e);
        if (dir.empty())
            throw std::runtime_error("ModelRouter: model '" + e.name +
                                     "' has no registry");
        online::ModelRegistry reg(dir);
        e.model->publish_weights(reg.load(version));
        e.base_version = version;
        if (options_.recorder)
            options_.recorder->record(obs::EventKind::WeightPublish,
                                      clock_->now_us(), e.name, version, 0);
    } else {
        load_locked(e, version);
    }
    e.pinned = true;
    return e.base_version;
}

void ModelRouter::set_canary(const std::string& name, std::uint64_t version,
                             std::uint32_t pct) {
    if (pct > 100)
        throw std::invalid_argument("ModelRouter: canary pct must be 0..100");
    const bool clearing = pct == 0 || version == 0;
    for (int i = 0;; ++i) {
        {
            std::lock_guard<std::mutex> lk(entries_m_);
            Entry& e = find_or_register_locked(name);
            if (!clearing && e.canary_model && e.canary_version == version) {
                e.canary_pct = pct;  // same arm, new split — no rebuild
                if (options_.recorder)
                    options_.recorder->record(obs::EventKind::CanaryChange,
                                              clock_->now_us(), e.name, pct,
                                              version);
                return;
            }
            // Stop routing new work to the old arm first; it then drains
            // on its own even under live base traffic.
            e.canary_pct = 0;
            if (e.canary_inflight == 0) {
                drop_canary_arm_locked(e);
                e.canary_version = 0;
                if (clearing) {
                    if (options_.recorder)
                        options_.recorder->record(
                            obs::EventKind::CanaryChange, clock_->now_us(),
                            e.name, 0, 0);
                    return;
                }
                if (!e.model) load_locked(e, 0);
                const std::string dir = registry_dir_locked(e);
                if (dir.empty())
                    throw std::runtime_error("ModelRouter: model '" + e.name +
                                             "' has no registry");
                online::ModelRegistry reg(dir);
                const auto snap = reg.load(version);
                e.canary_model = default_model_->with_weights(snap);
                e.canary_sessions =
                    e.canary_model->open_sessions(options_.workers);
                e.canary_bytes = snapshot_bytes(snap);
                resident_bytes_ += e.canary_bytes;
                e.canary_version = version;
                e.canary_pct = pct;
                evict_locked(&e);
                if (options_.recorder)
                    options_.recorder->record(obs::EventKind::CanaryChange,
                                              clock_->now_us(), e.name, pct,
                                              version);
                return;
            }
        }
        if (i >= 250)
            throw std::runtime_error(
                "ModelRouter: canary arm of '" + name +
                "' still has requests in flight");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

ModelEntryStats ModelRouter::entry_stats_locked(const Entry& e) const {
    ModelEntryStats s;
    s.name = e.name;
    s.resident = e.model != nullptr;
    s.pinned = e.pinned;
    s.base_version = e.base_version;
    s.canary_version = e.canary_version;
    s.canary_pct = e.canary_pct;
    s.base_dispatched = e.base_dispatched;
    s.base_ok = e.base_ok;
    s.base_errors = e.base_errors;
    s.canary_dispatched = e.canary_dispatched;
    s.canary_ok = e.canary_ok;
    s.canary_errors = e.canary_errors;
    s.loads = e.loads;
    s.evictions = e.evictions;
    s.weight_bytes = e.base_bytes + e.canary_bytes;
    s.last_used = e.lru_seq;
    s.inflight = e.base_inflight + e.canary_inflight;
    s.codel_dropped = e.codel_dropped;
    s.deadline_dropped = e.deadline_dropped;
    s.latency_count = e.latency.count();
    if (s.latency_count > 0) {
        s.p50_us = e.latency.percentile(0.50);
        s.p95_us = e.latency.percentile(0.95);
        s.p99_us = e.latency.percentile(0.99);
        s.mean_us = e.latency.mean_us();
        s.max_us = e.latency.max_us();
    }
    return s;
}

std::vector<ModelEntryStats> ModelRouter::model_stats() const {
    std::lock_guard<std::mutex> lk(entries_m_);
    std::vector<ModelEntryStats> out;
    out.reserve(entries_.size());
    for (const auto& [name, e] : entries_) out.push_back(entry_stats_locked(*e));
    // Discovery: fleet entries nobody has addressed yet still exist as far
    // as operators are concerned — list them as non-resident rows so the
    // control plane can see what `load <name>` would accept.
    if (!options_.fleet_dir.empty()) {
        std::error_code ec;
        for (const auto& d : std::filesystem::directory_iterator(
                 options_.fleet_dir, ec)) {
            if (!d.is_directory()) continue;
            const std::string name = d.path().filename().string();
            if (!valid_model_name(name) || entries_.count(name)) continue;
            ModelEntryStats s;
            s.name = name;
            out.push_back(std::move(s));
        }
    }
    return out;
}

ModelEntryStats ModelRouter::model_stats(const std::string& name) const {
    std::lock_guard<std::mutex> lk(entries_m_);
    const auto it = entries_.find(name);
    if (it == entries_.end())
        throw std::invalid_argument("ModelRouter: unknown model '" + name +
                                    "'");
    return entry_stats_locked(*it->second);
}

std::size_t ModelRouter::resident_bytes() const {
    std::lock_guard<std::mutex> lk(entries_m_);
    return resident_bytes_;
}

double ModelRouter::elapsed_seconds() const {
    const double frozen = frozen_elapsed_s_.load();
    if (frozen >= 0.0) return frozen;
    if (!started_.load()) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_time_)
        .count();
}

ServerStats ModelRouter::stats() const {
    return metrics_.snapshot(elapsed_seconds(), queue_.counters(),
                             feedback_ ? feedback_->counters()
                                       : AdmissionCounters{});
}

}  // namespace neuro::serve
