#pragma once
// NxSDK-shaped network construction API (paper Operation Flow 1: "Create
// Network N" in Intel Loihi's SDK).
//
// Intel's NxSDK builds networks from *prototypes* — reusable parameter
// bundles — and *groups*: compartment groups instantiate a prototype N
// times, connection groups connect two compartment groups through a weight
// matrix and an optional connectivity mask. This module provides that
// surface on top of the loihi::Chip simulator, so downstream code written
// against the SDK idiom ports directly:
//
//     nx::NxNet net;
//     nx::CompartmentPrototype if_proto;           // paper IF configuration
//     if_proto.config.vth = 64;
//     auto in  = net.create_compartment_group("in", 16, if_proto);
//     auto out = net.create_compartment_group("out", 4, if_proto);
//     nx::ConnectionPrototype dense;
//     net.create_connection_group(in, out, dense, weights);  // {dst, src}
//     net.compile();
//     net.set_bias(in, pixel_biases);
//     net.run(64);
//     auto counts = net.spike_counts(out);
//
// The EMSTDP pipeline in src/core builds on the Chip directly (it predates
// this layer and needs a few low-level hooks); new applications should
// prefer this API. compile() is NxSDK's board.run() boundary: construction
// ends, mapping happens, and the runtime interface becomes usable.

#include <cstdint>
#include <string>
#include <vector>

#include "loihi/chip.hpp"
#include "snn/topology.hpp"

namespace neuro::nx {

/// Reusable compartment parameter bundle (NxSDK CompartmentPrototype).
struct CompartmentPrototype {
    loihi::CompartmentConfig config{};
    /// Logical neurons per core for groups built from this prototype
    /// (0 = capacity-packed, see loihi::PopulationConfig).
    std::size_t neurons_per_core = 0;
};

/// Reusable connection parameter bundle (NxSDK ConnectionPrototype). The
/// learning rule is given in microcode text ("2^-4*x1*y0 - 2^-4*x0*y1");
/// an empty string means a static (non-plastic) connection.
struct ConnectionPrototype {
    int weight_exp = 0;
    loihi::Port port = loihi::Port::Soma;
    std::uint8_t delay = 0;
    std::string dw;  ///< weight-update microcode; empty = static
    bool stochastic_rounding = true;
};

/// Handle to a compartment group. Cheap to copy; valid for the lifetime of
/// the NxNet that created it.
struct CompartmentGroup {
    loihi::PopulationId pop = 0;
    std::size_t size = 0;
};

class NxNet {
public:
    explicit NxNet(loihi::ChipLimits limits = {});

    // ---- construction (before compile) -------------------------------------
    CompartmentGroup create_compartment_group(const std::string& name,
                                              std::size_t size,
                                              const CompartmentPrototype& proto);

    /// Dense connection through a full {dst, src} row-major weight matrix
    /// (weights[d * src.size + s]); every entry becomes a synapse.
    loihi::ProjectionId create_connection_group(
        const CompartmentGroup& src, const CompartmentGroup& dst,
        const ConnectionPrototype& proto,
        const std::vector<std::int32_t>& weights);

    /// Masked connection: entries with mask[d * src.size + s] != 0 become
    /// synapses, the rest are left unconnected (NxSDK connection mask).
    loihi::ProjectionId create_connection_group(
        const CompartmentGroup& src, const CompartmentGroup& dst,
        const ConnectionPrototype& proto, const std::vector<std::int32_t>& weights,
        const std::vector<std::uint8_t>& mask);

    /// One-to-one connection with a shared weight (src.size == dst.size).
    loihi::ProjectionId connect_one_to_one(const CompartmentGroup& src,
                                           const CompartmentGroup& dst,
                                           const ConnectionPrototype& proto,
                                           std::int32_t weight);

    /// Convolutional connection: the kernel bank is expanded into explicit
    /// synapses (Loihi has no weight sharing). Geometry comes from `spec`;
    /// `kernel` is the {out_c, in_c, k, k} integer bank.
    loihi::ProjectionId connect_conv(const CompartmentGroup& src,
                                     const CompartmentGroup& dst,
                                     const ConnectionPrototype& proto,
                                     const snn::ConvSpec& spec,
                                     const std::vector<std::int32_t>& kernel);

    /// Ends construction: maps groups onto cores and builds delivery tables.
    void compile();
    bool compiled() const { return chip_.finalized(); }

    // ---- runtime (after compile) --------------------------------------------
    void run(std::size_t steps) { chip_.run(steps); }
    void set_bias(const CompartmentGroup& g, const std::vector<std::int32_t>& bias) {
        chip_.set_bias(g.pop, bias);
    }
    std::vector<std::int32_t> spike_counts(const CompartmentGroup& g) const {
        return chip_.spike_counts_total(g.pop);
    }
    /// Per-sample state clear (membranes, traces, counters).
    void reset() { chip_.reset_dynamic_state(); }

    /// Full access to the underlying chip (probes, learning, energy model).
    loihi::Chip& chip() { return chip_; }
    const loihi::Chip& chip() const { return chip_; }

private:
    loihi::Chip chip_;

    loihi::ProjectionConfig make_config(const CompartmentGroup& src,
                                        const CompartmentGroup& dst,
                                        const ConnectionPrototype& proto,
                                        std::size_t conn_index);
    std::size_t next_conn_ = 0;
};

}  // namespace neuro::nx
