#include "nx/net.hpp"

#include <stdexcept>

namespace neuro::nx {

NxNet::NxNet(loihi::ChipLimits limits) : chip_(limits) {}

CompartmentGroup NxNet::create_compartment_group(const std::string& name,
                                                 std::size_t size,
                                                 const CompartmentPrototype& proto) {
    loihi::PopulationConfig cfg;
    cfg.name = name;
    cfg.size = size;
    cfg.compartment = proto.config;
    cfg.neurons_per_core = proto.neurons_per_core;
    return CompartmentGroup{chip_.add_population(std::move(cfg)), size};
}

loihi::ProjectionConfig NxNet::make_config(const CompartmentGroup& src,
                                           const CompartmentGroup& dst,
                                           const ConnectionPrototype& proto,
                                           std::size_t conn_index) {
    loihi::ProjectionConfig cfg;
    cfg.name = "conn" + std::to_string(conn_index);
    cfg.src = src.pop;
    cfg.dst = dst.pop;
    cfg.port = proto.port;
    cfg.weight_exp = proto.weight_exp;
    cfg.stochastic_rounding = proto.stochastic_rounding;
    if (!proto.dw.empty()) {
        cfg.plastic = true;
        cfg.rule.dw = loihi::parse_sum_of_products(proto.dw);
    }
    return cfg;
}

loihi::ProjectionId NxNet::create_connection_group(
    const CompartmentGroup& src, const CompartmentGroup& dst,
    const ConnectionPrototype& proto, const std::vector<std::int32_t>& weights) {
    return create_connection_group(src, dst, proto, weights,
                                   std::vector<std::uint8_t>());
}

loihi::ProjectionId NxNet::create_connection_group(
    const CompartmentGroup& src, const CompartmentGroup& dst,
    const ConnectionPrototype& proto, const std::vector<std::int32_t>& weights,
    const std::vector<std::uint8_t>& mask) {
    if (weights.size() != src.size * dst.size)
        throw std::invalid_argument(
            "create_connection_group: weight matrix must be dst x src (" +
            std::to_string(dst.size) + " x " + std::to_string(src.size) + ")");
    if (!mask.empty() && mask.size() != weights.size())
        throw std::invalid_argument(
            "create_connection_group: mask size must match the weight matrix");
    std::vector<loihi::Synapse> syns;
    syns.reserve(weights.size());
    for (std::size_t d = 0; d < dst.size; ++d) {
        for (std::size_t s = 0; s < src.size; ++s) {
            const std::size_t k = d * src.size + s;
            if (!mask.empty() && mask[k] == 0) continue;
            syns.push_back({static_cast<std::uint32_t>(s),
                            static_cast<std::uint32_t>(d), weights[k],
                            proto.delay});
        }
    }
    return chip_.add_projection(make_config(src, dst, proto, next_conn_++),
                                std::move(syns));
}

loihi::ProjectionId NxNet::connect_one_to_one(const CompartmentGroup& src,
                                              const CompartmentGroup& dst,
                                              const ConnectionPrototype& proto,
                                              std::int32_t weight) {
    if (src.size != dst.size)
        throw std::invalid_argument(
            "connect_one_to_one: group sizes differ (" +
            std::to_string(src.size) + " vs " + std::to_string(dst.size) + ")");
    auto syns = snn::identity_synapses(src.size, weight);
    if (proto.delay != 0)
        for (auto& s : syns) s.delay = proto.delay;
    return chip_.add_projection(make_config(src, dst, proto, next_conn_++),
                                std::move(syns));
}

loihi::ProjectionId NxNet::connect_conv(const CompartmentGroup& src,
                                        const CompartmentGroup& dst,
                                        const ConnectionPrototype& proto,
                                        const snn::ConvSpec& spec,
                                        const std::vector<std::int32_t>& kernel) {
    if (spec.in_size() != src.size)
        throw std::invalid_argument("connect_conv: spec input size " +
                                    std::to_string(spec.in_size()) +
                                    " != source group size " +
                                    std::to_string(src.size));
    if (spec.out_size() != dst.size)
        throw std::invalid_argument("connect_conv: spec output size " +
                                    std::to_string(spec.out_size()) +
                                    " != destination group size " +
                                    std::to_string(dst.size));
    auto syns = snn::conv_synapses(spec, kernel);
    if (proto.delay != 0)
        for (auto& s : syns) s.delay = proto.delay;
    return chip_.add_projection(make_config(src, dst, proto, next_conn_++),
                                std::move(syns));
}

void NxNet::compile() { chip_.finalize(); }

}  // namespace neuro::nx
