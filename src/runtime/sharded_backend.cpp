#include "runtime/sharded_backend.hpp"

#include "core/sharded_network.hpp"
#include "runtime/loihi_backend.hpp"

namespace neuro::runtime {

namespace {

class ShardedSession final : public Session {
public:
    explicit ShardedSession(core::ShardedEmstdpNetwork net)
        : net_(std::move(net)) {}

    BackendKind backend() const override {
        return BackendKind::ShardedLoihiSim;
    }

    void train(const common::Tensor& image, std::size_t label) override {
        net_.train_sample(image, label);
    }
    std::size_t predict(const common::Tensor& image) override {
        return net_.predict(image);
    }
    std::vector<std::int32_t> output_counts(const common::Tensor& image) override {
        return net_.output_counts(image);
    }

    WeightSnapshot weights() const override { return {net_.plastic_weights()}; }
    void load_weights(const WeightSnapshot& snap) override {
        net_.set_plastic_weights(snap.layers);
    }

    void set_class_mask(const std::vector<bool>& mask) override {
        net_.set_class_mask(mask);
    }
    void set_learning_shift_offset(int offset) override {
        net_.set_learning_shift_offset(offset);
    }
    void seed_noise(std::uint64_t seed) override {
        net_.seed_learning_noise(seed);
    }

    const loihi::ActivityTotals* activity() const override {
        activity_ = net_.activity();
        return &activity_;
    }
    core::ShardedEmstdpNetwork* native_sharded_network() override {
        return &net_;
    }

private:
    core::ShardedEmstdpNetwork net_;
    /// Aggregated-on-read snapshot (activity() must hand out a stable
    /// pointer; the per-shard counters live in the shard chips).
    mutable loihi::ActivityTotals activity_{};
};

/// Immutable artifact: a fully-built sharded prototype. Sessions replicate
/// it — shard chips share structure and copy-on-write weight images.
class ShardedCompiledModel final : public CompiledModel {
public:
    ShardedCompiledModel(ModelSpec spec, core::ShardedEmstdpNetwork proto)
        : CompiledModel(std::move(spec)), proto_(std::move(proto)) {}

    BackendKind backend() const override {
        return BackendKind::ShardedLoihiSim;
    }

    std::unique_ptr<Session> do_open_session() const override {
        return std::make_unique<ShardedSession>(proto_.replicate());
    }

    std::shared_ptr<const CompiledModel> with_weights(
        const WeightSnapshot& snap) const override {
        auto net = proto_.replicate();
        net.set_plastic_weights(snap.layers);
        return std::make_shared<ShardedCompiledModel>(spec_, std::move(net));
    }

    WeightSnapshot initial_weights() const override {
        return {proto_.plastic_weights()};
    }

private:
    core::ShardedEmstdpNetwork proto_;
};

/// The 1-shard degenerate: today's single-chip compiled model, wrapped so
/// the model still reports the backend it was compiled on. Sessions are
/// plain LoihiSim sessions — bit-identical to BackendKind::LoihiSim.
class DegenerateShardedModel final : public CompiledModel {
public:
    DegenerateShardedModel(ModelSpec spec,
                           std::shared_ptr<const CompiledModel> inner)
        : CompiledModel(std::move(spec)), inner_(std::move(inner)) {}

    BackendKind backend() const override {
        return BackendKind::ShardedLoihiSim;
    }
    std::unique_ptr<Session> do_open_session() const override {
        return inner_->open_session();
    }
    std::shared_ptr<const CompiledModel> with_weights(
        const WeightSnapshot& snap) const override {
        return std::make_shared<DegenerateShardedModel>(
            spec_, inner_->with_weights(snap));
    }
    WeightSnapshot initial_weights() const override {
        return inner_->initial_weights();
    }

private:
    std::shared_ptr<const CompiledModel> inner_;
};

}  // namespace

std::shared_ptr<const CompiledModel> make_sharded_model(
    const ModelSpec& spec, const core::EmstdpNetwork& proto,
    std::size_t num_shards) {
    // Throws when the network cannot shard at all (population > one chip).
    auto plan = core::plan_network_shards(proto.chip(), num_shards);
    if (plan.single())
        return std::make_shared<DegenerateShardedModel>(
            spec, make_single_chip_model(spec, proto.replicate()));
    return std::make_shared<ShardedCompiledModel>(
        spec, core::ShardedEmstdpNetwork(proto, std::move(plan)));
}

std::shared_ptr<const CompiledModel> ShardedLoihiBackend::compile(
    const ModelSpec& spec) const {
    spec.validate();
    core::EmstdpNetwork proto(spec.options, spec.in_c, spec.in_h, spec.in_w,
                              spec.conv.get(), spec.hidden, spec.classes);
    return make_sharded_model(spec, proto, spec.shards);
}

}  // namespace neuro::runtime
