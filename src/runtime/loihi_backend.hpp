#pragma once
// LoihiSimBackend: the chip-simulator backend. Sessions wrap a replicated
// core::EmstdpNetwork and are bit-identical to driving an EmstdpNetwork
// directly (weights, spike counts, ActivityTotals) — asserted by
// tests/runtime_test.cpp. Session opening shares the compiled chip
// structure and the copy-on-write weight image (see loihi::Chip), so no
// per-session chip deep-copy happens.

#include <memory>

#include "runtime/backend.hpp"

namespace neuro::core {
class EmstdpNetwork;
}

namespace neuro::runtime {

class LoihiSimBackend final : public Backend {
public:
    BackendKind kind() const override { return BackendKind::LoihiSim; }
    const char* name() const override { return "loihi-sim"; }
    std::shared_ptr<const CompiledModel> compile(
        const ModelSpec& spec) const override;
};

/// Wraps an already-built network (current weights, device faults, class
/// masks, RNG state as of this call) as an immutable CompiledModel on the
/// LoihiSim backend — the bridge for code that constructs EmstdpNetwork
/// directly (e.g. core::ParallelTrainer's master). The spec records the
/// observable topology; a conv stack inside `net` stays frozen in the
/// compiled chip but is not re-described in the spec.
std::shared_ptr<const CompiledModel> adopt(const core::EmstdpNetwork& net);

/// Wraps a prototype network as a single-chip compiled model without the
/// spill check (the degenerate target of ShardedLoihiBackend and the tail
/// of LoihiSimBackend::compile).
std::shared_ptr<const CompiledModel> make_single_chip_model(
    ModelSpec spec, core::EmstdpNetwork proto);

}  // namespace neuro::runtime
