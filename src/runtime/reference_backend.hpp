#pragma once
// ReferenceBackend: the full-precision float EMSTDP implementation behind
// the runtime Session contract — the paper's "Python (FP)" baseline as a
// drop-in backend. Inputs are rate tensors in [0,1] (flattened); conv
// stacks are not supported (the experiment pipeline feeds it normalized
// conv *features* instead, see core::compile_reference_model). Weight
// snapshots are converted to/from the canonical chip grid with
// w_float = w_int / theta_dense.

#include "runtime/backend.hpp"

namespace neuro::runtime {

class ReferenceBackend final : public Backend {
public:
    BackendKind kind() const override { return BackendKind::Reference; }
    const char* name() const override { return "reference"; }
    std::shared_ptr<const CompiledModel> compile(
        const ModelSpec& spec) const override;
};

}  // namespace neuro::runtime
