#pragma once
// Declarative model description for the runtime API (docs/ARCHITECTURE.md §5).
//
// A ModelSpec says *what* to build — input geometry, optional frozen conv
// stack, dense hidden sizes, class count, EMSTDP options — without building
// anything. Backends turn a spec into an immutable CompiledModel:
//
//     auto model = runtime::CompiledModel::compile(
//         runtime::ModelSpec{}.input(1, 16, 16).hidden_layers({100})
//                             .output_classes(10),
//         runtime::BackendKind::LoihiSim);
//     auto session = model->open_session();   // one per thread
//
// The spec is a plain value: copy it, tweak a field, compile again.

#include <cstddef>
#include <memory>
#include <vector>

#include "core/options.hpp"
#include "snn/convert.hpp"

namespace neuro::runtime {

/// Which substrate executes the model. Every backend implements the same
/// Session contract; see backend.hpp for what conformance requires.
enum class BackendKind {
    LoihiSim,   ///< bit-faithful chip simulator (loihi::Chip, integer datapath)
    Reference,  ///< full-precision float EMSTDP (reference::RefEmstdp)
    /// Multi-chip sharded simulator: the model partitions across several
    /// Chip instances with inter-chip spike routing (loihi/router.hpp).
    /// Compiling a spec that fits one chip degenerates to the LoihiSim
    /// path; LoihiSim compiles of over-budget models spill here.
    ShardedLoihiSim,
};

const char* to_string(BackendKind kind);

struct ModelSpec {
    /// Input geometry (CHW). Rate vectors are 1 x 1 x N.
    std::size_t in_c = 1, in_h = 1, in_w = 0;
    /// Dense hidden sizes (the paper uses {100}).
    std::vector<std::size_t> hidden = {100};
    std::size_t classes = 0;
    /// EMSTDP configuration. theta_dense doubles as the canonical weight
    /// scale: runtime weight snapshots are integers on the theta_dense grid,
    /// which is what lets one snapshot load into any backend.
    core::EmstdpOptions options{};
    /// Optional pretrained frozen conv stack (owned; captured by with_conv).
    std::shared_ptr<const snn::ConvertedStack> conv;
    /// Chip-simulator shard count: 0 plans automatically (1 chip when the
    /// model fits, the minimum that fits otherwise); >= 2 forces exactly
    /// that many shards (an error when the network cannot spread that far);
    /// 1 pins the single-chip path — on LoihiSim even for over-budget
    /// models (the historical permissive simulation). Ignored by the
    /// Reference backend.
    std::size_t shards = 0;

    // ---- builder-style setters (each returns *this for chaining) -----------
    ModelSpec& input(std::size_t c, std::size_t h, std::size_t w);
    ModelSpec& hidden_layers(std::vector<std::size_t> sizes);
    ModelSpec& output_classes(std::size_t n);
    ModelSpec& with_options(const core::EmstdpOptions& opt);
    /// Copies the stack; the spec (and every model compiled from it) owns it.
    ModelSpec& with_conv(const snn::ConvertedStack& stack);
    /// Requests multi-chip sharded execution (see BackendKind::ShardedLoihiSim).
    ModelSpec& with_shards(std::size_t n);

    std::size_t input_size() const { return in_c * in_h * in_w; }
    /// Size of the population feeding the first plastic layer.
    std::size_t feature_size() const {
        return conv ? conv->conv2.spec.out_size() : input_size();
    }

    /// Backend-independent sanity checks; throws std::invalid_argument.
    void validate() const;
};

}  // namespace neuro::runtime
