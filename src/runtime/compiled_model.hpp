#pragma once
// CompiledModel: the immutable, shareable artifact between a ModelSpec and
// its Sessions. Compiling does all the expensive, once-per-topology work —
// building the network, core mapping, fan-out tables, weight initialization
// — and freezes the result. Threads then open cheap per-thread Sessions
// against the one shared model; nothing in a CompiledModel ever mutates, so
// no synchronization is needed around it.

#include <memory>
#include <vector>

#include "runtime/model_spec.hpp"
#include "runtime/session.hpp"
#include "runtime/weights.hpp"

namespace neuro::runtime {

class CompiledModel {
public:
    virtual ~CompiledModel() = default;

    CompiledModel(const CompiledModel&) = delete;
    CompiledModel& operator=(const CompiledModel&) = delete;

    /// Validates `spec` and compiles it on the chosen backend. The returned
    /// model is immutable; hold it by shared_ptr and share it freely.
    static std::shared_ptr<const CompiledModel> compile(
        const ModelSpec& spec, BackendKind kind = BackendKind::LoihiSim);

    const ModelSpec& spec() const { return spec_; }
    virtual BackendKind backend() const = 0;

    /// Opens a fresh Session holding only dynamic state. Every session
    /// starts from this model's (frozen) initial weights and RNG state, so
    /// two sessions opened at any time behave identically.
    virtual std::unique_ptr<Session> open_session() const = 0;

    /// Session-pool hook: opens `n` independent sessions in one call — the
    /// worker-pool pattern (serve::Server, ParallelTrainer) without N open
    /// loops at every call site. Sessions are mutually independent.
    std::vector<std::unique_ptr<Session>> open_sessions(std::size_t n) const {
        std::vector<std::unique_ptr<Session>> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i) out.push_back(open_session());
        return out;
    }

    /// A new model identical to this one but starting from `snap` — the
    /// deploy path: train somewhere, snapshot, compile-with-weights, then
    /// open read-only inference sessions everywhere. This model is unchanged.
    virtual std::shared_ptr<const CompiledModel> with_weights(
        const WeightSnapshot& snap) const = 0;

    /// The frozen initial plastic weights sessions start from.
    virtual WeightSnapshot initial_weights() const = 0;

protected:
    explicit CompiledModel(ModelSpec spec) : spec_(std::move(spec)) {}
    ModelSpec spec_;
};

}  // namespace neuro::runtime
