#pragma once
// CompiledModel: the immutable, shareable artifact between a ModelSpec and
// its Sessions. Compiling does all the expensive, once-per-topology work —
// building the network, core mapping, fan-out tables, weight initialization
// — and freezes the result. Threads then open cheap per-thread Sessions
// against the one shared model; the compiled structure never mutates, so no
// synchronization is needed around it.
//
// The one sanctioned mutable slot is the *published weight image*
// (publish_weights / Session::refresh): a thread-safe, versioned,
// atomically-swappable COW channel that lets a background learner hand new
// weights to a live serving pool without pausing it (learning-while-
// serving, docs/ARCHITECTURE.md §9). Models that never publish behave
// exactly as before — refresh() is a version check that always says no.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/model_spec.hpp"
#include "runtime/session.hpp"
#include "runtime/weight_channel.hpp"
#include "runtime/weights.hpp"

namespace neuro::runtime {

class CompiledModel {
public:
    virtual ~CompiledModel() = default;

    CompiledModel(const CompiledModel&) = delete;
    CompiledModel& operator=(const CompiledModel&) = delete;

    /// Validates `spec` and compiles it on the chosen backend. The returned
    /// model is immutable; hold it by shared_ptr and share it freely.
    static std::shared_ptr<const CompiledModel> compile(
        const ModelSpec& spec, BackendKind kind = BackendKind::LoihiSim);

    const ModelSpec& spec() const { return spec_; }
    virtual BackendKind backend() const = 0;

    /// Opens a fresh Session holding only dynamic state. Every session
    /// starts from this model's (frozen) initial weights and RNG state, so
    /// two sessions opened at any time behave identically; a session joins
    /// the published-weights stream only when it calls refresh().
    std::unique_ptr<Session> open_session() const {
        auto session = do_open_session();
        session->attach_weight_channel(channel_);
        return session;
    }

    /// Session-pool hook: opens `n` independent sessions in one call — the
    /// worker-pool pattern (serve::Server, ParallelTrainer) without N open
    /// loops at every call site. Sessions are mutually independent.
    std::vector<std::unique_ptr<Session>> open_sessions(std::size_t n) const {
        std::vector<std::unique_ptr<Session>> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i) out.push_back(open_session());
        return out;
    }

    /// A new model identical to this one but starting from `snap` — the
    /// deploy path: train somewhere, snapshot, compile-with-weights, then
    /// open read-only inference sessions everywhere. This model is unchanged.
    virtual std::shared_ptr<const CompiledModel> with_weights(
        const WeightSnapshot& snap) const = 0;

    /// The frozen initial plastic weights sessions start from.
    virtual WeightSnapshot initial_weights() const = 0;

    // ---- versioned weight publication (learning-while-serving, §9) ---------
    /// Publishes `snap` as the model's next weight version and returns its
    /// id (monotonic, starting at 1). Thread-safe; const because the channel
    /// — not the compiled structure — is what mutates. Sessions pick the new
    /// image up at their next refresh(); in-flight work is untouched.
    std::uint64_t publish_weights(WeightSnapshot snap) const {
        return channel_->publish(std::move(snap));
    }

    /// Id of the latest published version; 0 when nothing was published.
    std::uint64_t published_version() const { return channel_->version(); }

    /// The latest published image (the version-0 sentinel with an empty
    /// snapshot when nothing was published). Never null.
    std::shared_ptr<const WeightVersion> published_weights() const {
        return channel_->current();
    }

protected:
    explicit CompiledModel(ModelSpec spec) : spec_(std::move(spec)) {}

    /// Backend hook behind open_session(); the base wires the session to
    /// this model's weight channel after the backend builds it.
    virtual std::unique_ptr<Session> do_open_session() const = 0;

    ModelSpec spec_;

private:
    std::shared_ptr<WeightChannel> channel_ = std::make_shared<WeightChannel>();
};

}  // namespace neuro::runtime
