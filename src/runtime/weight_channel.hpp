#pragma once
// Versioned weight publication — the runtime half of learning-while-serving
// (neuro::online, docs/ARCHITECTURE.md §9).
//
// A CompiledModel's *structure* stays immutable forever; the one sanctioned
// mutable slot it carries is this channel: the latest published weight
// image. Publishing atomically swaps a shared_ptr to an immutable
// WeightVersion, so every reader pins the exact image it loaded (COW at
// image granularity) — a publish never mutates or frees weights an
// in-flight inference still reads, which is what keeps serving
// bit-deterministic against the version each request started on.

#include <cstdint>
#include <memory>
#include <mutex>

#include "runtime/weights.hpp"

namespace neuro::runtime {

/// One published weight image. Immutable once constructed and held by
/// shared_ptr; sessions that loaded it keep it alive for as long as they
/// need it regardless of later publishes.
struct WeightVersion {
    std::uint64_t version = 0;  ///< 0 is reserved for "initial weights"
    WeightSnapshot snapshot;    ///< empty at the version-0 sentinel
};

/// The atomically-swappable slot behind CompiledModel::publish_weights and
/// Session::refresh. Thread-safe for any number of publishers and readers.
/// Version ids are strictly monotonic and carry no content semantics:
/// rolling back republishes an old snapshot under a NEW id, so readers
/// never have to reason about version numbers moving backwards.
class WeightChannel {
public:
    /// Latest published image; the version-0 sentinel before any publish.
    std::shared_ptr<const WeightVersion> current() const {
        std::lock_guard<std::mutex> lock(m_);
        return current_;
    }

    std::uint64_t version() const {
        std::lock_guard<std::mutex> lock(m_);
        return current_->version;
    }

    /// Swaps `snap` in as the next version; returns its version id.
    std::uint64_t publish(WeightSnapshot snap) {
        auto next = std::make_shared<WeightVersion>();
        next->snapshot = std::move(snap);
        std::lock_guard<std::mutex> lock(m_);
        next->version = current_->version + 1;
        current_ = std::move(next);
        return current_->version;
    }

private:
    mutable std::mutex m_;
    std::shared_ptr<const WeightVersion> current_ =
        std::make_shared<WeightVersion>();
};

}  // namespace neuro::runtime
