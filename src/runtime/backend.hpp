#pragma once
// The backend contract (docs/ARCHITECTURE.md §5). A Backend turns a
// ModelSpec into an immutable CompiledModel whose Sessions implement the
// full Session interface. Conformance requirements:
//
//   * compile() validates the spec (throwing std::invalid_argument for
//     anything it cannot realize, e.g. conv stacks on the Reference
//     backend) and performs ALL expensive construction up front.
//   * Sessions opened from one model are mutually independent and start
//     from identical state, regardless of when they are opened.
//   * Weight snapshots are canonical (integer, theta_dense grid): a
//     snapshot taken on one backend must load on every other.
//   * Optional capabilities (activity counters, native network access)
//     return null rather than throwing when unsupported.

#include <memory>
#include <vector>

#include "runtime/compiled_model.hpp"
#include "runtime/model_spec.hpp"

namespace neuro::runtime {

class Backend {
public:
    virtual ~Backend() = default;
    virtual BackendKind kind() const = 0;
    virtual const char* name() const = 0;
    virtual std::shared_ptr<const CompiledModel> compile(
        const ModelSpec& spec) const = 0;
};

/// The built-in backend for `kind` (static lifetime).
const Backend& backend_for(BackendKind kind);

/// All built-in backends, for enumeration in tools and tests.
std::vector<const Backend*> backends();

}  // namespace neuro::runtime
