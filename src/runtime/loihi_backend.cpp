#include "runtime/loihi_backend.hpp"

#include <stdexcept>

#include "core/network.hpp"
#include "runtime/sharded_backend.hpp"

namespace neuro::runtime {

namespace {

class LoihiSession final : public Session {
public:
    explicit LoihiSession(core::EmstdpNetwork net) : net_(std::move(net)) {}

    BackendKind backend() const override { return BackendKind::LoihiSim; }

    void train(const common::Tensor& image, std::size_t label) override {
        net_.train_sample(image, label);
    }
    std::size_t predict(const common::Tensor& image) override {
        return net_.predict(image);
    }
    std::vector<std::int32_t> output_counts(const common::Tensor& image) override {
        return net_.output_counts(image);
    }

    WeightSnapshot weights() const override { return {net_.plastic_weights()}; }
    void load_weights(const WeightSnapshot& snap) override {
        net_.set_plastic_weights(snap.layers);
    }

    void set_class_mask(const std::vector<bool>& mask) override {
        net_.set_class_mask(mask);
    }
    void set_learning_shift_offset(int offset) override {
        net_.set_learning_shift_offset(offset);
    }
    void seed_noise(std::uint64_t seed) override {
        net_.chip().seed_learning_noise(seed);
    }

    const loihi::ActivityTotals* activity() const override {
        return &net_.chip().activity();
    }
    const loihi::KernelPhaseTimes* kernel_phases() const override {
        return &net_.chip().kernel_phase_times();
    }
    core::EmstdpNetwork* native_network() override { return &net_; }

private:
    core::EmstdpNetwork net_;
};

}  // namespace

/// Immutable artifact: a fully-built, finalized prototype network. Sessions
/// replicate it — which shares the chip structure and weight image — so the
/// expensive construction happens exactly once, at compile().
class LoihiCompiledModel final : public CompiledModel {
public:
    LoihiCompiledModel(ModelSpec spec, core::EmstdpNetwork proto)
        : CompiledModel(std::move(spec)), proto_(std::move(proto)) {}

    BackendKind backend() const override { return BackendKind::LoihiSim; }

    std::unique_ptr<Session> do_open_session() const override {
        return std::make_unique<LoihiSession>(proto_.replicate());
    }

    std::shared_ptr<const CompiledModel> with_weights(
        const WeightSnapshot& snap) const override {
        auto net = proto_.replicate();
        net.set_plastic_weights(snap.layers);
        return std::make_shared<LoihiCompiledModel>(spec_, std::move(net));
    }

    WeightSnapshot initial_weights() const override {
        return {proto_.plastic_weights()};
    }

private:
    core::EmstdpNetwork proto_;
};

std::shared_ptr<const CompiledModel> make_single_chip_model(
    ModelSpec spec, core::EmstdpNetwork proto) {
    return std::make_shared<LoihiCompiledModel>(std::move(spec),
                                                std::move(proto));
}

std::shared_ptr<const CompiledModel> LoihiSimBackend::compile(
    const ModelSpec& spec) const {
    spec.validate();
    // An explicit shard request belongs to the sharded backend wholesale.
    if (spec.shards > 1)
        return backend_for(BackendKind::ShardedLoihiSim).compile(spec);
    core::EmstdpNetwork proto(spec.options, spec.in_c, spec.in_h, spec.in_w,
                              spec.conv.get(), spec.hidden, spec.classes);
    // Transparent spill: a model whose mapping exceeds one chip's core
    // budget compiles to a shard plan instead — same Session API, several
    // chips underneath — provided every population fits a chip (otherwise
    // keep the historical permissive single-chip simulation). An explicit
    // shards == 1 opts out: it pins the single-chip path even over budget.
    if (spec.shards == 0 && !proto.chip().mapping().feasible) {
        try {
            return make_sharded_model(spec, proto, /*num_shards=*/0);
        } catch (const std::invalid_argument&) {
            // e.g. one population alone exceeds the chip: not shardable.
        }
    }
    return std::make_shared<LoihiCompiledModel>(spec, std::move(proto));
}

std::shared_ptr<const CompiledModel> adopt(const core::EmstdpNetwork& net) {
    ModelSpec spec;
    spec.options = net.options();
    const auto& chip = net.chip();
    spec.input(1, 1, chip.population_size(net.input_pop()));
    std::vector<std::size_t> hidden;
    hidden.reserve(net.hidden_pops().size());
    for (auto p : net.hidden_pops()) hidden.push_back(chip.population_size(p));
    spec.hidden_layers(std::move(hidden));
    spec.output_classes(chip.population_size(net.output_pop()));
    return std::make_shared<LoihiCompiledModel>(std::move(spec), net.replicate());
}

}  // namespace neuro::runtime
