#pragma once
// ShardedLoihiBackend: multi-chip sharded execution behind the unchanged
// Session API. compile() builds the usual single-chip prototype, plans a
// shard partition (loihi::plan_shards), and — when more than one chip is
// needed or requested — compiles to a core::ShardedEmstdpNetwork whose
// sessions step N chips in lockstep with inter-chip spike routing. A spec
// that plans to a single shard degenerates to today's single-chip path
// (the returned sessions are ordinary LoihiSim sessions, bit-identical to
// BackendKind::LoihiSim), wrapped so the model still reports this backend.

#include <memory>

#include "runtime/backend.hpp"

namespace neuro::core {
class EmstdpNetwork;
}

namespace neuro::runtime {

class ShardedLoihiBackend final : public Backend {
public:
    BackendKind kind() const override { return BackendKind::ShardedLoihiSim; }
    const char* name() const override { return "sharded-loihi-sim"; }
    std::shared_ptr<const CompiledModel> compile(
        const ModelSpec& spec) const override;
};

/// Compiles `proto` to a sharded model with `num_shards` chips (0 = auto).
/// Throws std::invalid_argument when the network cannot shard (a single
/// population exceeding one chip's core budget, or an unpackable explicit
/// count). Used by LoihiSimBackend's transparent spill path.
std::shared_ptr<const CompiledModel> make_sharded_model(
    const ModelSpec& spec, const core::EmstdpNetwork& proto,
    std::size_t num_shards);

}  // namespace neuro::runtime
