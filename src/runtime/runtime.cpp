#include "runtime/backend.hpp"

#include <stdexcept>

#include "runtime/loihi_backend.hpp"
#include "runtime/reference_backend.hpp"
#include "runtime/session.hpp"
#include "runtime/sharded_backend.hpp"
#include "runtime/weight_channel.hpp"

namespace neuro::runtime {

const Backend& backend_for(BackendKind kind) {
    static const LoihiSimBackend loihi_sim;
    static const ReferenceBackend reference;
    static const ShardedLoihiBackend sharded_loihi_sim;
    switch (kind) {
        case BackendKind::LoihiSim: return loihi_sim;
        case BackendKind::Reference: return reference;
        case BackendKind::ShardedLoihiSim: return sharded_loihi_sim;
    }
    throw std::invalid_argument("backend_for: unknown backend kind");
}

std::vector<const Backend*> backends() {
    return {&backend_for(BackendKind::LoihiSim),
            &backend_for(BackendKind::Reference),
            &backend_for(BackendKind::ShardedLoihiSim)};
}

std::shared_ptr<const CompiledModel> CompiledModel::compile(
    const ModelSpec& spec, BackendKind kind) {
    return backend_for(kind).compile(spec);
}

void Session::save(const std::string& path) const {
    save_snapshot(path, weights());
}

bool Session::refresh() {
    if (!channel_) return false;
    // Fast path: one locked 64-bit read when nothing new was published —
    // the per-batch cost on a serving pool that never sees a publish.
    if (channel_->version() == seen_version_) return false;
    const auto image = channel_->current();
    if (image->version == seen_version_) return false;
    load_weights(image->snapshot);
    seen_version_ = image->version;
    return true;
}

}  // namespace neuro::runtime
