#pragma once
// Canonical plastic-weight snapshot exchanged through the runtime API.
//
// Weights are integers on the theta_dense grid — exactly what the chip
// stores in synaptic memory — in plastic-projection order, each layer
// row-major {out, in} (the dense_synapses / RefEmstdp convention). The
// LoihiSim backend uses them verbatim; the Reference backend maps them to
// floats as w_float = w_int / theta_dense. One snapshot therefore loads
// into any backend, which is what the cross-backend parity tests exercise.

#include <cstdint>
#include <string>
#include <vector>

namespace neuro::runtime {

struct WeightSnapshot {
    /// layers[l][o * in + i] — plastic projections only, input-to-output
    /// order (frozen conv weights never change and are not part of it).
    std::vector<std::vector<std::int32_t>> layers;

    bool empty() const { return layers.empty(); }
};

/// Writes a snapshot to `path` (versioned binary format, v2: trailing
/// FNV-1a checksum). Throws on I/O failure.
void save_snapshot(const std::string& path, const WeightSnapshot& snap);

/// Reads a snapshot written by save_snapshot (v1 files — no checksum — are
/// still accepted). Throws on malformed, truncated or corrupt files; every
/// announced element count is validated against the file size before any
/// allocation happens.
WeightSnapshot load_snapshot(const std::string& path);

}  // namespace neuro::runtime
