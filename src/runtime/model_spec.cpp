#include "runtime/model_spec.hpp"

#include <stdexcept>

namespace neuro::runtime {

const char* to_string(BackendKind kind) {
    switch (kind) {
        case BackendKind::LoihiSim: return "loihi-sim";
        case BackendKind::Reference: return "reference";
        case BackendKind::ShardedLoihiSim: return "sharded-loihi-sim";
    }
    return "?";
}

ModelSpec& ModelSpec::input(std::size_t c, std::size_t h, std::size_t w) {
    in_c = c;
    in_h = h;
    in_w = w;
    return *this;
}

ModelSpec& ModelSpec::hidden_layers(std::vector<std::size_t> sizes) {
    hidden = std::move(sizes);
    return *this;
}

ModelSpec& ModelSpec::output_classes(std::size_t n) {
    classes = n;
    return *this;
}

ModelSpec& ModelSpec::with_options(const core::EmstdpOptions& opt) {
    options = opt;
    return *this;
}

ModelSpec& ModelSpec::with_conv(const snn::ConvertedStack& stack) {
    conv = std::make_shared<const snn::ConvertedStack>(stack);
    return *this;
}

ModelSpec& ModelSpec::with_shards(std::size_t n) {
    shards = n;
    return *this;
}

void ModelSpec::validate() const {
    if (input_size() == 0)
        throw std::invalid_argument("ModelSpec: input geometry is empty");
    if (classes == 0) throw std::invalid_argument("ModelSpec: zero classes");
    for (std::size_t h : hidden)
        if (h == 0)
            throw std::invalid_argument("ModelSpec: zero-sized hidden layer");
    if (conv && (conv->conv1.spec.in_c != in_c || conv->conv1.spec.in_h != in_h ||
                 conv->conv1.spec.in_w != in_w))
        throw std::invalid_argument("ModelSpec: conv stack geometry mismatch");
}

}  // namespace neuro::runtime
