#include "runtime/reference_backend.hpp"

#include <cmath>
#include <stdexcept>

#include "common/fixed.hpp"
#include "reference/emstdp_ref.hpp"

namespace neuro::runtime {

namespace {

std::vector<float> to_rates(const common::Tensor& image, std::size_t expected) {
    if (image.size() != expected)
        throw std::invalid_argument("ReferenceBackend: input size mismatch");
    return {image.data(), image.data() + image.size()};
}

/// Float weights -> canonical chip-grid snapshot (round, saturate).
WeightSnapshot to_snapshot(const std::vector<std::vector<float>>& weights,
                           std::int32_t theta_dense, int weight_bits) {
    WeightSnapshot snap;
    snap.layers.reserve(weights.size());
    for (const auto& layer : weights) {
        std::vector<std::int32_t> w(layer.size());
        for (std::size_t i = 0; i < layer.size(); ++i)
            w[i] = static_cast<std::int32_t>(common::saturate_signed(
                std::lround(layer[i] * static_cast<float>(theta_dense)),
                weight_bits));
        snap.layers.push_back(std::move(w));
    }
    return snap;
}

/// Canonical snapshot -> float weights, written in place (validates shape).
/// Inverse of to_snapshot; the one definition behind both load_weights and
/// with_weights.
void from_snapshot(const WeightSnapshot& snap,
                   std::vector<std::vector<float>>& weights,
                   std::int32_t theta_dense, const char* what) {
    if (snap.layers.size() != weights.size())
        throw std::invalid_argument(std::string(what) +
                                    ": layer count mismatch");
    for (std::size_t l = 0; l < weights.size(); ++l) {
        if (snap.layers[l].size() != weights[l].size())
            throw std::invalid_argument(std::string(what) +
                                        ": layer size mismatch");
        for (std::size_t i = 0; i < weights[l].size(); ++i)
            weights[l][i] = static_cast<float>(snap.layers[l][i]) /
                            static_cast<float>(theta_dense);
    }
}

class ReferenceSession final : public Session {
public:
    ReferenceSession(reference::RefEmstdp ref, std::int32_t theta_dense,
                     int weight_bits)
        : ref_(std::move(ref)), theta_dense_(theta_dense),
          weight_bits_(weight_bits) {}

    BackendKind backend() const override { return BackendKind::Reference; }

    void train(const common::Tensor& image, std::size_t label) override {
        ref_.train_sample(to_rates(image, ref_.config().layer_sizes.front()),
                          label);
    }
    std::size_t predict(const common::Tensor& image) override {
        return ref_.predict(to_rates(image, ref_.config().layer_sizes.front()));
    }
    std::vector<std::int32_t> output_counts(const common::Tensor& image) override {
        const auto counts = ref_.forward_counts(
            to_rates(image, ref_.config().layer_sizes.front()));
        return {counts.begin(), counts.end()};
    }

    WeightSnapshot weights() const override {
        return to_snapshot(ref_.weights(), theta_dense_, weight_bits_);
    }
    void load_weights(const WeightSnapshot& snap) override {
        from_snapshot(snap, ref_.weights(), theta_dense_, "load_weights");
    }

    void set_class_mask(const std::vector<bool>& mask) override {
        std::vector<float> m(mask.size());
        for (std::size_t i = 0; i < mask.size(); ++i) m[i] = mask[i] ? 1.0f : 0.0f;
        ref_.set_class_mask(m);
    }
    void set_learning_shift_offset(int offset) override {
        if (offset < 0)
            throw std::invalid_argument(
                "set_learning_shift_offset: negative offset");
        ref_.set_eta_scale(std::ldexp(1.0f, -offset));
    }
    void seed_noise(std::uint64_t) override {
        // The float reference is noise-free; accepted for protocol parity.
    }

private:
    reference::RefEmstdp ref_;
    std::int32_t theta_dense_;
    int weight_bits_;
};

class ReferenceCompiledModel final : public CompiledModel {
public:
    ReferenceCompiledModel(ModelSpec spec, reference::RefEmstdp proto)
        : CompiledModel(std::move(spec)), proto_(std::move(proto)) {}

    BackendKind backend() const override { return BackendKind::Reference; }

    std::unique_ptr<Session> do_open_session() const override {
        return std::make_unique<ReferenceSession>(
            proto_, spec_.options.theta_dense, spec_.options.weight_bits);
    }

    std::shared_ptr<const CompiledModel> with_weights(
        const WeightSnapshot& snap) const override {
        auto model = std::make_shared<ReferenceCompiledModel>(spec_, proto_);
        from_snapshot(snap, model->proto_.weights(), spec_.options.theta_dense,
                      "with_weights");
        return model;
    }

    WeightSnapshot initial_weights() const override {
        return to_snapshot(proto_.weights(), spec_.options.theta_dense,
                           spec_.options.weight_bits);
    }

private:
    reference::RefEmstdp proto_;
};

}  // namespace

std::shared_ptr<const CompiledModel> ReferenceBackend::compile(
    const ModelSpec& spec) const {
    spec.validate();
    if (spec.conv)
        throw std::invalid_argument(
            "ReferenceBackend: conv stacks are not supported; feed normalized "
            "conv features instead (core::compile_reference_model)");
    reference::RefConfig cfg;
    cfg.layer_sizes.push_back(spec.input_size());
    for (std::size_t h : spec.hidden) cfg.layer_sizes.push_back(h);
    cfg.layer_sizes.push_back(spec.classes);
    cfg.phase_length = spec.options.phase_length;
    cfg.eta = spec.options.eta;
    cfg.feedback = spec.options.feedback == core::FeedbackMode::FA
                       ? reference::FeedbackMode::FA
                       : reference::FeedbackMode::DFA;
    cfg.target_rate = spec.options.target_rate;
    cfg.feedback_gain = spec.options.feedback_gain;
    cfg.pre_phase1_only =
        spec.options.pre_window == loihi::TraceWindow::Phase1Only;
    cfg.derivative_gating = spec.options.derivative_gating;
    cfg.seed = spec.options.seed;
    return std::make_shared<ReferenceCompiledModel>(
        spec, reference::RefEmstdp(std::move(cfg)));
}

}  // namespace neuro::runtime
