#pragma once
// A Session is the only mutable object in the runtime API: it owns the
// dynamic state of one executing model instance (membranes, spike counters,
// RNG streams, and — once it diverges — its own weight image) while reading
// the immutable CompiledModel it was opened from.
//
// Threading rules (docs/ARCHITECTURE.md §5):
//   * A CompiledModel is immutable — share one across any number of threads.
//   * A Session is NOT thread-safe — open one per thread. Opening is cheap:
//     sessions share the compiled structure, and the weight image is
//     copy-on-write (an inference-only session never copies it).
//   * Sessions outlive their model safely (shared structure is refcounted).

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/tensor.hpp"
#include "runtime/model_spec.hpp"
#include "runtime/weights.hpp"

namespace neuro::loihi {
struct ActivityTotals;
struct KernelPhaseTimes;
}
namespace neuro::core {
class EmstdpNetwork;
class ShardedEmstdpNetwork;
}

namespace neuro::runtime {

class WeightChannel;

class Session {
public:
    virtual ~Session() = default;

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    virtual BackendKind backend() const = 0;

    // ---- the workload ------------------------------------------------------
    /// One online EMSTDP training step (phase 1 + phase 2 + weight update).
    virtual void train(const common::Tensor& image, std::size_t label) = 0;
    /// Phase-1 inference; argmax of output spike counts.
    virtual std::size_t predict(const common::Tensor& image) = 0;
    /// Phase-1 output spike counts (probing).
    virtual std::vector<std::int32_t> output_counts(const common::Tensor& image) = 0;

    // ---- weights -----------------------------------------------------------
    /// Current plastic weights in the canonical (chip-grid) representation.
    virtual WeightSnapshot weights() const = 0;
    /// Reprograms the plastic weights from a canonical snapshot.
    virtual void load_weights(const WeightSnapshot& snap) = 0;
    /// Checkpoints weights() to a file (load with runtime::load_snapshot +
    /// Session::load_weights or CompiledModel::with_weights).
    void save(const std::string& path) const;

    // ---- published-weights stream (learning-while-serving, §9) -------------
    /// If the model this session was opened from has published a weight
    /// image newer than the one this session runs on, loads it and returns
    /// true. Call only at batch boundaries — never mid-phase — so results
    /// stay bit-deterministic against the version each request started on.
    /// When nothing new was published this is one cheap version check.
    bool refresh();

    /// Version of the published image this session last loaded; 0 while it
    /// still runs on the weights it was opened with (or weights it loaded
    /// itself through load_weights).
    std::uint64_t weights_version() const { return seen_version_; }

    /// Wiring used by CompiledModel::open_session; not for callers.
    void attach_weight_channel(std::shared_ptr<const WeightChannel> channel) {
        channel_ = std::move(channel);
    }

    // ---- online-learning knobs (paper Sec. IV-B) ---------------------------
    virtual void set_class_mask(const std::vector<bool>& mask) = 0;
    /// Adds `offset` to the learning shift — halves the learning rate per
    /// unit. The Reference backend realizes it as an eta scale of 2^-offset.
    virtual void set_learning_shift_offset(int offset) = 0;

    // ---- determinism -------------------------------------------------------
    /// Reseeds the backend's stochastic streams (stochastic rounding on the
    /// chip). Backends without noise accept and ignore it, so seeded
    /// protocols like ParallelTrainer run unchanged on every backend.
    virtual void seed_noise(std::uint64_t seed) = 0;

    // ---- optional capabilities ---------------------------------------------
    /// Activity counters for the energy model; null when the backend does
    /// not model events (Reference).
    virtual const loihi::ActivityTotals* activity() const { return nullptr; }
    /// Cumulative kernel phase-timer sinks (sweep/accumulation wall time,
    /// obs/timer.hpp — advance only while obs::set_timing(true)); null when
    /// the backend has none. Read on the session's own thread only: the
    /// serving workers snapshot before/after a request to attribute its
    /// compute span (ARCHITECTURE §14).
    virtual const loihi::KernelPhaseTimes* kernel_phases() const {
        return nullptr;
    }
    /// Escape hatch to the underlying simulated network for probing tools
    /// that predate the runtime API; null on non-chip backends.
    virtual core::EmstdpNetwork* native_network() { return nullptr; }
    /// Escape hatch to the multi-chip network of a sharded session; null
    /// everywhere else (a 1-shard compile degenerates to the single-chip
    /// path and exposes native_network instead).
    virtual core::ShardedEmstdpNetwork* native_sharded_network() {
        return nullptr;
    }

protected:
    Session() = default;

private:
    std::shared_ptr<const WeightChannel> channel_;
    std::uint64_t seen_version_ = 0;
};

}  // namespace neuro::runtime
