#include "runtime/weights.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace neuro::runtime {

namespace {
constexpr std::uint32_t kMagic = 0x4E525753;  // "NRWS"
// v1: magic, version, layer count, then per layer {count, words}.
// v2 appends a trailing FNV-1a checksum over every 32-bit word after the
// version field, so truncation and bit corruption fail loudly instead of
// loading garbage weights. Readers accept both.
constexpr std::uint32_t kVersion = 2;

/// Incremental FNV-1a over the file's 32-bit words (byte order is the
/// writer's native order, same as the payload itself).
struct Fnv32 {
    std::uint32_t state = 2166136261u;
    void feed(std::uint32_t word) {
        for (int b = 0; b < 4; ++b) {
            state ^= (word >> (8 * b)) & 0xFFu;
            state *= 16777619u;
        }
    }
};

}  // namespace

void save_snapshot(const std::string& path, const WeightSnapshot& snap) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("save_snapshot: cannot open " + path);
    Fnv32 sum;
    auto put32 = [&](std::uint32_t v) {
        out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    auto put_summed = [&](std::uint32_t v) {
        sum.feed(v);
        put32(v);
    };
    put32(kMagic);
    put32(kVersion);
    put_summed(static_cast<std::uint32_t>(snap.layers.size()));
    for (const auto& layer : snap.layers) {
        put_summed(static_cast<std::uint32_t>(layer.size()));
        for (const auto w : layer) put_summed(static_cast<std::uint32_t>(w));
    }
    put32(sum.state);
    if (!out) throw std::runtime_error("save_snapshot: write failed for " + path);
}

WeightSnapshot load_snapshot(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("load_snapshot: cannot open " + path);
    in.seekg(0, std::ios::end);
    const auto file_bytes = static_cast<std::uint64_t>(in.tellg());
    in.seekg(0);
    Fnv32 sum;
    auto get32 = [&]() {
        std::uint32_t v = 0;
        in.read(reinterpret_cast<char*>(&v), sizeof(v));
        if (!in) throw std::runtime_error("load_snapshot: truncated file " + path);
        return v;
    };
    if (get32() != kMagic) throw std::runtime_error("load_snapshot: bad magic");
    const std::uint32_t version = get32();
    if (version != 1 && version != kVersion)
        throw std::runtime_error("load_snapshot: unsupported version");
    auto get_summed = [&]() {
        const std::uint32_t v = get32();
        sum.feed(v);
        return v;
    };
    // Exact payload budget: everything after the 8-byte header, minus the
    // v2 trailing checksum. Every count read must leave room for the data
    // it announces; an oversized count is rejected *before* resize() turns
    // it into a multi-gigabyte allocation (or bad_alloc).
    std::uint64_t remaining_words =
        (file_bytes - std::min<std::uint64_t>(file_bytes, 8)) / 4;
    if (version >= 2) remaining_words = remaining_words > 0 ? remaining_words - 1 : 0;
    auto take_words = [&](std::uint64_t n, const char* what) {
        if (n > remaining_words)
            throw std::runtime_error("load_snapshot: corrupt " +
                                     std::string(what) + " in " + path +
                                     " (announces more data than the file holds)");
        remaining_words -= n;
    };
    take_words(1, "header");
    WeightSnapshot snap;
    const std::uint32_t layer_count = get_summed();
    // Each layer contributes at least its own count word, so a layer count
    // beyond the remaining words is corruption — reject before resize().
    if (layer_count > remaining_words)
        throw std::runtime_error(
            "load_snapshot: corrupt layer count in " + path +
            " (announces more layers than the file holds)");
    snap.layers.resize(layer_count);
    for (auto& layer : snap.layers) {
        take_words(1, "layer header");
        const std::uint32_t count = get_summed();
        take_words(count, "layer size");
        layer.resize(count);
        for (auto& w : layer) w = static_cast<std::int32_t>(get_summed());
    }
    if (version >= 2 && get32() != sum.state)
        throw std::runtime_error("load_snapshot: checksum mismatch in " + path +
                                 " (truncated or corrupt file)");
    return snap;
}

}  // namespace neuro::runtime
