#include "runtime/weights.hpp"

#include <fstream>
#include <stdexcept>

namespace neuro::runtime {

namespace {
constexpr std::uint32_t kMagic = 0x4E525753;  // "NRWS"
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_snapshot(const std::string& path, const WeightSnapshot& snap) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("save_snapshot: cannot open " + path);
    auto put32 = [&](std::uint32_t v) {
        out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    put32(kMagic);
    put32(kVersion);
    put32(static_cast<std::uint32_t>(snap.layers.size()));
    for (const auto& layer : snap.layers) {
        put32(static_cast<std::uint32_t>(layer.size()));
        for (const auto w : layer) put32(static_cast<std::uint32_t>(w));
    }
    if (!out) throw std::runtime_error("save_snapshot: write failed for " + path);
}

WeightSnapshot load_snapshot(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("load_snapshot: cannot open " + path);
    in.seekg(0, std::ios::end);
    const auto file_bytes = static_cast<std::uint64_t>(in.tellg());
    in.seekg(0);
    auto get32 = [&]() {
        std::uint32_t v = 0;
        in.read(reinterpret_cast<char*>(&v), sizeof(v));
        if (!in) throw std::runtime_error("load_snapshot: truncated file " + path);
        return v;
    };
    // Every count in the file describes at least 4 bytes of payload, so any
    // count beyond file_bytes/4 is corruption — reject it before resize()
    // turns it into a multi-gigabyte allocation.
    auto get_count = [&]() {
        const std::uint32_t n = get32();
        if (n > file_bytes / 4)
            throw std::runtime_error("load_snapshot: corrupt count in " + path);
        return n;
    };
    if (get32() != kMagic) throw std::runtime_error("load_snapshot: bad magic");
    if (get32() != kVersion)
        throw std::runtime_error("load_snapshot: unsupported version");
    WeightSnapshot snap;
    snap.layers.resize(get_count());
    for (auto& layer : snap.layers) {
        layer.resize(get_count());
        for (auto& w : layer) w = static_cast<std::int32_t>(get32());
    }
    return snap;
}

}  // namespace neuro::runtime
