#pragma once
// On-disk model registry for the online engine. Every weight version that
// PASSES the shadow-eval gate is persisted — snapshot file (checksummed
// runtime::save_snapshot v2 format) plus a manifest line with its held-out
// accuracy — so "the last good version" survives process death: a
// restarted engine republishes it before consuming any feedback, and an
// operator can roll a live server back to any accepted version by hand.
//
// Layout inside the registry directory:
//   v<N>.nrws   weight snapshot of accepted version N
//   MANIFEST    one "<version> <accuracy>" line per accepted version in
//               acceptance order; the last line is the last good version.
//               Rewritten via a temp file + rename so a crash mid-write
//               leaves the previous manifest intact.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "runtime/weights.hpp"

namespace neuro::online {

struct RegistryEntry {
    std::uint64_t version = 0;
    double accuracy = 0.0;  ///< shadow-eval accuracy at acceptance time
};

class ModelRegistry {
public:
    /// Opens the registry at `dir`, creating the directory if needed and
    /// loading the manifest when one exists. Throws on I/O failure or a
    /// malformed manifest.
    explicit ModelRegistry(std::string dir);

    /// Persists an accepted version: writes the snapshot, then appends the
    /// manifest entry (the ordering makes a crash between the two steps
    /// leave an orphaned snapshot file, never a dangling manifest line).
    void record(std::uint64_t version, double accuracy,
                const runtime::WeightSnapshot& snap);

    /// Re-reads the manifest from disk, picking up versions another process
    /// (e.g. an online learner running next to a neurod daemon) has
    /// accepted since this registry was opened. Throws on a malformed
    /// manifest, leaving the in-memory entries unchanged.
    void reload();

    /// Accepted versions in acceptance order (empty for a fresh registry).
    const std::vector<RegistryEntry>& entries() const { return entries_; }

    /// Whether `version` is recorded in the (in-memory) manifest.
    bool has(std::uint64_t version) const;

    /// The most recently accepted version — what a restart should serve.
    std::optional<RegistryEntry> last_good() const;

    /// Loads a recorded version's snapshot (checksum-verified). Throws when
    /// the version was never recorded or its file is corrupt.
    runtime::WeightSnapshot load(std::uint64_t version) const;

    std::string snapshot_path(std::uint64_t version) const;
    const std::string& dir() const { return dir_; }

private:
    void write_manifest() const;

    std::string dir_;
    std::vector<RegistryEntry> entries_;
};

}  // namespace neuro::online
