#include "online/engine.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/trainer.hpp"
#include "obs/flight_recorder.hpp"
#include "serve/clock.hpp"
#include "serve/scheduler.hpp"

namespace {
/// Accuracy as integer parts-per-million — what the flight event's b word
/// carries (events pack into u64 slots; 1e6 keeps 4 significant digits).
std::uint64_t acc_ppm(double acc) {
    return acc <= 0.0 ? 0
                      : static_cast<std::uint64_t>(std::llround(acc * 1e6));
}
}  // namespace

namespace neuro::online {

OnlineEngine::OnlineEngine(std::shared_ptr<const runtime::CompiledModel> model,
                           std::shared_ptr<serve::FeedbackQueue> feedback,
                           data::Dataset holdout, OnlineOptions opt)
    : model_(std::move(model)), feedback_(std::move(feedback)),
      holdout_(std::move(holdout)), opt_(opt) {
    if (!model_) throw std::invalid_argument("OnlineEngine: null model");
    if (!feedback_)
        throw std::invalid_argument(
            "OnlineEngine: null feedback queue (enable "
            "ServerOptions::admission.feedback_capacity)");
    if (holdout_.size() == 0)
        throw std::invalid_argument("OnlineEngine: empty holdout set");
    if (opt_.publish_interval == 0)
        throw std::invalid_argument("OnlineEngine: zero publish_interval");
    if (opt_.feedback_batch == 0)
        throw std::invalid_argument("OnlineEngine: zero feedback_batch");
    if (!opt_.registry_dir.empty())
        registry_ = std::make_unique<ModelRegistry>(opt_.registry_dir);
}

OnlineEngine::~OnlineEngine() { stop(); }

void OnlineEngine::start() {
    if (started_) return;
    started_ = true;

    learner_ = model_->open_session();
    eval_ = model_->open_session();
    replay_ = std::make_unique<ReplayPool>(
        model_->spec().classes, opt_.replay_per_class, opt_.seed);

    // Restart path: when the model has nothing published but the registry
    // remembers an accepted version, republish it before any feedback is
    // consumed — a crash never quietly reverts the fleet to initial weights.
    if (registry_) {
        if (const auto good = registry_->last_good()) {
            registry_next_ = good->version;
            if (model_->published_version() == 0) {
                model_->publish_weights(registry_->load(good->version));
                std::lock_guard<std::mutex> lock(stats_m_);
                stats_.last_good_accuracy = good->accuracy;
            }
        }
    }

    // The learner continues from whatever is serving now (published image,
    // or the model's initial weights when nothing was published).
    learner_->refresh();
    learner_->set_learning_shift_offset(opt_.learning_shift_offset);
    last_good_ = learner_->weights();

    // Shadow-eval baseline: what today's weights score on the held-out set.
    eval_->load_weights(last_good_);
    last_good_acc_ = core::evaluate(*eval_, holdout_);
    {
        std::lock_guard<std::mutex> lock(stats_m_);
        stats_.baseline_accuracy = last_good_acc_;
        stats_.last_good_accuracy = last_good_acc_;
        stats_.current_version = model_->published_version();
    }

    thread_ = std::thread([this] { learner_loop(); });
}

void OnlineEngine::stop() {
    if (!started_ || joined_) return;
    joined_ = true;
    feedback_->close();  // end of intake; the loop drains and exits
    if (thread_.joinable()) thread_.join();
}

bool OnlineEngine::running() const { return started_ && !joined_; }

OnlineStats OnlineEngine::stats() const {
    std::lock_guard<std::mutex> lock(stats_m_);
    return stats_;
}

void OnlineEngine::learner_loop() {
    serve::BatchPolicy policy;
    policy.max_batch = opt_.feedback_batch;
    policy.max_delay_us = opt_.feedback_wait_us;
    std::vector<serve::FeedbackSample> batch;
    while (serve::collect_batch(*feedback_, policy, batch)) {
        for (const serve::FeedbackSample& sample : batch) {
            // This engine trains the DEFAULT model only; a sample addressed
            // to a fleet entry is another tenant's learning material
            // (serve/feedback.hpp) — skip it without charging the stats.
            if (!sample.model.empty()) continue;
            // A bad sample (or a failing registry disk) must never
            // std::terminate the process that is also serving traffic:
            // count it, skip it, keep learning.
            try {
                replay_->add(sample.image, sample.label);
                const bool hit = core::train_prequential(*learner_, sample.image,
                                                         sample.label);
                std::uint64_t replay_trained = 0;
                for (const auto& r : replay_->draw(opt_.replay_per_sample)) {
                    learner_->train(r.image, r.label);
                    ++replay_trained;
                }
                std::lock_guard<std::mutex> lock(stats_m_);
                ++stats_.feedback_seen;
                stats_.trained += 1 + replay_trained;
                if (hit) ++stats_.prequential_hits;
            } catch (const std::exception&) {
                std::lock_guard<std::mutex> lock(stats_m_);
                ++stats_.feedback_seen;
                ++stats_.errors;
                continue;
            }
            if (++since_candidate_ >= opt_.publish_interval) {
                since_candidate_ = 0;
                try {
                    evaluate_candidate();
                } catch (const std::exception&) {
                    // Unpublished by construction (persist-before-publish);
                    // the learner keeps its weights and the next interval
                    // retries the gate.
                    std::lock_guard<std::mutex> lock(stats_m_);
                    ++stats_.errors;
                }
            }
        }
    }
}

void OnlineEngine::evaluate_candidate() {
    runtime::WeightSnapshot candidate = learner_->weights();
    eval_->load_weights(candidate);
    const double acc = core::evaluate(*eval_, holdout_);

    const bool passes =
        acc >= opt_.min_accuracy && acc >= last_good_acc_ - opt_.max_regression;
    if (passes) {
        // Persist BEFORE publishing: if recording throws, traffic never saw
        // a version the registry cannot restore.
        if (registry_) registry_->record(++registry_next_, acc, candidate);
        last_good_ = candidate;
        const std::uint64_t version =
            model_->publish_weights(std::move(candidate));
        last_good_acc_ = acc;
        if (opt_.recorder)
            opt_.recorder->record(obs::EventKind::WeightPublish,
                                  serve::default_clock()->now_us(), "online",
                                  version, acc_ppm(acc));
        std::lock_guard<std::mutex> lock(stats_m_);
        ++stats_.candidates;
        ++stats_.published;
        stats_.current_version = version;
        stats_.last_eval_accuracy = acc;
        stats_.last_good_accuracy = acc;
    } else {
        // Rollback: the candidate was never published — the last good
        // version keeps serving untouched; the learner restarts from it so
        // a bad feedback burst cannot compound across intervals.
        learner_->load_weights(last_good_);
        if (opt_.recorder)
            opt_.recorder->record(obs::EventKind::Rollback,
                                  serve::default_clock()->now_us(), "online",
                                  0, acc_ppm(acc));
        std::lock_guard<std::mutex> lock(stats_m_);
        ++stats_.candidates;
        ++stats_.rollbacks;
        stats_.last_eval_accuracy = acc;
    }
}

}  // namespace neuro::online
