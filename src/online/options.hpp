#pragma once
// Configuration of the learning-while-serving engine (online::OnlineEngine,
// docs/ARCHITECTURE.md §9). Defaults are tuned for the digits task at test
// scale; benches and production deployments override per workload.

#include <cstddef>
#include <cstdint>
#include <string>

namespace neuro::obs {
class FlightRecorder;
}

namespace neuro::online {

struct OnlineOptions {
    /// Feedback samples trained between candidate publications (the
    /// publish interval — also the cadence of the shadow-eval gate).
    std::size_t publish_interval = 32;

    /// Replay-pool capacity per class (bounded reservoir); 0 disables
    /// replay entirely (pure streaming updates).
    std::size_t replay_per_class = 64;

    /// Replay samples mixed in per feedback sample (class-balanced draws,
    /// the iol::sample_replay contract); 0 disables replay training.
    std::size_t replay_per_sample = 1;

    /// Shadow-eval gate: a candidate may trail the last good version's
    /// held-out accuracy by at most this much...
    double max_regression = 0.02;
    /// ...and must clear this absolute accuracy floor (0 disables).
    double min_accuracy = 0.0;

    /// Directory of the on-disk model registry (created if missing); empty
    /// disables persistence — accepted versions then live only in memory.
    std::string registry_dir;

    /// Learner-side micro-batch coalescing over the feedback queue (same
    /// collect_batch mechanics as the serving workers).
    std::size_t feedback_batch = 8;
    std::uint64_t feedback_wait_us = 500;

    /// Seed of the replay pool's draw/reservoir streams; the whole learning
    /// trajectory is deterministic given the seed and the feedback order.
    std::uint64_t seed = 17;

    /// Extra learning shift applied to the learner session (each unit
    /// halves the learning rate — conservative online updates on top of an
    /// already-good model, paper Sec. IV-B's step-1 spirit).
    int learning_shift_offset = 0;

    /// Flight recorder for WeightPublish / Rollback events at the shadow-
    /// eval gate (docs/ARCHITECTURE.md §14). Non-owning; must outlive the
    /// engine. Null disables recording; determinism is unaffected either
    /// way (events carry wall timestamps but never feed the learner).
    obs::FlightRecorder* recorder = nullptr;
};

}  // namespace neuro::online
