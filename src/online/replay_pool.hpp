#pragma once
// Replay pool of the online learner — the continual-learning half of
// learning-while-serving. Interleaving replay draws with fresh feedback is
// what keeps the live model from catastrophically forgetting quiet classes
// while a bursty feedback stream hammers the loud ones (the production
// analogue of the paper's Sec. IV-B incremental protocol).
//
// The draw discipline mirrors iol::sample_replay exactly: classes with at
// least one stored sample cycle round-robin (a class-balanced mix) and the
// sample within a class is uniform. Draws come from a dedicated RNG stream
// split off the seed, so the draw sequence is a pure function of (seed,
// draw index, pool contents) — independent of reservoir churn — which is
// the determinism contract tests/iol_test.cpp pins and
// tests/online_test.cpp reuses.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "serve/feedback.hpp"

namespace neuro::online {

/// Bounded per-class reservoir of labeled samples. Deliberately not
/// thread-safe: it lives on the learner thread (OnlineEngine) and nothing
/// else touches it.
class ReplayPool {
public:
    ReplayPool(std::size_t num_classes, std::size_t per_class,
               std::uint64_t seed);

    /// Observes one labeled sample. While a class bucket has room the
    /// sample is kept; afterwards classic reservoir sampling keeps every
    /// observation of the class equally likely to be retained.
    void add(const common::Tensor& image, std::size_t label);

    /// Draws `count` replay samples (copies — the pool may churn freely
    /// afterwards). Classes cycle round-robin across calls so the mix
    /// stays balanced over the whole stream, not just within one draw.
    /// Returns fewer than `count` only when the pool is empty.
    std::vector<serve::FeedbackSample> draw(std::size_t count);

    std::size_t stored() const { return stored_; }
    std::size_t stored_in(std::size_t cls) const {
        return buckets_[cls].size();
    }
    std::size_t num_classes() const { return buckets_.size(); }

private:
    std::vector<std::vector<serve::FeedbackSample>> buckets_;
    std::vector<std::uint64_t> seen_;  ///< per-class observation counts
    std::size_t per_class_;
    std::size_t stored_ = 0;
    std::size_t cursor_ = 0;  ///< round-robin class cursor
    common::Rng reservoir_rng_;
    common::Rng draw_rng_;
};

}  // namespace neuro::online
