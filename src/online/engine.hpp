#pragma once
// neuro::online::OnlineEngine — in-hardware-style learning while serving
// (docs/ARCHITECTURE.md §9). The paper's headline capability is EMSTDP
// updates running *on the chip that serves*; this engine is the production
// shape of that: a background learner Session trains on live labeled
// feedback next to an unpaused serve::Server pool, and hands the pool new
// weights through the runtime's versioned COW publication channel.
//
//   serve::Server ──feedback queue──► learner Session (EMSTDP + replay)
//        ▲                                    │ every publish_interval samples
//        │ Session::refresh()                 ▼ candidate snapshot
//        │ at batch boundaries        shadow-eval Session (held-out set)
//        │                                    │
//   published weight image ◄── pass ── gate: acc >= last_good - max_regression
//        (COW, versioned)              │
//        + registry record             └ fail: ROLLBACK — candidate is never
//                                        published; learner reloads the last
//                                        good weights and keeps consuming
//
// Lifecycle and guarantees:
//   * The serving pool is never paused. Publication swaps an immutable
//     weight image; worker sessions adopt it at their next batch boundary
//     and in-flight requests finish on the version they started with.
//   * A candidate that fails the shadow-eval gate is never visible to
//     traffic — rollback is the *default* state of the world (nothing was
//     published), not an emergency procedure.
//   * Every accepted version is persisted to the on-disk registry (when
//     configured) before the engine moves on; a restarted engine
//     republishes the registry's last good version before consuming any
//     feedback, so a crash never serves older weights than it accepted.
//   * Determinism: given the seed and the feedback arrival order, the
//     whole learning trajectory — updates, replay draws, publish points,
//     eval accuracies, rollbacks — is bit-reproducible on the integer
//     chip simulator, independent of serving traffic and thread timing.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "data/dataset.hpp"
#include "online/options.hpp"
#include "online/registry.hpp"
#include "online/replay_pool.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/feedback.hpp"

namespace neuro::online {

/// Point-in-time counters; plain data, safe to copy around.
struct OnlineStats {
    std::uint64_t feedback_seen = 0;   ///< samples drained from the queue
    std::uint64_t trained = 0;         ///< training steps incl. replay
    std::uint64_t candidates = 0;      ///< shadow evals run
    std::uint64_t published = 0;       ///< candidates that passed the gate
    std::uint64_t rollbacks = 0;       ///< candidates rejected at the gate
    /// Samples (or candidate evaluations) skipped because the backend or
    /// registry threw — the learner survives and keeps consuming.
    std::uint64_t errors = 0;
    std::uint64_t current_version = 0; ///< latest published channel version
    /// Prequential accuracy of the feedback stream: fraction of feedback
    /// samples the learner predicted correctly *before* updating on them —
    /// the online-learning quality signal that needs no held-out set.
    std::uint64_t prequential_hits = 0;
    double baseline_accuracy = 0.0;    ///< held-out accuracy at start()
    double last_eval_accuracy = 0.0;   ///< most recent candidate's accuracy
    double last_good_accuracy = 0.0;   ///< accuracy of what is serving now
};

class OnlineEngine {
public:
    /// `model` is the same CompiledModel the serve::Server pool runs on —
    /// publication reaches the pool through the model's weight channel.
    /// `feedback` is typically Server::feedback_queue(). `holdout` is the
    /// shadow-eval set (never trained on). Throws std::invalid_argument on
    /// a null model/queue or an empty holdout.
    OnlineEngine(std::shared_ptr<const runtime::CompiledModel> model,
                 std::shared_ptr<serve::FeedbackQueue> feedback,
                 data::Dataset holdout, OnlineOptions opt = {});
    /// stop()s if still running.
    ~OnlineEngine();

    OnlineEngine(const OnlineEngine&) = delete;
    OnlineEngine& operator=(const OnlineEngine&) = delete;

    /// Opens the learner and shadow-eval sessions, republishes the
    /// registry's last good version when the model has nothing published
    /// yet (restart path), measures the baseline accuracy, and spawns the
    /// learner thread. Idempotent.
    void start();

    /// Graceful shutdown: closes the feedback queue (ending intake),
    /// drains what was already accepted, and joins the learner. Idempotent;
    /// also triggered by Server::shutdown() closing the shared queue, in
    /// which case stop() just joins.
    void stop();

    bool running() const;

    OnlineStats stats() const;
    const OnlineOptions& options() const { return opt_; }
    /// Null when OnlineOptions::registry_dir is empty.
    const ModelRegistry* registry() const { return registry_.get(); }

private:
    void learner_loop();
    void evaluate_candidate();

    std::shared_ptr<const runtime::CompiledModel> model_;
    std::shared_ptr<serve::FeedbackQueue> feedback_;
    data::Dataset holdout_;
    OnlineOptions opt_;

    std::unique_ptr<ModelRegistry> registry_;
    std::unique_ptr<runtime::Session> learner_;
    std::unique_ptr<runtime::Session> eval_;
    std::unique_ptr<ReplayPool> replay_;
    std::thread thread_;
    bool started_ = false;
    bool joined_ = false;

    // Learner-thread state (no lock needed: single writer, read only there).
    runtime::WeightSnapshot last_good_;
    double last_good_acc_ = 0.0;
    /// Registry ids are acceptance-order ordinals that keep counting across
    /// restarts; channel version ids restart with the process. Both appear
    /// in stats/registry so operators can correlate them.
    std::uint64_t registry_next_ = 0;
    std::size_t since_candidate_ = 0;

    mutable std::mutex stats_m_;
    OnlineStats stats_;
};

}  // namespace neuro::online
