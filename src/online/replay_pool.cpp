#include "online/replay_pool.hpp"

#include <stdexcept>

namespace neuro::online {

ReplayPool::ReplayPool(std::size_t num_classes, std::size_t per_class,
                       std::uint64_t seed)
    : buckets_(num_classes), seen_(num_classes, 0), per_class_(per_class),
      reservoir_rng_(seed), draw_rng_(common::Rng(seed).split()) {
    if (num_classes == 0)
        throw std::invalid_argument("ReplayPool: zero classes");
}

void ReplayPool::add(const common::Tensor& image, std::size_t label) {
    if (label >= buckets_.size())
        throw std::invalid_argument("ReplayPool: label out of range");
    if (per_class_ == 0) return;
    auto& bucket = buckets_[label];
    const std::uint64_t seen = ++seen_[label];
    if (bucket.size() < per_class_) {
        bucket.push_back({image, label, {}});
        ++stored_;
        return;
    }
    // Reservoir step: keep each of the `seen` observations with equal
    // probability per_class/seen.
    const auto j = static_cast<std::uint64_t>(reservoir_rng_.uniform_int(
        0, static_cast<std::int64_t>(seen) - 1));
    if (j < per_class_) bucket[j] = {image, label, {}};
}

std::vector<serve::FeedbackSample> ReplayPool::draw(std::size_t count) {
    std::vector<serve::FeedbackSample> out;
    if (stored_ == 0 || count == 0) return out;
    out.reserve(count);
    while (out.size() < count) {
        // Advance the cursor to the next non-empty class (stored_ > 0
        // guarantees one exists).
        while (buckets_[cursor_ % buckets_.size()].empty()) ++cursor_;
        const auto& bucket = buckets_[cursor_ % buckets_.size()];
        ++cursor_;
        out.push_back(bucket[static_cast<std::size_t>(draw_rng_.uniform_int(
            0, static_cast<std::int64_t>(bucket.size()) - 1))]);
    }
    return out;
}

}  // namespace neuro::online
