#include "online/registry.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace neuro::online {

namespace fs = std::filesystem;

ModelRegistry::ModelRegistry(std::string dir) : dir_(std::move(dir)) {
    if (dir_.empty())
        throw std::invalid_argument("ModelRegistry: empty directory");
    fs::create_directories(dir_);
    reload();
}

void ModelRegistry::reload() {
    const fs::path manifest = fs::path(dir_) / "MANIFEST";
    std::vector<RegistryEntry> fresh;
    if (fs::exists(manifest)) {
        std::ifstream in(manifest);
        if (!in)
            throw std::runtime_error("ModelRegistry: cannot read " +
                                     manifest.string());
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty()) continue;
            std::istringstream row(line);
            RegistryEntry entry;
            if (!(row >> entry.version >> entry.accuracy))
                throw std::runtime_error(
                    "ModelRegistry: malformed manifest line '" + line +
                    "' in " + manifest.string());
            fresh.push_back(entry);
        }
    }
    entries_ = std::move(fresh);
}

bool ModelRegistry::has(std::uint64_t version) const {
    return std::any_of(
        entries_.begin(), entries_.end(),
        [&](const RegistryEntry& e) { return e.version == version; });
}

std::string ModelRegistry::snapshot_path(std::uint64_t version) const {
    std::string file = "v";
    file += std::to_string(version);
    file += ".nrws";
    return (fs::path(dir_) / file).string();
}

void ModelRegistry::record(std::uint64_t version, double accuracy,
                          const runtime::WeightSnapshot& snap) {
    runtime::save_snapshot(snapshot_path(version), snap);
    entries_.push_back({version, accuracy});
    write_manifest();
}

void ModelRegistry::write_manifest() const {
    const fs::path manifest = fs::path(dir_) / "MANIFEST";
    const fs::path tmp = fs::path(dir_) / "MANIFEST.tmp";
    {
        std::ofstream out(tmp);
        if (!out)
            throw std::runtime_error("ModelRegistry: cannot write " +
                                     tmp.string());
        // max_digits10 so the accuracy round-trips exactly across restarts.
        out << std::setprecision(std::numeric_limits<double>::max_digits10);
        for (const auto& e : entries_) out << e.version << " " << e.accuracy << "\n";
        if (!out.flush())
            throw std::runtime_error("ModelRegistry: write failed for " +
                                     tmp.string());
    }
    fs::rename(tmp, manifest);  // atomic on POSIX: old manifest or new, never half
}

std::optional<RegistryEntry> ModelRegistry::last_good() const {
    if (entries_.empty()) return std::nullopt;
    return entries_.back();
}

runtime::WeightSnapshot ModelRegistry::load(std::uint64_t version) const {
    if (!has(version))
        throw std::invalid_argument("ModelRegistry: version " +
                                    std::to_string(version) + " not recorded");
    return runtime::load_snapshot(snapshot_path(version));
}

}  // namespace neuro::online
