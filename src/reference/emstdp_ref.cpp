#include "reference/emstdp_ref.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace neuro::reference {

namespace {

/// One population of float IF neurons with soft reset.
struct Pop {
    std::vector<float> v;
    std::vector<float> pending;  ///< current arriving this step (u)
    std::vector<std::uint8_t> spike;
    std::vector<int> h1, h2;

    explicit Pop(std::size_t n)
        : v(n, 0.0f), pending(n, 0.0f), spike(n, 0), h1(n, 0), h2(n, 0) {}

    std::size_t size() const { return v.size(); }

    /// Integrate pending + bias and fire against `theta`. `phase1` selects
    /// the spike counter. A zero gate entry suppresses the spike (AND join)
    /// while still consuming the threshold crossing. `floor_at_zero` clamps
    /// the membrane from below — forward neurons use it so that inhibition
    /// cannot accumulate an unbounded negative reserve (this realises the
    /// *shifted* ReLU transfer of paper eq. 2; without it, corrections in
    /// phase 2 are swallowed by the negative well and silent units can never
    /// be revived by the error path).
    void tick(float theta, bool phase1, const std::vector<float>* bias,
              const std::vector<std::uint8_t>* gate, bool floor_at_zero) {
        for (std::size_t i = 0; i < v.size(); ++i) {
            v[i] += pending[i] + (bias != nullptr ? (*bias)[i] : 0.0f);
            pending[i] = 0.0f;
            if (floor_at_zero && v[i] < 0.0f) v[i] = 0.0f;
            spike[i] = 0;
            if (v[i] >= theta) {
                v[i] -= theta;
                if (gate == nullptr || (*gate)[i] != 0) {
                    spike[i] = 1;
                    (phase1 ? h1[i] : h2[i])++;
                }
            }
        }
    }
};

/// pending_dst += W * spikes (row-major W {out, in}).
void deliver_dense(const std::vector<float>& w, const Pop& src, Pop& dst,
                   float scale = 1.0f) {
    const std::size_t in = src.size();
    const std::size_t out = dst.size();
    for (std::size_t i = 0; i < in; ++i) {
        if (!src.spike[i]) continue;
        const std::size_t col = i;
        for (std::size_t o = 0; o < out; ++o)
            dst.pending[o] += scale * w[o * in + col];
    }
}

}  // namespace

RefEmstdp::RefEmstdp(RefConfig cfg) : cfg_(std::move(cfg)) {
    if (cfg_.layer_sizes.size() < 2)
        throw std::invalid_argument("RefEmstdp: need at least input and output layers");
    depth_ = cfg_.layer_sizes.size() - 1;

    common::Rng rng(cfg_.seed);
    // Forward weights: Xavier-uniform on normalized rates.
    for (std::size_t l = 0; l < depth_; ++l) {
        const std::size_t in = cfg_.layer_sizes[l];
        const std::size_t out = cfg_.layer_sizes[l + 1];
        const float limit =
            std::sqrt(6.0f / static_cast<float>(in + out));
        std::vector<float> w(in * out);
        for (auto& x : w) x = static_cast<float>(rng.uniform(-limit, limit));
        w_.push_back(std::move(w));
    }
    // Feedback matrices (fixed random, uniform — paper Sec. III-D: "the
    // random fixed weights B sampled from a uniform distribution").
    if (depth_ >= 2) {
        if (cfg_.feedback == FeedbackMode::FA) {
            // Chain: b_[l] maps error at layer l+2 (size n_{l+2}) down to
            // layer l+1 (size n_{l+1}), for l = 0..depth_-2.
            for (std::size_t l = 0; l + 1 < depth_; ++l) {
                const std::size_t rows = cfg_.layer_sizes[l + 1];
                const std::size_t cols = cfg_.layer_sizes[l + 2];
                const float limit =
                    cfg_.feedback_gain / std::sqrt(static_cast<float>(cols));
                std::vector<float> b(rows * cols);
                for (auto& x : b) x = static_cast<float>(rng.uniform(-limit, limit));
                b_.push_back(std::move(b));
            }
        } else {
            // DFA: b_[l] maps the output error (classes) straight to hidden
            // layer l+1, for l = 0..depth_-2.
            const std::size_t classes = cfg_.layer_sizes.back();
            for (std::size_t l = 0; l + 1 < depth_; ++l) {
                const std::size_t rows = cfg_.layer_sizes[l + 1];
                const float limit =
                    cfg_.feedback_gain / std::sqrt(static_cast<float>(classes));
                std::vector<float> b(rows * classes);
                for (auto& x : b) x = static_cast<float>(rng.uniform(-limit, limit));
                b_.push_back(std::move(b));
            }
        }
    }
    class_mask_.assign(cfg_.layer_sizes.back(), 1.0f);
}

void RefEmstdp::set_class_mask(const std::vector<float>& mask) {
    if (mask.size() != class_mask_.size())
        throw std::invalid_argument("set_class_mask: size mismatch");
    class_mask_ = mask;
}

RefEmstdp::RunResult RefEmstdp::run(const std::vector<float>& input_rates,
                                    std::size_t label, bool learn) {
    if (input_rates.size() != cfg_.layer_sizes[0])
        throw std::invalid_argument("RefEmstdp: input size mismatch");
    const std::size_t classes = cfg_.layer_sizes.back();
    if (learn && label >= classes) throw std::out_of_range("RefEmstdp: bad label");

    const int T = cfg_.phase_length;

    // Forward populations, fwd[0] = input.
    std::vector<Pop> fwd;
    for (std::size_t s : cfg_.layer_sizes) fwd.emplace_back(s);
    Pop label_pop(classes);
    // Error channels. FA: one +/- pair per layer 1..depth_. DFA: only the
    // output pair. err index e maps to layer (e + first_err_layer).
    Pop out_err_pos(classes), out_err_neg(classes);
    std::vector<Pop> hid_err_pos, hid_err_neg;  // FA only, layers 1..depth_-1
    if (cfg_.feedback == FeedbackMode::FA) {
        for (std::size_t l = 1; l < depth_; ++l) {
            hid_err_pos.emplace_back(cfg_.layer_sizes[l]);
            hid_err_neg.emplace_back(cfg_.layer_sizes[l]);
        }
    }

    // Bias rates.
    std::vector<float> in_bias(input_rates);
    for (auto& r : in_bias) r = std::clamp(r, 0.0f, 1.0f);
    std::vector<float> label_bias(classes, 0.0f);
    if (learn) label_bias[label] = cfg_.target_rate * class_mask_[label];

    // Derivative gates from phase-1 activity (filled when phase 2 starts).
    std::vector<std::vector<std::uint8_t>> gate(depth_ + 1);

    for (int t = 0; t < 2 * T; ++t) {
        const bool phase1 = t < T;
        const bool phase2 = !phase1;
        if (t == T) {
            // h' of the shifted ReLU: active iff the forward neuron fired
            // during phase 1 (paper Sec. III-A).
            for (std::size_t l = 1; l <= depth_; ++l) {
                gate[l].resize(fwd[l].size());
                for (std::size_t i = 0; i < fwd[l].size(); ++i)
                    gate[l][i] = fwd[l].h1[i] > 0 ? 1 : 0;
            }
            // Membrane reset at the phase boundary. Without it, sub-threshold
            // residues from phase 1 give phase 2 a deterministic head start
            // of up to one spike per neuron; (h_hat - h) then carries a
            // systematic positive bias that inflates every weight regardless
            // of the error signal. Resetting makes phase 2 an exact replay
            // of phase 1 whenever no correction is injected, so the update
            // measures *only* the error-driven rate change.
            for (auto& pop : fwd) {
                std::fill(pop.v.begin(), pop.v.end(), 0.0f);
                std::fill(pop.pending.begin(), pop.pending.end(), 0.0f);
            }
        }

        // ---- integrate & fire ------------------------------------------------
        fwd[0].tick(1.0f, phase1, &in_bias, nullptr, true);
        for (std::size_t l = 1; l <= depth_; ++l)
            fwd[l].tick(cfg_.theta, phase1, nullptr, nullptr, true);
        if (phase2 && learn) {
            label_pop.tick(1.0f, false, &label_bias, nullptr, true);
            // Error channels integrate signed differences; their membranes
            // must be allowed to go negative (the opposite channel fires).
            out_err_pos.tick(cfg_.theta_err, false, nullptr, nullptr, false);
            out_err_neg.tick(cfg_.theta_err, false, nullptr, nullptr, false);
            for (std::size_t e = 0; e < hid_err_pos.size(); ++e) {
                const auto* g =
                    cfg_.derivative_gating ? &gate[e + 1] : nullptr;
                hid_err_pos[e].tick(cfg_.theta_err, false, nullptr, g, false);
                hid_err_neg[e].tick(cfg_.theta_err, false, nullptr, g, false);
            }
        }

        // ---- deliver spikes (arrive next step) -------------------------------
        for (std::size_t l = 0; l < depth_; ++l)
            deliver_dense(w_[l], fwd[l], fwd[l + 1]);

        if (phase2 && learn) {
            // Output error: epsilon_L = theta_err * (label - prediction).
            for (std::size_t j = 0; j < classes; ++j) {
                const float d = cfg_.theta_err *
                                (static_cast<float>(label_pop.spike[j]) -
                                 static_cast<float>(fwd[depth_].spike[j]));
                out_err_pos.pending[j] += d;
                out_err_neg.pending[j] -= d;
            }
            // Correction injection into the output layer: one error spike
            // adds/removes one output spike.
            for (std::size_t j = 0; j < classes; ++j) {
                fwd[depth_].pending[j] +=
                    cfg_.theta * (static_cast<float>(out_err_pos.spike[j]) -
                                  static_cast<float>(out_err_neg.spike[j]));
            }

            if (cfg_.feedback == FeedbackMode::FA) {
                // Chain the error downwards, gating at each stage, and
                // inject into the matching forward layer (paper eq. 10).
                for (std::size_t e = hid_err_pos.size(); e-- > 0;) {
                    const Pop& up_pos =
                        (e + 1 == hid_err_pos.size()) ? out_err_pos : hid_err_pos[e + 1];
                    const Pop& up_neg =
                        (e + 1 == hid_err_pos.size()) ? out_err_neg : hid_err_neg[e + 1];
                    const std::size_t rows = hid_err_pos[e].size();
                    const std::size_t cols = up_pos.size();
                    const std::vector<float>& B = b_[e];
                    for (std::size_t j = 0; j < cols; ++j) {
                        const float d = static_cast<float>(up_pos.spike[j]) -
                                        static_cast<float>(up_neg.spike[j]);
                        if (d == 0.0f) continue;
                        for (std::size_t i = 0; i < rows; ++i) {
                            const float x = B[i * cols + j] * d;
                            hid_err_pos[e].pending[i] += x;
                            hid_err_neg[e].pending[i] -= x;
                        }
                    }
                    // Inject the (gated) error spikes into forward layer e+1.
                    for (std::size_t i = 0; i < rows; ++i) {
                        fwd[e + 1].pending[i] +=
                            cfg_.theta *
                            (static_cast<float>(hid_err_pos[e].spike[i]) -
                             static_cast<float>(hid_err_neg[e].spike[i]));
                    }
                }
            } else {
                // DFA: broadcast the output error spikes straight into every
                // hidden layer through fixed random weights, gated by h'.
                for (std::size_t l = 1; l < depth_; ++l) {
                    const std::vector<float>& B = b_[l - 1];
                    const std::size_t rows = fwd[l].size();
                    for (std::size_t j = 0; j < classes; ++j) {
                        const float d = static_cast<float>(out_err_pos.spike[j]) -
                                        static_cast<float>(out_err_neg.spike[j]);
                        if (d == 0.0f) continue;
                        for (std::size_t i = 0; i < rows; ++i) {
                            if (cfg_.derivative_gating && !gate[l][i]) continue;
                            fwd[l].pending[i] += B[i * classes + j] * d;
                        }
                    }
                }
            }
        }
    }

    RunResult out;
    out.trace.h1.reserve(depth_ + 1);
    out.trace.h2.reserve(depth_ + 1);
    for (std::size_t l = 0; l <= depth_; ++l) {
        out.trace.h1.push_back(fwd[l].h1);
        out.trace.h2.push_back(fwd[l].h2);
    }
    out.trace.err_pos = out_err_pos.h2;
    out.trace.err_neg = out_err_neg.h2;

    out.pre_counts.resize(depth_);
    for (std::size_t l = 0; l < depth_; ++l) {
        out.pre_counts[l] = fwd[l].h1;
        if (!cfg_.pre_phase1_only) {
            for (std::size_t i = 0; i < out.pre_counts[l].size(); ++i)
                out.pre_counts[l][i] += fwd[l].h2[i];
        }
    }
    return out;
}

SampleTrace RefEmstdp::train_sample(const std::vector<float>& input_rates,
                                    std::size_t label) {
    RunResult r = run(input_rates, label, /*learn=*/true);

    const float T = static_cast<float>(cfg_.phase_length);
    // The pre-count convention: with pre_phase1_only the factor is h/T; with
    // both-phase counts it is (h + h_hat)/(2T) ~ h/T, keeping eta comparable.
    const float pre_norm = cfg_.pre_phase1_only ? T : 2.0f * T;
    const float eta = cfg_.eta * eta_scale_;

    for (std::size_t l = 0; l < depth_; ++l) {
        const std::size_t in = cfg_.layer_sizes[l];
        const std::size_t out = cfg_.layer_sizes[l + 1];
        const bool is_output = l + 1 == depth_;
        for (std::size_t o = 0; o < out; ++o) {
            if (is_output && class_mask_[o] == 0.0f) continue;
            const float dh = static_cast<float>(r.trace.h2[l + 1][o] -
                                                r.trace.h1[l + 1][o]) /
                             T;
            if (dh == 0.0f) continue;
            float* row = w_[l].data() + o * in;
            const auto& pre = r.pre_counts[l];
            for (std::size_t i = 0; i < in; ++i) {
                if (pre[i] == 0) continue;
                row[i] += eta * dh * static_cast<float>(pre[i]) / pre_norm;
            }
        }
    }
    return std::move(r.trace);
}

std::vector<int> RefEmstdp::forward_counts(const std::vector<float>& input_rates) {
    RunResult r = run(input_rates, 0, /*learn=*/false);
    return r.trace.h1.back();
}

std::size_t RefEmstdp::predict(const std::vector<float>& input_rates) {
    if (input_rates.size() != cfg_.layer_sizes[0])
        throw std::invalid_argument("RefEmstdp: input size mismatch");

    const int T = cfg_.phase_length;
    std::vector<Pop> fwd;
    for (std::size_t s : cfg_.layer_sizes) fwd.emplace_back(s);
    std::vector<float> in_bias(input_rates);
    for (auto& r : in_bias) r = std::clamp(r, 0.0f, 1.0f);

    for (int t = 0; t < T; ++t) {
        fwd[0].tick(1.0f, true, &in_bias, nullptr, true);
        for (std::size_t l = 1; l <= depth_; ++l)
            fwd[l].tick(cfg_.theta, true, nullptr, nullptr, true);
        for (std::size_t l = 0; l < depth_; ++l)
            deliver_dense(w_[l], fwd[l], fwd[l + 1]);
    }

    // Argmax by spike count; residual membrane breaks ties so that a network
    // whose outputs are all silent still produces a graded decision.
    const Pop& out = fwd.back();
    std::size_t best = 0;
    for (std::size_t j = 1; j < out.size(); ++j) {
        if (out.h1[j] > out.h1[best] ||
            (out.h1[j] == out.h1[best] && out.v[j] > out.v[best]))
            best = j;
    }
    return best;
}

}  // namespace neuro::reference
