#pragma once
// Full-precision EMSTDP reference — the paper's "Python (FP)" baseline
// (Table I): the same spiking two-phase algorithm as the chip, with float
// weights, batch size 1, the exact eq. (7) update, and none of the chip's
// quantization or resource constraints. The accuracy gap between this and
// the Loihi implementation is the quantization cost the paper reports.
//
// Dynamics (paper Sec. II-A / III):
//  * IF neurons, soft reset: v += drive; spike when v >= theta; v -= theta.
//  * Input/label rates are driven by bias integration (the same encoding
//    the chip uses), so both implementations see identical spike statistics.
//  * Phase 1 (T steps): forward response, record h.
//  * Phase 2 (T steps): label neurons fire at the target rate; two-channel
//    (+/-) error neurons compute rate differences and inject +-theta
//    corrections into the forward neurons, settling them at h_hat.
//  * Update: dW_i = eta * (h_hat_i - h_i) * h_pre^T / T^2  (rates).
//  * Feedback weights are fixed random (FA chain or DFA broadcast).

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace neuro::reference {

enum class FeedbackMode { FA, DFA };

struct RefConfig {
    std::vector<std::size_t> layer_sizes;  ///< {in, hidden..., classes}
    int phase_length = 64;                 ///< T
    float eta = 0.125f;                    ///< paper: 2^-3
    FeedbackMode feedback = FeedbackMode::DFA;
    float theta = 1.0f;                    ///< forward threshold (normalized)
    float theta_err = 1.0f;                ///< error-neuron threshold
    float target_rate = 0.75f;             ///< label firing rate (of T)
    float feedback_gain = 1.0f;            ///< scale of the random B matrices
    /// Use phase-1 presynaptic counts in the update (exact eq. 7). When
    /// false, both-phase counts are used (the hardware-faithful counter,
    /// ablation D).
    bool pre_phase1_only = true;
    /// Gate hidden error neurons by forward phase-1 activity (h' of the
    /// shifted ReLU). Disabling is an ablation.
    bool derivative_gating = true;
    std::uint64_t seed = 7;
};

/// Spike counts observed for one sample; returned for probing and tests.
struct SampleTrace {
    std::vector<std::vector<int>> h1;    ///< phase-1 counts per layer (incl. input)
    std::vector<std::vector<int>> h2;    ///< phase-2 counts per layer
    std::vector<int> err_pos;            ///< output error (+) channel counts
    std::vector<int> err_neg;            ///< output error (-) channel counts
};

/// The trainable dense stack. Input is a rate vector in [0,1] (the
/// normalized conv-feature activations — see snn::convert).
class RefEmstdp {
public:
    explicit RefEmstdp(RefConfig cfg);

    /// Runs both phases and applies the weight update. Returns the trace.
    SampleTrace train_sample(const std::vector<float>& input_rates,
                             std::size_t label);

    /// Phase-1-only inference; argmax of output spike counts (membrane
    /// potential breaks ties so silent outputs still rank).
    std::size_t predict(const std::vector<float>& input_rates);

    /// Phase-1 output spike counts (for probing).
    std::vector<int> forward_counts(const std::vector<float>& input_rates);

    const std::vector<std::vector<float>>& weights() const { return w_; }
    std::vector<std::vector<float>>& weights() { return w_; }
    const RefConfig& config() const { return cfg_; }

    /// Per-class learning-rate mask for incremental learning experiments:
    /// output neurons with mask 0 neither fire labels nor learn (the paper's
    /// "disable the classifier neurons of the old class"). Defaults to 1.
    void set_class_mask(const std::vector<float>& mask);
    /// Multiplies eta for subsequent updates (step-1 reduced learning rate).
    void set_eta_scale(float scale) { eta_scale_ = scale; }

private:
    RefConfig cfg_;
    std::size_t depth_;  ///< number of weight matrices
    // w_[l]: row-major {out, in} between layer l and l+1.
    std::vector<std::vector<float>> w_;
    // Feedback matrices. FA: b_[l] maps error at layer l+2 -> layer l+1
    // (chain). DFA: b_[l] maps output error -> hidden layer l+1 (broadcast).
    std::vector<std::vector<float>> b_;
    std::vector<float> class_mask_;
    float eta_scale_ = 1.0f;

    struct RunResult {
        SampleTrace trace;
        std::vector<std::vector<int>> pre_counts;  ///< counts used as h_pre
    };
    RunResult run(const std::vector<float>& input_rates, std::size_t label,
                  bool learn);
};

}  // namespace neuro::reference
