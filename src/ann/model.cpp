#include "ann/model.hpp"

#include <fstream>
#include <stdexcept>

namespace neuro::ann {

Tensor Model::forward(const Tensor& x) {
    Tensor v = x;
    for (auto& layer : layers_) v = layer->forward(v);
    return v;
}

void Model::backward(const Tensor& dlogits) {
    Tensor g = dlogits;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
}

void Model::step(float lr, float momentum, std::size_t batch) {
    for (auto& layer : layers_) layer->step(lr, momentum, batch);
}

void Model::zero_grad() {
    for (auto& layer : layers_) layer->zero_grad();
}

std::size_t Model::predict(const Tensor& x) { return forward(x).argmax(); }

void Model::save(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("Model::save: cannot open " + path);
    for (const auto& layer : layers_) layer->save(out);
}

void Model::load(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("Model::load: cannot open " + path);
    for (auto& layer : layers_) layer->load(in);
}

std::string Model::describe() const {
    std::string s;
    for (const auto& layer : layers_) {
        if (!s.empty()) s += " - ";
        s += layer->describe();
    }
    return s;
}

std::size_t PaperTopology::conv1_h() const { return conv_out_dim(in_h, conv1_k, conv1_s); }
std::size_t PaperTopology::conv1_w() const { return conv_out_dim(in_w, conv1_k, conv1_s); }
std::size_t PaperTopology::conv2_h() const {
    return conv_out_dim(conv1_h(), conv2_k, conv2_s);
}
std::size_t PaperTopology::conv2_w() const {
    return conv_out_dim(conv1_w(), conv2_k, conv2_s);
}
std::size_t PaperTopology::feature_size() const {
    return conv2_c * conv2_h() * conv2_w();
}

Model build_paper_model(const PaperTopology& topo, common::Rng& rng) {
    Model m;
    m.add(std::make_unique<Conv2d>(topo.in_c, topo.conv1_c, topo.conv1_k, topo.conv1_s,
                                   rng));
    m.add(std::make_unique<Relu>());
    m.add(std::make_unique<Conv2d>(topo.conv1_c, topo.conv2_c, topo.conv2_k,
                                   topo.conv2_s, rng));
    m.add(std::make_unique<Relu>());
    m.add(std::make_unique<Dense>(topo.feature_size(), topo.hidden, rng));
    m.add(std::make_unique<Relu>());
    m.add(std::make_unique<Dense>(topo.hidden, topo.classes, rng));
    return m;
}

}  // namespace neuro::ann
