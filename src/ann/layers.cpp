#include "ann/layers.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace neuro::ann {

namespace {

/// He-uniform initialization: U(-limit, limit), limit = sqrt(6 / fan_in).
void he_init(Tensor& w, std::size_t fan_in, common::Rng& rng) {
    const float limit = std::sqrt(6.0f / static_cast<float>(fan_in));
    for (auto& v : w) v = static_cast<float>(rng.uniform(-limit, limit));
}

void write_tensor(std::ostream& out, const Tensor& t) {
    const auto n = static_cast<std::uint64_t>(t.size());
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(n * sizeof(float)));
}

void read_tensor(std::istream& in, Tensor& t) {
    std::uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!in || n != t.size())
        throw std::runtime_error("checkpoint: tensor size mismatch");
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!in) throw std::runtime_error("checkpoint: truncated tensor");
}

void sgd_step(Tensor& w, Tensor& dw, Tensor& vw, float lr, float momentum,
              std::size_t batch) {
    const float inv = 1.0f / static_cast<float>(batch);
    for (std::size_t i = 0; i < w.size(); ++i) {
        vw[i] = momentum * vw[i] - lr * dw[i] * inv;
        w[i] += vw[i];
    }
}

}  // namespace

Conv2d::Conv2d(std::size_t in_c, std::size_t out_c, std::size_t k, std::size_t stride,
               common::Rng& rng)
    : w_({out_c, in_c, k, k}),
      b_({out_c}),
      dw_({out_c, in_c, k, k}),
      db_({out_c}),
      vw_({out_c, in_c, k, k}),
      vb_({out_c}),
      stride_(stride) {
    he_init(w_, in_c * k * k, rng);
}

Tensor Conv2d::forward(const Tensor& x) {
    x_ = x;
    return conv2d_forward(x, w_, b_, stride_);
}

Tensor Conv2d::backward(const Tensor& dy) {
    return conv2d_backward(x_, w_, dy, stride_, dw_, db_);
}

void Conv2d::step(float lr, float momentum, std::size_t batch) {
    sgd_step(w_, dw_, vw_, lr, momentum, batch);
    sgd_step(b_, db_, vb_, lr, momentum, batch);
}

void Conv2d::zero_grad() {
    dw_.fill(0.0f);
    db_.fill(0.0f);
}

void Conv2d::save(std::ostream& out) const {
    write_tensor(out, w_);
    write_tensor(out, b_);
}

void Conv2d::load(std::istream& in) {
    read_tensor(in, w_);
    read_tensor(in, b_);
}

std::string Conv2d::describe() const {
    return "conv " + std::to_string(w_.dim(2)) + "x" + std::to_string(w_.dim(3)) +
           "k-" + std::to_string(w_.dim(0)) + "c-" + std::to_string(stride_) + "s";
}

Dense::Dense(std::size_t in, std::size_t out, common::Rng& rng)
    : w_({out, in}), b_({out}), dw_({out, in}), db_({out}), vw_({out, in}), vb_({out}) {
    he_init(w_, in, rng);
}

Tensor Dense::forward(const Tensor& x) {
    x_ = x;
    in_shape_ = x.shape();
    Tensor flat = x;
    flat.reshape({x.size()});
    x_ = flat;
    return dense_forward(flat, w_, b_);
}

Tensor Dense::backward(const Tensor& dy) {
    Tensor dx = dense_backward(x_, w_, dy, dw_, db_);
    dx.reshape(std::vector<std::size_t>(in_shape_));
    return dx;
}

void Dense::step(float lr, float momentum, std::size_t batch) {
    sgd_step(w_, dw_, vw_, lr, momentum, batch);
    sgd_step(b_, db_, vb_, lr, momentum, batch);
}

void Dense::zero_grad() {
    dw_.fill(0.0f);
    db_.fill(0.0f);
}

void Dense::save(std::ostream& out) const {
    write_tensor(out, w_);
    write_tensor(out, b_);
}

void Dense::load(std::istream& in) {
    read_tensor(in, w_);
    read_tensor(in, b_);
}

std::string Dense::describe() const {
    return "dense " + std::to_string(w_.dim(1)) + "->" + std::to_string(w_.dim(0));
}

Tensor Relu::forward(const Tensor& x) {
    x_ = x;
    return relu_forward(x);
}

Tensor Relu::backward(const Tensor& dy) { return relu_backward(x_, dy); }

}  // namespace neuro::ann
