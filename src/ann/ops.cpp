#include "ann/ops.hpp"

#include <cmath>
#include <stdexcept>

namespace neuro::ann {

std::size_t conv_out_dim(std::size_t in, std::size_t k, std::size_t stride) {
    if (k > in) throw std::invalid_argument("conv_out_dim: kernel larger than input");
    // Floor semantics: border pixels that do not fit a full kernel window are
    // dropped (28 -> 12 for the paper's 5x5k/2s layer).
    return (in - k) / stride + 1;
}

Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& b,
                      std::size_t stride) {
    const std::size_t in_c = x.dim(0);
    const std::size_t in_h = x.dim(1);
    const std::size_t in_w = x.dim(2);
    const std::size_t out_c = w.dim(0);
    const std::size_t k = w.dim(2);
    if (w.dim(1) != in_c) throw std::invalid_argument("conv2d_forward: channel mismatch");
    const std::size_t out_h = conv_out_dim(in_h, k, stride);
    const std::size_t out_w = conv_out_dim(in_w, k, stride);

    Tensor y({out_c, out_h, out_w});
    for (std::size_t oc = 0; oc < out_c; ++oc) {
        for (std::size_t oy = 0; oy < out_h; ++oy) {
            for (std::size_t ox = 0; ox < out_w; ++ox) {
                float acc = b[oc];
                for (std::size_t ic = 0; ic < in_c; ++ic) {
                    for (std::size_t ky = 0; ky < k; ++ky) {
                        const std::size_t iy = oy * stride + ky;
                        for (std::size_t kx = 0; kx < k; ++kx) {
                            acc += w.at4(oc, ic, ky, kx) *
                                   x.at3(ic, iy, ox * stride + kx);
                        }
                    }
                }
                y.at3(oc, oy, ox) = acc;
            }
        }
    }
    return y;
}

Tensor conv2d_backward(const Tensor& x, const Tensor& w, const Tensor& dy,
                       std::size_t stride, Tensor& dw, Tensor& db) {
    const std::size_t in_c = x.dim(0);
    const std::size_t out_c = w.dim(0);
    const std::size_t k = w.dim(2);
    const std::size_t out_h = dy.dim(1);
    const std::size_t out_w = dy.dim(2);

    Tensor dx(std::vector<std::size_t>(x.shape()));
    for (std::size_t oc = 0; oc < out_c; ++oc) {
        for (std::size_t oy = 0; oy < out_h; ++oy) {
            for (std::size_t ox = 0; ox < out_w; ++ox) {
                const float g = dy.at3(oc, oy, ox);
                if (g == 0.0f) continue;
                db[oc] += g;
                for (std::size_t ic = 0; ic < in_c; ++ic) {
                    for (std::size_t ky = 0; ky < k; ++ky) {
                        const std::size_t iy = oy * stride + ky;
                        for (std::size_t kx = 0; kx < k; ++kx) {
                            const std::size_t ix = ox * stride + kx;
                            dw.at4(oc, ic, ky, kx) += g * x.at3(ic, iy, ix);
                            dx.at3(ic, iy, ix) += g * w.at4(oc, ic, ky, kx);
                        }
                    }
                }
            }
        }
    }
    return dx;
}

Tensor dense_forward(const Tensor& x, const Tensor& w, const Tensor& b) {
    const std::size_t out = w.dim(0);
    const std::size_t in = w.dim(1);
    if (x.size() != in) throw std::invalid_argument("dense_forward: size mismatch");
    Tensor y({out});
    for (std::size_t o = 0; o < out; ++o) {
        float acc = b[o];
        const float* row = w.data() + o * in;
        for (std::size_t i = 0; i < in; ++i) acc += row[i] * x[i];
        y[o] = acc;
    }
    return y;
}

Tensor dense_backward(const Tensor& x, const Tensor& w, const Tensor& dy, Tensor& dw,
                      Tensor& db) {
    const std::size_t out = w.dim(0);
    const std::size_t in = w.dim(1);
    Tensor dx({in});
    for (std::size_t o = 0; o < out; ++o) {
        const float g = dy[o];
        db[o] += g;
        const float* row = w.data() + o * in;
        float* drow = dw.data() + o * in;
        for (std::size_t i = 0; i < in; ++i) {
            drow[i] += g * x[i];
            dx[i] += g * row[i];
        }
    }
    return dx;
}

Tensor relu_forward(const Tensor& x) {
    Tensor y = x;
    for (auto& v : y)
        if (v < 0.0f) v = 0.0f;
    return y;
}

Tensor relu_backward(const Tensor& x, const Tensor& dy) {
    Tensor dx = dy;
    for (std::size_t i = 0; i < x.size(); ++i)
        if (x[i] <= 0.0f) dx[i] = 0.0f;
    return dx;
}

float softmax_cross_entropy(const Tensor& logits, std::size_t label, Tensor& dlogits) {
    const std::size_t n = logits.size();
    if (label >= n) throw std::out_of_range("softmax_cross_entropy: bad label");
    const float m = logits.max();
    float denom = 0.0f;
    for (std::size_t i = 0; i < n; ++i) denom += std::exp(logits[i] - m);
    const float log_denom = std::log(denom);

    dlogits = Tensor({n});
    for (std::size_t i = 0; i < n; ++i) {
        const float p = std::exp(logits[i] - m) / denom;
        dlogits[i] = p - (i == label ? 1.0f : 0.0f);
    }
    // loss = -log softmax(label)
    return -(logits[label] - m - log_denom);
}

}  // namespace neuro::ann
