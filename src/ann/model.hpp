#pragma once
// Sequential model container + the paper's reference topology
//   W x H x C - 5x5k 16c 2s - 3x3k 8c 2s - 100d - 10d
// (paper Sec. IV-A). The conv stack pretrained here is transferred onto the
// simulated chip; the dense stack is re-initialized and learned on-chip.

#include <memory>
#include <string>
#include <vector>

#include "ann/layers.hpp"

namespace neuro::ann {

/// Sequential stack of layers with single-sample forward/backward.
class Model {
public:
    Model() = default;

    void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

    Tensor forward(const Tensor& x);
    /// Backpropagates dlogits through every layer (gradients accumulate).
    void backward(const Tensor& dlogits);
    void step(float lr, float momentum, std::size_t batch);
    void zero_grad();

    std::size_t predict(const Tensor& x);

    void save(const std::string& path) const;
    void load(const std::string& path);

    std::vector<std::unique_ptr<Layer>>& layers() { return layers_; }
    const std::vector<std::unique_ptr<Layer>>& layers() const { return layers_; }

    std::string describe() const;

private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

/// Geometry of the paper topology for a given input size; used by both the
/// ANN builder and the SNN network builder so they can never drift apart.
struct PaperTopology {
    std::size_t in_c, in_h, in_w;
    std::size_t conv1_c = 16, conv1_k = 5, conv1_s = 2;
    std::size_t conv2_c = 8, conv2_k = 3, conv2_s = 2;
    std::size_t hidden = 100;
    std::size_t classes = 10;

    std::size_t conv1_h() const;
    std::size_t conv1_w() const;
    std::size_t conv2_h() const;
    std::size_t conv2_w() const;
    /// Flattened size of the conv stack output (= dense-stack input).
    std::size_t feature_size() const;
};

/// Builds the full paper model (convs + dense head) for offline pretraining.
Model build_paper_model(const PaperTopology& topo, common::Rng& rng);

}  // namespace neuro::ann
