#pragma once
// Layer objects for the offline trainer: each owns its parameters, gradient
// accumulators and SGD-with-momentum velocity, and caches the forward input
// needed by backward. Single-sample forward/backward with gradient
// accumulation across a mini-batch (the trainer divides by batch size).

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ann/ops.hpp"
#include "common/rng.hpp"
#include "common/tensor.hpp"

namespace neuro::ann {

/// Abstract differentiable layer.
class Layer {
public:
    virtual ~Layer() = default;

    virtual Tensor forward(const Tensor& x) = 0;
    virtual Tensor backward(const Tensor& dy) = 0;

    /// SGD+momentum step on accumulated gradients (no-op for stateless layers).
    virtual void step(float lr, float momentum, std::size_t batch) { (void)lr, (void)momentum, (void)batch; }
    virtual void zero_grad() {}

    /// Serialization of parameters (no-op for stateless layers).
    virtual void save(std::ostream& out) const { (void)out; }
    virtual void load(std::istream& in) { (void)in; }

    virtual std::string describe() const = 0;
};

/// Valid 2-d convolution with square kernel and stride.
class Conv2d final : public Layer {
public:
    Conv2d(std::size_t in_c, std::size_t out_c, std::size_t k, std::size_t stride,
           common::Rng& rng);

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& dy) override;
    void step(float lr, float momentum, std::size_t batch) override;
    void zero_grad() override;
    void save(std::ostream& out) const override;
    void load(std::istream& in) override;
    std::string describe() const override;

    const Tensor& weights() const { return w_; }
    const Tensor& bias() const { return b_; }
    std::size_t stride() const { return stride_; }
    std::size_t kernel() const { return w_.dim(2); }

private:
    Tensor w_, b_, dw_, db_, vw_, vb_;
    Tensor x_;
    std::size_t stride_;
};

/// Fully connected layer; flattens its input.
class Dense final : public Layer {
public:
    Dense(std::size_t in, std::size_t out, common::Rng& rng);

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& dy) override;
    void step(float lr, float momentum, std::size_t batch) override;
    void zero_grad() override;
    void save(std::ostream& out) const override;
    void load(std::istream& in) override;
    std::string describe() const override;

    const Tensor& weights() const { return w_; }
    const Tensor& bias() const { return b_; }

private:
    Tensor w_, b_, dw_, db_, vw_, vb_;
    Tensor x_;
    std::vector<std::size_t> in_shape_;
};

/// Rectifier.
class Relu final : public Layer {
public:
    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& dy) override;
    std::string describe() const override { return "relu"; }

private:
    Tensor x_;
};

}  // namespace neuro::ann
