#pragma once
// Mini-batch SGD trainer for the offline pretraining stage. Gradient
// accumulation is per-sample (the Loihi side is strictly batch-1 online;
// offline pretraining is allowed to batch, as in the paper).

#include <cstddef>

#include "ann/model.hpp"
#include "data/dataset.hpp"

namespace neuro::ann {

struct TrainOptions {
    std::size_t epochs = 4;
    std::size_t batch = 16;
    float lr = 0.02f;
    float momentum = 0.9f;
    /// Epoch-multiplicative decay applied after each epoch.
    float lr_decay = 0.85f;
    bool verbose = false;
};

struct TrainResult {
    double final_train_loss = 0.0;
    double final_train_accuracy = 0.0;
};

/// Trains in place; sample order is shuffled each epoch with `rng`.
TrainResult train(Model& model, const data::Dataset& train_set, const TrainOptions& opt,
                  common::Rng& rng);

/// Top-1 accuracy over a dataset.
double evaluate(Model& model, const data::Dataset& test_set);

}  // namespace neuro::ann
