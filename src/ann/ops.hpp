#pragma once
// Numerical kernels for the offline ANN trainer (paper Sec. IV-A: "the
// convolutional layers are pretrained offline with their respective datasets
// before mapping on to Loihi"). Direct (non-im2col) convolution is plenty
// for the paper's two small conv layers.
//
// Conventions: images are CHW; conv weights are {out_c, in_c, k, k};
// convolutions are valid (no padding) with square kernels and stride s, so
// out = (in - k) / s + 1 exactly as the paper's topology string
// "5x5k-16c-2s / 3x3k-8c-2s" implies.

#include <cstddef>

#include "common/tensor.hpp"

namespace neuro::ann {

using common::Tensor;

/// Output spatial size of a valid convolution with floor semantics:
/// (in - k) / stride + 1. Throws if the kernel exceeds the input.
std::size_t conv_out_dim(std::size_t in, std::size_t k, std::size_t stride);

/// y[oc,oy,ox] = b[oc] + sum_{ic,ky,kx} w[oc,ic,ky,kx] * x[ic, oy*s+ky, ox*s+kx]
Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& b,
                      std::size_t stride);

/// Gradients of the valid convolution. `dx` has x's shape; `dw`/`db` are
/// accumulated into (caller zeroes them between batches).
Tensor conv2d_backward(const Tensor& x, const Tensor& w, const Tensor& dy,
                       std::size_t stride, Tensor& dw, Tensor& db);

/// y = W x + b with W {out, in}.
Tensor dense_forward(const Tensor& x, const Tensor& w, const Tensor& b);

Tensor dense_backward(const Tensor& x, const Tensor& w, const Tensor& dy, Tensor& dw,
                      Tensor& db);

/// In-place ReLU returning a copy; backward masks by the forward input.
Tensor relu_forward(const Tensor& x);
Tensor relu_backward(const Tensor& x, const Tensor& dy);

/// Numerically stable softmax + cross-entropy against an integer label.
/// Returns the loss; writes dlogits (softmax - onehot).
float softmax_cross_entropy(const Tensor& logits, std::size_t label, Tensor& dlogits);

}  // namespace neuro::ann
