#include "ann/trainer.hpp"

#include <cstdio>
#include <numeric>

namespace neuro::ann {

TrainResult train(Model& model, const data::Dataset& train_set, const TrainOptions& opt,
                  common::Rng& rng) {
    TrainResult result;
    std::vector<std::size_t> order(train_set.size());
    std::iota(order.begin(), order.end(), std::size_t{0});

    float lr = opt.lr;
    for (std::size_t epoch = 0; epoch < opt.epochs; ++epoch) {
        rng.shuffle(order);
        double loss_sum = 0.0;
        std::size_t correct = 0;
        std::size_t in_batch = 0;
        model.zero_grad();
        for (std::size_t idx : order) {
            const auto& s = train_set.samples[idx];
            const Tensor logits = model.forward(s.image);
            Tensor dlogits;
            loss_sum += softmax_cross_entropy(logits, s.label, dlogits);
            if (logits.argmax() == s.label) ++correct;
            model.backward(dlogits);
            if (++in_batch == opt.batch) {
                model.step(lr, opt.momentum, in_batch);
                model.zero_grad();
                in_batch = 0;
            }
        }
        if (in_batch > 0) {
            model.step(lr, opt.momentum, in_batch);
            model.zero_grad();
        }
        result.final_train_loss = loss_sum / static_cast<double>(train_set.size());
        result.final_train_accuracy =
            static_cast<double>(correct) / static_cast<double>(train_set.size());
        if (opt.verbose) {
            std::printf("  [ann] epoch %zu/%zu loss=%.4f acc=%.3f lr=%.4f\n", epoch + 1,
                        opt.epochs, result.final_train_loss,
                        result.final_train_accuracy, static_cast<double>(lr));
        }
        lr *= opt.lr_decay;
    }
    return result;
}

double evaluate(Model& model, const data::Dataset& test_set) {
    if (test_set.size() == 0) return 0.0;
    std::size_t correct = 0;
    for (const auto& s : test_set.samples)
        if (model.predict(s.image) == s.label) ++correct;
    return static_cast<double>(correct) / static_cast<double>(test_set.size());
}

}  // namespace neuro::ann
