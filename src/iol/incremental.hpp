#pragma once
// Incremental online learning (paper Sec. IV-B, Fig. 4).
//
// Protocol: pretrain on 4 randomly selected classes, then run three
// incremental iterations that each introduce 2 new classes. Per-class data
// is divided into 5 chunks, giving 5 rounds per iteration; every round runs
// an alternating two-step technique (He et al., CVPR 2020 style):
//
//   step 1 — "learn new classes": train on the new-class chunk with the
//            old-class classifier neurons disabled and a reduced learning
//            rate (the paper's approximation of the cross-distillation
//            loss);
//   step 2 — "retrain with new and old": train on the new chunk plus an
//            equal-size sample of old classes drawn from a replay pool that
//            also contains *new observations* of the old classes.
//
// Accuracy over all observed classes is recorded after each step; the
// baseline is an identical network trained jointly on every observed class.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/network.hpp"
#include "data/dataset.hpp"

namespace neuro::iol {

struct IolOptions {
    std::size_t initial_classes = 4;
    std::size_t classes_per_iteration = 2;
    std::size_t iterations = 3;
    std::size_t rounds_per_iteration = 5;
    /// Learning-shift increase during step 1 (each unit halves the rate).
    int step1_shift_offset = 2;
    /// Pretraining passes over the initial classes.
    std::size_t pretrain_epochs = 2;
    /// Joint-baseline training passes per iteration.
    std::size_t baseline_epochs = 2;
    std::uint64_t seed = 17;
};

/// Accuracy over observed classes after each step of each round.
struct RoundRecord {
    std::size_t iteration = 0;
    std::size_t round = 0;
    std::vector<std::size_t> observed_classes;  ///< including the new ones
    double accuracy_after_step1 = 0.0;
    double accuracy_after_step2 = 0.0;
    double old_class_accuracy_after_step1 = 0.0;  ///< forgetting probe
};

struct IolResult {
    std::vector<RoundRecord> rounds;
    double pretrain_accuracy = 0.0;  ///< on the initial classes
    /// Joint-training baseline accuracy per iteration (all observed classes).
    std::vector<double> baseline;
    std::vector<std::size_t> class_order;  ///< order classes were introduced
};

/// Factory for identical fresh networks (the continuously-trained subject
/// and the per-iteration joint baselines).
using NetworkFactory = std::function<std::unique_ptr<core::EmstdpNetwork>()>;

/// Draws `count` replay sample indices from the per-class index pools of
/// the already-observed (old) classes: classes cycle round-robin — a
/// class-balanced mix — and the sample within a class is uniform ("new
/// observations of old classes", He et al. style). The draw sequence is a
/// pure function of `rng`'s state: same seed, same draws, on any thread —
/// the determinism contract pinned by tests/iol_test.cpp and mirrored by
/// the online engine's replay pool (online::ReplayPool). Throws
/// std::invalid_argument when `observed` is empty or one of its pools is.
std::vector<std::size_t> sample_replay(
    const std::vector<std::vector<std::size_t>>& by_class,
    const std::vector<std::size_t>& observed, std::size_t count,
    common::Rng& rng);

IolResult run_incremental(const NetworkFactory& make_net,
                          const data::Dataset& train_pool,
                          const data::Dataset& test_set, const IolOptions& opt);

}  // namespace neuro::iol
