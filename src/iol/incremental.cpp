#include "iol/incremental.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/stats.hpp"

namespace neuro::iol {

namespace {

std::vector<bool> mask_of(std::size_t classes, const std::vector<std::size_t>& on) {
    std::vector<bool> m(classes, false);
    for (std::size_t c : on) m[c] = true;
    return m;
}

/// Accuracy restricted to the observed classes; predictions over the full
/// output layer (a disabled class can still be *predicted*, which is exactly
/// how catastrophic forgetting shows up).
double eval_observed(core::EmstdpNetwork& net, const data::Dataset& test,
                     const std::vector<std::size_t>& observed) {
    std::size_t seen = 0;
    std::size_t hit = 0;
    for (const auto& s : test.samples) {
        if (std::find(observed.begin(), observed.end(), s.label) == observed.end())
            continue;
        ++seen;
        if (net.predict(s.image) == s.label) ++hit;
    }
    return seen == 0 ? 0.0 : static_cast<double>(hit) / static_cast<double>(seen);
}

void train_list(core::EmstdpNetwork& net, const data::Dataset& pool,
                const std::vector<std::size_t>& indices, common::Rng& rng) {
    std::vector<std::size_t> order = indices;
    rng.shuffle(order);
    for (std::size_t idx : order)
        net.train_sample(pool.samples[idx].image, pool.samples[idx].label);
}

}  // namespace

std::vector<std::size_t> sample_replay(
    const std::vector<std::vector<std::size_t>>& by_class,
    const std::vector<std::size_t>& observed, std::size_t count,
    common::Rng& rng) {
    if (count == 0) return {};
    if (observed.empty())
        throw std::invalid_argument("sample_replay: no observed classes");
    std::vector<std::size_t> replay;
    replay.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
        // Cycle the old classes so the replay mix is class-balanced; the
        // sample within the class is random ("new observations of old
        // classes").
        const std::size_t cls = observed[k % observed.size()];
        if (cls >= by_class.size() || by_class[cls].empty())
            throw std::invalid_argument(
                "sample_replay: observed class has no samples");
        const auto& pool = by_class[cls];
        replay.push_back(pool[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(pool.size()) - 1))]);
    }
    return replay;
}

IolResult run_incremental(const NetworkFactory& make_net,
                          const data::Dataset& train_pool,
                          const data::Dataset& test_set, const IolOptions& opt) {
    const std::size_t classes = train_pool.num_classes;
    const std::size_t needed =
        opt.initial_classes + opt.classes_per_iteration * opt.iterations;
    if (needed > classes)
        throw std::invalid_argument("run_incremental: class schedule exceeds dataset");

    common::Rng rng(opt.seed);
    IolResult result;
    result.class_order.resize(classes);
    std::iota(result.class_order.begin(), result.class_order.end(), std::size_t{0});
    rng.shuffle(result.class_order);

    // Per-class sample indices, each split into `rounds` chunks.
    std::vector<std::vector<std::size_t>> by_class(classes);
    for (std::size_t i = 0; i < train_pool.size(); ++i)
        by_class[train_pool.samples[i].label].push_back(i);
    auto chunk = [&](std::size_t cls, std::size_t round) {
        const auto& all = by_class[cls];
        const std::size_t per = all.size() / opt.rounds_per_iteration;
        const std::size_t begin = round * per;
        const std::size_t end = round + 1 == opt.rounds_per_iteration
                                    ? all.size()
                                    : begin + per;
        return std::vector<std::size_t>(all.begin() + static_cast<std::ptrdiff_t>(begin),
                                        all.begin() + static_cast<std::ptrdiff_t>(end));
    };

    auto net = make_net();

    // ---- pretraining on the initial classes --------------------------------
    std::vector<std::size_t> observed(
        result.class_order.begin(),
        result.class_order.begin() + static_cast<std::ptrdiff_t>(opt.initial_classes));
    net->set_class_mask(mask_of(classes, observed));
    std::vector<std::size_t> initial_pool;
    for (std::size_t c : observed)
        initial_pool.insert(initial_pool.end(), by_class[c].begin(), by_class[c].end());
    for (std::size_t e = 0; e < opt.pretrain_epochs; ++e)
        train_list(*net, train_pool, initial_pool, rng);
    result.pretrain_accuracy = eval_observed(*net, test_set, observed);

    // ---- incremental iterations ---------------------------------------------
    for (std::size_t it = 0; it < opt.iterations; ++it) {
        std::vector<std::size_t> fresh(
            result.class_order.begin() +
                static_cast<std::ptrdiff_t>(opt.initial_classes +
                                            it * opt.classes_per_iteration),
            result.class_order.begin() +
                static_cast<std::ptrdiff_t>(opt.initial_classes +
                                            (it + 1) * opt.classes_per_iteration));
        std::vector<std::size_t> all_observed = observed;
        all_observed.insert(all_observed.end(), fresh.begin(), fresh.end());

        for (std::size_t round = 0; round < opt.rounds_per_iteration; ++round) {
            RoundRecord rec;
            rec.iteration = it;
            rec.round = round;
            rec.observed_classes = all_observed;

            // -- step 1: learn the new classes; old classifier neurons
            //    disabled, learning rate reduced (cross-distillation approx).
            net->set_class_mask(mask_of(classes, fresh));
            net->set_learning_shift_offset(opt.step1_shift_offset);
            std::vector<std::size_t> new_chunk;
            for (std::size_t c : fresh) {
                const auto part = chunk(c, round);
                new_chunk.insert(new_chunk.end(), part.begin(), part.end());
            }
            train_list(*net, train_pool, new_chunk, rng);
            // Evaluation happens with every observed class's classifier
            // enabled — the step-1 mask is a *training* constraint. (With
            // the mask still applied, old classes could never be predicted
            // and the forgetting measurement would be meaningless.)
            net->set_class_mask(mask_of(classes, all_observed));
            rec.accuracy_after_step1 = eval_observed(*net, test_set, all_observed);
            rec.old_class_accuracy_after_step1 =
                eval_observed(*net, test_set, observed);

            // -- step 2: retrain with new + equal-size replay of old classes
            //    (sampled fresh each round: "new observations of old
            //    classes").
            net->set_class_mask(mask_of(classes, all_observed));
            net->set_learning_shift_offset(0);
            const std::vector<std::size_t> replay =
                sample_replay(by_class, observed, new_chunk.size(), rng);
            std::vector<std::size_t> mixed = new_chunk;
            mixed.insert(mixed.end(), replay.begin(), replay.end());
            train_list(*net, train_pool, mixed, rng);
            rec.accuracy_after_step2 = eval_observed(*net, test_set, all_observed);

            result.rounds.push_back(std::move(rec));
        }
        observed = all_observed;

        // ---- joint baseline for this iteration ------------------------------
        auto base = make_net();
        base->set_class_mask(mask_of(classes, observed));
        std::vector<std::size_t> joint_pool;
        for (std::size_t c : observed)
            joint_pool.insert(joint_pool.end(), by_class[c].begin(),
                              by_class[c].end());
        for (std::size_t e = 0; e < opt.baseline_epochs; ++e)
            train_list(*base, train_pool, joint_pool, rng);
        result.baseline.push_back(eval_observed(*base, test_set, observed));
    }
    return result;
}

}  // namespace neuro::iol
