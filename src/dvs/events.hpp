#pragma once
// Dynamic-vision-sensor event streams (paper Sec. I: neuromorphic hardware
// is "believed to be effective for edge computing or working with certain
// type of sensor, such as dynamic vision sensor (DVS), whose output is
// sparse by nature").
//
// A DVS pixel emits an event when its log-intensity changes by more than a
// contrast threshold: ON for brightening, OFF for darkening. No real DVS
// recordings ship offline, so src/dvs provides a deterministic synthetic
// sensor (gesture.cpp): a rendered object moves across the field of view,
// per-timestep intensity differences above threshold become events, plus a
// configurable background noise rate — the same address-event representation
// (x, y, t, polarity) real sensors produce.
//
// Two consumption paths are provided, matching how Loihi pipelines consume
// DVS data:
//   * event-driven — inject_stream() turns every event into one host spike
//     insertion on a two-channel (ON/OFF) input population (one I/O write
//     per event; sparse by construction);
//   * frame-based — accumulate_frame() integrates events into a 2xHxW
//     tensor for the standard bias-programmed EMSTDP pipeline.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/tensor.hpp"
#include "loihi/chip.hpp"

namespace neuro::dvs {

/// One address-event: sensor coordinates, timestep and polarity.
struct Event {
    std::uint32_t t = 0;
    std::uint16_t x = 0;
    std::uint16_t y = 0;
    bool on = true;  ///< true = brightening (ON), false = darkening (OFF)

    bool operator==(const Event&) const = default;
};

/// One labelled recording.
struct EventStream {
    std::vector<Event> events;  ///< ordered by t (ties in scan order)
    std::size_t label = 0;
};

/// A materialized event dataset plus its sensor geometry.
struct EventDataset {
    std::string name;
    std::size_t width = 0;
    std::size_t height = 0;
    std::uint32_t duration = 0;  ///< timesteps per recording
    std::size_t num_classes = 0;
    std::vector<EventStream> streams;

    std::size_t size() const { return streams.size(); }
    std::size_t pixels() const { return width * height; }
};

/// The synthetic gesture classes (clockwise/counterclockwise use a rotating
/// bar; the sweeps use a straight bar crossing the field of view).
enum class Gesture : std::uint8_t {
    SweepRight = 0,  ///< bar moving left -> right
    SweepLeft,       ///< bar moving right -> left
    SweepDown,       ///< bar moving top -> bottom
    SweepUp,         ///< bar moving bottom -> top
    RotateCw,        ///< bar rotating clockwise about the centre
    RotateCcw,       ///< bar rotating counterclockwise
};
inline constexpr std::size_t kGestureClasses = 6;

struct GestureOptions {
    std::size_t count = 600;      ///< recordings to synthesize
    std::size_t width = 16;       ///< sensor width
    std::size_t height = 16;      ///< sensor height
    std::uint32_t duration = 64;  ///< timesteps per recording
    double contrast = 0.25;       ///< event threshold on intensity change
    double noise_rate = 0.0005;   ///< spurious events / pixel / step
    std::size_t classes = kGestureClasses;  ///< use the first N classes
    std::uint64_t seed = 1;
};

/// Synthesizes a deterministic gesture event dataset. Each recording draws
/// per-sample speed/phase/thickness jitter so no two recordings of a class
/// are identical.
EventDataset make_gestures(const GestureOptions& opt);

/// Integrates a stream into a {2 * bins, H, W} tensor: the recording is cut
/// into `bins` equal time slices and each slice contributes an ON and an OFF
/// channel (channel order: slice-major, ON before OFF). Binning preserves
/// coarse motion direction — with one bin a right-sweep and a left-sweep
/// accumulate to nearly the same picture; with two, the early/late halves
/// tell them apart. Normalized so the busiest pixel is 1.0, ready for the
/// EMSTDP pipeline's rate coding.
common::Tensor accumulate_frames(const EventStream& stream, std::size_t width,
                                 std::size_t height, std::uint32_t duration,
                                 std::size_t bins);

/// Single-bin convenience wrapper: a {2, H, W} event-count picture.
common::Tensor accumulate_frame(const EventStream& stream, std::size_t width,
                                std::size_t height);

/// Injects the events of one timestep into a two-channel input population
/// laid out as [ON(H*W) | OFF(H*W)], row-major. `cursor` tracks the position
/// in the (time-ordered) event vector; call once per chip step with the
/// current local time. Each event costs exactly one host I/O write.
/// Returns how many events were injected.
std::size_t inject_events_at(loihi::Chip& chip, loihi::PopulationId pop,
                             const EventStream& stream, std::uint32_t t,
                             std::size_t& cursor, std::size_t width,
                             std::size_t height);

}  // namespace neuro::dvs
