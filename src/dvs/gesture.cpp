// Synthetic DVS gesture generator: a bright bar moves over a dark field; the
// sensor model emits ON/OFF events where the per-step intensity difference
// crosses the contrast threshold, plus uniform background noise. See
// events.hpp for the rationale.

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dvs/events.hpp"

namespace neuro::dvs {

namespace {

/// Continuous bar stimulus: distance of pixel (x, y) to a line through
/// `centre` with direction angle `phi`, thickness `thick`, mapped to an
/// intensity in [0, 1] with a soft edge.
double bar_intensity(double x, double y, double cx, double cy, double phi,
                     double thick) {
    const double nx = -std::sin(phi);
    const double ny = std::cos(phi);
    const double d = std::abs((x - cx) * nx + (y - cy) * ny);
    const double edge = thick / 2.0;
    if (d <= edge) return 1.0;
    const double falloff = d - edge;
    return falloff >= 1.0 ? 0.0 : 1.0 - falloff;
}

struct Pose {
    double cx, cy, phi;
};

/// Pose of the stimulus at normalized time u in [0, 1].
Pose pose_at(Gesture g, double u, double w, double h, double phase) {
    switch (g) {
        case Gesture::SweepRight:
            return {u * (w - 1), h / 2, 1.5707963267948966};  // vertical bar
        case Gesture::SweepLeft:
            return {(1.0 - u) * (w - 1), h / 2, 1.5707963267948966};
        case Gesture::SweepDown:
            return {w / 2, u * (h - 1), 0.0};  // horizontal bar
        case Gesture::SweepUp:
            return {w / 2, (1.0 - u) * (h - 1), 0.0};
        case Gesture::RotateCw:
            return {w / 2, h / 2, phase + u * 3.141592653589793};
        case Gesture::RotateCcw:
            return {w / 2, h / 2, phase - u * 3.141592653589793};
    }
    throw std::invalid_argument("pose_at: bad gesture");
}

}  // namespace

EventDataset make_gestures(const GestureOptions& opt) {
    if (opt.classes == 0 || opt.classes > kGestureClasses)
        throw std::invalid_argument("make_gestures: classes must be 1.." +
                                    std::to_string(kGestureClasses));
    if (opt.width < 4 || opt.height < 4)
        throw std::invalid_argument("make_gestures: sensor too small");
    if (opt.duration < 2)
        throw std::invalid_argument("make_gestures: duration must be >= 2");

    EventDataset ds;
    ds.name = "gestures";
    ds.width = opt.width;
    ds.height = opt.height;
    ds.duration = opt.duration;
    ds.num_classes = opt.classes;
    ds.streams.reserve(opt.count);

    common::Rng rng(opt.seed);
    const auto w = static_cast<double>(opt.width);
    const auto h = static_cast<double>(opt.height);

    for (std::size_t n = 0; n < opt.count; ++n) {
        const auto label = n % opt.classes;  // balanced classes
        const auto g = static_cast<Gesture>(label);

        // Per-recording jitter: speed, thickness, rotation phase, start lag.
        const double speed = 0.85 + 0.3 * rng.uniform();
        const double thick = 1.0 + 1.2 * rng.uniform();
        const double phase = rng.uniform() * 3.141592653589793;
        const double lag = 0.08 * rng.uniform();

        EventStream stream;
        stream.label = label;

        std::vector<double> prev(opt.width * opt.height, 0.0);
        for (std::uint32_t t = 0; t < opt.duration; ++t) {
            const double u = std::min(
                1.0, std::max(0.0, speed * (static_cast<double>(t) /
                                                (opt.duration - 1) -
                                            lag)));
            const Pose p = pose_at(g, u, w, h, phase);
            for (std::size_t y = 0; y < opt.height; ++y) {
                for (std::size_t x = 0; x < opt.width; ++x) {
                    const double cur =
                        bar_intensity(static_cast<double>(x),
                                      static_cast<double>(y), p.cx, p.cy, p.phi,
                                      thick);
                    const double diff = cur - prev[y * opt.width + x];
                    bool fired = false;
                    if (diff > opt.contrast) {
                        stream.events.push_back({t, static_cast<std::uint16_t>(x),
                                                 static_cast<std::uint16_t>(y),
                                                 true});
                        fired = true;
                    } else if (diff < -opt.contrast) {
                        stream.events.push_back({t, static_cast<std::uint16_t>(x),
                                                 static_cast<std::uint16_t>(y),
                                                 false});
                        fired = true;
                    }
                    // The sensor's change detector resets on each event, so
                    // the reference intensity only moves when one fires.
                    if (fired) prev[y * opt.width + x] = cur;
                    // Background noise: rare spurious events of either sign.
                    if (rng.bernoulli(opt.noise_rate)) {
                        stream.events.push_back({t, static_cast<std::uint16_t>(x),
                                                 static_cast<std::uint16_t>(y),
                                                 rng.bernoulli(0.5)});
                    }
                }
            }
        }
        ds.streams.push_back(std::move(stream));
    }
    return ds;
}

common::Tensor accumulate_frames(const EventStream& stream, std::size_t width,
                                 std::size_t height, std::uint32_t duration,
                                 std::size_t bins) {
    if (bins == 0) throw std::invalid_argument("accumulate_frames: bins == 0");
    if (duration == 0)
        throw std::invalid_argument("accumulate_frames: duration == 0");
    common::Tensor frame({2 * bins, height, width});
    for (const auto& e : stream.events) {
        if (e.x >= width || e.y >= height)
            throw std::out_of_range("accumulate_frames: event outside sensor");
        if (e.t >= duration)
            throw std::out_of_range("accumulate_frames: event after duration");
        const std::size_t slice = (static_cast<std::size_t>(e.t) * bins) / duration;
        frame.at3(slice * 2 + (e.on ? 0 : 1), e.y, e.x) += 1.0f;
    }
    const float peak = frame.max();
    if (peak > 0.0f) frame *= 1.0f / peak;
    return frame;
}

common::Tensor accumulate_frame(const EventStream& stream, std::size_t width,
                                std::size_t height) {
    std::uint32_t duration = 1;
    for (const auto& e : stream.events)
        duration = std::max(duration, e.t + 1);
    return accumulate_frames(stream, width, height, duration, 1);
}

std::size_t inject_events_at(loihi::Chip& chip, loihi::PopulationId pop,
                             const EventStream& stream, std::uint32_t t,
                             std::size_t& cursor, std::size_t width,
                             std::size_t height) {
    if (chip.population_size(pop) != 2 * width * height)
        throw std::invalid_argument(
            "inject_events_at: population must be 2*W*H (ON|OFF channels)");
    std::size_t injected = 0;
    while (cursor < stream.events.size() && stream.events[cursor].t == t) {
        const auto& e = stream.events[cursor];
        if (e.x >= width || e.y >= height)
            throw std::out_of_range("inject_events_at: event outside sensor");
        const std::size_t channel = e.on ? 0 : 1;
        chip.insert_spike(pop, channel * width * height + e.y * width + e.x);
        ++cursor;
        ++injected;
    }
    return injected;
}

}  // namespace neuro::dvs
