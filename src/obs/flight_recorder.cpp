#include "obs/flight_recorder.hpp"

#include <cstring>

#include "common/json.hpp"
#include "obs/trace.hpp"

namespace neuro::obs {

const char* to_string(EventKind k) {
    switch (k) {
        case EventKind::CoDelDrop: return "codel_drop";
        case EventKind::DeadlineDrop: return "deadline_drop";
        case EventKind::Eviction: return "eviction";
        case EventKind::ModelLoad: return "model_load";
        case EventKind::WeightPublish: return "weight_publish";
        case EventKind::Rollback: return "rollback";
        case EventKind::CanaryChange: return "canary_change";
        case EventKind::ConnError: return "conn_error";
        case EventKind::SlowRequest: return "slow_request";
    }
    return "unknown";
}

const char* to_string(SpanId id) {
    switch (id) {
        case SpanId::QueueUs: return "queue_us";
        case SpanId::BatchUs: return "batch_us";
        case SpanId::ComputeUs: return "compute_us";
        case SpanId::ResolveUs: return "resolve_us";
        case SpanId::KernelSweepNs: return "kernel_sweep_ns";
        case SpanId::KernelAccumNs: return "kernel_accum_ns";
        case SpanId::TotalUs: return "total_us";
    }
    return "unknown";
}

void Event::set_detail(std::string_view s) {
    const std::size_t n = s.size() < sizeof detail - 1 ? s.size()
                                                       : sizeof detail - 1;
    std::memcpy(detail, s.data(), n);
    detail[n] = '\0';
}

namespace {
std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 8;
    while (p < v) p <<= 1;
    return p;
}
}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(round_up_pow2(capacity)),
      mask_(capacity_ - 1),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

std::array<std::uint64_t, FlightRecorder::kWords> FlightRecorder::pack(
    const Event& e) {
    std::array<std::uint64_t, kWords> w{};
    w[0] = e.t_us;
    w[1] = static_cast<std::uint64_t>(e.kind);
    w[2] = e.a;
    w[3] = e.b;
    for (std::size_t i = 0; i < e.spans.size(); ++i) w[4 + i] = e.spans[i];
    static_assert(sizeof e.detail == 5 * sizeof(std::uint64_t));
    std::memcpy(&w[11], e.detail, sizeof e.detail);
    return w;
}

Event FlightRecorder::unpack(const std::array<std::uint64_t, kWords>& w) {
    Event e;
    e.t_us = w[0];
    e.kind = static_cast<EventKind>(w[1] & 0xff);
    e.a = w[2];
    e.b = w[3];
    for (std::size_t i = 0; i < e.spans.size(); ++i) e.spans[i] = w[4 + i];
    std::memcpy(e.detail, &w[11], sizeof e.detail);
    e.detail[sizeof e.detail - 1] = '\0';
    return e;
}

void FlightRecorder::record(const Event& e) {
    const std::array<std::uint64_t, kWords> w = pack(e);
    const std::uint64_t t = head_.fetch_add(1, std::memory_order_acq_rel);
    Slot& s = slots_[t & mask_];
    s.seq.store(2 * t + 1, std::memory_order_release);
    for (std::size_t i = 0; i < kWords; ++i)
        s.words[i].store(w[i], std::memory_order_relaxed);
    s.seq.store(2 * t + 2, std::memory_order_release);
}

void FlightRecorder::record(EventKind kind, std::uint64_t t_us,
                            std::string_view detail, std::uint64_t a,
                            std::uint64_t b) {
    Event e;
    e.kind = kind;
    e.t_us = t_us;
    e.a = a;
    e.b = b;
    e.set_detail(detail);
    record(e);
}

std::vector<Event> FlightRecorder::snapshot(std::size_t max_n) const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    std::uint64_t begin = h > capacity_ ? h - capacity_ : 0;
    if (max_n != 0 && h - begin > max_n) begin = h - max_n;
    std::vector<Event> out;
    out.reserve(static_cast<std::size_t>(h - begin));
    for (std::uint64_t t = begin; t < h; ++t) {
        const Slot& s = slots_[t & mask_];
        if (s.seq.load(std::memory_order_acquire) != 2 * t + 2) continue;
        std::array<std::uint64_t, kWords> w;
        for (std::size_t i = 0; i < kWords; ++i)
            w[i] = s.words[i].load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (s.seq.load(std::memory_order_relaxed) != 2 * t + 2) continue;
        out.push_back(unpack(w));
    }
    return out;
}

std::string events_to_json(const std::vector<Event>& events) {
    std::string out = "[";
    bool first = true;
    for (const Event& e : events) {
        if (!first) out += ",";
        first = false;
        common::JsonObject obj;
        obj.add("t_us", e.t_us)
            .add("kind", to_string(e.kind))
            .add("detail", e.detail_str())
            .add("a", e.a)
            .add("b", e.b);
        if (e.kind == EventKind::SlowRequest) {
            std::string spans = "{";
            for (std::size_t i = 0; i < e.spans.size(); ++i) {
                if (i) spans += ",";
                spans += common::json_quote(
                    to_string(static_cast<SpanId>(i + 1)));
                spans += ":";
                spans += std::to_string(e.spans[i]);
            }
            spans += "}";
            obj.add_raw("spans", spans);
        }
        out += obj.str();
    }
    out += "]";
    return out;
}

FlightRecorder& default_recorder() {
    static FlightRecorder recorder;
    return recorder;
}

}  // namespace neuro::obs
