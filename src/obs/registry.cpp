#include "obs/registry.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace neuro::obs {

void append_help_type(std::string& out, const std::string& name,
                      const char* type, const std::string& help) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
}

void append_sample(std::string& out, const std::string& name,
                   const std::string& labels, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out += name;
    out += labels;
    out += ' ';
    out += buf;
    out += '\n';
}

void append_sample(std::string& out, const std::string& name,
                   const std::string& labels, std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    out += name;
    out += labels;
    out += ' ';
    out += buf;
    out += '\n';
}

std::size_t Counter::shard_slot() {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return slot;
}

std::size_t Histogram::bucket_of(std::uint64_t us) {
    for (std::size_t i = 0; i < kBuckets; ++i)
        if (us <= upper_edge_us(i)) return i;
    return kBuckets;  // +Inf
}

Registry::Family& Registry::family_locked(const std::string& name, Kind kind,
                                          const std::string& help) {
    auto [it, inserted] = families_.try_emplace(name);
    Family& fam = it->second;
    if (inserted) {
        fam.kind = kind;
        fam.help = help;
    } else if (fam.kind != kind) {
        throw std::invalid_argument("obs::Registry: metric '" + name +
                                    "' re-registered with a different kind");
    }
    return fam;
}

Registry::Series& Registry::series_locked(Family& fam, const std::string& name,
                                          const std::string& labels) {
    for (Series& s : fam.series)
        if (s.labels == labels) return s;
    (void)name;
    fam.series.push_back(Series{labels, nullptr, nullptr, nullptr});
    return fam.series.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const std::string& labels) {
    std::lock_guard<std::mutex> lock(m_);
    Series& s =
        series_locked(family_locked(name, Kind::Counter, help), name, labels);
    if (!s.counter) s.counter = std::make_unique<Counter>();
    return *s.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const std::string& labels) {
    std::lock_guard<std::mutex> lock(m_);
    Series& s =
        series_locked(family_locked(name, Kind::Gauge, help), name, labels);
    if (!s.gauge) s.gauge = std::make_unique<Gauge>();
    return *s.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               const std::string& labels) {
    std::lock_guard<std::mutex> lock(m_);
    Series& s = series_locked(family_locked(name, Kind::Histogram, help), name,
                              labels);
    if (!s.histogram) s.histogram = std::make_unique<Histogram>();
    return *s.histogram;
}

void Registry::add_collector(Collector c) {
    std::lock_guard<std::mutex> lock(m_);
    collectors_.push_back(std::move(c));
}

namespace {

/// Histogram label plumbing: bucket lines need `le` merged into the
/// series labels ("{a=\"b\"}" + le -> "{a=\"b\",le=\"4\"}").
std::string with_le(const std::string& labels, const std::string& le) {
    if (labels.empty()) return "{le=\"" + le + "\"}";
    std::string out = labels.substr(0, labels.size() - 1);
    out += ",le=\"" + le + "\"}";
    return out;
}

}  // namespace

std::string Registry::expose() const {
    std::lock_guard<std::mutex> lock(m_);
    std::string out;
    for (const auto& [name, fam] : families_) {
        switch (fam.kind) {
            case Kind::Counter: {
                const std::string total = name + "_total";
                append_help_type(out, total, "counter", fam.help);
                for (const Series& s : fam.series)
                    append_sample(out, total, s.labels, s.counter->value());
                break;
            }
            case Kind::Gauge: {
                append_help_type(out, name, "gauge", fam.help);
                for (const Series& s : fam.series)
                    append_sample(
                        out, name, s.labels,
                        static_cast<double>(s.gauge->value()));
                break;
            }
            case Kind::Histogram: {
                append_help_type(out, name, "histogram", fam.help);
                for (const Series& s : fam.series) {
                    const Histogram& h = *s.histogram;
                    std::uint64_t cumulative = 0;
                    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
                        cumulative += h.bucket(i);
                        char le[32];
                        std::snprintf(le, sizeof le, "%" PRIu64,
                                      Histogram::upper_edge_us(i));
                        append_sample(out, name + "_bucket",
                                      with_le(s.labels, le), cumulative);
                    }
                    cumulative += h.bucket(Histogram::kBuckets);
                    append_sample(out, name + "_bucket",
                                  with_le(s.labels, "+Inf"), cumulative);
                    append_sample(out, name + "_sum", s.labels,
                                  static_cast<double>(h.sum_us()));
                    append_sample(out, name + "_count", s.labels, h.count());
                }
                break;
            }
        }
    }
    for (const Collector& c : collectors_) c(out);
    out += "# EOF\n";
    return out;
}

Registry& default_registry() {
    static Registry registry;
    return registry;
}

}  // namespace neuro::obs
