#pragma once
// neuro::obs::FlightRecorder — a fixed-size lock-free ring of structured
// control-plane events (docs/ARCHITECTURE.md §14).
//
// The serving stack emits an Event at every moment an operator will later
// ask "what happened?": CoDel/deadline head drops, LRU evictions, model
// loads, weight publishes and rollbacks, canary arm changes, connection
// errors, and slow requests (full span breakdown attached). The recorder
// keeps the most recent `capacity` of them in a ring of seqlock-style
// slots; the control socket dumps them as JSON (`events [n]`).
//
// Concurrency contract:
//   * record() is wait-free for writers (one fetch_add claims a ticket,
//     then plain relaxed atomic stores into the claimed slot) and safe
//     from any thread — serving workers, the epoll loop, the learner.
//   * snapshot() never blocks writers. Each slot carries a sequence word
//     (2*ticket+1 while being written, 2*ticket+2 when complete); the
//     reader copies a slot's words and discards it when the sequence
//     changed underneath — a slot overwritten mid-read yields a dropped
//     event, never a blocked writer or a torn read (every word is an
//     atomic, so the scheme is TSan-clean by construction).
//   * Events are best-effort diagnostics: under writer bursts faster than
//     capacity, the oldest events are overwritten silently — the ring
//     records the RECENT past, total_recorded() keeps the all-time count.
//
// The payload is a fixed Event struct packed into kWords u64 slots: no
// allocation, no pointers, so an Event is valid forever once copied out.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace neuro::obs {

enum class EventKind : std::uint8_t {
    CoDelDrop = 0,     ///< admission shed stale head work (a=sojourn_us, b=class)
    DeadlineDrop = 1,  ///< SLO deadline passed in queue (a=sojourn_us, b=class)
    Eviction = 2,      ///< LRU evicted a resident model (a=weight_bytes)
    ModelLoad = 3,     ///< fleet entry became resident (a=weight_bytes)
    WeightPublish = 4, ///< online learner published (a=version, b=acc_ppm)
    Rollback = 5,      ///< candidate failed shadow eval (a=0, b=acc_ppm)
    CanaryChange = 6,  ///< canary split changed (a=percent, b=version; pin=100/0)
    ConnError = 7,     ///< netd closed a misbehaving connection (a=fd)
    SlowRequest = 8,   ///< latency above threshold (a=request_id, b=latency_us,
                       ///< spans[] = SpanId 1..7 values)
};
const char* to_string(EventKind k);

struct Event {
    std::uint64_t t_us = 0;   ///< serving-Clock time of the event
    EventKind kind = EventKind::CoDelDrop;
    std::uint64_t a = 0;      ///< kind-specific (see EventKind comments)
    std::uint64_t b = 0;
    std::array<std::uint64_t, 7> spans{};  ///< SlowRequest: SpanId 1..7
    char detail[40] = {};     ///< model name / error tag, NUL-terminated

    void set_detail(std::string_view s);
    std::string detail_str() const { return std::string(detail); }
};

class FlightRecorder {
public:
    /// Capacity is rounded up to a power of two (min 8).
    explicit FlightRecorder(std::size_t capacity = 4096);

    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    void record(const Event& e);

    /// Convenience for the common shape (no spans).
    void record(EventKind kind, std::uint64_t t_us, std::string_view detail,
                std::uint64_t a = 0, std::uint64_t b = 0);

    /// The most recent events, oldest first; at most `max_n` when nonzero.
    /// Slots being overwritten during the read are skipped.
    std::vector<Event> snapshot(std::size_t max_n = 0) const;

    /// All-time record() count (>= what the ring still holds).
    std::uint64_t total_recorded() const {
        return head_.load(std::memory_order_acquire);
    }
    std::size_t capacity() const { return capacity_; }

private:
    // t_us, kind, a, b, spans[7], detail (40 bytes = 5 words).
    static constexpr std::size_t kWords = 16;

    struct alignas(64) Slot {
        std::atomic<std::uint64_t> seq{0};  ///< 0 = never written
        std::array<std::atomic<std::uint64_t>, kWords> words{};
    };

    static std::array<std::uint64_t, kWords> pack(const Event& e);
    static Event unpack(const std::array<std::uint64_t, kWords>& w);

    std::size_t capacity_ = 0;   ///< power of two
    std::size_t mask_ = 0;
    std::unique_ptr<Slot[]> slots_;
    std::atomic<std::uint64_t> head_{0};  ///< next ticket
};

/// JSON array rendering for the control-socket `events` command.
std::string events_to_json(const std::vector<Event>& events);

/// Process-wide recorder: what neurod dumps. Tests build their own
/// FlightRecorder instances for isolation.
FlightRecorder& default_recorder();

}  // namespace neuro::obs
