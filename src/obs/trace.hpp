#pragma once
// neuro::obs::TraceContext — the per-request span record
// (docs/ARCHITECTURE.md §14).
//
// A traced request is stamped with the serving Clock (serve/clock.hpp —
// so ManualClock tests drive spans deterministically) at every phase
// boundary of the request path:
//
//   t_intake ──► t_dequeue ──► t_dispatch ──► t_compute_done ──► t_complete
//     submit      admission      batch            session           resolve /
//     accepted    dequeued       collected,       predict            flush
//                                slot acquired    returned
//
// The derived spans telescope: queue + batch + compute + resolve ==
// t_complete - t_intake, which is exactly the wall latency the router
// measures — so the span sum always reconciles with latency_us (the
// end-to-end acceptance criterion pins them within 5%; by construction
// they match to clock resolution).
//
// kernel_sweep_ns / kernel_accum_ns attribute the compute span further:
// they are the loihi::Chip phase-timer deltas (obs/timer.hpp) consumed by
// this request's predict call — how much of "compute" was membrane sweep
// vs synaptic accumulation. They are nanoseconds from the steady clock
// (not the serving Clock) and are zero unless timing is enabled and the
// backend exposes phase counters.

#include <cstdint>

namespace neuro::obs {

struct TraceContext {
    bool enabled = false;       ///< untraced requests skip every stamp
    std::uint64_t t_intake_us = 0;        ///< accepted into the queue
    std::uint64_t t_dequeue_us = 0;       ///< left admission (dequeued)
    std::uint64_t t_dispatch_us = 0;      ///< batch collected, slot acquired
    std::uint64_t t_compute_done_us = 0;  ///< session predict returned
    std::uint64_t t_complete_us = 0;      ///< result resolved / flushed
    std::uint64_t kernel_sweep_ns = 0;    ///< chip integrate/spike sweep
    std::uint64_t kernel_accum_ns = 0;    ///< chip synaptic accumulation

    // Derived spans (all saturate at 0 so a coarse clock never underflows).
    static std::uint64_t delta(std::uint64_t a, std::uint64_t b) {
        return b >= a ? b - a : 0;
    }
    std::uint64_t queue_us() const { return delta(t_intake_us, t_dequeue_us); }
    std::uint64_t batch_us() const {
        return delta(t_dequeue_us, t_dispatch_us);
    }
    std::uint64_t compute_us() const {
        return delta(t_dispatch_us, t_compute_done_us);
    }
    std::uint64_t resolve_us() const {
        return delta(t_compute_done_us, t_complete_us);
    }
    /// Sum of the four phase spans == wall time intake→complete.
    std::uint64_t total_us() const { return delta(t_intake_us, t_complete_us); }
};

/// Wire/JSON span identifiers — stable ids shared by the netd v3 trace
/// echo, the slow-request flight-recorder events, and ARCHITECTURE §14.
enum class SpanId : std::uint8_t {
    QueueUs = 1,      ///< intake → admission dequeue
    BatchUs = 2,      ///< dequeue → batch collected / slot acquired
    ComputeUs = 3,    ///< dispatch → predict returned
    ResolveUs = 4,    ///< predict returned → resolved/flushed
    KernelSweepNs = 5,///< chip sweep share of compute (nanoseconds)
    KernelAccumNs = 6,///< chip accumulation share of compute (nanoseconds)
    TotalUs = 7,      ///< intake → complete (== sum of spans 1..4)
};

const char* to_string(SpanId id);

}  // namespace neuro::obs
