#pragma once
// neuro::obs — compile-time-cheap phase timing (docs/ARCHITECTURE.md §14).
//
// The kernel hot paths (loihi::Chip's integrate/spike sweeps and synaptic
// accumulation) must not pay for observability when nobody is looking.
// obs::Timer is an RAII scope timer whose entire disabled cost is ONE
// relaxed atomic load and a predictable branch per scope — no clock read,
// no store. When enabled (obs::set_timing(true)) it reads the steady
// clock twice and accumulates the elapsed nanoseconds into a caller-owned
// std::uint64_t sink.
//
// The sink is a plain (non-atomic) integer: a Timer is only ever used
// around single-threaded sections (a Chip is stepped by exactly one
// thread; a worker Session runs on one worker). Cross-thread publication
// of the accumulated values goes through the owner's existing
// synchronization (the router reads phase deltas on the same worker
// thread that stepped the chip).
//
// Timers nest naturally: two scopes accumulating into different sinks
// simply both run; the same sink may also be shared by sibling scopes
// (totals add). That property is pinned by tests/obs_test.cpp.
//
// Building with -DNEURO_OBS_NO_TIMERS compiles every Timer to an empty
// object — the escape hatch if even the relaxed load ever shows up in a
// profile. Default builds keep the runtime switch: the serving stack
// flips it per-process (neurod --trace) or per-bench (serving_load's
// trace-on row).

#include <atomic>
#include <chrono>
#include <cstdint>

namespace neuro::obs {

namespace detail {
inline std::atomic<bool>& timing_flag() {
    static std::atomic<bool> enabled{false};
    return enabled;
}
}  // namespace detail

/// Global switch for every obs::Timer in the process. Relaxed: a flip is
/// not a synchronization point — scopes already running finish under the
/// policy they started with.
inline void set_timing(bool on) {
    detail::timing_flag().store(on, std::memory_order_relaxed);
}

inline bool timing_enabled() {
    return detail::timing_flag().load(std::memory_order_relaxed);
}

/// Monotonic nanoseconds; only called on the enabled path.
inline std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

#ifdef NEURO_OBS_NO_TIMERS
class Timer {
public:
    explicit Timer(std::uint64_t&) {}
    void stop() {}
};
#else
class Timer {
public:
    /// Starts timing iff the global switch is on; otherwise costs one
    /// relaxed load. `sink` must outlive the scope.
    explicit Timer(std::uint64_t& sink)
        : sink_(timing_enabled() ? &sink : nullptr),
          t0_(sink_ ? now_ns() : 0) {}

    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;

    /// Flushes and disarms early — for scopes that end before the block
    /// does (a second Timer may then cover the rest). Idempotent.
    void stop() {
        if (sink_) *sink_ += now_ns() - t0_;
        sink_ = nullptr;
    }

    ~Timer() { stop(); }

private:
    std::uint64_t* sink_;
    std::uint64_t t0_;
};
#endif

}  // namespace neuro::obs
