#pragma once
// neuro::obs::Registry — named counters / gauges / histograms with
// Prometheus text exposition (docs/ARCHITECTURE.md §14).
//
// Hot-path instruments are designed for writers-never-contend:
//   * Counter  — kShards cacheline-padded relaxed atomics; each thread
//     increments its own shard (thread id hashed to a slot at first use),
//     the scrape sums shards. No CAS loops, no false sharing.
//   * Gauge    — a single atomic (gauges are set by control-plane code,
//     not per-request hot paths).
//   * Histogram — fixed power-of-two microsecond buckets of relaxed
//     atomics plus atomic count/sum; record() is two relaxed increments
//     and an add, allocation-free.
//
// Registration (counter()/gauge()/histogram()) takes a mutex and may
// allocate — do it once at setup and keep the reference; the returned
// instruments live as long as the Registry. Instrument references are
// stable (node-based map), so holding one across scrapes is safe.
//
// Scrape-time collectors bridge the existing pull-style stats: a
// collector is a callback that appends already-formatted exposition text
// (use append_help_type()/append_sample()) — the netd daemon registers
// one that snapshots ServerStats / ModelEntryStats / DaemonStats into
// metric families on every scrape, which is how the legacy plumbing is
// absorbed without duplicating its bookkeeping ("aggregated on scrape").
//
// expose() emits Prometheus/OpenMetrics-style text and terminates with a
// literal "# EOF" line — the control-socket framing for the multi-line
// `metrics` reply (netd/daemon.cpp).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace neuro::obs {

/// Formatting helpers shared by Registry::expose() and collectors.
void append_help_type(std::string& out, const std::string& name,
                      const char* type, const std::string& help);
void append_sample(std::string& out, const std::string& name,
                   const std::string& labels, double value);
void append_sample(std::string& out, const std::string& name,
                   const std::string& labels, std::uint64_t value);

class Counter {
public:
    static constexpr std::size_t kShards = 16;

    void inc(std::uint64_t n = 1) {
        shards_[shard_slot()].v.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const {
        std::uint64_t total = 0;
        for (const auto& s : shards_)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }

private:
    /// Stable per-thread shard index; threads are striped across shards
    /// in creation order so a small worker pool never shares a line.
    static std::size_t shard_slot();

    struct alignas(64) Shard {
        std::atomic<std::uint64_t> v{0};
    };
    Shard shards_[kShards];
};

class Gauge {
public:
    void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
    std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> v_{0};
};

/// Power-of-two microsecond buckets: le = 1us, 2us, 4us, ... 2^25us
/// (~33.5s), plus +Inf. ~2x relative resolution — coarser than the
/// serving LatencyHistogram (which keeps 6% resolution for percentile
/// readouts) but cheap to merge and exactly what a scrape-side quantile
/// wants as cumulative `le` buckets.
class Histogram {
public:
    static constexpr std::size_t kBuckets = 26;  ///< finite le buckets

    void record_us(std::uint64_t us) {
        buckets_[bucket_of(us)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_us_.fetch_add(us, std::memory_order_relaxed);
    }

    std::uint64_t count() const {
        return count_.load(std::memory_order_relaxed);
    }
    std::uint64_t sum_us() const {
        return sum_us_.load(std::memory_order_relaxed);
    }
    std::uint64_t bucket(std::size_t i) const {
        return buckets_[i].load(std::memory_order_relaxed);
    }
    /// Upper edge of finite bucket i in microseconds (2^i).
    static std::uint64_t upper_edge_us(std::size_t i) {
        return std::uint64_t{1} << i;
    }

private:
    static std::size_t bucket_of(std::uint64_t us);

    std::atomic<std::uint64_t> buckets_[kBuckets + 1]{};  ///< last = +Inf
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_us_{0};
};

class Registry {
public:
    using Collector = std::function<void(std::string&)>;

    /// Get-or-create; `labels` ("{k=\"v\"}" or empty) distinguishes series
    /// within one family, `help` is taken from the first registration.
    /// Re-registering a (name, labels) pair with a different kind throws.
    Counter& counter(const std::string& name, const std::string& help,
                     const std::string& labels = "");
    Gauge& gauge(const std::string& name, const std::string& help,
                 const std::string& labels = "");
    Histogram& histogram(const std::string& name, const std::string& help,
                         const std::string& labels = "");

    /// Scrape-time bridge for pull-style stats; called under the registry
    /// mutex during expose(), so collectors must not re-enter the
    /// registry. Appended after the registered instruments.
    void add_collector(Collector c);

    /// Prometheus text exposition of every instrument + collector output,
    /// terminated by a "# EOF" line. Families sort by name (deterministic
    /// scrapes); counters get a `_total` suffix per convention.
    std::string expose() const;

private:
    enum class Kind { Counter, Gauge, Histogram };
    struct Series {
        std::string labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };
    struct Family {
        Kind kind = Kind::Counter;
        std::string help;
        std::vector<Series> series;  ///< registration order within family
    };

    Family& family_locked(const std::string& name, Kind kind,
                          const std::string& help);
    Series& series_locked(Family& fam, const std::string& name,
                          const std::string& labels);

    mutable std::mutex m_;
    std::map<std::string, Family> families_;
    std::vector<Collector> collectors_;
};

/// Process-wide registry: what neurod scrapes. Tests build their own
/// Registry instances for isolation.
Registry& default_registry();

}  // namespace neuro::obs
