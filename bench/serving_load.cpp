// Load test of the async serving engine (neuro::serve) — not a paper
// figure; this gates the "heavy traffic" scaling axis of the ROADMAP
// north star and seeds the bench trajectory tracked by the nightly CI.
//
// Two load shapes over one CompiledModel:
//   * closed-loop: C client threads, each submits and waits (think RPC
//     fan-in) — measures capacity and scale-out across worker counts.
//   * open-loop: Poisson arrivals (seeded RNG) at an offered rate above
//     the measured capacity, with the Shed backpressure policy — measures
//     saturation throughput, tail latency under overload, and shed rate.
//
// A third section drives the same engine through neurod's wire protocol
// (netd/protocol.hpp) over a Unix socket — an in-process daemon on its
// own thread, real frames on a real socket — and exports the socket /
// in-process throughput ratio to serving_socket.{csv,json}; CI gates that
// ratio (the wire tax must stay bounded) the same way it gates worker
// scale-out. `--connect=PATH` instead fires the closed-loop wire driver
// at an externally spawned neurod and exits — the CI smoke step.
//
// Writes bench_results/serving_load.{csv,json}; CI compares the JSON's
// same-run throughput ratios (workers=N vs workers=1) against
// bench/baselines/serving_load.json via tools/check_bench_regression.py.
//
// A fourth section sweeps multi-tenancy: the same closed-loop driver
// round-robins over M fleet entries behind one serve::ModelRouter
// (pre-loaded — steady-state routing cost, not lazy-load compiles) and
// exports serving_multimodel.{csv,json}; CI normalizes each row by the
// same-run models=1 row, gating the fan-out tax of routing across M
// session pools instead of one.
//
// CLI: --requests=N per config, --workers=MAX (sweeps 1,2,..,MAX),
//      --batch=B (micro-batch cap), --clients=C, --queue=Q, --delay_us=D,
//      --seed=S (Poisson stream), --rate_x=F (offered = F * capacity),
//      --socket=0 (skip the socket section), --models=M (tenant sweep
//      1,2,..,M; 0 skips it), --trace=0 (skip the tracing-tax section),
//      --connect=PATH (smoke mode).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "data/dataset.hpp"
#include "netd/client.hpp"
#include "netd/daemon.hpp"
#include "obs/timer.hpp"
#include "online/registry.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"

using namespace neuro;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

struct LoadRow {
    std::string config;
    std::string mode;
    std::size_t workers = 0;
    std::size_t batch = 0;
    std::size_t requests = 0;
    double offered_rps = 0.0;  // 0 for closed-loop
    double throughput_rps = 0.0;
    serve::ServerStats stats;
};

serve::ServerOptions make_options(std::size_t workers, std::size_t batch,
                                  std::size_t queue, std::uint64_t delay_us,
                                  serve::Backpressure bp) {
    serve::ServerOptions opt;
    opt.workers = workers;
    opt.queue_capacity = queue;
    opt.batch.max_batch = batch;
    opt.batch.max_delay_us = delay_us;
    opt.backpressure = bp;
    return opt;
}

/// Closed loop: `clients` threads submit-and-wait round-robin over the
/// image set until `requests` total responses have been collected.
LoadRow run_closed(const std::shared_ptr<const runtime::CompiledModel>& model,
                   const data::Dataset& images, std::size_t workers,
                   std::size_t batch, std::size_t requests,
                   std::size_t clients, std::size_t queue,
                   std::uint64_t delay_us) {
    serve::Server server(model,
                         make_options(workers, batch, queue, delay_us,
                                      serve::Backpressure::Block));
    server.start();
    common::ThreadPool pool(clients);
    const auto t0 = std::chrono::steady_clock::now();
    pool.run(clients, [&](std::size_t c) {
        for (std::size_t i = c; i < requests; i += clients)
            (void)server.submit(images.samples[i % images.size()].image).get();
    });
    const double wall = seconds_since(t0);
    server.shutdown();

    LoadRow row;
    row.config = "closed, workers=" + std::to_string(workers) +
                 ", batch=" + std::to_string(batch);
    row.mode = "closed";
    row.workers = workers;
    row.batch = batch;
    row.requests = requests;
    row.throughput_rps = static_cast<double>(requests) / wall;
    row.stats = server.stats();
    return row;
}

/// Open loop: one generator thread submits with exponential (Poisson
/// process) inter-arrival gaps at `offered_rps`, shedding when the queue
/// is full; every handle is then collected after the drain. `admission`
/// and `deadline_us` (relative SLO per request, 0 = none) parameterize the
/// head-of-queue disciplines for the overload sweep; the defaults make
/// this the historical blunt-shedding open-loop row.
LoadRow run_open(const std::shared_ptr<const runtime::CompiledModel>& model,
                 const data::Dataset& images, std::size_t workers,
                 std::size_t batch, std::size_t requests, double offered_rps,
                 std::size_t queue, std::uint64_t delay_us, std::uint64_t seed,
                 serve::AdmissionConfig admission = {},
                 std::uint64_t deadline_us = 0, std::string label = {}) {
    auto options =
        make_options(workers, batch, queue, delay_us, serve::Backpressure::Shed);
    options.admission = admission;
    serve::Server server(model, options);
    server.start();
    common::Rng rng(seed);
    serve::SubmitOptions sub;
    sub.deadline_us = deadline_us;
    std::vector<serve::InferenceHandle> handles;
    handles.reserve(requests);
    const auto t0 = std::chrono::steady_clock::now();
    double arrival_s = 0.0;
    for (std::size_t i = 0; i < requests; ++i) {
        // Exponential gap: -ln(1-u)/rate — a seeded Poisson process.
        arrival_s += -std::log(1.0 - rng.uniform()) / offered_rps;
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(arrival_s)));
        handles.push_back(
            server.submit(images.samples[i % images.size()].image, sub));
    }
    server.shutdown();  // drain everything accepted
    const double wall = seconds_since(t0);
    std::size_t ok = 0;
    for (auto& h : handles)
        if (h.get().status == serve::Status::Ok) ++ok;

    LoadRow row;
    row.config = label.empty() ? "open, workers=" + std::to_string(workers) +
                                     ", batch=" + std::to_string(batch)
                               : std::move(label);
    row.mode = "open";
    row.workers = workers;
    row.batch = batch;
    row.requests = requests;
    row.offered_rps = offered_rps;
    row.throughput_rps = static_cast<double>(ok) / wall;
    row.stats = server.stats();
    return row;
}

/// Tracing tax: the identical closed-loop driver with per-request span
/// stamping (and the obs::Timer kernel phase counters) on or off. CI
/// normalizes the trace-on row by the same-run trace-off row
/// (tools/check_bench_regression.py rule "serving_trace"), so the gate
/// tracks the relative cost of observability — required to stay within a
/// few percent of untraced throughput. Also accumulates the span sum vs
/// wall latency so the row doubles as the end-to-end telescoping check.
LoadRow run_trace(const std::shared_ptr<const runtime::CompiledModel>& model,
                  const data::Dataset& images, std::size_t workers,
                  std::size_t batch, std::size_t requests, std::size_t clients,
                  std::size_t queue, std::uint64_t delay_us, bool trace,
                  double* span_cover = nullptr) {
    obs::set_timing(trace);
    serve::Server server(model,
                         make_options(workers, batch, queue, delay_us,
                                      serve::Backpressure::Block));
    server.start();
    std::atomic<std::uint64_t> span_sum_us{0};
    std::atomic<std::uint64_t> wall_sum_us{0};
    common::ThreadPool pool(clients);
    const auto t0 = std::chrono::steady_clock::now();
    pool.run(clients, [&](std::size_t c) {
        serve::SubmitOptions sub;
        sub.trace = trace;
        std::uint64_t spans = 0;
        std::uint64_t walls = 0;
        for (std::size_t i = c; i < requests; i += clients) {
            const auto res =
                server.submit(images.samples[i % images.size()].image, sub)
                    .get();
            if (res.trace.enabled) {
                spans += res.trace.queue_us() + res.trace.batch_us() +
                         res.trace.compute_us() + res.trace.resolve_us();
                walls += static_cast<std::uint64_t>(res.latency_us);
            }
        }
        span_sum_us.fetch_add(spans);
        wall_sum_us.fetch_add(walls);
    });
    const double wall = seconds_since(t0);
    server.shutdown();
    obs::set_timing(false);
    if (span_cover)
        *span_cover = wall_sum_us.load() > 0
                          ? static_cast<double>(span_sum_us.load()) /
                                static_cast<double>(wall_sum_us.load())
                          : 0.0;

    LoadRow row;
    row.config = trace ? "trace-on" : "trace-off";
    row.mode = "trace";
    row.workers = workers;
    row.batch = batch;
    row.requests = requests;
    row.throughput_rps = static_cast<double>(requests) / wall;
    row.stats = server.stats();
    return row;
}

// ---- socket mode (neurod wire protocol) ------------------------------------

netd::RequestFrame wire_frame(const common::Tensor& img, std::uint64_t id) {
    netd::RequestFrame f;
    f.request_id = id;
    f.shape.assign(img.shape().begin(), img.shape().end());
    f.data.assign(img.data(), img.data() + img.size());
    return f;
}

struct WireCounts {
    std::size_t ok = 0;
    std::size_t rejected = 0;  ///< Rejected or Error frames
    double wall = 0.0;
};

/// Closed loop over the wire: `clients` threads, one connection each, one
/// request in flight per connection (submit-and-wait, mirroring run_closed).
WireCounts drive_socket_closed(const std::string& path,
                               const data::Dataset& images,
                               std::size_t clients, std::size_t requests) {
    std::atomic<std::size_t> ok{0};
    std::atomic<std::size_t> rejected{0};
    common::ThreadPool pool(clients);
    const auto t0 = std::chrono::steady_clock::now();
    pool.run(clients, [&](std::size_t c) {
        auto client = netd::Client::connect_unix(path);
        for (std::size_t i = c; i < requests; i += clients) {
            const auto resp = client.call(
                wire_frame(images.samples[i % images.size()].image, i + 1));
            if (resp.status == netd::WireStatus::Ok)
                ok.fetch_add(1);
            else
                rejected.fetch_add(1);
        }
    });
    WireCounts out;
    out.wall = seconds_since(t0);
    out.ok = ok.load();
    out.rejected = rejected.load();
    return out;
}

/// Open loop over the wire: one connection, a Poisson writer pipelining
/// frames while a reader collects every response (the daemon answers each
/// accepted frame exactly once — Ok, Rejected, or Error — so the reader
/// knows precisely how many to wait for). One thread per direction on a
/// full-duplex socket; only the reader touches the response decoder.
WireCounts drive_socket_open(const std::string& path,
                             const data::Dataset& images, std::size_t requests,
                             double offered_rps, std::uint64_t seed) {
    auto client = netd::Client::connect_unix(path);
    std::atomic<std::size_t> ok{0};
    std::atomic<std::size_t> rejected{0};
    std::thread reader([&] {
        netd::ResponseFrame resp;
        for (std::size_t i = 0; i < requests; ++i) {
            if (!client.recv_response(resp)) return;  // daemon closed early
            if (resp.status == netd::WireStatus::Ok)
                ok.fetch_add(1);
            else
                rejected.fetch_add(1);
        }
    });
    common::Rng rng(seed);
    const auto t0 = std::chrono::steady_clock::now();
    double arrival_s = 0.0;
    for (std::size_t i = 0; i < requests; ++i) {
        arrival_s += -std::log(1.0 - rng.uniform()) / offered_rps;
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(arrival_s)));
        client.send(wire_frame(images.samples[i % images.size()].image, i + 1));
    }
    reader.join();
    WireCounts out;
    out.wall = seconds_since(t0);
    out.ok = ok.load();
    out.rejected = rejected.load();
    return out;
}

/// In-process neurod: Server (Shed — the daemon's requirement) + Daemon on
/// a unique Unix socket, loop on a dedicated thread. One harness per row so
/// the ServerStats percentiles are per-row, like the in-process rows.
struct SocketHarness {
    std::shared_ptr<serve::Server> server;
    std::unique_ptr<netd::Daemon> daemon;
    std::thread thread;
    netd::DaemonOptions dopt;

    SocketHarness(const std::shared_ptr<const runtime::CompiledModel>& model,
                  serve::ServerOptions sopt) {
        static std::atomic<int> counter{0};
        const auto base =
            std::filesystem::temp_directory_path() /
            ("neuro_loadbench_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
        dopt.data_path = base.string() + ".sock";
        sopt.backpressure = serve::Backpressure::Shed;
        server = std::make_shared<serve::Server>(model, sopt);
        server->start();
        daemon = std::make_unique<netd::Daemon>(server, model, dopt);
        thread = std::thread([this] { daemon->run(); });
        // The daemon binds on its own thread; wait until it answers.
        const auto t0 = std::chrono::steady_clock::now();
        while (true) {
            try {
                netd::Client::connect_unix(dopt.data_path);
                break;
            } catch (const std::exception&) {
                if (seconds_since(t0) > 10.0)
                    throw std::runtime_error(
                        "socket bench: neurod loop never came up");
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
            }
        }
    }

    ~SocketHarness() {
        if (daemon && !daemon->finished()) daemon->request_shutdown();
        if (thread.joinable()) thread.join();
        if (server) server->shutdown();
        std::error_code ec;
        std::filesystem::remove(dopt.data_path, ec);
    }
};

LoadRow run_socket_closed(
    const std::shared_ptr<const runtime::CompiledModel>& model,
    const data::Dataset& images, std::size_t workers, std::size_t batch,
    std::size_t requests, std::size_t clients, std::size_t queue,
    std::uint64_t delay_us) {
    SocketHarness h(model, make_options(workers, batch, queue, delay_us,
                                        serve::Backpressure::Shed));
    const auto c = drive_socket_closed(h.dopt.data_path, images, clients,
                                       requests);
    LoadRow row;
    row.config = "socket-closed";
    row.mode = "socket-closed";
    row.workers = workers;
    row.batch = batch;
    row.requests = requests;
    row.throughput_rps = static_cast<double>(c.ok) / c.wall;
    row.stats = h.server->stats();
    return row;
}

LoadRow run_socket_open(
    const std::shared_ptr<const runtime::CompiledModel>& model,
    const data::Dataset& images, std::size_t workers, std::size_t batch,
    std::size_t requests, double offered_rps, std::size_t queue,
    std::uint64_t delay_us, std::uint64_t seed) {
    SocketHarness h(model, make_options(workers, batch, queue, delay_us,
                                        serve::Backpressure::Shed));
    const auto c = drive_socket_open(h.dopt.data_path, images, requests,
                                     offered_rps, seed);
    LoadRow row;
    row.config = "socket-open";
    row.mode = "socket-open";
    row.workers = workers;
    row.batch = batch;
    row.requests = requests;
    row.offered_rps = offered_rps;
    row.throughput_rps = static_cast<double>(c.ok) / c.wall;
    row.stats = h.server->stats();
    return row;
}

// ---- multi-model (serve::ModelRouter fleet) --------------------------------

struct FleetRow {
    std::string config;
    std::size_t models = 0;
    std::size_t requests = 0;
    double throughput_rps = 0.0;
    serve::ServerStats stats;
    std::size_t resident_bytes = 0;
    std::uint64_t loads = 0;
};

/// Closed loop across `models` pre-loaded fleet entries: the same
/// submit-and-wait driver as run_closed, with each request addressed
/// round-robin to entry i % models. Unlimited budget — this row measures
/// the fan-out tax of M session pools, not eviction churn.
FleetRow run_multimodel(
    const std::shared_ptr<const runtime::CompiledModel>& model,
    const data::Dataset& images, std::size_t workers, std::size_t batch,
    std::size_t requests, std::size_t clients, std::size_t queue,
    std::uint64_t delay_us, const std::string& fleet_dir,
    const std::vector<std::string>& names, std::size_t models) {
    serve::RouterOptions ropt;
    ropt.workers = workers;
    ropt.queue_capacity = queue;
    ropt.batch.max_batch = batch;
    ropt.batch.max_delay_us = delay_us;
    ropt.backpressure = serve::Backpressure::Block;
    ropt.fleet_dir = fleet_dir;
    serve::ModelRouter router(model, ropt);
    // Materialize every tenant before the clock starts: lazy-load compiles
    // are a one-time cost, not what this row is measuring.
    for (std::size_t m = 0; m < models; ++m) router.load(names[m]);
    router.start();

    common::ThreadPool pool(clients);
    const auto t0 = std::chrono::steady_clock::now();
    pool.run(clients, [&](std::size_t c) {
        for (std::size_t i = c; i < requests; i += clients) {
            serve::SubmitOptions sub;
            sub.model = names[i % models];
            (void)router
                .submit(images.samples[i % images.size()].image,
                        std::move(sub))
                .get();
        }
    });
    const double wall = seconds_since(t0);

    FleetRow row;
    row.config = "multimodel, models=" + std::to_string(models);
    row.models = models;
    row.requests = requests;
    row.throughput_rps = static_cast<double>(requests) / wall;
    row.stats = router.stats();
    row.resident_bytes = router.resident_bytes();
    for (const auto& s : router.model_stats()) row.loads += s.loads;
    router.shutdown();
    return row;
}

}  // namespace

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto requests = static_cast<std::size_t>(cli.get_int("requests", 256));
    const auto max_workers = static_cast<std::size_t>(cli.get_int("workers", 4));
    const auto batch = static_cast<std::size_t>(cli.get_int("batch", 8));
    const auto clients = static_cast<std::size_t>(
        cli.get_int("clients", static_cast<std::int64_t>(2 * max_workers)));
    const auto queue = static_cast<std::size_t>(cli.get_int("queue", 128));
    const auto delay_us =
        static_cast<std::uint64_t>(cli.get_int("delay_us", 200));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));
    const double rate_x = cli.get_double("rate_x", 1.5);
    // Overload sweep (tail-latency engineering, docs/ARCHITECTURE.md §10):
    // offered rate multiple, per-row request count (0 = 4x --requests), the
    // CoDel discipline, and the per-request SLO for the deadline row.
    const double overload_x = cli.get_double("overload_x", 3.0);
    auto overload_requests =
        static_cast<std::size_t>(cli.get_int("overload_requests", 0));
    if (overload_requests == 0) overload_requests = 4 * requests;
    const auto codel_target_us =
        static_cast<std::uint64_t>(cli.get_int("codel_target_us", 5'000));
    const auto codel_interval_us =
        static_cast<std::uint64_t>(cli.get_int("codel_interval_us", 10'000));
    const auto deadline_us =
        static_cast<std::uint64_t>(cli.get_int("deadline_us", 30'000));
    // Optional self-gates (CI uses tools/check_bench_regression.py against
    // the committed baseline instead; these catch gross failures locally):
    // p99 of accepted requests under CoDel must stay within max_p99x times
    // the closed-loop p99, while goodput holds min_goodput_frac of capacity.
    const double max_p99x = cli.get_double("max_p99x", 0.0);
    const double min_goodput_frac = cli.get_double("min_goodput_frac", 0.0);
    // CI's hard scale-out floor: fail unless the best closed-loop rate at
    // max workers is at least this multiple of the workers=1 rate. Off by
    // default — on a 1-core dev container the sweep measures overhead only.
    const double min_scaleout = cli.get_double("min_scaleout", 0.0);
    const bool run_socket = cli.get_bool("socket", true);
    const bool run_tracing = cli.get_bool("trace", true);
    const auto max_models =
        static_cast<std::size_t>(cli.get_int("models", 4));
    const std::string connect = cli.get("connect", "");

    data::GenOptions gen;
    gen.count = 64;
    gen.seed = 5;
    gen.height = 16;
    gen.width = 16;
    const auto images = data::make_digits(gen);

    // Smoke mode: fire the closed-loop wire driver at an already-running
    // neurod (CI starts the real binary, runs this, then SIGTERMs it).
    // Nothing in-process runs and no result files are written; exit status
    // says whether every frame came back and at least one was served.
    if (!connect.empty()) {
        const auto c = drive_socket_closed(connect, images, clients, requests);
        std::printf("socket smoke: %zu ok, %zu rejected of %zu requests via "
                    "%s (%.1f req/s)\n",
                    c.ok, c.rejected, requests, connect.c_str(),
                    static_cast<double>(c.ok + c.rejected) / c.wall);
        return c.ok + c.rejected == requests && c.ok > 0 ? 0 : 1;
    }

    bench::banner(
        "Serving load — async engine, micro-batching, backpressure",
        "scaling engineering on top of phase-based EMSTDP inference "
        "(no paper figure)",
        std::to_string(requests) + " requests/config, worker sweep 1.." +
            std::to_string(max_workers) + ", micro-batch " +
            std::to_string(batch) + ", " + std::to_string(clients) +
            " closed-loop clients, " +
            std::to_string(std::thread::hardware_concurrency()) +
            " hardware threads");

    runtime::ModelSpec spec;
    spec.input(1, 16, 16).hidden_layers({100}).output_classes(10);
    const auto model =
        runtime::CompiledModel::compile(spec, runtime::BackendKind::LoihiSim);

    std::vector<LoadRow> rows;

    // ---- closed-loop worker sweep at batch=1, then micro-batched -----------
    for (std::size_t w = 1; w <= max_workers; w *= 2)
        rows.push_back(run_closed(model, images, w, 1, requests, clients,
                                  queue, delay_us));
    if (max_workers > 1 && (max_workers & (max_workers - 1)) != 0)
        rows.push_back(run_closed(model, images, max_workers, 1, requests,
                                  clients, queue, delay_us));
    if (batch > 1)
        rows.push_back(run_closed(model, images, max_workers, batch, requests,
                                  clients, queue, delay_us));

    // ---- open-loop Poisson overload at rate_x times measured capacity ------
    double capacity = 0.0;
    for (const auto& r : rows) capacity = std::max(capacity, r.throughput_rps);
    rows.push_back(run_open(model, images, max_workers, batch, requests,
                            rate_x * capacity, queue, delay_us, seed));

    // ---- report ------------------------------------------------------------
    common::Table table({"configuration", "req/s", "vs 1 worker", "p50 us",
                         "p95 us", "p99 us", "shed"});
    common::CsvWriter csv(bench::kCsvDir, "serving_load",
                          {"config", "mode", "workers", "batch", "requests",
                           "offered_rps", "throughput_rps", "p50_us", "p95_us",
                           "p99_us", "accepted", "rejected"});
    bench::JsonWriter json(bench::kCsvDir, "serving_load",
                           {"config", "mode", "workers", "batch", "requests",
                            "offered_rps", "throughput_rps", "p50_us",
                            "p95_us", "p99_us", "accepted", "rejected"});
    double base_rps = 0.0;
    for (const auto& r : rows) {
        if (r.mode == "closed" && r.workers == 1 && r.batch == 1)
            base_rps = r.throughput_rps;
        table.add_row({r.config, common::Table::fmt(r.throughput_rps, 1),
                       base_rps > 0.0
                           ? common::Table::fmt(r.throughput_rps / base_rps, 2) + "x"
                           : "-",
                       common::Table::fmt(r.stats.p50_us, 0),
                       common::Table::fmt(r.stats.p95_us, 0),
                       common::Table::fmt(r.stats.p99_us, 0),
                       std::to_string(r.stats.rejected)});
        const std::vector<std::string> cells = {
            r.config,
            r.mode,
            std::to_string(r.workers),
            std::to_string(r.batch),
            std::to_string(r.requests),
            std::to_string(r.offered_rps),
            std::to_string(r.throughput_rps),
            std::to_string(r.stats.p50_us),
            std::to_string(r.stats.p95_us),
            std::to_string(r.stats.p99_us),
            std::to_string(r.stats.accepted),
            std::to_string(r.stats.rejected)};
        csv.add_row(cells);
        json.add_row(cells);
        std::printf("%-28s %8.1f req/s   p50 %6.0f us   p99 %6.0f us   "
                    "shed %llu\n",
                    r.config.c_str(), r.throughput_rps, r.stats.p50_us,
                    r.stats.p99_us,
                    static_cast<unsigned long long>(r.stats.rejected));
        std::fflush(stdout);
    }

    std::printf("\n");
    table.print();
    double best = 0.0;
    for (const auto& r : rows)
        if (r.mode == "closed" && r.workers == max_workers)
            best = std::max(best, r.throughput_rps);
    const double scaleout = base_rps > 0.0 ? best / base_rps : 0.0;
    if (base_rps > 0.0 && max_workers > 1)
        std::printf("\nscale-out: workers=%zu serves %.2fx the requests/sec "
                    "of workers=1\n",
                    max_workers, scaleout);
    std::printf("CSV: %s\nJSON: %s\n", csv.write().c_str(),
                json.write().c_str());
    bench::footnote(
        "closed-loop rows measure capacity (every client waits for its "
        "response); the open-loop row offers a seeded Poisson stream at "
        "rate_x times the best closed-loop rate with the Shed policy, so "
        "its rejected column is the backpressure doing its job. Speedup "
        "saturates at the physical core count.");
    // ---- overload: admission control vs blunt shedding ---------------------
    // Three disciplines against the same Poisson storm at overload_x times
    // capacity, plus the closed-loop reference row CI normalizes against
    // (machine-speed independence — see tools/check_bench_regression.py).
    std::vector<LoadRow> orows;
    LoadRow closed_ref;
    for (const auto& r : rows)
        if (r.mode == "closed" && r.workers == max_workers) closed_ref = r;
    closed_ref.config = "closed-ref";
    orows.push_back(closed_ref);

    const double overload_rps = overload_x * capacity;
    serve::AdmissionConfig codel_cfg;
    codel_cfg.codel.enabled = true;
    codel_cfg.codel.target_us = codel_target_us;
    codel_cfg.codel.interval_us = codel_interval_us;
    orows.push_back(run_open(model, images, max_workers, batch,
                             overload_requests, overload_rps, queue, delay_us,
                             seed, {}, 0, "overload, shed-only"));
    orows.push_back(run_open(model, images, max_workers, batch,
                             overload_requests, overload_rps, queue, delay_us,
                             seed, codel_cfg, 0, "overload, codel"));
    orows.push_back(run_open(model, images, max_workers, batch,
                             overload_requests, overload_rps, queue, delay_us,
                             seed, codel_cfg, deadline_us,
                             "overload, codel+deadline"));

    common::Table otable({"configuration", "goodput req/s", "p99 us",
                          "sojourn p99 us", "shed", "codel drop", "deadline"});
    const std::vector<std::string> ocols = {
        "config",        "mode",          "workers",
        "batch",         "requests",      "offered_rps",
        "goodput_rps",   "p95_us",        "p99_us",
        "sojourn_p99_us", "accepted",     "shed",
        "codel_dropped", "deadline_dropped", "drop_state_entries"};
    common::CsvWriter ocsv(bench::kCsvDir, "serving_overload", ocols);
    bench::JsonWriter ojson(bench::kCsvDir, "serving_overload", ocols);
    for (const auto& r : orows) {
        otable.add_row({r.config, common::Table::fmt(r.throughput_rps, 1),
                        common::Table::fmt(r.stats.p99_us, 0),
                        common::Table::fmt(r.stats.sojourn_p99_us, 0),
                        std::to_string(r.stats.rejected),
                        std::to_string(r.stats.codel_dropped),
                        std::to_string(r.stats.deadline_dropped)});
        const std::vector<std::string> cells = {
            r.config,
            r.mode,
            std::to_string(r.workers),
            std::to_string(r.batch),
            std::to_string(r.requests),
            std::to_string(r.offered_rps),
            std::to_string(r.throughput_rps),
            std::to_string(r.stats.p95_us),
            std::to_string(r.stats.p99_us),
            std::to_string(r.stats.sojourn_p99_us),
            std::to_string(r.stats.accepted),
            std::to_string(r.stats.rejected),
            std::to_string(r.stats.codel_dropped),
            std::to_string(r.stats.deadline_dropped),
            std::to_string(r.stats.drop_state_entries)};
        ocsv.add_row(cells);
        ojson.add_row(cells);
    }
    std::printf("\n");
    otable.print();
    std::printf("CSV: %s\nJSON: %s\n", ocsv.write().c_str(),
                ojson.write().c_str());
    bench::footnote(
        "overload rows offer the same seeded Poisson storm at overload_x "
        "times the measured capacity. shed-only is the blunt baseline "
        "(bounded queue, full tail cost); codel sheds the stalest head "
        "entries once standing delay exceeds target; codel+deadline also "
        "refuses to spend a session slot on requests whose SLO already "
        "passed. goodput counts Ok responses only; p99 is over accepted "
        "(Ok) requests — the CoDel rows trade a few percent goodput for a "
        "bounded tail.");

    // ---- tracing: what per-request span stamping costs ---------------------
    // Two identical closed-loop runs, spans off then on. CI normalizes
    // trace-on by the same-run trace-off row with a tight 5% tolerance
    // (ISSUE: observability must be effectively free when unused and
    // near-free when on). The span-coverage column reports the mean
    // (queue+batch+compute+resolve) / latency_us ratio over the traced run
    // — the telescoping invariant, ~1.0 by construction.
    if (run_tracing) {
        std::vector<LoadRow> trows;
        double cover = 0.0;
        trows.push_back(run_trace(model, images, max_workers, batch, requests,
                                  clients, queue, delay_us, false));
        trows.push_back(run_trace(model, images, max_workers, batch, requests,
                                  clients, queue, delay_us, true, &cover));
        const double off_rps = trows.front().throughput_rps;

        common::Table ttable({"configuration", "req/s", "vs trace-off",
                              "p50 us", "p99 us", "span cover"});
        const std::vector<std::string> tcols = {
            "config", "mode", "workers", "batch", "requests",
            "throughput_rps", "p50_us", "p95_us", "p99_us", "accepted",
            "rejected", "span_cover"};
        common::CsvWriter tcsv(bench::kCsvDir, "serving_trace", tcols);
        bench::JsonWriter tjson(bench::kCsvDir, "serving_trace", tcols);
        for (const auto& r : trows) {
            const bool on = r.config == "trace-on";
            ttable.add_row(
                {r.config, common::Table::fmt(r.throughput_rps, 1),
                 off_rps > 0.0
                     ? common::Table::fmt(r.throughput_rps / off_rps, 2) + "x"
                     : "-",
                 common::Table::fmt(r.stats.p50_us, 0),
                 common::Table::fmt(r.stats.p99_us, 0),
                 on ? common::Table::fmt(cover, 3) : "-"});
            const std::vector<std::string> cells = {
                r.config,
                r.mode,
                std::to_string(r.workers),
                std::to_string(r.batch),
                std::to_string(r.requests),
                std::to_string(r.throughput_rps),
                std::to_string(r.stats.p50_us),
                std::to_string(r.stats.p95_us),
                std::to_string(r.stats.p99_us),
                std::to_string(r.stats.accepted),
                std::to_string(r.stats.rejected),
                std::to_string(on ? cover : 0.0)};
            tcsv.add_row(cells);
            tjson.add_row(cells);
        }
        std::printf("\n");
        ttable.print();
        std::printf("CSV: %s\nJSON: %s\n", tcsv.write().c_str(),
                    tjson.write().c_str());
        bench::footnote(
            "trace rows run the identical closed-loop workload with "
            "per-request span stamping off and on (SubmitOptions::trace + "
            "obs timing). span cover is the mean span-sum / wall-latency "
            "ratio of the traced run — the phases telescope, so it sits at "
            "~1.0; CI gates the trace-on / trace-off throughput ratio.");
    }

    // ---- socket mode: the same engine behind neurod's wire protocol --------
    // The in-process closed-ref row is re-emitted as "inproc" so CI can
    // normalize the socket rows by it: the gate then tracks the wire tax
    // (socket / in-process throughput at identical workers/batch/queue),
    // which transfers across machines. The open-loop row rides along
    // ungated (absent from the committed baseline) — Poisson timing over a
    // real socket is too machine-dependent to gate.
    if (run_socket) {
        std::vector<LoadRow> srows;
        LoadRow inproc = closed_ref;
        inproc.config = "inproc";
        srows.push_back(inproc);
        srows.push_back(run_socket_closed(model, images, max_workers, batch,
                                          requests, clients, queue, delay_us));
        const double socket_capacity = srows.back().throughput_rps;
        srows.push_back(run_socket_open(model, images, max_workers, batch,
                                        requests, rate_x * socket_capacity,
                                        queue, delay_us, seed));

        common::Table stable({"configuration", "req/s", "vs in-process",
                              "p50 us", "p99 us", "shed"});
        const std::vector<std::string> scols = {
            "config", "mode", "workers", "batch", "requests", "offered_rps",
            "throughput_rps", "p50_us", "p95_us", "p99_us", "accepted",
            "rejected"};
        common::CsvWriter scsv(bench::kCsvDir, "serving_socket", scols);
        bench::JsonWriter sjson(bench::kCsvDir, "serving_socket", scols);
        for (const auto& r : srows) {
            stable.add_row(
                {r.config, common::Table::fmt(r.throughput_rps, 1),
                 inproc.throughput_rps > 0.0
                     ? common::Table::fmt(
                           r.throughput_rps / inproc.throughput_rps, 2) + "x"
                     : "-",
                 common::Table::fmt(r.stats.p50_us, 0),
                 common::Table::fmt(r.stats.p99_us, 0),
                 std::to_string(r.stats.rejected)});
            scsv.add_row({r.config, r.mode, std::to_string(r.workers),
                          std::to_string(r.batch), std::to_string(r.requests),
                          std::to_string(r.offered_rps),
                          std::to_string(r.throughput_rps),
                          std::to_string(r.stats.p50_us),
                          std::to_string(r.stats.p95_us),
                          std::to_string(r.stats.p99_us),
                          std::to_string(r.stats.accepted),
                          std::to_string(r.stats.rejected)});
            sjson.add_row({r.config, r.mode, std::to_string(r.workers),
                           std::to_string(r.batch), std::to_string(r.requests),
                           std::to_string(r.offered_rps),
                           std::to_string(r.throughput_rps),
                           std::to_string(r.stats.p50_us),
                           std::to_string(r.stats.p95_us),
                           std::to_string(r.stats.p99_us),
                           std::to_string(r.stats.accepted),
                           std::to_string(r.stats.rejected)});
        }
        std::printf("\n");
        stable.print();
        std::printf("CSV: %s\nJSON: %s\n", scsv.write().c_str(),
                    sjson.write().c_str());
        bench::footnote(
            "socket rows run the identical server configuration behind an "
            "in-process neurod event loop on a Unix socket: socket-closed "
            "is submit-and-wait per connection (the wire tax on capacity); "
            "socket-open pipelines a Poisson stream over one connection. "
            "Frame encode + two socket hops + response decode is the whole "
            "difference from the inproc row.");
    }

    // ---- multi-model: the fan-out tax of routing across M tenants ----------
    // One router, M pre-loaded fleet entries, the same closed-loop driver
    // round-robining over them. CI normalizes each row by the same-run
    // models=1 row (a single fleet entry behind the same router machinery),
    // so the gate tracks what spreading traffic across M session pools
    // costs — a ratio that transfers across machines.
    if (max_models > 0) {
        const auto fleet =
            std::filesystem::temp_directory_path() /
            ("neuro_loadbench_fleet_" + std::to_string(::getpid()));
        std::filesystem::remove_all(fleet);
        std::filesystem::create_directories(fleet);
        std::vector<std::string> names;
        for (std::size_t m = 0; m < max_models; ++m) {
            names.push_back("m" + std::to_string(m));
            online::ModelRegistry reg((fleet / names.back()).string());
            reg.record(1, 1.0, model->initial_weights());
        }

        std::vector<FleetRow> mrows;
        for (std::size_t m = 1; m <= max_models; m *= 2)
            mrows.push_back(run_multimodel(model, images, max_workers, batch,
                                           requests, clients, queue, delay_us,
                                           fleet.string(), names, m));
        if (max_models > 1 && (max_models & (max_models - 1)) != 0)
            mrows.push_back(run_multimodel(model, images, max_workers, batch,
                                           requests, clients, queue, delay_us,
                                           fleet.string(), names, max_models));

        common::Table mtable({"configuration", "req/s", "vs models=1",
                              "p50 us", "p99 us", "resident KiB"});
        const std::vector<std::string> mcols = {
            "config", "mode", "workers", "batch", "models", "requests",
            "throughput_rps", "p50_us", "p95_us", "p99_us", "accepted",
            "rejected", "resident_bytes", "loads"};
        common::CsvWriter mcsv(bench::kCsvDir, "serving_multimodel", mcols);
        bench::JsonWriter mjson(bench::kCsvDir, "serving_multimodel", mcols);
        const double single = mrows.front().throughput_rps;
        for (const auto& r : mrows) {
            mtable.add_row(
                {r.config, common::Table::fmt(r.throughput_rps, 1),
                 single > 0.0
                     ? common::Table::fmt(r.throughput_rps / single, 2) + "x"
                     : "-",
                 common::Table::fmt(r.stats.p50_us, 0),
                 common::Table::fmt(r.stats.p99_us, 0),
                 common::Table::fmt(
                     static_cast<double>(r.resident_bytes) / 1024.0, 1)});
            const std::vector<std::string> cells = {
                r.config,
                "multimodel",
                std::to_string(max_workers),
                std::to_string(batch),
                std::to_string(r.models),
                std::to_string(r.requests),
                std::to_string(r.throughput_rps),
                std::to_string(r.stats.p50_us),
                std::to_string(r.stats.p95_us),
                std::to_string(r.stats.p99_us),
                std::to_string(r.stats.accepted),
                std::to_string(r.stats.rejected),
                std::to_string(r.resident_bytes),
                std::to_string(r.loads)};
            mcsv.add_row(cells);
            mjson.add_row(cells);
        }
        std::printf("\n");
        mtable.print();
        std::printf("CSV: %s\nJSON: %s\n", mcsv.write().c_str(),
                    mjson.write().c_str());
        bench::footnote(
            "multimodel rows route the identical closed-loop workload "
            "round-robin across M pre-loaded fleet entries behind one "
            "ModelRouter (unlimited residency budget — no eviction churn). "
            "models=1 exercises the same routing machinery on a single "
            "entry, so the vs-models=1 ratio is purely the cost of "
            "fanning out across M session pools.");
        std::error_code ec;
        std::filesystem::remove_all(fleet, ec);
    }

    bool failed = false;
    if (min_scaleout > 0.0 && scaleout < min_scaleout) {
        std::fprintf(stderr,
                     "FAIL: scale-out %.2fx is below the required %.2fx "
                     "(workers=%zu vs workers=1)\n",
                     scaleout, min_scaleout, max_workers);
        failed = true;
    }
    for (const auto& r : orows) {
        if (r.config.find("codel") == std::string::npos) continue;
        if (max_p99x > 0.0 && closed_ref.stats.p99_us > 0.0 &&
            r.stats.p99_us > max_p99x * closed_ref.stats.p99_us) {
            std::fprintf(stderr,
                         "FAIL: %s p99 %.0f us exceeds %.1fx the closed-loop "
                         "p99 (%.0f us)\n",
                         r.config.c_str(), r.stats.p99_us, max_p99x,
                         closed_ref.stats.p99_us);
            failed = true;
        }
        if (min_goodput_frac > 0.0 &&
            r.throughput_rps < min_goodput_frac * capacity) {
            std::fprintf(stderr,
                         "FAIL: %s goodput %.1f req/s is below %.2f of the "
                         "measured capacity (%.1f req/s)\n",
                         r.config.c_str(), r.throughput_rps, min_goodput_frac,
                         capacity);
            failed = true;
        }
    }
    return failed ? 1 : 0;
}
