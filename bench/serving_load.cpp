// Load test of the async serving engine (neuro::serve) — not a paper
// figure; this gates the "heavy traffic" scaling axis of the ROADMAP
// north star and seeds the bench trajectory tracked by the nightly CI.
//
// Two load shapes over one CompiledModel:
//   * closed-loop: C client threads, each submits and waits (think RPC
//     fan-in) — measures capacity and scale-out across worker counts.
//   * open-loop: Poisson arrivals (seeded RNG) at an offered rate above
//     the measured capacity, with the Shed backpressure policy — measures
//     saturation throughput, tail latency under overload, and shed rate.
//
// Writes bench_results/serving_load.{csv,json}; CI compares the JSON's
// same-run throughput ratios (workers=N vs workers=1) against
// bench/baselines/serving_load.json via tools/check_bench_regression.py.
//
// CLI: --requests=N per config, --workers=MAX (sweeps 1,2,..,MAX),
//      --batch=B (micro-batch cap), --clients=C, --queue=Q, --delay_us=D,
//      --seed=S (Poisson stream), --rate_x=F (offered = F * capacity).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "data/dataset.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/server.hpp"

using namespace neuro;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

struct LoadRow {
    std::string config;
    std::string mode;
    std::size_t workers = 0;
    std::size_t batch = 0;
    std::size_t requests = 0;
    double offered_rps = 0.0;  // 0 for closed-loop
    double throughput_rps = 0.0;
    serve::ServerStats stats;
};

serve::ServerOptions make_options(std::size_t workers, std::size_t batch,
                                  std::size_t queue, std::uint64_t delay_us,
                                  serve::Backpressure bp) {
    serve::ServerOptions opt;
    opt.workers = workers;
    opt.queue_capacity = queue;
    opt.batch.max_batch = batch;
    opt.batch.max_delay_us = delay_us;
    opt.backpressure = bp;
    return opt;
}

/// Closed loop: `clients` threads submit-and-wait round-robin over the
/// image set until `requests` total responses have been collected.
LoadRow run_closed(const std::shared_ptr<const runtime::CompiledModel>& model,
                   const data::Dataset& images, std::size_t workers,
                   std::size_t batch, std::size_t requests,
                   std::size_t clients, std::size_t queue,
                   std::uint64_t delay_us) {
    serve::Server server(model,
                         make_options(workers, batch, queue, delay_us,
                                      serve::Backpressure::Block));
    server.start();
    common::ThreadPool pool(clients);
    const auto t0 = std::chrono::steady_clock::now();
    pool.run(clients, [&](std::size_t c) {
        for (std::size_t i = c; i < requests; i += clients)
            (void)server.submit(images.samples[i % images.size()].image).get();
    });
    const double wall = seconds_since(t0);
    server.shutdown();

    LoadRow row;
    row.config = "closed, workers=" + std::to_string(workers) +
                 ", batch=" + std::to_string(batch);
    row.mode = "closed";
    row.workers = workers;
    row.batch = batch;
    row.requests = requests;
    row.throughput_rps = static_cast<double>(requests) / wall;
    row.stats = server.stats();
    return row;
}

/// Open loop: one generator thread submits with exponential (Poisson
/// process) inter-arrival gaps at `offered_rps`, shedding when the queue
/// is full; every handle is then collected after the drain. `admission`
/// and `deadline_us` (relative SLO per request, 0 = none) parameterize the
/// head-of-queue disciplines for the overload sweep; the defaults make
/// this the historical blunt-shedding open-loop row.
LoadRow run_open(const std::shared_ptr<const runtime::CompiledModel>& model,
                 const data::Dataset& images, std::size_t workers,
                 std::size_t batch, std::size_t requests, double offered_rps,
                 std::size_t queue, std::uint64_t delay_us, std::uint64_t seed,
                 serve::AdmissionConfig admission = {},
                 std::uint64_t deadline_us = 0, std::string label = {}) {
    auto options =
        make_options(workers, batch, queue, delay_us, serve::Backpressure::Shed);
    options.admission = admission;
    serve::Server server(model, options);
    server.start();
    common::Rng rng(seed);
    serve::SubmitOptions sub;
    sub.deadline_us = deadline_us;
    std::vector<serve::InferenceHandle> handles;
    handles.reserve(requests);
    const auto t0 = std::chrono::steady_clock::now();
    double arrival_s = 0.0;
    for (std::size_t i = 0; i < requests; ++i) {
        // Exponential gap: -ln(1-u)/rate — a seeded Poisson process.
        arrival_s += -std::log(1.0 - rng.uniform()) / offered_rps;
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(arrival_s)));
        handles.push_back(
            server.submit(images.samples[i % images.size()].image, sub));
    }
    server.shutdown();  // drain everything accepted
    const double wall = seconds_since(t0);
    std::size_t ok = 0;
    for (auto& h : handles)
        if (h.get().status == serve::Status::Ok) ++ok;

    LoadRow row;
    row.config = label.empty() ? "open, workers=" + std::to_string(workers) +
                                     ", batch=" + std::to_string(batch)
                               : std::move(label);
    row.mode = "open";
    row.workers = workers;
    row.batch = batch;
    row.requests = requests;
    row.offered_rps = offered_rps;
    row.throughput_rps = static_cast<double>(ok) / wall;
    row.stats = server.stats();
    return row;
}

}  // namespace

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto requests = static_cast<std::size_t>(cli.get_int("requests", 256));
    const auto max_workers = static_cast<std::size_t>(cli.get_int("workers", 4));
    const auto batch = static_cast<std::size_t>(cli.get_int("batch", 8));
    const auto clients = static_cast<std::size_t>(
        cli.get_int("clients", static_cast<std::int64_t>(2 * max_workers)));
    const auto queue = static_cast<std::size_t>(cli.get_int("queue", 128));
    const auto delay_us =
        static_cast<std::uint64_t>(cli.get_int("delay_us", 200));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));
    const double rate_x = cli.get_double("rate_x", 1.5);
    // Overload sweep (tail-latency engineering, docs/ARCHITECTURE.md §10):
    // offered rate multiple, per-row request count (0 = 4x --requests), the
    // CoDel discipline, and the per-request SLO for the deadline row.
    const double overload_x = cli.get_double("overload_x", 3.0);
    auto overload_requests =
        static_cast<std::size_t>(cli.get_int("overload_requests", 0));
    if (overload_requests == 0) overload_requests = 4 * requests;
    const auto codel_target_us =
        static_cast<std::uint64_t>(cli.get_int("codel_target_us", 5'000));
    const auto codel_interval_us =
        static_cast<std::uint64_t>(cli.get_int("codel_interval_us", 10'000));
    const auto deadline_us =
        static_cast<std::uint64_t>(cli.get_int("deadline_us", 30'000));
    // Optional self-gates (CI uses tools/check_bench_regression.py against
    // the committed baseline instead; these catch gross failures locally):
    // p99 of accepted requests under CoDel must stay within max_p99x times
    // the closed-loop p99, while goodput holds min_goodput_frac of capacity.
    const double max_p99x = cli.get_double("max_p99x", 0.0);
    const double min_goodput_frac = cli.get_double("min_goodput_frac", 0.0);
    // CI's hard scale-out floor: fail unless the best closed-loop rate at
    // max workers is at least this multiple of the workers=1 rate. Off by
    // default — on a 1-core dev container the sweep measures overhead only.
    const double min_scaleout = cli.get_double("min_scaleout", 0.0);

    bench::banner(
        "Serving load — async engine, micro-batching, backpressure",
        "scaling engineering on top of phase-based EMSTDP inference "
        "(no paper figure)",
        std::to_string(requests) + " requests/config, worker sweep 1.." +
            std::to_string(max_workers) + ", micro-batch " +
            std::to_string(batch) + ", " + std::to_string(clients) +
            " closed-loop clients, " +
            std::to_string(std::thread::hardware_concurrency()) +
            " hardware threads");

    data::GenOptions gen;
    gen.count = 64;
    gen.seed = 5;
    gen.height = 16;
    gen.width = 16;
    const auto images = data::make_digits(gen);

    runtime::ModelSpec spec;
    spec.input(1, 16, 16).hidden_layers({100}).output_classes(10);
    const auto model =
        runtime::CompiledModel::compile(spec, runtime::BackendKind::LoihiSim);

    std::vector<LoadRow> rows;

    // ---- closed-loop worker sweep at batch=1, then micro-batched -----------
    for (std::size_t w = 1; w <= max_workers; w *= 2)
        rows.push_back(run_closed(model, images, w, 1, requests, clients,
                                  queue, delay_us));
    if (max_workers > 1 && (max_workers & (max_workers - 1)) != 0)
        rows.push_back(run_closed(model, images, max_workers, 1, requests,
                                  clients, queue, delay_us));
    if (batch > 1)
        rows.push_back(run_closed(model, images, max_workers, batch, requests,
                                  clients, queue, delay_us));

    // ---- open-loop Poisson overload at rate_x times measured capacity ------
    double capacity = 0.0;
    for (const auto& r : rows) capacity = std::max(capacity, r.throughput_rps);
    rows.push_back(run_open(model, images, max_workers, batch, requests,
                            rate_x * capacity, queue, delay_us, seed));

    // ---- report ------------------------------------------------------------
    common::Table table({"configuration", "req/s", "vs 1 worker", "p50 us",
                         "p95 us", "p99 us", "shed"});
    common::CsvWriter csv(bench::kCsvDir, "serving_load",
                          {"config", "mode", "workers", "batch", "requests",
                           "offered_rps", "throughput_rps", "p50_us", "p95_us",
                           "p99_us", "accepted", "rejected"});
    bench::JsonWriter json(bench::kCsvDir, "serving_load",
                           {"config", "mode", "workers", "batch", "requests",
                            "offered_rps", "throughput_rps", "p50_us",
                            "p95_us", "p99_us", "accepted", "rejected"});
    double base_rps = 0.0;
    for (const auto& r : rows) {
        if (r.mode == "closed" && r.workers == 1 && r.batch == 1)
            base_rps = r.throughput_rps;
        table.add_row({r.config, common::Table::fmt(r.throughput_rps, 1),
                       base_rps > 0.0
                           ? common::Table::fmt(r.throughput_rps / base_rps, 2) + "x"
                           : "-",
                       common::Table::fmt(r.stats.p50_us, 0),
                       common::Table::fmt(r.stats.p95_us, 0),
                       common::Table::fmt(r.stats.p99_us, 0),
                       std::to_string(r.stats.rejected)});
        const std::vector<std::string> cells = {
            r.config,
            r.mode,
            std::to_string(r.workers),
            std::to_string(r.batch),
            std::to_string(r.requests),
            std::to_string(r.offered_rps),
            std::to_string(r.throughput_rps),
            std::to_string(r.stats.p50_us),
            std::to_string(r.stats.p95_us),
            std::to_string(r.stats.p99_us),
            std::to_string(r.stats.accepted),
            std::to_string(r.stats.rejected)};
        csv.add_row(cells);
        json.add_row(cells);
        std::printf("%-28s %8.1f req/s   p50 %6.0f us   p99 %6.0f us   "
                    "shed %llu\n",
                    r.config.c_str(), r.throughput_rps, r.stats.p50_us,
                    r.stats.p99_us,
                    static_cast<unsigned long long>(r.stats.rejected));
        std::fflush(stdout);
    }

    std::printf("\n");
    table.print();
    double best = 0.0;
    for (const auto& r : rows)
        if (r.mode == "closed" && r.workers == max_workers)
            best = std::max(best, r.throughput_rps);
    const double scaleout = base_rps > 0.0 ? best / base_rps : 0.0;
    if (base_rps > 0.0 && max_workers > 1)
        std::printf("\nscale-out: workers=%zu serves %.2fx the requests/sec "
                    "of workers=1\n",
                    max_workers, scaleout);
    std::printf("CSV: %s\nJSON: %s\n", csv.write().c_str(),
                json.write().c_str());
    bench::footnote(
        "closed-loop rows measure capacity (every client waits for its "
        "response); the open-loop row offers a seeded Poisson stream at "
        "rate_x times the best closed-loop rate with the Shed policy, so "
        "its rejected column is the backpressure doing its job. Speedup "
        "saturates at the physical core count.");
    // ---- overload: admission control vs blunt shedding ---------------------
    // Three disciplines against the same Poisson storm at overload_x times
    // capacity, plus the closed-loop reference row CI normalizes against
    // (machine-speed independence — see tools/check_bench_regression.py).
    std::vector<LoadRow> orows;
    LoadRow closed_ref;
    for (const auto& r : rows)
        if (r.mode == "closed" && r.workers == max_workers) closed_ref = r;
    closed_ref.config = "closed-ref";
    orows.push_back(closed_ref);

    const double overload_rps = overload_x * capacity;
    serve::AdmissionConfig codel_cfg;
    codel_cfg.codel.enabled = true;
    codel_cfg.codel.target_us = codel_target_us;
    codel_cfg.codel.interval_us = codel_interval_us;
    orows.push_back(run_open(model, images, max_workers, batch,
                             overload_requests, overload_rps, queue, delay_us,
                             seed, {}, 0, "overload, shed-only"));
    orows.push_back(run_open(model, images, max_workers, batch,
                             overload_requests, overload_rps, queue, delay_us,
                             seed, codel_cfg, 0, "overload, codel"));
    orows.push_back(run_open(model, images, max_workers, batch,
                             overload_requests, overload_rps, queue, delay_us,
                             seed, codel_cfg, deadline_us,
                             "overload, codel+deadline"));

    common::Table otable({"configuration", "goodput req/s", "p99 us",
                          "sojourn p99 us", "shed", "codel drop", "deadline"});
    const std::vector<std::string> ocols = {
        "config",        "mode",          "workers",
        "batch",         "requests",      "offered_rps",
        "goodput_rps",   "p95_us",        "p99_us",
        "sojourn_p99_us", "accepted",     "shed",
        "codel_dropped", "deadline_missed", "drop_state_entries"};
    common::CsvWriter ocsv(bench::kCsvDir, "serving_overload", ocols);
    bench::JsonWriter ojson(bench::kCsvDir, "serving_overload", ocols);
    for (const auto& r : orows) {
        otable.add_row({r.config, common::Table::fmt(r.throughput_rps, 1),
                        common::Table::fmt(r.stats.p99_us, 0),
                        common::Table::fmt(r.stats.sojourn_p99_us, 0),
                        std::to_string(r.stats.rejected),
                        std::to_string(r.stats.codel_dropped),
                        std::to_string(r.stats.deadline_missed)});
        const std::vector<std::string> cells = {
            r.config,
            r.mode,
            std::to_string(r.workers),
            std::to_string(r.batch),
            std::to_string(r.requests),
            std::to_string(r.offered_rps),
            std::to_string(r.throughput_rps),
            std::to_string(r.stats.p95_us),
            std::to_string(r.stats.p99_us),
            std::to_string(r.stats.sojourn_p99_us),
            std::to_string(r.stats.accepted),
            std::to_string(r.stats.rejected),
            std::to_string(r.stats.codel_dropped),
            std::to_string(r.stats.deadline_missed),
            std::to_string(r.stats.drop_state_entries)};
        ocsv.add_row(cells);
        ojson.add_row(cells);
    }
    std::printf("\n");
    otable.print();
    std::printf("CSV: %s\nJSON: %s\n", ocsv.write().c_str(),
                ojson.write().c_str());
    bench::footnote(
        "overload rows offer the same seeded Poisson storm at overload_x "
        "times the measured capacity. shed-only is the blunt baseline "
        "(bounded queue, full tail cost); codel sheds the stalest head "
        "entries once standing delay exceeds target; codel+deadline also "
        "refuses to spend a session slot on requests whose SLO already "
        "passed. goodput counts Ok responses only; p99 is over accepted "
        "(Ok) requests — the CoDel rows trade a few percent goodput for a "
        "bounded tail.");

    bool failed = false;
    if (min_scaleout > 0.0 && scaleout < min_scaleout) {
        std::fprintf(stderr,
                     "FAIL: scale-out %.2fx is below the required %.2fx "
                     "(workers=%zu vs workers=1)\n",
                     scaleout, min_scaleout, max_workers);
        failed = true;
    }
    for (const auto& r : orows) {
        if (r.config.find("codel") == std::string::npos) continue;
        if (max_p99x > 0.0 && closed_ref.stats.p99_us > 0.0 &&
            r.stats.p99_us > max_p99x * closed_ref.stats.p99_us) {
            std::fprintf(stderr,
                         "FAIL: %s p99 %.0f us exceeds %.1fx the closed-loop "
                         "p99 (%.0f us)\n",
                         r.config.c_str(), r.stats.p99_us, max_p99x,
                         closed_ref.stats.p99_us);
            failed = true;
        }
        if (min_goodput_frac > 0.0 &&
            r.throughput_rps < min_goodput_frac * capacity) {
            std::fprintf(stderr,
                         "FAIL: %s goodput %.1f req/s is below %.2f of the "
                         "measured capacity (%.1f req/s)\n",
                         r.config.c_str(), r.throughput_rps, min_goodput_frac,
                         capacity);
            failed = true;
        }
    }
    return failed ? 1 : 0;
}
