// Training throughput of the data-parallel batched engine vs. the serial
// online trainer (not a paper figure — this gates the scaling work of the
// ROADMAP north star).
//
// Three questions, answered on the synthetic-digits workload:
//   1. What does the sparse active-set step loop buy over the dense
//      reference sweep for the serial trainer?
//   2. How does ParallelTrainer's samples/sec scale with worker threads?
//   3. Does the batched path stay bit-identical across thread counts while
//      doing so (spot-checked here; proven in parallel_trainer_test)?
//
// Note the speedup ceiling is min(threads, hardware cores): on a 1-core
// container the thread sweep measures overhead, not scaling.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "core/network.hpp"
#include "core/parallel_trainer.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "loihi/chip.hpp"
#include "runtime/loihi_backend.hpp"

using namespace neuro;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

core::EmstdpNetwork make_net(std::size_t side, std::uint64_t seed) {
    core::EmstdpOptions opt;
    opt.seed = seed;
    return core::EmstdpNetwork(opt, 1, side, side, nullptr,
                               std::vector<std::size_t>{100}, std::size_t{10});
}

}  // namespace

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto samples = static_cast<std::size_t>(cli.get_int("samples", 96));
    const auto side = static_cast<std::size_t>(cli.get_int("side", 16));
    const auto batch = static_cast<std::size_t>(cli.get_int("batch", 8));
    const auto max_threads = static_cast<std::size_t>(cli.get_int(
        "max_threads",
        std::max(8u, std::thread::hardware_concurrency())));

    bench::banner(
        "Training throughput — replicated chips + sparse step loop",
        "scaling engineering on top of Operation Flow 1 (no paper figure)",
        std::to_string(samples) + " samples/epoch, " + std::to_string(side) +
            "x" + std::to_string(side) + " digits, dense stack 100-10, batch " +
            std::to_string(batch) + ", " +
            std::to_string(std::thread::hardware_concurrency()) +
            " hardware threads");

    data::GenOptions gen;
    gen.count = samples;
    gen.seed = 5;
    gen.height = side;
    gen.width = side;
    const auto train = data::make_digits(gen);

    common::Table table({"configuration", "samples/sec", "vs serial dense",
                         "vs serial sparse"});
    common::CsvWriter csv(bench::kCsvDir, "throughput_parallel",
                          {"config", "threads", "samples_per_sec"});
    bench::JsonWriter json(bench::kCsvDir, "throughput_parallel",
                           {"config", "threads", "samples_per_sec"});
    const auto record = [&](const std::string& config, std::size_t threads,
                            double rate) {
        csv.add_row({config, std::to_string(threads), std::to_string(rate)});
        json.add_row({config, std::to_string(threads), std::to_string(rate)});
    };

    // ---- serial baselines: dense sweep, then sparse sweep ------------------
    double serial_dense = 0.0;
    double serial_sparse = 0.0;
    for (const bool sparse : {false, true}) {
        auto net = make_net(side, 7);
        net.chip().set_sparse_sweep(sparse);
        common::Rng rng(42);
        const auto t0 = std::chrono::steady_clock::now();
        core::train_epoch(net, train, rng);
        const double rate = static_cast<double>(train.size()) / seconds_since(t0);
        (sparse ? serial_sparse : serial_dense) = rate;
        const std::string name =
            sparse ? "serial, sparse sweep" : "serial, dense sweep";
        table.add_row({name, common::Table::fmt(rate, 1),
                       common::Table::fmt(rate / serial_dense, 2) + "x",
                       sparse ? "1.00x" : "-"});
        record(name, 1, rate);
        std::printf("%-28s %8.1f samples/sec\n", name.c_str(), rate);
        std::fflush(stdout);
    }

    // ---- parallel engine: thread sweep -------------------------------------
    std::vector<std::vector<std::int32_t>> reference_weights;
    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
        auto net = make_net(side, 7);
        core::ParallelOptions popt;
        popt.threads = threads;
        popt.batch = batch;
        core::ParallelTrainer trainer(net, popt);
        common::Rng rng(42);
        const auto t0 = std::chrono::steady_clock::now();
        trainer.train_epoch(train, rng);
        const double rate = static_cast<double>(train.size()) / seconds_since(t0);

        if (reference_weights.empty())
            reference_weights = net.plastic_weights();
        const bool identical = reference_weights == net.plastic_weights();

        const std::string name = "parallel, batch " + std::to_string(batch) +
                                 ", " + std::to_string(threads) + " thread" +
                                 (threads == 1 ? "" : "s");
        table.add_row({name + (identical ? "" : "  [WEIGHTS DIVERGED]"),
                       common::Table::fmt(rate, 1),
                       common::Table::fmt(rate / serial_dense, 2) + "x",
                       common::Table::fmt(rate / serial_sparse, 2) + "x"});
        record(name, threads, rate);
        std::printf("%-28s %8.1f samples/sec%s\n", name.c_str(), rate,
                    identical ? "" : "  [WEIGHTS DIVERGED]");
        std::fflush(stdout);
    }

    // ---- sparse sweep on a large, quiet chip -------------------------------
    // The digits workload above is delivery-dominated (dense projections:
    // every input spike fans out to the whole hidden layer), so the sweep
    // strategy barely shows. This section isolates the sweep term: a
    // 16k-compartment chip with 2% of neurons driven and 8-synapse fanout —
    // the regime of event-driven workloads — where the dense sweep pays
    // O(compartments) per step and the active list pays O(traffic).
    {
        const auto make_quiet = [](bool sparse) {
            loihi::Chip chip;
            loihi::PopulationConfig src;
            src.name = "src";
            src.size = 8192;
            src.compartment.vth = 64;
            const auto s = chip.add_population(src);
            loihi::PopulationConfig dst;
            dst.name = "dst";
            dst.size = 8192;
            dst.compartment.vth = 256;
            chip.add_population(dst);
            common::Rng rng(99);
            std::vector<loihi::Synapse> syns;
            syns.reserve(8192 * 8);
            for (std::uint32_t i = 0; i < 8192; ++i)
                for (int k = 0; k < 8; ++k)
                    syns.push_back(
                        {i,
                         static_cast<std::uint32_t>(rng.uniform_int(0, 8191)),
                         static_cast<std::int32_t>(rng.uniform_int(-64, 64))});
            loihi::ProjectionConfig pr;
            pr.name = "p";
            pr.src = s;
            pr.dst = 1;
            chip.add_projection(pr, std::move(syns));
            chip.finalize();
            chip.set_sparse_sweep(sparse);
            std::vector<std::int32_t> bias(8192, 0);
            for (auto& b : bias)
                if (rng.bernoulli(0.02)) b = 20;
            chip.set_bias(s, bias);
            return chip;
        };
        double dense_rate = 0.0;
        for (const bool sparse : {false, true}) {
            auto chip = make_quiet(sparse);
            const auto t0 = std::chrono::steady_clock::now();
            chip.run(1000);
            const double rate = 1000.0 / seconds_since(t0);
            if (!sparse) dense_rate = rate;
            const std::string name = sparse ? "quiet 16k-comp chip, sparse"
                                            : "quiet 16k-comp chip, dense";
            table.add_row({name, common::Table::fmt(rate, 0) + " steps/s",
                           common::Table::fmt(rate / dense_rate, 2) + "x", "-"});
            record(name, 1, rate);
            std::printf("%-28s %8.0f steps/sec\n", name.c_str(), rate);
            std::fflush(stdout);
        }
    }

    // ---- inference serving: runtime sessions over one CompiledModel --------
    // The serving-scale story of the runtime API: compile the trained
    // network once, open one lightweight Session per thread (sessions share
    // the chip structure and read one copy-on-write weight image — no
    // per-thread chip deep-copy), and sweep inference throughput.
    {
        auto net = make_net(side, 7);
        common::Rng rng(42);
        core::train_epoch(net, train, rng);
        const auto model = runtime::adopt(net);

        double serve_1 = 0.0;
        for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
            std::vector<std::unique_ptr<runtime::Session>> sessions;
            const auto topen = std::chrono::steady_clock::now();
            for (std::size_t t = 0; t < threads; ++t)
                sessions.push_back(model->open_session());
            const double open_ms = seconds_since(topen) * 1e3;

            common::ThreadPool pool(threads);
            const auto t0 = std::chrono::steady_clock::now();
            pool.run(threads, [&](std::size_t t) {
                for (std::size_t i = t; i < train.size(); i += threads)
                    (void)sessions[t]->predict(train.samples[i].image);
            });
            const double rate =
                static_cast<double>(train.size()) / seconds_since(t0);
            if (threads == 1) serve_1 = rate;

            const std::string name = "serve, " + std::to_string(threads) +
                                     " session" + (threads == 1 ? "" : "s");
            table.add_row({name, common::Table::fmt(rate, 1),
                           common::Table::fmt(rate / serve_1, 2) + "x vs 1",
                           common::Table::fmt(open_ms, 2) + " ms open"});
            record(name, threads, rate);
            std::printf("%-28s %8.1f predictions/sec (%.2f ms to open)\n",
                        name.c_str(), rate, open_ms);
            std::fflush(stdout);
        }
    }

    std::printf("\n");
    table.print();
    std::printf("\nCSV: %s\nJSON: %s\n", csv.write().c_str(),
                json.write().c_str());
    bench::footnote(
        "the batched path trades the paper's strictly-online semantics for "
        "throughput: every sample in a batch trains against the batch-start "
        "weights on its own chip replica, and the integer deltas are merged "
        "sum-then-clip. Weights are bit-identical across thread counts; "
        "speedup saturates at the physical core count. The serving section "
        "shares one CompiledModel across sessions (no chip deep-copy per "
        "thread).");
    return 0;
}
