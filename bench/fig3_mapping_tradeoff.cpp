// Fig. 3 — Trade-off between throughput and active power via the
// neurons-per-core packing, for FA and DFA.
//
// Paper: sweeping 5..30 logical neurons per core while training 10000
// samples shows (a) wall time grows with neurons/core, (b) occupied cores
// and active power fall (idle cores are power gated), (c) energy/sample is
// U-shaped with the optimum around 10, and (d) DFA consistently uses fewer
// cores / less power than FA at equal throughput.
//
// This harness rebuilds the paper network at each sweep point, measures
// simulator activity over a few training samples, and derives the same four
// series from the energy model.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "core/trainer.hpp"
#include "viz/chart.hpp"

using namespace neuro;

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto samples = static_cast<std::size_t>(cli.get_int("samples", 12));
    const auto fig_samples = static_cast<std::size_t>(cli.get_int("fig-samples", 10000));

    bench::banner(
        "Fig. 3 — time / active power / energy-per-sample vs neurons-per-core",
        "paper Fig. 3 (Sec. IV-A2, IV-A3)",
        "paper network on synthetic digits; series derived from activity over " +
            std::to_string(samples) + " training samples per sweep point");

    core::ExperimentSpec spec;
    spec.dataset = "digits";
    spec.train_count = 200;
    spec.test_count = 50;
    spec.ann_epochs = 1;
    spec.seed = 5;
    const auto prep = core::prepare(spec);
    const loihi::EnergyModelParams params;

    common::Table table({"mode", "neurons/core", "cores",
                         "time 10k samples (s)", "active power (W)",
                         "energy/sample (mJ)"});
    common::CsvWriter csv(bench::kCsvDir, "fig3_mapping_tradeoff",
                          {"mode", "npc", "cores", "time_10k_s", "power_w",
                           "energy_mj"});

    const std::size_t sweep[] = {2, 3, 5, 8, 10, 15, 20, 25, 30};
    std::vector<double> sweep_x(std::begin(sweep), std::end(sweep));
    std::vector<viz::Series> energy_series;
    std::vector<viz::Series> power_series;
    for (auto mode : {core::FeedbackMode::FA, core::FeedbackMode::DFA}) {
        const char* name = mode == core::FeedbackMode::FA ? "FA" : "DFA";
        energy_series.push_back({name, {}});
        power_series.push_back({name, {}});
        double best_energy = 1e30;
        std::size_t best_npc = 0;
        for (std::size_t npc : sweep) {
            core::EmstdpOptions opt;
            opt.feedback = mode;
            opt.neurons_per_core = npc;
            auto net = core::build_chip_network(prep, opt);
            const auto r = core::measure_energy(*net, prep.train, samples, true, params);
            const double time_10k = static_cast<double>(fig_samples) / r.fps;
            const double energy_mj = r.energy_per_sample_j * 1e3;
            table.add_row({name, std::to_string(npc), std::to_string(r.cores),
                           common::Table::fmt(time_10k, 1),
                           common::Table::fmt(r.power_w, 3),
                           common::Table::fmt(energy_mj, 2)});
            csv.add_row({name, std::to_string(npc), std::to_string(r.cores),
                         std::to_string(time_10k), std::to_string(r.power_w),
                         std::to_string(energy_mj)});
            energy_series.back().y.push_back(energy_mj);
            power_series.back().y.push_back(r.power_w);
            if (r.energy_per_sample_j < best_energy) {
                best_energy = r.energy_per_sample_j;
                best_npc = npc;
            }
            std::printf("[%s npc=%zu] cores=%zu fps=%.1f\n", name, npc, r.cores,
                        r.fps);
            std::fflush(stdout);
        }
        std::printf("[%s] energy optimum at %zu neurons/core (paper: ~10)\n\n", name,
                    best_npc);
    }

    std::printf("\n");
    table.print();

    viz::ChartOptions copt;
    copt.width = 56;
    copt.height = 12;
    copt.x_label = "neurons per core";
    copt.y_label = "energy/sample (mJ)  [the paper's U-curve]";
    std::printf("\n%s", viz::line_chart(sweep_x, energy_series, copt).c_str());
    copt.y_label = "active power (W)  [power gating of idle cores]";
    std::printf("\n%s", viz::line_chart(sweep_x, power_series, copt).c_str());
    std::printf("\nCSV: %s\n", csv.write().c_str());
    bench::footnote(
        "shape checks: time rises and power falls monotonically with "
        "neurons/core; energy/sample is U-shaped with an interior optimum; "
        "DFA uses fewer cores and less power than FA at every sweep point "
        "with near-identical throughput. Paper reference points: ~150-400 s "
        "per 10k samples, optimum at 10 neurons/core.");
    return 0;
}
