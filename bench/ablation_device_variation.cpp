// Ablation F — device variation and defect compensation.
//
// Paper Sec. I motivates in-hardware learning with: "It provides the ability
// to compensate any device variation and/or environment noise in the
// inference stage". This ablation makes that claim measurable on the
// simulated chip: weights trained on a pristine chip are deployed onto chips
// with (a) Gaussian threshold mismatch on every forward neuron and (b) a
// fraction of dead hidden units. Deployment alone degrades accuracy; running
// the same on-chip EMSTDP learning *on the degraded chip* recovers most of
// it, because the update rule only ever sees the real device's spike counts.

#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/network.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "loihi/faults.hpp"

using namespace neuro;

namespace {

/// Applies threshold mismatch to every forward-path population that carries
/// trainable synapses (hidden + output), one derived seed per population.
void vary_forward_path(core::EmstdpNetwork& net, double sigma,
                       std::uint64_t seed) {
    std::uint64_t s = seed;
    for (const auto pop : net.hidden_pops())
        loihi::apply_threshold_variation(net.chip(), pop, sigma, s++);
    loihi::apply_threshold_variation(net.chip(), net.output_pop(), sigma, s);
}

struct Scenario {
    std::string label;
    double deploy_acc = 0.0;
    double adapted_acc = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto train_n = static_cast<std::size_t>(cli.get_int("train", 300));
    const auto test_n = static_cast<std::size_t>(cli.get_int("test", 200));
    const auto base_epochs = static_cast<std::size_t>(cli.get_int("epochs", 2));

    bench::banner("Ablation F — device variation & defect compensation",
                  "paper Sec. I (motivation: in-hardware learning compensates "
                  "device variation)",
                  std::to_string(train_n) + " train samples, " +
                      std::to_string(base_epochs) +
                      " factory epochs + 1 recovery epoch, DFA, 16x16 "
                      "synthetic digits, no conv front-end");

    data::GenOptions gen;
    gen.count = train_n + test_n;
    gen.seed = 5;
    gen.height = 16;
    gen.width = 16;
    const auto all = data::make_digits(gen);
    const auto [train, test] = data::split(all, train_n);

    core::EmstdpOptions opt;
    opt.seed = 7;
    const auto make_net = [&] {
        return std::make_unique<core::EmstdpNetwork>(opt, 1, gen.height,
                                                     gen.width, nullptr,
                                                     std::vector<std::size_t>{100},
                                                     std::size_t{10});
    };

    // ---- factory training on a pristine chip -------------------------------
    auto golden = make_net();
    common::Rng rng(42);
    for (std::size_t e = 0; e < base_epochs; ++e)
        core::train_epoch(*golden, train, rng);
    const double pristine = core::evaluate(*golden, test);
    const std::string ckpt = std::string(bench::kCsvDir) + "/device_variation.ckpt";
    golden->save(ckpt);
    std::printf("[factory] pristine chip accuracy: %.1f%%\n\n", pristine * 100.0);

    // ---- fault scenarios -----------------------------------------------------
    std::vector<Scenario> scenarios;
    const auto run_scenario = [&](const std::string& label, auto&& inject) {
        Scenario sc;
        sc.label = label;
        {
            auto deploy = make_net();
            deploy->load(ckpt);
            inject(*deploy);
            sc.deploy_acc = core::evaluate(*deploy, test);
        }
        {
            auto adapt = make_net();
            adapt->load(ckpt);
            inject(*adapt);  // identical seeds: the same physical chip
            common::Rng r2(43);
            core::train_epoch(*adapt, train, r2);
            sc.adapted_acc = core::evaluate(*adapt, test);
        }
        std::printf("[%s] deploy=%.1f%% adapted=%.1f%%\n", sc.label.c_str(),
                    sc.deploy_acc * 100.0, sc.adapted_acc * 100.0);
        std::fflush(stdout);
        scenarios.push_back(sc);
    };

    // Control: no fault. Its "adapted" column isolates how much of the
    // recovery below is plain extra training rather than compensation.
    run_scenario("none (control)", [](core::EmstdpNetwork&) {});
    for (const double sigma : {0.15, 0.30})
        run_scenario("vth mismatch sigma=" + common::Table::fmt(sigma * 100, 0) + "%",
                     [&](core::EmstdpNetwork& n) {
                         vary_forward_path(n, sigma, 1000);
                     });
    run_scenario("10% dead hidden units", [&](core::EmstdpNetwork& n) {
        loihi::kill_fraction(n.chip(), n.hidden_pops().front(), 0.10, 2000);
    });
    run_scenario("sigma=30% + 10% dead", [&](core::EmstdpNetwork& n) {
        vary_forward_path(n, 0.30, 1000);
        loihi::kill_fraction(n.chip(), n.hidden_pops().front(), 0.10, 2000);
    });

    // ---- report ---------------------------------------------------------------
    common::Table table(
        {"fault", "deploy-only", "after on-chip adaptation", "recovered"});
    common::CsvWriter csv(bench::kCsvDir, "ablation_device_variation",
                          {"fault", "deploy_acc", "adapted_acc", "pristine_acc"});
    for (const auto& sc : scenarios) {
        const double rec = sc.adapted_acc - sc.deploy_acc;
        table.add_row({sc.label, common::Table::pct(sc.deploy_acc),
                       common::Table::pct(sc.adapted_acc),
                       common::Table::fmt(rec * 100.0, 1) + " pp"});
        csv.add_row({sc.label, std::to_string(sc.deploy_acc),
                     std::to_string(sc.adapted_acc), std::to_string(pristine)});
    }
    std::printf("\npristine-chip reference: %.1f%%\n\n", pristine * 100.0);
    table.print();
    std::printf("\nCSV: %s\n", csv.write().c_str());
    bench::footnote(
        "shape check: deploying factory weights onto a varied/defective chip "
        "loses accuracy, and the loss grows with fault severity; one epoch "
        "of the same EMSTDP learning run *on the degraded chip* recovers "
        "far above the deploy-only level (the rule adapts the surviving "
        "synapses to the device that actually exists). This is the paper's "
        "stated motivation for in-hardware learning, demonstrated end to "
        "end. A reproduction finding: moderate threshold mismatch plus "
        "adaptation lands *above* the fault-free control — heterogeneous "
        "neuron gains break hidden-unit symmetry and enrich the feature "
        "basis, consistent with reports that neuron heterogeneity aids SNN "
        "training; see DESIGN.md Sec. 8.");
    return 0;
}
