// Fig. 4 — Incremental Online Learning with MNIST.
//
// Paper: pretrain on 4 random classes, then three incremental iterations
// each introducing 2 new classes over 5 rounds (per-class data split into 5
// chunks). Each round: step 1 learns the new classes with old classifier
// neurons disabled and reduced learning rate (approximating a
// cross-distillation loss); step 2 retrains on new + replayed old samples.
// The plot shows accuracy over observed classes after each step: a sharp
// drop when classes are introduced (catastrophic forgetting) followed by
// recovery across the rounds, against a jointly-trained baseline.
//
// This harness runs the same protocol on the synthetic digit substitute
// with the on-chip (simulated) EMSTDP network and prints the three series.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "iol/incremental.hpp"
#include "viz/chart.hpp"

using namespace neuro;

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto train_n = static_cast<std::size_t>(cli.get_int("train", 800));
    const auto test_n = static_cast<std::size_t>(cli.get_int("test", 250));
    const auto rounds = static_cast<std::size_t>(cli.get_int("rounds", 5));

    bench::banner("Fig. 4 — incremental online learning (4 +2 +2 +2 classes)",
                  "paper Fig. 4 (Sec. IV-B)",
                  std::to_string(train_n) + " pool samples, " +
                      std::to_string(rounds) + " rounds/iteration (paper: 6000 "
                      "samples/class, 5 rounds)");

    core::ExperimentSpec spec;
    spec.dataset = "digits";
    spec.train_count = train_n;
    spec.test_count = test_n;
    spec.ann_epochs = 2;
    spec.seed = 11;
    const auto prep = core::prepare(spec);
    std::printf("conv stack pretrained (ANN upper bound %.1f%%)\n\n",
                prep.ann_test_accuracy * 100.0);

    iol::IolOptions opt;
    opt.rounds_per_iteration = rounds;
    opt.pretrain_epochs = 2;
    opt.baseline_epochs = 2;
    opt.seed = 17;

    const auto factory = [&prep]() {
        core::EmstdpOptions eopt;
        eopt.feedback = core::FeedbackMode::DFA;
        eopt.seed = 7;
        return core::build_chip_network(prep, eopt);
    };

    const auto result = iol::run_incremental(factory, prep.train, prep.test, opt);

    std::printf("class introduction order:");
    for (auto c : result.class_order) std::printf(" %zu", c);
    std::printf("\npretraining accuracy over first %zu classes: %.1f%%\n\n",
                opt.initial_classes, result.pretrain_accuracy * 100.0);

    common::Table table({"round", "observed", "IOL after step 1",
                         "IOL after step 2", "old-class acc (step 1)",
                         "baseline"});
    common::CsvWriter csv(bench::kCsvDir, "fig4_incremental",
                          {"round", "iteration", "observed_classes", "step1_acc",
                           "step2_acc", "old_acc_step1", "baseline"});
    std::size_t global_round = 0;
    for (const auto& rec : result.rounds) {
        const bool last_of_iter = rec.round + 1 == opt.rounds_per_iteration;
        const std::string baseline =
            last_of_iter ? common::Table::pct(result.baseline[rec.iteration]) : "";
        table.add_row({std::to_string(global_round) +
                           (rec.round == 0 ? " <- +2 classes" : ""),
                       std::to_string(rec.observed_classes.size()),
                       common::Table::pct(rec.accuracy_after_step1),
                       common::Table::pct(rec.accuracy_after_step2),
                       common::Table::pct(rec.old_class_accuracy_after_step1),
                       baseline});
        csv.add_row({std::to_string(global_round), std::to_string(rec.iteration),
                     std::to_string(rec.observed_classes.size()),
                     std::to_string(rec.accuracy_after_step1),
                     std::to_string(rec.accuracy_after_step2),
                     std::to_string(rec.old_class_accuracy_after_step1),
                     last_of_iter ? std::to_string(result.baseline[rec.iteration])
                                  : ""});
        ++global_round;
    }
    table.print();

    // The figure itself: accuracy after each step per round, baseline as a
    // step function held at each iteration's jointly-trained level.
    std::vector<double> x;
    viz::Series s1{"after step 1", {}};
    viz::Series s2{"after step 2", {}};
    viz::Series sb{"baseline", {}};
    for (std::size_t r = 0; r < result.rounds.size(); ++r) {
        x.push_back(static_cast<double>(r));
        s1.y.push_back(result.rounds[r].accuracy_after_step1 * 100.0);
        s2.y.push_back(result.rounds[r].accuracy_after_step2 * 100.0);
        sb.y.push_back(result.baseline[result.rounds[r].iteration] * 100.0);
    }
    viz::ChartOptions copt;
    copt.width = 56;
    copt.height = 14;
    copt.x_label = "round (new classes arrive at each x = 0 mod " +
                   std::to_string(opt.rounds_per_iteration) + ")";
    copt.y_label = "accuracy over observed classes (%)";
    std::printf("\n%s", viz::line_chart(x, {s1, s2, sb}, copt).c_str());
    std::printf("\nCSV: %s\n", csv.write().c_str());

    bench::footnote(
        "shape checks (paper Fig. 4): a visible accuracy drop in the first "
        "round after new classes are introduced (catastrophic forgetting, "
        "strongest in the old-class column), recovery over the following "
        "rounds, step-2 (retrain with replay) >= step-1, and the continuous "
        "learner approaching but not exceeding the jointly-trained baseline.");
    return 0;
}
