// Learning-while-serving load test (neuro::online + neuro::serve) — the
// production shape of the paper's in-hardware learning claim: EMSTDP
// updates land on the serving fleet *while it serves*, through versioned
// COW weight publication, with a shadow-eval gate in front of traffic.
//
// One learning-off control row (plain server, frozen weights), then a
// sweep of feedback-rate x publish-interval rows. Each learning-on row
// runs a feedback producer (seeded, fixed order: the whole learning
// trajectory — updates, replay, publish points, accuracies — is
// deterministic on the integer chip simulator, so the accuracy columns
// are machine-independent and CI-gateable) next to closed-loop inference
// clients, and reports:
//   * accuracy over the feedback stream: baseline (initial weights) vs
//     final (last good published version) on a held-out set, plus the
//     per-version trajectory from the model registry,
//   * serving p95 with learning on, and its ratio to the learning-off
//     row — the "learning must not wreck the tail" acceptance number.
//
// Writes bench_results/online_serving.{csv,json}; CI gates final_accuracy
// against bench/baselines/online_serving.json (absolute comparison, like
// table1) via tools/check_bench_regression.py.
//
// CLI: --feedback=N (stream length/config), --requests=R (control-row
//      requests), --holdout=H, --rates=a,b --intervals=x,y (sweep),
//      --workers=W, --batch=B, --clients=C, --seed=S,
//      --max_p95_ratio=F (0 = report only; >0 = fail above it).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "core/trainer.hpp"
#include "data/dataset.hpp"
#include "online/engine.hpp"
#include "runtime/compiled_model.hpp"
#include "serve/server.hpp"

using namespace neuro;

namespace {

struct Row {
    std::string config;
    std::string mode;
    std::size_t publish_interval = 0;
    double feedback_rps = 0.0;
    std::size_t feedback = 0;
    std::uint64_t requests = 0;
    double baseline_accuracy = 0.0;
    double final_accuracy = 0.0;
    double prequential_accuracy = 0.0;
    std::uint64_t published = 0;
    std::uint64_t rollbacks = 0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double throughput_rps = 0.0;
    double p95_ratio = 0.0;  ///< vs the learning-off control row
};

std::vector<double> parse_list(const std::string& csv) {
    std::vector<double> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) out.push_back(std::stod(item));
    return out;
}

/// Closed-loop inference clients that run until `stop` flips, then report
/// how many requests completed Ok.
std::uint64_t drive_traffic(serve::Server& server, const data::Dataset& images,
                            std::size_t clients, std::atomic<bool>& stop) {
    std::atomic<std::uint64_t> ok{0};
    std::vector<std::thread> pool;
    for (std::size_t c = 0; c < clients; ++c)
        pool.emplace_back([&, c] {
            std::size_t i = c;
            while (!stop.load(std::memory_order_relaxed)) {
                if (server.submit(images.samples[i % images.size()].image)
                        .get()
                        .status == serve::Status::Ok)
                    ok.fetch_add(1, std::memory_order_relaxed);
                i += clients;
            }
        });
    for (auto& t : pool) t.join();
    return ok.load();
}

}  // namespace

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    const auto feedback_n = static_cast<std::size_t>(cli.get_int("feedback", 240));
    const auto requests = static_cast<std::size_t>(cli.get_int("requests", 192));
    const auto holdout_n = static_cast<std::size_t>(cli.get_int("holdout", 80));
    const auto workers = static_cast<std::size_t>(cli.get_int("workers", 2));
    const auto batch = static_cast<std::size_t>(cli.get_int("batch", 4));
    const auto clients = static_cast<std::size_t>(cli.get_int("clients", 2));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));
    const auto rates = parse_list(cli.get("rates", "100,200"));
    const auto intervals = parse_list(cli.get("intervals", "60,120"));
    const double max_p95_ratio = cli.get_double("max_p95_ratio", 0.0);

    bench::banner(
        "Online learning while serving — feedback-rate x publish-interval",
        "in-hardware learning (paper Sec. IV) as a live-serving subsystem "
        "(no paper figure)",
        std::to_string(feedback_n) + " feedback samples/config, sweep " +
            cli.get("rates", "100,200") + " fb/s x intervals " +
            cli.get("intervals", "60,120") + ", " + std::to_string(workers) +
            " workers, " + std::to_string(clients) + " clients, " +
            std::to_string(std::thread::hardware_concurrency()) +
            " hardware threads");

    data::GenOptions gen;
    gen.count = feedback_n + holdout_n;
    gen.seed = seed;
    gen.height = 16;
    gen.width = 16;
    auto all = data::make_digits(gen);
    auto [stream, holdout] = data::split(all, feedback_n);

    runtime::ModelSpec spec;
    spec.input(1, 16, 16).hidden_layers({100}).output_classes(10);
    spec.options.seed = 29;

    serve::ServerOptions sopt;
    sopt.workers = workers;
    sopt.queue_capacity = 128;
    sopt.batch.max_batch = batch;
    sopt.admission.feedback_capacity = 256;

    std::vector<Row> rows;

    // ---- learning OFF: the frozen-server control row -----------------------
    {
        const auto model = runtime::CompiledModel::compile(spec);
        auto probe = model->open_session();
        const double baseline = core::evaluate(*probe, holdout);
        serve::Server server(model, sopt);
        server.start();
        std::atomic<bool> stop{false};
        std::thread stopper([&] {
            // Fixed request budget: the control row measures a quiet server.
            while (server.stats().completed < requests)
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
            stop.store(true);
        });
        const auto ok = drive_traffic(server, stream, clients, stop);
        stopper.join();
        server.shutdown();
        const auto st = server.stats();
        Row row;
        row.config = "serve-only";
        row.mode = "off";
        row.requests = ok;
        row.baseline_accuracy = baseline;
        row.final_accuracy = baseline;  // frozen weights: nothing changes
        row.p50_us = st.p50_us;
        row.p95_us = st.p95_us;
        row.p99_us = st.p99_us;
        row.throughput_rps = st.throughput_rps;
        row.p95_ratio = 1.0;
        rows.push_back(row);
    }
    const double off_p95 = rows[0].p95_us;

    // ---- learning ON: feedback-rate x publish-interval sweep ---------------
    for (const double rate : rates) {
        for (const double interval_d : intervals) {
            const auto interval = static_cast<std::size_t>(interval_d);
            const auto model = runtime::CompiledModel::compile(spec);
            serve::Server server(model, sopt);

            const auto registry_dir =
                std::filesystem::temp_directory_path() /
                ("neuro_online_bench_" + std::to_string(interval) + "_" +
                 std::to_string(static_cast<int>(rate)));
            std::filesystem::remove_all(registry_dir);

            online::OnlineOptions oopt;
            oopt.publish_interval = interval;
            oopt.seed = seed;
            oopt.max_regression = 0.05;
            // Drain one sample at a time: long learner bursts between
            // yields are exactly what inflates the serving tail when the
            // learner shares cores with the pool.
            oopt.feedback_batch =
                static_cast<std::size_t>(cli.get_int("feedback_batch", 1));
            oopt.registry_dir = registry_dir.string();
            online::OnlineEngine engine(model, server.feedback_queue(),
                                        holdout, oopt);
            server.start();
            engine.start();

            // Paced, ordered feedback stream: blocking push keeps the
            // training order (and hence every accuracy) deterministic.
            std::thread producer([&] {
                const auto t0 = std::chrono::steady_clock::now();
                for (std::size_t i = 0; i < stream.size(); ++i) {
                    std::this_thread::sleep_until(
                        t0 + std::chrono::duration_cast<
                                 std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(
                                     static_cast<double>(i) / rate)));
                    serve::FeedbackSample f{stream.samples[i].image,
                                            stream.samples[i].label, {}};
                    server.feedback_queue()->push(f);
                }
            });

            std::atomic<bool> stop{false};
            std::thread stopper([&] {
                while (engine.stats().feedback_seen < stream.size())
                    std::this_thread::sleep_for(std::chrono::milliseconds(2));
                stop.store(true);
            });
            const auto ok = drive_traffic(server, stream, clients, stop);
            producer.join();
            stopper.join();
            engine.stop();
            server.shutdown();

            const auto st = server.stats();
            const auto es = engine.stats();
            Row row;
            row.config = "learn, rate=" +
                         std::to_string(static_cast<int>(rate)) +
                         ", interval=" + std::to_string(interval);
            row.mode = "on";
            row.publish_interval = interval;
            row.feedback_rps = rate;
            row.feedback = stream.size();
            row.requests = ok;
            row.baseline_accuracy = es.baseline_accuracy;
            row.final_accuracy = es.last_good_accuracy;
            row.prequential_accuracy =
                es.feedback_seen == 0
                    ? 0.0
                    : static_cast<double>(es.prequential_hits) /
                          static_cast<double>(es.feedback_seen);
            row.published = es.published;
            row.rollbacks = es.rollbacks;
            row.p50_us = st.p50_us;
            row.p95_us = st.p95_us;
            row.p99_us = st.p99_us;
            row.throughput_rps = st.throughput_rps;
            row.p95_ratio = off_p95 > 0.0 ? st.p95_us / off_p95 : 0.0;
            rows.push_back(row);

            // Accuracy-over-time for this config, straight from the
            // registry (one line per accepted version).
            std::printf("%-26s versions:", row.config.c_str());
            if (engine.registry())
                for (const auto& e : engine.registry()->entries())
                    std::printf(" v%llu=%.3f",
                                static_cast<unsigned long long>(e.version),
                                e.accuracy);
            std::printf("  (baseline %.3f)\n", es.baseline_accuracy);
            std::fflush(stdout);
            std::filesystem::remove_all(registry_dir);
        }
    }

    // ---- report ------------------------------------------------------------
    common::Table table({"configuration", "acc start", "acc final", "preq",
                         "publishes", "rollbacks", "p95 us", "p95 ratio",
                         "req/s"});
    const std::vector<std::string> keys = {
        "config", "mode", "publish_interval", "feedback_rps", "feedback",
        "requests", "baseline_accuracy", "final_accuracy",
        "prequential_accuracy", "published", "rollbacks", "p50_us", "p95_us",
        "p99_us", "throughput_rps", "p95_ratio"};
    common::CsvWriter csv(bench::kCsvDir, "online_serving", keys);
    bench::JsonWriter json(bench::kCsvDir, "online_serving", keys);
    for (const auto& r : rows) {
        table.add_row({r.config, common::Table::fmt(r.baseline_accuracy, 3),
                       common::Table::fmt(r.final_accuracy, 3),
                       common::Table::fmt(r.prequential_accuracy, 3),
                       std::to_string(r.published),
                       std::to_string(r.rollbacks),
                       common::Table::fmt(r.p95_us, 0),
                       common::Table::fmt(r.p95_ratio, 2),
                       common::Table::fmt(r.throughput_rps, 1)});
        const std::vector<std::string> cells = {
            r.config,
            r.mode,
            std::to_string(r.publish_interval),
            std::to_string(r.feedback_rps),
            std::to_string(r.feedback),
            std::to_string(r.requests),
            std::to_string(r.baseline_accuracy),
            std::to_string(r.final_accuracy),
            std::to_string(r.prequential_accuracy),
            std::to_string(r.published),
            std::to_string(r.rollbacks),
            std::to_string(r.p50_us),
            std::to_string(r.p95_us),
            std::to_string(r.p99_us),
            std::to_string(r.throughput_rps),
            std::to_string(r.p95_ratio)};
        csv.add_row(cells);
        json.add_row(cells);
    }
    std::printf("\n");
    table.print();
    std::printf("CSV: %s\nJSON: %s\n", csv.write().c_str(),
                json.write().c_str());
    bench::footnote(
        "accuracy columns are deterministic (integer simulator, seeded "
        "stream) and CI-gated; latency columns are machine-dependent and "
        "reported for the p95-ratio acceptance check. The learning-off row "
        "is the frozen-server control the ratios compare against.");

    bool fail = false;
    for (const auto& r : rows) {
        if (r.mode != "on") continue;
        if (r.final_accuracy <= r.baseline_accuracy) {
            std::fprintf(stderr,
                         "FAIL: %s did not improve over the feedback stream "
                         "(%.3f -> %.3f)\n",
                         r.config.c_str(), r.baseline_accuracy,
                         r.final_accuracy);
            fail = true;
        }
        if (max_p95_ratio > 0.0 && r.p95_ratio > max_p95_ratio) {
            std::fprintf(stderr,
                         "FAIL: %s serving p95 ratio %.2f exceeds %.2f\n",
                         r.config.c_str(), r.p95_ratio, max_p95_ratio);
            fail = true;
        }
    }
    return fail ? 1 : 0;
}
