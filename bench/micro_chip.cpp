// Microbenchmarks of the chip simulator itself (google-benchmark): timestep
// cost vs network size and activity, spike delivery, learning-epoch cost and
// microcode parsing. These gate performance regressions of the substrate
// that every experiment binary sits on.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "loihi/chip.hpp"

using namespace neuro::loihi;

namespace {

/// Two-population network: `n` sources firing at `rate`, dense fan-out to
/// n/4 destinations.
Chip make_chip(std::size_t n, double rate, bool plastic) {
    Chip chip;
    PopulationConfig src;
    src.name = "src";
    src.size = n;
    src.compartment.vth = 64;
    const auto s = chip.add_population(src);
    PopulationConfig dst;
    dst.name = "dst";
    dst.size = n / 4;
    dst.compartment.vth = 256;
    const auto d = chip.add_population(dst);

    neuro::common::Rng rng(99);
    std::vector<Synapse> syns;
    syns.reserve(n * (n / 4) / 8);
    for (std::uint32_t i = 0; i < n; ++i)
        for (std::uint32_t o = 0; o < n / 4; ++o)
            if (rng.bernoulli(0.125))
                syns.push_back({i, o, static_cast<std::int32_t>(
                                          rng.uniform_int(-64, 64))});
    ProjectionConfig pr;
    pr.name = "p";
    pr.src = s;
    pr.dst = d;
    pr.plastic = plastic;
    pr.rule = emstdp_rule(7);
    chip.add_projection(pr, std::move(syns));
    chip.finalize();

    std::vector<std::int32_t> bias(n);
    for (auto& b : bias)
        b = static_cast<std::int32_t>(rate * 64.0 * rng.uniform());
    chip.set_bias(s, bias);
    return chip;
}

void BM_TimestepSmall(benchmark::State& state) {
    Chip chip = make_chip(256, 0.3, false);
    for (auto _ : state) chip.step();
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 320);
}
BENCHMARK(BM_TimestepSmall);

void BM_TimestepLarge(benchmark::State& state) {
    Chip chip = make_chip(4096, 0.3, false);
    for (auto _ : state) chip.step();
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 5120);
}
BENCHMARK(BM_TimestepLarge);

void BM_TimestepActivitySweep(benchmark::State& state) {
    const double rate = static_cast<double>(state.range(0)) / 100.0;
    Chip chip = make_chip(1024, rate, false);
    for (auto _ : state) chip.step();
}
BENCHMARK(BM_TimestepActivitySweep)->Arg(5)->Arg(25)->Arg(75);

void BM_LearningEpoch(benchmark::State& state) {
    Chip chip = make_chip(1024, 0.3, true);
    chip.run(64);  // accumulate traces
    for (auto _ : state) chip.apply_learning();
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(chip.total_synapses()));
}
BENCHMARK(BM_LearningEpoch);

void BM_ResetDynamicState(benchmark::State& state) {
    Chip chip = make_chip(4096, 0.3, false);
    for (auto _ : state) chip.reset_dynamic_state();
}
BENCHMARK(BM_ResetDynamicState);

void BM_ParseMicrocode(benchmark::State& state) {
    for (auto _ : state) {
        auto sop = parse_sum_of_products("2^-6*x1*y1 - 2^-7*x1*t + (x1-2)*(y1+3)");
        benchmark::DoNotOptimize(sop);
    }
}
BENCHMARK(BM_ParseMicrocode);

}  // namespace

BENCHMARK_MAIN();
