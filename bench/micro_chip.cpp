// Kernel microbenchmark of the chip simulator's two hot phases, with
// per-phase perf counters:
//
//   1. sweep — the dense membrane-update pass over every compartment
//              (ns per compartment update, from ActivityTotals deltas)
//   2. accum — CSR synaptic accumulation fan-out of delivered spikes
//              (ns per synapse event, driven by host spike insertion so the
//              phase is measured in isolation from the sweep)
//
// Rows compare the scalar reference kernels against the SIMD lane kernels
// (Chip::set_vector_sweep) on the same network; the sparse active-set row
// rides along for context. Before timing anything the bench verifies that
// all four sweep-mode combinations produce bit-identical spike counts and
// ActivityTotals on an active workload — a perf number for a kernel that
// drifted semantically would be meaningless.
//
// CI gates the simd row of both phases via
// tools/check_bench_regression.py --only micro_chip (lower is better,
// normalized by the same-run scalar row so the gate transfers across
// machines); nightly.yml records full-scale trend points.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "loihi/chip.hpp"

using namespace neuro;
using namespace neuro::loihi;

namespace {

/// Two-population feed-forward network shaped like the EMSTDP hidden
/// layers: `n` IF sources with dense fan-out to n/4 IF destinations. Dense
/// connectivity is what core::dense_synapses builds, so the delivery spans
/// are the contiguous runs the batched accumulation path targets.
Chip make_chip(std::size_t n) {
    Chip chip;
    PopulationConfig src;
    src.name = "src";
    src.size = n;
    src.compartment.vth = 64;
    src.compartment.floor_at_zero = true;
    const auto s = chip.add_population(src);
    PopulationConfig dst;
    dst.name = "dst";
    dst.size = n / 4;
    dst.compartment.vth = 256;
    dst.compartment.floor_at_zero = true;
    const auto d = chip.add_population(dst);

    common::Rng rng(99);
    std::vector<Synapse> syns;
    syns.reserve(n * (n / 4));
    for (std::uint32_t i = 0; i < n; ++i)
        for (std::uint32_t o = 0; o < n / 4; ++o)
            syns.push_back({i, o, static_cast<std::int32_t>(
                                      rng.uniform_int(-64, 64))});
    ProjectionConfig pr;
    pr.name = "p";
    pr.src = s;
    pr.dst = d;
    chip.add_projection(pr, std::move(syns));
    chip.finalize();
    return chip;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

struct PhaseResult {
    double sweep_ns_per_compartment = 0.0;
    double accum_ns_per_event = 0.0;
    std::uint64_t spikes_delivered = 0;
    std::uint64_t synaptic_events = 0;
};

PhaseResult measure_once(std::size_t n, std::size_t steps, std::size_t spikes,
                         bool sparse, bool simd) {
    Chip chip = make_chip(n);
    chip.set_sparse_sweep(sparse);
    chip.set_vector_sweep(simd);

    PhaseResult out;

    // ---- sweep phase: quiet chip, pure membrane pass ----------------------
    chip.run(steps / 4);  // warm caches and settle the sparse active list
    chip.reset_activity();
    const auto t0 = std::chrono::steady_clock::now();
    chip.run(steps);
    const double sweep_s = seconds_since(t0);
    const auto& a1 = chip.activity();
    // compartment_updates counts every eligible compartment per step in all
    // modes (the sparse sweep accounts skipped units in bulk), so the
    // denominator is mode-invariant and the sparse row's ns-per-accounted-
    // compartment shows exactly what the active-set skip buys.
    out.sweep_ns_per_compartment =
        a1.compartment_updates == 0
            ? 0.0
            : sweep_s * 1e9 / static_cast<double>(a1.compartment_updates);

    // ---- accumulation phase: host-driven spike storm ----------------------
    // insert_spike() delivers through the same CSR fan-out as a locally
    // fired spike without running a sweep, so this isolates the synaptic
    // accumulation loop (plus the constant per-spike trace/counter
    // bookkeeping, amortized over n/4 events per spike).
    chip.reset_activity();
    const auto t1 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < spikes; ++i) chip.insert_spike(0, i % n);
    const double accum_s = seconds_since(t1);
    const auto& a2 = chip.activity();
    out.spikes_delivered = a2.host_io_writes;
    out.synaptic_events = a2.synaptic_ops;
    out.accum_ns_per_event =
        a2.synaptic_ops == 0
            ? 0.0
            : accum_s * 1e9 / static_cast<double>(a2.synaptic_ops);
    return out;
}

/// Best-of-`reps` per phase. Each rep runs on a fresh chip; the minimum is
/// the standard scheduler-noise-free estimate for a short microbench (CI
/// runners are shared machines, and the gate compares per-phase *ratios*,
/// which a single preempted rep would skew by 2x or more).
PhaseResult measure(std::size_t n, std::size_t steps, std::size_t spikes,
                    std::size_t reps, bool sparse, bool simd) {
    PhaseResult best = measure_once(n, steps, spikes, sparse, simd);
    for (std::size_t r = 1; r < reps; ++r) {
        const PhaseResult cur = measure_once(n, steps, spikes, sparse, simd);
        best.sweep_ns_per_compartment =
            std::min(best.sweep_ns_per_compartment, cur.sweep_ns_per_compartment);
        best.accum_ns_per_event =
            std::min(best.accum_ns_per_event, cur.accum_ns_per_event);
    }
    return best;
}

/// Bit-identity cross-check of all four sweep modes on an active workload:
/// biases drive the sources, spikes cascade through the projection. Returns
/// false (and prints the discrepancy) if any mode diverges.
bool verify_modes(std::size_t steps) {
    struct Snapshot {
        std::vector<std::int32_t> src_counts, dst_counts;
        ActivityTotals totals{};
    };
    std::vector<Snapshot> snaps;
    std::vector<std::string> names;
    for (const bool sparse : {false, true}) {
        for (const bool simd : {false, true}) {
            Chip chip = make_chip(256);
            chip.set_sparse_sweep(sparse);
            chip.set_vector_sweep(simd);
            std::vector<std::int32_t> bias(256);
            common::Rng rng(7);
            for (auto& b : bias)
                b = static_cast<std::int32_t>(rng.uniform_int(0, 48));
            chip.set_bias(0, bias);
            chip.run(steps);
            Snapshot s;
            s.src_counts = chip.spike_counts_total(0);
            s.dst_counts = chip.spike_counts_total(1);
            s.totals = chip.activity();
            snaps.push_back(std::move(s));
            names.push_back(std::string(sparse ? "sparse" : "dense") + "+" +
                            (simd ? "simd" : "scalar"));
        }
    }
    for (std::size_t i = 1; i < snaps.size(); ++i) {
        const auto& a = snaps[0];
        const auto& b = snaps[i];
        const bool same =
            a.src_counts == b.src_counts && a.dst_counts == b.dst_counts &&
            a.totals.steps == b.totals.steps &&
            a.totals.compartment_updates == b.totals.compartment_updates &&
            a.totals.synaptic_ops == b.totals.synaptic_ops &&
            a.totals.spikes == b.totals.spikes &&
            a.totals.host_io_writes == b.totals.host_io_writes;
        if (!same) {
            std::printf("BIT-IDENTITY FAILURE: %s diverges from %s\n",
                        names[i].c_str(), names[0].c_str());
            std::printf("  spikes %" PRIu64 " vs %" PRIu64 ", synops %" PRIu64
                        " vs %" PRIu64 "\n",
                        b.totals.spikes, a.totals.spikes,
                        b.totals.synaptic_ops, a.totals.synaptic_ops);
            return false;
        }
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    common::Cli cli(argc, argv);
    if (cli.error()) {
        std::fprintf(stderr,
                     "usage: micro_chip [--n=1024] [--steps=400] "
                     "[--spikes=2048] [--reps=3]\n");
        return 2;
    }
    const auto n = static_cast<std::size_t>(cli.get_int("n", 1024));
    const auto steps = static_cast<std::size_t>(cli.get_int("steps", 400));
    const auto spikes = static_cast<std::size_t>(cli.get_int("spikes", 2048));
    const auto reps = static_cast<std::size_t>(cli.get_int("reps", 3));

    bench::banner(
        "Chip kernel microbench — per-phase perf counters",
        "substrate of every experiment (paper Sec. II-B step semantics)",
        std::to_string(n) + " sources -> " + std::to_string(n / 4) +
            " destinations (dense), " + std::to_string(steps) +
            " sweep steps, " + std::to_string(spikes) + " inserted spikes");

    if (!verify_modes(64)) return 1;
    std::printf("bit-identity across dense/sparse x scalar/simd: ok\n\n");

    common::Table table({"config", "sweep ns/comp", "accum ns/event",
                         "spikes", "synaptic events"});
    bench::JsonWriter json(bench::kCsvDir, "micro_chip",
                           {"config", "sweep_ns_per_compartment",
                            "accum_ns_per_event", "spikes_delivered",
                            "synaptic_events"});

    struct Mode {
        const char* name;
        bool sparse;
        bool simd;
    };
    const Mode modes[] = {
        {"dense, scalar", false, false},
        {"dense, simd", false, true},
        {"sparse, simd", true, true},
    };
    for (const Mode& m : modes) {
        const PhaseResult r = measure(n, steps, spikes, reps, m.sparse, m.simd);
        table.add_row(
            {m.name, common::Table::fmt(r.sweep_ns_per_compartment, 3),
             common::Table::fmt(r.accum_ns_per_event, 3),
             std::to_string(r.spikes_delivered),
             std::to_string(r.synaptic_events)});
        json.add_row(
            {m.name, common::Table::fmt(r.sweep_ns_per_compartment, 4),
             common::Table::fmt(r.accum_ns_per_event, 4),
             std::to_string(r.spikes_delivered),
             std::to_string(r.synaptic_events)});
    }
    table.print();
    const auto path = json.write();
    std::printf("\nresults -> %s\n", path.c_str());

    bench::footnote(
        "CI gates the simd row of both phases (lower is better, normalized "
        "by the same-run scalar row); the sparse row is context only — its "
        "win depends on workload quiescence, not kernel layout.");
    return 0;
}
